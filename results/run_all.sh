#!/bin/sh
# Regenerates every experiment output in this directory.
# Usage: OPTIMOD_CORPUS=small OPTIMOD_BUDGET_MS=2000 sh results/run_all.sh
set -e
cd "$(dirname "$0")/.."
for bin in table1_structured table2_traditional exp3_ims_optimality \
           exp4_stage_vs_optimal ablation_branching ablation_stage_ilp; do
  echo "=== $bin ==="
  ./target/release/$bin > results/$bin.txt 2>results/$bin.err
done
echo done
