#!/usr/bin/env bash
# Repository lint + test gate. Run before sending a change for review.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> cargo test (release with debug assertions)"
# Release codegen with debug_assert! live: catches invariant violations
# (schedule re-validation, solver bookkeeping) that dev-profile timings
# hide and plain release builds compile out.
CARGO_PROFILE_RELEASE_DEBUG_ASSERTIONS=true \
CARGO_PROFILE_RELEASE_OVERFLOW_CHECKS=true \
    cargo test --workspace -q --release

echo "All checks passed."
