#!/usr/bin/env bash
# Repository lint + test gate. Run before sending a change for review.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> cargo test (release with debug assertions)"
# Release codegen with debug_assert! live: catches invariant violations
# (schedule re-validation, solver bookkeeping) that dev-profile timings
# hide and plain release builds compile out.
CARGO_PROFILE_RELEASE_DEBUG_ASSERTIONS=true \
CARGO_PROFILE_RELEASE_OVERFLOW_CHECKS=true \
    cargo test --workspace -q --release

echo "==> golden-corpus solver counters"
# Deterministic serial counters (II, B&B nodes, LP solves, simplex
# iterations) pinned in tests/golden/corpus.tsv. On intentional solver
# changes: OPTIMOD_BLESS=1 cargo test --test golden_corpus, commit the diff.
cargo test -q --test golden_corpus

echo "==> analyzer presolve impact (golden corpus)"
# Presolve must be sound (identical certified II and objective with and
# without it) and must reduce the total golden-corpus branch-and-bound
# nodes or simplex iterations; fails the build otherwise.
cargo run --release -q -p optimod-bench --bin presolve_impact

echo "==> exact-arithmetic certification of the golden corpus"
# Every golden kernel under both formulations must come back with a
# schedule the external certifier accepts (constraints cross-checked
# against the ground truth, II >= recomputed MinII, exact objective).
cargo run --release -q -p optimod-bench --bin certify_corpus

echo "==> infeasibility explanations over the golden corpus"
# Every golden kernel with II* > 1 explained at II* - 1: the engine must
# return a certified minimal unsat core each time (the named groups alone
# are infeasible; dropping any one restores satisfiability) and the
# minimized core may never exceed the raw assumption core.
cargo run --release -q -p optimod-bench --bin explain_corpus

echo "==> crate hygiene (memory-safety and doc gates)"
# The analysis-facing crates must keep forbid(unsafe_code) and
# deny(missing_docs) at the crate root; a silent downgrade to warn (or a
# removal) fails the build here before clippy ever sees it.
for crate in analyze sat verify; do
    lib="crates/$crate/src/lib.rs"
    grep -q '^#!\[forbid(unsafe_code)\]' "$lib" \
        || { echo "hygiene: $lib lost #![forbid(unsafe_code)]"; exit 1; }
    grep -q '^#!\[deny(missing_docs)\]' "$lib" \
        || { echo "hygiene: $lib lost #![deny(missing_docs)]"; exit 1; }
done

echo "==> fixed-seed chaos sweep (fault injection)"
# 64 seeded fault plans x 3 kernels x (plain + portfolio): every run must
# end in a certified schedule or a clean typed degradation — zero escaped
# panics, balanced trace streams, and no injected fault may ever
# manufacture a cross-backend disagreement. Failures name their seed:
# optimod --chaos SEED <loop>.
cargo run --release -q -p optimod-bench --bin chaos_sweep

echo "==> SAT encoder round-trip properties (vs the real ILP)"
# Both directions of the CNF encoder contract over seeded loops: every
# satisfying assignment decodes to a certified schedule, every certified
# ILP schedule satisfies the CNF via unit assumptions, and the sabotaged
# encoder variant is provably unsatisfiable (DESIGN.md §15).
cargo test -q -p optimod-sat --test encoding_properties

echo "==> cross-backend portfolio over the golden corpus"
# All 22 golden cells under --portfolio (serial and raced): certified II
# identical to ILP-only everywhere, zero disagreements, SAT winning at
# least one cell outright, and the differential oracle demonstrably
# catching a deliberately sabotaged encoder with a minimized repro.
cargo run --release -q -p optimod-bench --bin portfolio_corpus

echo "==> portfolio win-rate / latency snapshot"
# Times every golden cell under ILP-only, serial portfolio, and the
# two-thread race; asserts the certified IIs agree and writes
# BENCH_portfolio.json with per-cell winners.
cargo run --release -q -p optimod-bench --bin bench_portfolio

echo "==> daemon smoke (solve twice, second must be a certified cache hit)"
# Start a real optimodd on a temp socket with a temp cache, schedule the
# figure1 golden kernel twice through the CLI client with --certify: the
# second reply must be served from the certified-schedule cache and be
# byte-identical to the first (same times, same certificate).
cargo build --release -q -p optimod-cli -p optimod-daemon
OMD_SOCK="$(mktemp -u)/optimodd.sock"
mkdir -p "$(dirname "$OMD_SOCK")"
OMD_CACHE="$(mktemp -d)"
./target/release/optimodd --socket "$OMD_SOCK" --cache-dir "$OMD_CACHE" &
OMD_PID=$!
cleanup_daemon() {
    kill "$OMD_PID" 2>/dev/null || true
    rm -rf "$OMD_CACHE" "$(dirname "$OMD_SOCK")"
}
trap cleanup_daemon EXIT
for _ in $(seq 1 100); do [ -S "$OMD_SOCK" ] && break; sleep 0.05; done
OMD_OUT1="$(./target/release/optimod client examples/figure1.loop \
    --socket "$OMD_SOCK" --certify)"
OMD_OUT2="$(./target/release/optimod client examples/figure1.loop \
    --socket "$OMD_SOCK" --certify)"
echo "$OMD_OUT2" | grep -q "certified cache hit" \
    || { echo "daemon smoke: second solve was not a cache hit"; exit 1; }
[ "$(echo "$OMD_OUT1" | grep -E '^\s+\S+\s+t=')" = \
  "$(echo "$OMD_OUT2" | grep -E '^\s+\S+\s+t=')" ] \
    || { echo "daemon smoke: cache hit differs from the cold solve"; exit 1; }
./target/release/optimod client --socket "$OMD_SOCK" --shutdown
wait "$OMD_PID"
trap - EXIT
cleanup_daemon

echo "==> fixed-seed chaos sweep of the daemon stack (fault injection)"
# 64 seeded service-level fault plans (torn wire frames, dropped replies,
# corrupted cache writes, worker panics, mid-solve faults) x 3 kernels x
# 2 rounds against real in-process daemons: every request must end in a
# certified schedule or a typed error, zero aborts, zero uncertified
# cache responses. Failures name their seed for replay.
cargo run --release -q -p optimod-bench --bin chaos_daemon

echo "==> crash-recovery sweep (SIGKILL + seeded self-aborts, 64 cycles)"
# Kill the real optimodd 64 times — raw SIGKILL at seeded delays plus
# --crash-at self-aborts after the journal append, before the done-mark,
# and mid-cache-write — then fsck the journal and cache, restart on the
# same state, and retry every admitted request id. Zero lost admitted
# requests, zero uncertified replies, fsck-clean journal/cache, and a
# drained journal (0 pending) at the end of every cycle (DESIGN.md S16).
cargo build --release -q -p optimod-daemon
cargo run --release -q -p optimod-bench --bin chaos_recovery

echo "==> cache-bound + brownout gate (10x overflow, degrade-not-shed)"
# Phase 1: 40 distinct kernels through a 4-entry / 2 KiB cache; byte and
# entry caps must hold after every store (LRU eviction) and across a
# reopen. Phase 2: the same 32-client burst against a one-worker daemon
# must shed strictly less with brownout on, serve honestly-tagged
# degraded schedules, and return to exact solves once load drops.
cargo run --release -q -p optimod-bench --bin cache_bound

echo "==> daemon cache-hit latency gate"
# Cold-solve vs cache-hit round-trip latency (p50/p99) per golden kernel
# through a real daemon; writes BENCH_daemon.json and fails unless the
# best cold/hit p50 speedup stays >= 100x (OPTIMOD_DAEMON_GATE tunes).
cargo run --release -q -p optimod-bench --bin bench_daemon

echo "==> dense-vs-sparse engine A/B differential (end to end)"
# Scheduling a golden-corpus slice under OPTIMOD_SIMPLEX=dense and
# =sparse must certify identical IIs and objectives; the LP/IP-level
# proptest lives in crates/ilp/tests/ab_engines.rs and runs with the
# workspace suite above.
cargo test -q --test ab_engines_end_to_end

echo "==> per-node LP re-solve benchmark (sparse + warm-start gate)"
# Simulated branch-and-bound children on generated loops (N >= 40):
# geometric-mean dense-cold -> sparse-warm re-solve speedup must stay
# above the pinned non-regression ratio (default 2x). Writes
# BENCH_simplex.json.
cargo run --release -q -p optimod-bench --bin bench_simplex

echo "==> null-sink trace overhead (fig2 micro-run)"
# The observability layer must stay free when enabled with a no-op sink:
# a fig2-style corpus slice (24 loops, ~80 s total), disabled trace vs
# NullSink, fails the build when the traced run is >5% slower. Shrinking
# the slice below the default makes scheduler noise dominate the ratio —
# tune with OPTIMOD_OVERHEAD_MAX / OPTIMOD_BENCH_LOOPS only if you must.
cargo run --release -q -p optimod-bench --bin trace_overhead

echo "All checks passed."
