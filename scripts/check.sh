#!/usr/bin/env bash
# Repository lint + test gate. Run before sending a change for review.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "All checks passed."
