//! Deterministic, seeded fault injection for the solve pipeline.
//!
//! The resilience machinery (stall watchdog, `catch_unwind` workers, the
//! scheduler's fallback ladder) only proves itself under faults, and the
//! faults the corpus happens to trigger are neither controlled nor
//! reproducible. A [`FaultPlan`] arms a small set of *injections* — at the
//! Nth hit of a named [`FaultSite`], perform a [`FaultAction`] — derived
//! deterministically from a single seed, so any chaos-sweep failure can be
//! replayed from its seed alone (`optimod --chaos SEED`).
//!
//! The plan travels inside `SolveLimits` next to `StopFlag` and is cloned
//! freely: clones share the hit counters, so "the 3rd node expansion"
//! means the 3rd across the whole solve, not per clone. A disabled plan
//! (the default) is a `None` pointer and costs one branch per site check.
//!
//! Sites only *report* what tripped; each call site maps the action onto
//! its own typed degradation path (a stalled LP, a spurious deadline, a
//! recovered panic). [`FaultAction::Panic`] is the exception: the panic is
//! raised here, inside [`FaultPlan::fire`], so it unwinds through exactly
//! the frames a genuine bug at that site would.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A named location in the solve pipeline where faults can be injected.
///
/// The first four sites live inside the ILP solver; the next three are
/// the daemon's (`optimod-daemon`): wire framing, cache persistence, and
/// job execution; the final three belong to the SAT backend
/// (`optimod-sat`). They share one plan so a single seed can describe a
/// fault anywhere in the service stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Inside the simplex pivot loop (one hit per iteration).
    SimplexPivot,
    /// Branch-and-bound node expansion, serial or parallel (one hit per
    /// node taken off a stack or deque).
    NodeExpand,
    /// Parallel worker startup (one hit per spawned worker).
    WorkerStart,
    /// Schedule extraction from an integral solution (one hit per
    /// extraction attempt).
    Extraction,
    /// Daemon wire-frame write (one hit per reply frame). Actions map to
    /// torn frames, dropped connections, and corrupted payload bytes.
    WireFrame,
    /// Daemon cache-record write (one hit per store attempt). Actions map
    /// to a simulated kill mid-write (temp file left behind, no rename)
    /// and to semantic corruption that only the certifier can catch.
    CacheWrite,
    /// Daemon job execution (one hit per job a worker picks up).
    JobWorker,
    /// SAT backend unit propagation (`optimod-sat`, one hit per call into
    /// the watched-literal propagator).
    SatPropagate,
    /// SAT backend conflict analysis (one hit per 1-UIP derivation).
    SatAnalyze,
    /// SAT backend restart (one hit per Luby restart taken).
    SatRestart,
}

impl FaultSite {
    /// All sites, in a stable order (indexes the hit-counter array). The
    /// solver sites come first so seed-derived solver plans
    /// ([`FaultPlan::from_seed`]) are unchanged by the daemon extension.
    pub const ALL: [FaultSite; 10] = [
        FaultSite::SimplexPivot,
        FaultSite::NodeExpand,
        FaultSite::WorkerStart,
        FaultSite::Extraction,
        FaultSite::WireFrame,
        FaultSite::CacheWrite,
        FaultSite::JobWorker,
        FaultSite::SatPropagate,
        FaultSite::SatAnalyze,
        FaultSite::SatRestart,
    ];

    /// The solver-internal sites (the original chaos-sweep surface).
    pub const SOLVER: [FaultSite; 4] = [
        FaultSite::SimplexPivot,
        FaultSite::NodeExpand,
        FaultSite::WorkerStart,
        FaultSite::Extraction,
    ];

    /// The daemon-level sites (`optimod-daemon`'s chaos surface).
    pub const DAEMON: [FaultSite; 3] = [
        FaultSite::WireFrame,
        FaultSite::CacheWrite,
        FaultSite::JobWorker,
    ];

    /// The SAT-backend sites (`optimod-sat`'s chaos surface).
    pub const SAT: [FaultSite; 3] = [
        FaultSite::SatPropagate,
        FaultSite::SatAnalyze,
        FaultSite::SatRestart,
    ];

    /// Stable lower-case name (used in plan descriptions and traces).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::SimplexPivot => "simplex-pivot",
            FaultSite::NodeExpand => "node-expand",
            FaultSite::WorkerStart => "worker-start",
            FaultSite::Extraction => "extraction",
            FaultSite::WireFrame => "wire-frame",
            FaultSite::CacheWrite => "cache-write",
            FaultSite::JobWorker => "job-worker",
            FaultSite::SatPropagate => "sat-propagate",
            FaultSite::SatAnalyze => "sat-analyze",
            FaultSite::SatRestart => "sat-restart",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::SimplexPivot => 0,
            FaultSite::NodeExpand => 1,
            FaultSite::WorkerStart => 2,
            FaultSite::Extraction => 3,
            FaultSite::WireFrame => 4,
            FaultSite::CacheWrite => 5,
            FaultSite::JobWorker => 6,
            FaultSite::SatPropagate => 7,
            FaultSite::SatAnalyze => 8,
            FaultSite::SatRestart => 9,
        }
    }
}

/// What an injection does when its site hit-count is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic at the site (raised inside [`FaultPlan::fire`], so it unwinds
    /// exactly like a genuine bug there). Must surface as a typed,
    /// recovered error — never a process abort.
    Panic,
    /// Force the site's "numerically stuck" path (e.g. the simplex reports
    /// [`LpStatus::Stalled`](crate::LpStatus::Stalled)).
    Stall,
    /// Force the site's deadline/cancellation path as if the budget had
    /// just expired.
    SpuriousTimeout,
    /// Latch a corruption of the next accepted incumbent's claimed
    /// objective. The search keeps running; the certifier (or the
    /// scheduler's post-extraction check) must catch the mismatch.
    PerturbIncumbent,
}

impl FaultAction {
    /// Stable lower-case name (used in plan descriptions and traces).
    pub fn name(self) -> &'static str {
        match self {
            FaultAction::Panic => "panic",
            FaultAction::Stall => "stall",
            FaultAction::SpuriousTimeout => "spurious-timeout",
            FaultAction::PerturbIncumbent => "perturb-incumbent",
        }
    }
}

/// One armed injection: at the `nth` hit of `site` (1-based), do `action`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    /// Where the injection trips.
    pub site: FaultSite,
    /// What happens when it trips.
    pub action: FaultAction,
    /// The 1-based hit count at which it trips (shared across plan clones).
    pub nth: u64,
}

#[derive(Debug)]
struct Inner {
    seed: u64,
    injections: Vec<Injection>,
    hits: [AtomicU64; FaultSite::ALL.len()],
    fired: Mutex<Vec<Injection>>,
    /// Pending incumbent perturbations latched by a tripped
    /// [`FaultAction::PerturbIncumbent`].
    perturb_pending: AtomicU64,
}

/// A deterministic fault-injection plan, or (by default) nothing.
///
/// Cloning shares hit counters and the fired log; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan(Option<Arc<Inner>>);

/// The `splitmix64` mixing step: a tiny, well-distributed PRNG adequate
/// for deriving injection parameters. Local so the solver crate stays
/// dependency-free.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A plausible 1-based trip count for `site`, drawn from `s`: pivot hits
/// number in the thousands per solve, worker starts and daemon frames in
/// the single digits.
fn plausible_nth(s: &mut u64, site: FaultSite) -> u64 {
    1 + match site {
        FaultSite::SimplexPivot => splitmix64(s) % 2048,
        FaultSite::NodeExpand => splitmix64(s) % 48,
        FaultSite::WorkerStart => splitmix64(s) % 4,
        FaultSite::Extraction => splitmix64(s) % 2,
        FaultSite::WireFrame => splitmix64(s) % 4,
        FaultSite::CacheWrite => splitmix64(s) % 2,
        FaultSite::JobWorker => splitmix64(s) % 3,
        FaultSite::SatPropagate => splitmix64(s) % 4096,
        FaultSite::SatAnalyze => splitmix64(s) % 48,
        FaultSite::SatRestart => splitmix64(s) % 4,
    }
}

impl FaultPlan {
    /// The disabled plan (same as `FaultPlan::default()`).
    pub fn none() -> FaultPlan {
        FaultPlan(None)
    }

    /// Whether any injections are armed.
    #[inline]
    pub fn is_armed(&self) -> bool {
        self.0.is_some()
    }

    /// Derives one to three solver-site injections deterministically from
    /// `seed`.
    ///
    /// Site-specific `nth` ranges keep the trip points plausible: pivot
    /// hits number in the thousands per solve, worker starts in the
    /// single digits. Draws only from [`FaultSite::SOLVER`], so existing
    /// chaos-sweep seeds replay the same plans they always did; the
    /// daemon sites have their own derivation
    /// ([`FaultPlan::daemon_from_seed`]).
    pub fn from_seed(seed: u64) -> FaultPlan {
        let mut s = seed ^ 0xC4A5_F001; // distinct stream per purpose
        let count = 1 + (splitmix64(&mut s) % 3) as usize;
        let mut injections = Vec::with_capacity(count);
        for _ in 0..count {
            let site = FaultSite::SOLVER[(splitmix64(&mut s) % 4) as usize];
            let action = [
                FaultAction::Panic,
                FaultAction::Stall,
                FaultAction::SpuriousTimeout,
                FaultAction::PerturbIncumbent,
            ][(splitmix64(&mut s) % 4) as usize];
            injections.push(Injection {
                site,
                action,
                nth: plausible_nth(&mut s, site),
            });
        }
        FaultPlan::with_injections(seed, injections)
    }

    /// Derives one to three injections across the *whole* service stack —
    /// the daemon sites plus the solver sites, daemon-weighted — from
    /// `seed`. This is the `chaos_daemon` sweep's plan source: every cell
    /// trips at least one daemon-level fault site with high probability
    /// while still mixing in mid-solve faults under live traffic.
    pub fn daemon_from_seed(seed: u64) -> FaultPlan {
        let mut s = seed ^ 0xDAE0_50CE; // distinct stream from `from_seed`
        let count = 1 + (splitmix64(&mut s) % 3) as usize;
        let mut injections = Vec::with_capacity(count);
        for i in 0..count {
            // First injection always lands on a daemon site; later ones
            // may fall anywhere in the stack.
            let site = if i == 0 {
                FaultSite::DAEMON[(splitmix64(&mut s) % 3) as usize]
            } else {
                FaultSite::ALL[(splitmix64(&mut s) % FaultSite::ALL.len() as u64) as usize]
            };
            let action = [
                FaultAction::Panic,
                FaultAction::Stall,
                FaultAction::SpuriousTimeout,
                FaultAction::PerturbIncumbent,
            ][(splitmix64(&mut s) % 4) as usize];
            injections.push(Injection {
                site,
                action,
                nth: plausible_nth(&mut s, site),
            });
        }
        FaultPlan::with_injections(seed, injections)
    }

    /// Derives one to three injections across the *portfolio* surface —
    /// the SAT-backend sites plus the solver sites, SAT-weighted — from
    /// `seed`. This is the portfolio chaos sweep's plan source: every
    /// cell trips at least one SAT-level fault with high probability
    /// while still mixing in ILP-side faults, so the cross-backend
    /// arbitration (including the "SAT witness failed to certify, fall
    /// back to ILP" path) gets exercised under fire.
    pub fn portfolio_from_seed(seed: u64) -> FaultPlan {
        let mut s = seed ^ 0x5A7_F0110; // distinct stream per purpose
        let count = 1 + (splitmix64(&mut s) % 3) as usize;
        let mut injections = Vec::with_capacity(count);
        for i in 0..count {
            // First injection always lands on a SAT site; later ones may
            // fall anywhere in the solver stack (but never the daemon's).
            let site = if i == 0 {
                FaultSite::SAT[(splitmix64(&mut s) % 3) as usize]
            } else {
                let pool: [FaultSite; 7] = [
                    FaultSite::SimplexPivot,
                    FaultSite::NodeExpand,
                    FaultSite::WorkerStart,
                    FaultSite::Extraction,
                    FaultSite::SatPropagate,
                    FaultSite::SatAnalyze,
                    FaultSite::SatRestart,
                ];
                pool[(splitmix64(&mut s) % pool.len() as u64) as usize]
            };
            let action = [
                FaultAction::Panic,
                FaultAction::Stall,
                FaultAction::SpuriousTimeout,
                FaultAction::PerturbIncumbent,
            ][(splitmix64(&mut s) % 4) as usize];
            injections.push(Injection {
                site,
                action,
                nth: plausible_nth(&mut s, site),
            });
        }
        FaultPlan::with_injections(seed, injections)
    }

    /// An armed plan with an explicit injection list (tests and targeted
    /// reproductions).
    pub fn with_injections(seed: u64, injections: Vec<Injection>) -> FaultPlan {
        FaultPlan(Some(Arc::new(Inner {
            seed,
            injections,
            hits: std::array::from_fn(|_| AtomicU64::new(0)),
            fired: Mutex::new(Vec::new()),
            perturb_pending: AtomicU64::new(0),
        })))
    }

    /// A plan with a single injection (test convenience).
    pub fn single(site: FaultSite, action: FaultAction, nth: u64) -> FaultPlan {
        FaultPlan::with_injections(0, vec![Injection { site, action, nth }])
    }

    /// The seed the plan was built from, when armed.
    pub fn seed(&self) -> Option<u64> {
        self.0.as_ref().map(|i| i.seed)
    }

    /// The armed injections (empty when disabled).
    pub fn injections(&self) -> Vec<Injection> {
        self.0
            .as_ref()
            .map(|i| i.injections.clone())
            .unwrap_or_default()
    }

    /// Records one hit at `site` and returns the action of an injection
    /// tripping on exactly this hit, if any.
    ///
    /// # Panics
    ///
    /// A tripped [`FaultAction::Panic`] panics *here* with a recognizable
    /// `"injected fault: …"` message, so the unwind path matches a genuine
    /// bug at the site. Call sites therefore only handle the other three
    /// actions.
    #[inline]
    pub fn fire(&self, site: FaultSite) -> Option<FaultAction> {
        let inner = self.0.as_deref()?;
        inner.fire(site)
    }

    /// Consumes one pending incumbent perturbation, if a
    /// [`FaultAction::PerturbIncumbent`] has tripped and not yet been
    /// applied.
    #[inline]
    pub fn take_incumbent_perturbation(&self) -> bool {
        let Some(inner) = self.0.as_deref() else {
            return false;
        };
        inner
            .perturb_pending
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |p| p.checked_sub(1))
            .is_ok()
    }

    /// Injections that have tripped so far, in trip order.
    pub fn fired(&self) -> Vec<Injection> {
        self.0
            .as_ref()
            .map(|i| i.fired.lock().expect("fault log poisoned").clone())
            .unwrap_or_default()
    }

    /// Number of injections that have tripped so far.
    pub fn fired_count(&self) -> u64 {
        self.0
            .as_ref()
            .map(|i| i.fired.lock().expect("fault log poisoned").len() as u64)
            .unwrap_or(0)
    }

    /// One-line human description, e.g.
    /// `seed 7: stall@simplex-pivot#120, panic@node-expand#3`.
    pub fn describe(&self) -> String {
        match self.0.as_deref() {
            None => "disabled".to_string(),
            Some(inner) => {
                let list: Vec<String> = inner
                    .injections
                    .iter()
                    .map(|inj| format!("{}@{}#{}", inj.action.name(), inj.site.name(), inj.nth))
                    .collect();
                format!("seed {}: {}", inner.seed, list.join(", "))
            }
        }
    }
}

impl Inner {
    fn fire(&self, site: FaultSite) -> Option<FaultAction> {
        let hit = self.hits[site.index()].fetch_add(1, Ordering::Relaxed) + 1;
        let inj = self
            .injections
            .iter()
            .find(|inj| inj.site == site && inj.nth == hit)?;
        self.fired.lock().expect("fault log poisoned").push(*inj);
        if inj.action == FaultAction::PerturbIncumbent {
            self.perturb_pending.fetch_add(1, Ordering::Relaxed);
        }
        if inj.action == FaultAction::Panic {
            panic!(
                "injected fault: panic at {} (hit {}, seed {})",
                site.name(),
                hit,
                self.seed
            );
        }
        Some(inj.action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires() {
        let plan = FaultPlan::none();
        for site in FaultSite::ALL {
            assert_eq!(plan.fire(site), None);
        }
        assert!(!plan.is_armed());
        assert_eq!(plan.fired_count(), 0);
        assert!(!plan.take_incumbent_perturbation());
    }

    #[test]
    fn fires_exactly_on_the_nth_hit() {
        let plan = FaultPlan::single(FaultSite::NodeExpand, FaultAction::Stall, 3);
        assert_eq!(plan.fire(FaultSite::NodeExpand), None);
        assert_eq!(plan.fire(FaultSite::SimplexPivot), None); // other site
        assert_eq!(plan.fire(FaultSite::NodeExpand), None);
        assert_eq!(plan.fire(FaultSite::NodeExpand), Some(FaultAction::Stall));
        assert_eq!(plan.fire(FaultSite::NodeExpand), None); // one-shot
        assert_eq!(plan.fired_count(), 1);
    }

    #[test]
    fn clones_share_hit_counters() {
        let plan = FaultPlan::single(FaultSite::Extraction, FaultAction::SpuriousTimeout, 2);
        let clone = plan.clone();
        assert_eq!(clone.fire(FaultSite::Extraction), None);
        assert_eq!(
            plan.fire(FaultSite::Extraction),
            Some(FaultAction::SpuriousTimeout)
        );
    }

    #[test]
    fn panic_action_panics_with_marker() {
        let plan = FaultPlan::single(FaultSite::WorkerStart, FaultAction::Panic, 1);
        let err =
            std::panic::catch_unwind(|| plan.fire(FaultSite::WorkerStart)).expect_err("must panic");
        let msg = crate::panic_message(err.as_ref());
        assert!(msg.contains("injected fault"), "{msg}");
        assert_eq!(plan.fired_count(), 1);
    }

    #[test]
    fn perturbation_is_latched_once() {
        let plan = FaultPlan::single(FaultSite::NodeExpand, FaultAction::PerturbIncumbent, 1);
        assert_eq!(
            plan.fire(FaultSite::NodeExpand),
            Some(FaultAction::PerturbIncumbent)
        );
        assert!(plan.take_incumbent_perturbation());
        assert!(!plan.take_incumbent_perturbation());
    }

    #[test]
    fn from_seed_is_deterministic_and_plausible() {
        for seed in 0..200 {
            let a = FaultPlan::from_seed(seed);
            let b = FaultPlan::from_seed(seed);
            assert_eq!(a.injections(), b.injections(), "seed {seed}");
            let inj = a.injections();
            assert!((1..=3).contains(&inj.len()));
            for i in &inj {
                assert!(i.nth >= 1);
            }
        }
        // Different seeds should not all collapse onto one plan.
        assert_ne!(
            FaultPlan::from_seed(1).injections(),
            FaultPlan::from_seed(2).injections()
        );
    }

    #[test]
    fn solver_seed_plans_never_touch_daemon_sites() {
        // `from_seed` predates the daemon sites; its plans must stay
        // solver-only (and therefore bit-identical to the PR-4 sweep).
        for seed in 0..200 {
            for inj in FaultPlan::from_seed(seed).injections() {
                assert!(
                    FaultSite::SOLVER.contains(&inj.site),
                    "seed {seed} drew daemon site {:?}",
                    inj.site
                );
            }
        }
    }

    #[test]
    fn daemon_seed_plans_lead_with_a_daemon_site() {
        for seed in 0..200 {
            let a = FaultPlan::daemon_from_seed(seed);
            let b = FaultPlan::daemon_from_seed(seed);
            assert_eq!(a.injections(), b.injections(), "seed {seed}");
            let inj = a.injections();
            assert!((1..=3).contains(&inj.len()));
            assert!(
                FaultSite::DAEMON.contains(&inj[0].site),
                "seed {seed}: first injection {:?} is not daemon-level",
                inj[0].site
            );
        }
    }

    #[test]
    fn portfolio_seed_plans_lead_with_a_sat_site_and_avoid_the_daemon() {
        for seed in 0..200 {
            let a = FaultPlan::portfolio_from_seed(seed);
            let b = FaultPlan::portfolio_from_seed(seed);
            assert_eq!(a.injections(), b.injections(), "seed {seed}");
            let inj = a.injections();
            assert!((1..=3).contains(&inj.len()));
            assert!(
                FaultSite::SAT.contains(&inj[0].site),
                "seed {seed}: first injection {:?} is not SAT-level",
                inj[0].site
            );
            for i in &inj {
                assert!(
                    !FaultSite::DAEMON.contains(&i.site),
                    "seed {seed} drew daemon site {:?}",
                    i.site
                );
            }
        }
    }

    #[test]
    fn daemon_sites_count_hits_independently() {
        let plan = FaultPlan::single(FaultSite::CacheWrite, FaultAction::Stall, 2);
        assert_eq!(plan.fire(FaultSite::WireFrame), None);
        assert_eq!(plan.fire(FaultSite::CacheWrite), None);
        assert_eq!(plan.fire(FaultSite::JobWorker), None);
        assert_eq!(plan.fire(FaultSite::CacheWrite), Some(FaultAction::Stall));
    }

    #[test]
    fn describe_round_trips_the_shape() {
        let plan = FaultPlan::single(FaultSite::SimplexPivot, FaultAction::Stall, 7);
        assert_eq!(plan.describe(), "seed 0: stall@simplex-pivot#7");
        assert_eq!(FaultPlan::none().describe(), "disabled");
    }
}
