//! CPLEX-LP-format export of models.
//!
//! Writes a [`Model`] in the human-readable LP file format understood by
//! CPLEX, Gurobi, HiGHS, SCIP, and glpsol — so a formulation built here can
//! be cross-checked against an external solver, or inspected directly when
//! debugging a constraint. (The reverse direction is out of scope: this
//! crate never parses models.)

use std::fmt::Write as _;

use crate::model::{Model, RowSense, Sense};

/// Renders `model` in LP file format.
///
/// Variable names are sanitized (`[`, `]`, and spaces become `_`), and a
/// positional suffix keeps sanitized duplicates distinct. Constraints keep
/// their creation names where present, with the same sanitation.
///
/// ```
/// use optimod_ilp::{lp_format, Model, Sense};
/// let mut m = Model::new();
/// let x = m.int_var(0.0, 4.0, "x");
/// m.set_objective(Sense::Maximize, [(x, 3.0)]);
/// m.add_le([(x, 2.0)], 7.0, "cap");
/// let text = lp_format(&m);
/// assert!(text.contains("Maximize"));
/// assert!(text.contains("cap: + 2 v0_x <= 7"));
/// ```
pub fn lp_format(model: &Model) -> String {
    let var_name = |j: usize| -> String {
        let raw = model.var_name(crate::VarId(j as u32));
        let mut clean: String = raw
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        if clean.is_empty() {
            clean.push('v');
        }
        // LP-format names must not begin with a digit.
        format!("v{j}_{clean}").trim_end_matches('_').to_string()
    };

    let mut s = String::new();
    let _ = writeln!(
        s,
        "\\ exported by optimod-ilp: {} variables, {} constraints",
        model.num_vars(),
        model.num_constraints()
    );
    let _ = writeln!(
        s,
        "{}",
        match model.objective_sense() {
            Sense::Minimize => "Minimize",
            Sense::Maximize => "Maximize",
        }
    );
    let mut obj = String::from(" obj:");
    if model.objective_terms().is_empty() {
        obj.push_str(" 0 ");
        obj.push_str(&var_name(0));
    }
    for &(v, c) in model.objective_terms() {
        let _ = write!(obj, " {} {} {}", sign(c), mag(c), var_name(v.index()));
    }
    let _ = writeln!(s, "{obj}");

    let _ = writeln!(s, "Subject To");
    for (i, row) in model.rows.iter().enumerate() {
        let mut line = String::new();
        let name: String = row
            .name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let _ = write!(
            line,
            " {}:",
            if name.is_empty() {
                format!("c{i}")
            } else {
                name
            }
        );
        for &(v, c) in &row.coeffs {
            let _ = write!(line, " {} {} {}", sign(c), mag(c), var_name(v.index()));
        }
        let rel = match row.sense {
            RowSense::Le => "<=",
            RowSense::Ge => ">=",
            RowSense::Eq => "=",
        };
        let _ = writeln!(s, "{line} {rel} {}", trim_float(row.rhs));
    }

    let _ = writeln!(s, "Bounds");
    for j in 0..model.num_vars() {
        let v = crate::VarId(j as u32);
        let (lo, hi) = (model.lb(v), model.ub(v));
        let name = var_name(j);
        match (lo.is_finite(), hi.is_finite()) {
            (true, true) => {
                let _ = writeln!(s, " {} <= {name} <= {}", trim_float(lo), trim_float(hi));
            }
            (true, false) => {
                let _ = writeln!(s, " {name} >= {}", trim_float(lo));
            }
            (false, true) => {
                let _ = writeln!(s, " -inf <= {name} <= {}", trim_float(hi));
            }
            (false, false) => {
                let _ = writeln!(s, " {name} free");
            }
        }
    }

    let generals: Vec<String> = (0..model.num_vars())
        .filter(|&j| model.is_integer(crate::VarId(j as u32)))
        .map(var_name)
        .collect();
    if !generals.is_empty() {
        let _ = writeln!(s, "Generals");
        for chunk in generals.chunks(8) {
            let _ = writeln!(s, " {}", chunk.join(" "));
        }
    }
    let _ = writeln!(s, "End");
    s
}

fn sign(c: f64) -> char {
    if c < 0.0 {
        '-'
    } else {
        '+'
    }
}

fn mag(c: f64) -> String {
    trim_float(c.abs())
}

fn trim_float(x: f64) -> String {
    if (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    #[test]
    fn full_model_export() {
        let mut m = Model::new();
        let x = m.int_var(0.0, 5.0, "a[0][1]");
        let y = m.num_var(f64::NEG_INFINITY, f64::INFINITY, "free y");
        let z = m.num_var(1.5, f64::INFINITY, "z");
        m.set_objective(Sense::Minimize, [(x, 1.0), (y, -2.5)]);
        m.add_ge([(x, 1.0), (y, 1.0), (z, -1.0)], 2.0, "mix");
        m.add_eq([(z, 3.0)], 4.5, "fix z");
        let text = lp_format(&m);
        assert!(text.starts_with("\\ exported"));
        assert!(text.contains("Minimize"));
        assert!(text.contains("+ 1 v0_a_0__1"), "{text}");
        assert!(text.contains("- 2.5 v1_free_y"));
        assert!(text.contains("mix: + 1 v0_a_0__1 + 1 v1_free_y - 1 v2_z >= 2"));
        assert!(text.contains("fix_z: + 3 v2_z = 4.5"));
        assert!(text.contains("v1_free_y free"));
        assert!(text.contains("v2_z >= 1.5"));
        assert!(text.contains("Generals"));
        assert!(text.trim_end().ends_with("End"));
    }

    #[test]
    fn empty_objective_is_syntactically_valid() {
        let mut m = Model::new();
        let _ = m.bool_var("x");
        let text = lp_format(&m);
        assert!(text.contains("obj: 0"));
    }

    #[test]
    fn integers_listed_once_each() {
        let mut m = Model::new();
        for i in 0..10 {
            m.bool_var(format!("b{i}"));
        }
        let text = lp_format(&m);
        let generals: Vec<&str> = text
            .lines()
            .skip_while(|l| !l.starts_with("Generals"))
            .skip(1)
            .take_while(|l| !l.starts_with("End"))
            .collect();
        let names: Vec<&str> = generals.iter().flat_map(|l| l.split_whitespace()).collect();
        assert_eq!(names.len(), 10);
    }
}
