//! Bounded-variable revised simplex with pluggable basis representations.
//!
//! The implementation follows the classic two-phase revised simplex method
//! for problems of the form
//!
//! ```text
//!     minimize    c'x
//!     subject to  A x (<=|=|>=) b,    l <= x <= u
//! ```
//!
//! Every row receives a slack column with coefficient +1 whose bounds encode
//! the row sense (`<=` → `[0, ∞)`, `>=` → `(-∞, 0]`, `=` → `[0, 0]`).
//! Phase 1 introduces signed artificial columns only for rows whose slack
//! cannot absorb the initial residual. Nonbasic variables rest at one of
//! their bounds (or at 0 when free); the ratio test supports bound flips.
//!
//! Two interchangeable basis engines back the linear algebra
//! ([`SimplexEngine`], selectable per solve or via `OPTIMOD_SIMPLEX`):
//!
//! * **Sparse** (default): a sparse LU factorization of the basis with
//!   Markowitz pivot selection and threshold partial pivoting, triangular
//!   FTRAN/BTRAN solves, and product-form eta updates between periodic
//!   refactorizations (see [`crate::factor`]). On the 0-1-structured
//!   scheduling bases this makes an iteration cost O(nnz) instead of O(m²).
//! * **Dense**: the original explicit dense inverse, kept bit-for-bit as a
//!   differential-testing oracle for the sparse path.
//!
//! Branch-and-bound re-solves are warm-started: [`Simplex::basis_snapshot`]
//! captures the optimal basis of a parent node as a cheap [`Basis`] value,
//! and [`Simplex::solve_warm`] restores it in a child (after a single bound
//! change) and runs a bounded **dual simplex** until primal feasibility is
//! restored — typically a handful of pivots instead of a full two-phase
//! solve. A warm start that goes wrong (singular refactorization, pivot cap)
//! is abandoned for the ordinary cold start, never failed.
//!
//! Numerical robustness: Dantzig pricing with a Bland's-rule fallback after
//! a run of degenerate pivots, periodic refactorization on a tunable
//! cadence, an eta-file growth bound, and a residual check at claimed
//! optimality. The watchdog thresholds are [`SimplexOptions`] fields so
//! tests can tighten them without recompiling.
//!
//! Branch-and-bound solves thousands of closely related LPs, so the solver
//! keeps all working storage (basis factors, pricing buffers, bound arrays)
//! inside the [`Simplex`] value and reuses it across [`Simplex::solve`]
//! calls — no per-node allocation of the constraint matrix.

use crate::factor::SparseBasis;
use crate::fault::{FaultAction, FaultPlan, FaultSite};
use crate::model::{Model, RowSense, Sense};
use crate::stop::StopFlag;
use crate::tol::{
    ARTIFICIAL_PIVOT_TOL, DEGEN_STEP_TOL, ELIM_SKIP_TOL, FEAS_TOL, OPT_TOL, PHASE1_INFEAS_TOL,
    PIVOT_TOL, RATIO_TIE_TOL, RESIDUAL_TOL, SINGULAR_TOL,
};

/// Outcome status of a single LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// Proven optimal within tolerances.
    Optimal,
    /// No feasible point exists (phase 1 ended with positive infeasibility,
    /// or the dual restart proved the child's box empty).
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The per-solve iteration limit was exhausted.
    IterLimit,
    /// The watchdog abandoned the solve: degenerate pivots kept cycling
    /// after the switch to Bland's rule and a forced refactorization —
    /// numerical instability on this LP instance.
    Stalled,
}

/// How a solve used (or did not use) a parent basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WarmStart {
    /// Solved from the crash (slack) basis.
    #[default]
    Cold,
    /// Restarted from a parent [`Basis`] snapshot.
    Taken,
    /// A restart was attempted but given up (singular refactorization or
    /// dual pivot cap); the solve fell back to a cold start.
    Abandoned,
}

impl WarmStart {
    /// Stable lowercase name used in trace events and reports.
    pub fn name(self) -> &'static str {
        match self {
            WarmStart::Cold => "cold",
            WarmStart::Taken => "warm",
            WarmStart::Abandoned => "abandoned",
        }
    }
}

/// Which linear-algebra engine backs the basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimplexEngine {
    /// Explicit dense basis inverse (the differential-testing oracle).
    Dense,
    /// Sparse LU factorization with product-form eta updates (default).
    Sparse,
}

impl SimplexEngine {
    /// Reads `OPTIMOD_SIMPLEX` (`dense` | `sparse`); anything else — or an
    /// unset variable — selects the sparse engine. Read on every call so a
    /// test can flip the variable between solves within one process.
    pub fn from_env() -> Self {
        match std::env::var("OPTIMOD_SIMPLEX").ok().as_deref() {
            Some("dense") => SimplexEngine::Dense,
            _ => SimplexEngine::Sparse,
        }
    }
}

/// A snapshot of an optimal basis, handed from a branch-and-bound parent to
/// its children for warm-started re-solves. Cheap to clone (two flat
/// arrays) and intentionally free of any factorization state: the child
/// refactorizes on installation, so snapshots can cross work-stealing
/// worker threads untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    /// `basis[k]` = column (structural or slack) basic in row `k`.
    basis: Vec<u32>,
    /// Rest side of every nonbasic column (indexed by column).
    at_upper: Vec<bool>,
}

impl Basis {
    /// Number of rows the snapshot was taken for.
    pub fn rows(&self) -> usize {
        self.basis.len()
    }
}

/// Result of solving one LP relaxation.
#[derive(Debug, Clone)]
pub struct LpOutcome {
    /// Solve status; `values`/`objective` are meaningful only for
    /// [`LpStatus::Optimal`].
    pub status: LpStatus,
    /// Objective value in the *model's* sense (a maximization model reports
    /// the maximum).
    pub objective: f64,
    /// Values of the structural (model) variables.
    pub values: Vec<f64>,
    /// Simplex iterations (primal and dual pivots, bound flips) performed
    /// by this solve.
    pub iterations: u64,
    /// Basis (re)factorizations performed by this solve (scheduled rebuilds,
    /// watchdog-forced ones, and warm-start installations).
    pub refactors: u64,
    /// Product-form eta updates absorbed by the sparse engine (0 under the
    /// dense engine).
    pub eta_pivots: u64,
    /// Whether this solve reused a parent basis.
    pub warm: WarmStart,
    /// Nanoseconds spent in FTRAN (transformed-column and right-hand-side
    /// solves).
    pub ftran_nanos: u64,
    /// Nanoseconds spent in BTRAN (pricing and dual-row solves).
    pub btran_nanos: u64,
}

/// Tunables for the simplex method.
#[derive(Debug, Clone)]
pub struct SimplexOptions {
    /// Hard cap on iterations for one LP solve.
    pub max_iterations: u64,
    /// Wall-clock deadline; checked every few hundred iterations so a
    /// single large LP cannot overshoot a branch-and-bound budget. A
    /// deadline hit reports [`LpStatus::IterLimit`].
    pub deadline: Option<std::time::Instant>,
    /// Cooperative cancellation, checked alongside the deadline inside the
    /// pivot loop; a stop reports [`LpStatus::IterLimit`]. Unlike the
    /// poll-only deadline this lets *another thread* interrupt a solve —
    /// the parallel branch-and-bound and the scheduler's speculative `II`
    /// race both rely on it.
    pub stop: StopFlag,
    /// Deterministic fault injection ([`FaultSite::SimplexPivot`] fires one
    /// hit per pivot-loop iteration, primal or dual). Disabled by default.
    pub fault: FaultPlan,
    /// Basis engine; defaults to [`SimplexEngine::from_env`].
    pub engine: SimplexEngine,
    /// Refactorize the basis after this many pivots (default 400).
    pub refactor_every: u64,
    /// Consecutive degenerate pivots before switching to Bland's rule
    /// (default 60).
    pub degen_limit: u32,
    /// Degenerate-pivot streak at which the watchdog forces an out-of-cycle
    /// refactorization — a drifted basis representation can fake degeneracy
    /// (default 2 000).
    pub stall_refactor: u32,
    /// Degenerate-pivot streak at which the solve is abandoned as
    /// numerically unstable ([`LpStatus::Stalled`]). Bland's rule
    /// terminates in exact arithmetic, so a streak this long under Bland's
    /// pricing means floating point is cycling; burning the rest of a
    /// branch-and-bound budget on one LP would be worse than reporting the
    /// stall (default 50 000).
    pub stall_abort: u32,
    /// Force a refactorization once the sparse engine's eta file holds this
    /// many stored entries; `0` picks `16·m + 1024` at solve time. Ignored
    /// by the dense engine.
    pub eta_nnz_limit: usize,
    /// Allow [`Simplex::solve_warm`] to restart from a parent basis
    /// (default true). When false a provided snapshot is ignored and the
    /// solve is cold.
    pub warm_start: bool,
    /// Dual-simplex pivot budget for one warm restart before it is
    /// abandoned for a cold start (default 1 000).
    pub warm_pivot_cap: u64,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            max_iterations: 200_000,
            deadline: None,
            stop: StopFlag::new(),
            fault: FaultPlan::none(),
            engine: SimplexEngine::from_env(),
            refactor_every: 400,
            degen_limit: 60,
            stall_refactor: 2_000,
            stall_abort: 50_000,
            eta_nnz_limit: 0,
            warm_start: true,
            warm_pivot_cap: 1_000,
        }
    }
}

impl SimplexOptions {
    fn eta_cap(&self, m: usize) -> usize {
        if self.eta_nnz_limit == 0 {
            16 * m + 1024
        } else {
            self.eta_nnz_limit
        }
    }
}

/// Immutable problem data compiled from a [`Model`].
#[derive(Debug, Clone)]
struct Problem {
    m: usize,
    n_struct: usize,
    /// Structural + slack columns (artificials live in `Work`).
    n: usize,
    cols: Vec<Vec<(u32, f64)>>,
    slack_lb: Vec<f64>,
    slack_ub: Vec<f64>,
    b: Vec<f64>,
    /// Minimization cost vector over structural columns.
    cost: Vec<f64>,
    obj_constant: f64,
    maximize: bool,
}

/// Explicit dense basis inverse — the original engine, preserved as the
/// differential-testing oracle for the sparse path.
#[derive(Debug, Clone, Default)]
struct DenseBasis {
    m: usize,
    binv: Vec<f64>,
}

impl DenseBasis {
    fn reset_identity(&mut self, m: usize) {
        self.m = m;
        self.binv.clear();
        self.binv.resize(m * m, 0.0);
        for i in 0..m {
            self.binv[i * m + i] = 1.0;
        }
    }

    fn set_diag_sign(&mut self, i: usize, sign: f64) {
        self.binv[i * self.m + i] = sign;
    }

    fn ftran_col(&self, entries: &[(u32, f64)], v: &mut [f64]) {
        let m = self.m;
        v.iter_mut().for_each(|x| *x = 0.0);
        for &(i, a) in entries {
            let col = i as usize;
            for (k, vk) in v.iter_mut().enumerate() {
                *vk += self.binv[k * m + col] * a;
            }
        }
    }

    fn ftran_rhs(&self, rhs: &[f64], out: &mut [f64]) {
        let m = self.m;
        for (k, ok) in out.iter_mut().enumerate() {
            let row = &self.binv[k * m..(k + 1) * m];
            *ok = row.iter().zip(rhs).map(|(a, b)| a * b).sum();
        }
    }

    fn btran(&self, c: &mut [f64], out: &mut [f64]) {
        let m = self.m;
        out.iter_mut().for_each(|x| *x = 0.0);
        for (k, &ck) in c.iter().enumerate() {
            if ck != 0.0 {
                let row = &self.binv[k * m..(k + 1) * m];
                for (oi, ri) in out.iter_mut().zip(row) {
                    *oi += ck * ri;
                }
            }
        }
    }

    fn btran_unit(&self, r: usize, out: &mut [f64]) {
        let m = self.m;
        out.copy_from_slice(&self.binv[r * m..(r + 1) * m]);
    }

    /// Gauss-Jordan rank-1 update of the inverse after a pivot on `row`
    /// with transformed column `v`.
    fn pivot(&mut self, row: usize, v: &[f64]) {
        let m = self.m;
        let inv_piv = 1.0 / v[row];
        for c in 0..m {
            self.binv[row * m + c] *= inv_piv;
        }
        let (before, rest) = self.binv.split_at_mut(row * m);
        let (pivot_row, after) = rest.split_at_mut(m);
        for (k, chunk) in before.chunks_exact_mut(m).enumerate() {
            let f = v[k];
            if f.abs() > ELIM_SKIP_TOL {
                for (x, pr) in chunk.iter_mut().zip(pivot_row.iter()) {
                    *x -= f * pr;
                }
            }
        }
        for (k, chunk) in after.chunks_exact_mut(m).enumerate() {
            let f = v[row + 1 + k];
            if f.abs() > ELIM_SKIP_TOL {
                for (x, pr) in chunk.iter_mut().zip(pivot_row.iter()) {
                    *x -= f * pr;
                }
            }
        }
    }

    /// Rebuilds the inverse from the basis columns by Gauss-Jordan
    /// elimination. Returns false (keeping the old inverse) on a
    /// numerically singular basis.
    #[allow(clippy::needless_range_loop)] // dense Gauss-Jordan indexing
    fn refactor(&mut self, m: usize, col: impl Fn(usize, &mut dyn FnMut(usize, f64))) -> bool {
        let mut bmat = vec![0.0; m * m];
        for q in 0..m {
            col(q, &mut |i, a| bmat[i * m + q] = a);
        }
        let mut inv = vec![0.0; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for c0 in 0..m {
            let mut piv = c0;
            for r in c0 + 1..m {
                if bmat[r * m + c0].abs() > bmat[piv * m + c0].abs() {
                    piv = r;
                }
            }
            if bmat[piv * m + c0].abs() < SINGULAR_TOL {
                return false;
            }
            if piv != c0 {
                for c in 0..m {
                    bmat.swap(piv * m + c, c0 * m + c);
                    inv.swap(piv * m + c, c0 * m + c);
                }
            }
            let d = 1.0 / bmat[c0 * m + c0];
            for c in 0..m {
                bmat[c0 * m + c] *= d;
                inv[c0 * m + c] *= d;
            }
            for r in 0..m {
                if r == c0 {
                    continue;
                }
                let f = bmat[r * m + c0];
                if f == 0.0 {
                    continue;
                }
                for c in 0..m {
                    bmat[r * m + c] -= f * bmat[c0 * m + c];
                    inv[r * m + c] -= f * inv[c0 * m + c];
                }
            }
        }
        self.m = m;
        self.binv = inv;
        true
    }
}

/// The pluggable linear-algebra backend.
#[derive(Debug, Clone)]
enum Engine {
    Dense(DenseBasis),
    Sparse(Box<SparseBasis>),
}

impl Default for Engine {
    fn default() -> Self {
        Engine::Dense(DenseBasis::default())
    }
}

impl Engine {
    /// Resets to the identity (slack) basis of dimension `m`, switching
    /// representations if the options ask for the other engine. Reuses the
    /// existing allocation when the kind matches.
    fn reset(&mut self, kind: SimplexEngine, m: usize) {
        match (&mut *self, kind) {
            (Engine::Dense(d), SimplexEngine::Dense) => d.reset_identity(m),
            (Engine::Sparse(s), SimplexEngine::Sparse) => s.reset_identity(m),
            (slot, SimplexEngine::Dense) => {
                let mut d = DenseBasis::default();
                d.reset_identity(m);
                *slot = Engine::Dense(d);
            }
            (slot, SimplexEngine::Sparse) => {
                *slot = Engine::Sparse(Box::new(SparseBasis::identity(m)));
            }
        }
    }

    fn set_diag_sign(&mut self, i: usize, sign: f64) {
        match self {
            Engine::Dense(d) => d.set_diag_sign(i, sign),
            Engine::Sparse(s) => s.set_diag_sign(i, sign),
        }
    }

    fn eta_nnz(&self) -> usize {
        match self {
            Engine::Dense(_) => 0,
            Engine::Sparse(s) => s.eta_nnz(),
        }
    }
}

/// Reusable per-solve state. Indices `0..n` are structural + slack columns;
/// `n..n+arts` are artificial columns (single signed entry each).
#[derive(Debug, Clone, Default)]
struct Work {
    lb: Vec<f64>,
    ub: Vec<f64>,
    at_upper: Vec<bool>,
    basic_row: Vec<i32>,
    art_row: Vec<u32>,
    art_sign: Vec<f64>,
    basis: Vec<u32>,
    xb: Vec<f64>,
    engine: Engine,
    /// Pricing buffer `y = c_B' B^{-1}`.
    y: Vec<f64>,
    /// Transformed entering column `v = B^{-1} A_j`.
    v: Vec<f64>,
    /// Dual-row buffer `rho = e_r' B^{-1}` for the warm-restart dual pivot.
    rho: Vec<f64>,
    /// BTRAN input scratch (basic costs / unit vectors, basis-position
    /// coordinates).
    cb: Vec<f64>,
    /// Gather buffer for the sparse entries of one column.
    colbuf: Vec<(u32, f64)>,
    /// Phase cost vector (resized as artificials appear).
    cost: Vec<f64>,
    iterations: u64,
    pivots_since_refactor: u64,
    degen_streak: u32,
    refactors: u64,
    eta_pivots: u64,
    warm: WarmStart,
    ftran_nanos: u64,
    btran_nanos: u64,
}

/// A sparse-column LP instance with reusable solver workspace.
///
/// Build once per model with [`Simplex::new`]; call [`Simplex::solve`] with
/// per-solve structural bounds (branch-and-bound tightens bounds without
/// rebuilding the matrix).
#[derive(Debug, Clone)]
pub struct Simplex {
    p: Problem,
    w: Work,
}

impl Simplex {
    /// Compiles `model` into a solvable instance. Constraint rows and the
    /// objective are fixed; structural bounds are passed to
    /// [`Simplex::solve`].
    pub fn new(model: &Model) -> Self {
        let m = model.num_constraints();
        let n_struct = model.num_vars();
        let mut cols: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n_struct + m];
        let mut slack_lb = Vec::with_capacity(m);
        let mut slack_ub = Vec::with_capacity(m);
        let mut b = Vec::with_capacity(m);
        for (i, row) in model.rows.iter().enumerate() {
            for &(v, c) in &row.coeffs {
                cols[v.index()].push((i as u32, c));
            }
            cols[n_struct + i].push((i as u32, 1.0));
            let (lo, hi) = match row.sense {
                RowSense::Le => (0.0, f64::INFINITY),
                RowSense::Ge => (f64::NEG_INFINITY, 0.0),
                RowSense::Eq => (0.0, 0.0),
            };
            slack_lb.push(lo);
            slack_ub.push(hi);
            b.push(row.rhs);
        }
        let maximize = model.obj_sense == Sense::Maximize;
        let mut cost = vec![0.0; n_struct];
        for &(v, c) in &model.objective {
            cost[v.index()] = if maximize { -c } else { c };
        }
        Simplex {
            p: Problem {
                m,
                n_struct,
                n: n_struct + m,
                cols,
                slack_lb,
                slack_ub,
                b,
                cost,
                obj_constant: model.obj_constant,
                maximize,
            },
            w: Work::default(),
        }
    }

    /// Number of constraint rows.
    pub fn num_rows(&self) -> usize {
        self.p.m
    }

    /// Solves the LP relaxation with the given structural bounds from a
    /// cold (slack) basis. See [`Simplex::solve_warm`].
    pub fn solve(&mut self, lb: &[f64], ub: &[f64], opts: &SimplexOptions) -> LpOutcome {
        self.solve_warm(lb, ub, opts, None)
    }

    /// Solves the LP relaxation with the given structural bounds.
    ///
    /// `lb`/`ub` must have one entry per structural variable. A crossed
    /// bound pair (`lb[j] > ub[j]`) describes an empty box and reports
    /// [`LpStatus::Infeasible`] — branch-and-bound tightens bounds
    /// concurrently with pruning, so an empty box is a legitimate node, not
    /// a caller bug.
    ///
    /// When `warm` carries a parent [`Basis`] (and `opts.warm_start` is on),
    /// the snapshot basis is installed and refactorized, and a bounded dual
    /// simplex re-establishes primal feasibility before the ordinary primal
    /// clean-up pass; if anything goes wrong the restart is abandoned for a
    /// cold start ([`WarmStart::Abandoned`]), never failed.
    ///
    /// # Panics
    ///
    /// Panics if the bound slices have the wrong length.
    pub fn solve_warm(
        &mut self,
        lb: &[f64],
        ub: &[f64],
        opts: &SimplexOptions,
        warm: Option<&Basis>,
    ) -> LpOutcome {
        let p = &self.p;
        assert_eq!(lb.len(), p.n_struct, "lower-bound slice length mismatch");
        assert_eq!(ub.len(), p.n_struct, "upper-bound slice length mismatch");
        if (0..p.n_struct).any(|j| lb[j] > ub[j]) {
            return LpOutcome {
                status: LpStatus::Infeasible,
                objective: f64::NAN,
                values: vec![],
                iterations: 0,
                refactors: 0,
                eta_pivots: 0,
                warm: WarmStart::Cold,
                ftran_nanos: 0,
                btran_nanos: 0,
            };
        }

        let mut carry = WarmStart::Cold;
        if opts.warm_start {
            if let Some(snap) = warm {
                if snap.basis.len() == p.m && snap.at_upper.len() == p.n {
                    match try_warm(p, &mut self.w, snap, lb, ub, opts) {
                        WarmTry::Done(status) => return extract(p, &self.w, status),
                        WarmTry::Abandon => carry = WarmStart::Abandoned,
                    }
                }
            }
        }

        // Cold start, carrying over whatever an abandoned warm attempt
        // already spent so the counters stay honest.
        let spent = (
            self.w.iterations,
            self.w.refactors,
            self.w.eta_pivots,
            self.w.ftran_nanos,
            self.w.btran_nanos,
        );
        init_work(p, &mut self.w, lb, ub, opts);
        if carry == WarmStart::Abandoned {
            self.w.iterations += spent.0;
            self.w.refactors += spent.1;
            self.w.eta_pivots += spent.2;
            self.w.ftran_nanos += spent.3;
            self.w.btran_nanos += spent.4;
        }
        self.w.warm = carry;

        if let Some(outcome) = phase1(p, &mut self.w, opts) {
            return outcome;
        }
        let status = phase2_finish(p, &mut self.w, opts);
        extract(p, &self.w, status)
    }

    /// Captures the current basis for reuse by a child node, or `None` when
    /// the basis is not reusable (no solve happened yet, or an artificial
    /// column is still basic after a degenerate phase 1).
    pub fn basis_snapshot(&self) -> Option<Basis> {
        let (p, w) = (&self.p, &self.w);
        if w.basis.len() != p.m || w.basis.iter().any(|&bv| bv as usize >= p.n) {
            return None;
        }
        Some(Basis {
            basis: w.basis.clone(),
            at_upper: w.at_upper[..p.n].to_vec(),
        })
    }
}

fn nb_value(w: &Work, j: usize) -> f64 {
    let (lo, hi) = (w.lb[j], w.ub[j]);
    if w.at_upper[j] {
        if hi.is_finite() {
            hi
        } else {
            0.0
        }
    } else if lo.is_finite() {
        lo
    } else if hi.is_finite() {
        hi
    } else {
        0.0
    }
}

/// Iterates the sparse entries of column `j` (structural, slack, or
/// artificial).
#[inline]
fn for_col(p: &Problem, w: &Work, j: usize, mut f: impl FnMut(usize, f64)) {
    if j < p.n {
        for &(i, a) in &p.cols[j] {
            f(i as usize, a);
        }
    } else {
        let idx = j - p.n;
        f(w.art_row[idx] as usize, w.art_sign[idx]);
    }
}

fn init_work(p: &Problem, w: &mut Work, lb: &[f64], ub: &[f64], opts: &SimplexOptions) {
    let m = p.m;
    w.lb.clear();
    w.ub.clear();
    w.lb.extend_from_slice(lb);
    w.ub.extend_from_slice(ub);
    w.lb.extend_from_slice(&p.slack_lb);
    w.ub.extend_from_slice(&p.slack_ub);

    w.at_upper.clear();
    w.at_upper.resize(p.n, false);
    for j in 0..p.n_struct {
        // Rest nonbasic structurals at the finite bound nearest zero.
        w.at_upper[j] = match (w.lb[j].is_finite(), w.ub[j].is_finite()) {
            (true, true) => w.ub[j].abs() < w.lb[j].abs(),
            (true, false) => false,
            (false, true) => true,
            (false, false) => false, // free: rests at 0
        };
    }

    w.art_row.clear();
    w.art_sign.clear();
    w.basic_row.clear();
    w.basic_row.resize(p.n, -1);
    w.basis.clear();
    w.basis.extend((0..m).map(|i| (p.n_struct + i) as u32));
    for i in 0..m {
        w.basic_row[p.n_struct + i] = i as i32;
    }
    w.engine.reset(opts.engine, m);
    w.xb.clear();
    w.xb.resize(m, 0.0);
    w.y.clear();
    w.y.resize(m, 0.0);
    w.v.clear();
    w.v.resize(m, 0.0);
    w.rho.clear();
    w.rho.resize(m, 0.0);
    w.cb.clear();
    w.cb.resize(m, 0.0);
    w.iterations = 0;
    w.pivots_since_refactor = 0;
    w.degen_streak = 0;
    w.refactors = 0;
    w.eta_pivots = 0;
    w.warm = WarmStart::Cold;
    w.ftran_nanos = 0;
    w.btran_nanos = 0;
}

/// Residual of the slack-basis start: `b - N x_N` for the current nonbasic
/// rest positions, per row.
fn start_residual(p: &Problem, w: &Work) -> Vec<f64> {
    let mut r = p.b.clone();
    for j in 0..p.n_struct {
        let x = nb_value(w, j);
        if x != 0.0 {
            for &(i, a) in &p.cols[j] {
                r[i as usize] -= a * x;
            }
        }
    }
    r
}

/// Installs the initial basis; adds artificial columns where the slack
/// cannot absorb the residual and runs phase 1 over them. Returns an
/// outcome early only on infeasibility or an iteration-limit hit.
#[allow(clippy::needless_range_loop)] // rows index several parallel arrays
fn phase1(p: &Problem, w: &mut Work, opts: &SimplexOptions) -> Option<LpOutcome> {
    let residual = start_residual(p, w);
    let mut artificial_cols = Vec::new();
    for i in 0..p.m {
        let s = p.n_struct + i;
        let r = residual[i];
        if r >= w.lb[s] - FEAS_TOL && r <= w.ub[s] + FEAS_TOL {
            w.xb[i] = r.clamp(w.lb[s].max(f64::NEG_INFINITY), w.ub[s]);
        } else {
            // Pin the slack nonbasic at its nearest bound and absorb the
            // remainder in a signed artificial column.
            let pin = if r > w.ub[s] { w.ub[s] } else { w.lb[s] };
            w.basic_row[s] = -1;
            w.at_upper[s] = pin == w.ub[s] && w.ub[s].is_finite();
            let rem = r - pin;
            let aj = p.n + w.art_row.len();
            // The artificial column is sign(rem) * e_i; the (still
            // diagonal) basis representation carries the same sign.
            w.engine.set_diag_sign(i, rem.signum());
            w.art_row.push(i as u32);
            w.art_sign.push(rem.signum());
            w.lb.push(0.0);
            w.ub.push(f64::INFINITY);
            w.at_upper.push(false);
            w.basic_row.push(i as i32);
            w.basis[i] = aj as u32;
            w.xb[i] = rem.abs();
            artificial_cols.push(aj);
        }
    }
    if artificial_cols.is_empty() {
        return None;
    }
    let total = p.n + w.art_row.len();
    w.cost.clear();
    w.cost.resize(total, 0.0);
    for &aj in &artificial_cols {
        w.cost[aj] = 1.0;
    }
    let cost = std::mem::take(&mut w.cost);
    let status = optimize(p, w, &cost, opts);
    w.cost = cost;
    if status != LpStatus::Optimal {
        // An interrupted phase 1 (iteration limit, deadline, stall
        // watchdog) proves nothing about feasibility: the artificial sum
        // below is only an infeasibility certificate at a phase-1
        // *optimum*. Propagate the interruption instead — reporting
        // `Infeasible` here would let branch-and-bound prune a subtree
        // that merely solved slowly. Phase 1 minimizes a sum bounded
        // below by zero, so `Unbounded` can only be numerical noise;
        // degrade it to `Stalled` rather than invent an unbounded ray.
        let status = if status == LpStatus::Unbounded {
            LpStatus::Stalled
        } else {
            status
        };
        return Some(LpOutcome {
            status,
            objective: f64::NAN,
            values: vec![],
            iterations: w.iterations,
            refactors: w.refactors,
            eta_pivots: w.eta_pivots,
            warm: w.warm,
            ftran_nanos: w.ftran_nanos,
            btran_nanos: w.btran_nanos,
        });
    }
    let infeas: f64 = (0..p.m)
        .filter(|&i| w.basis[i] as usize >= p.n)
        .map(|i| w.xb[i].max(0.0))
        .sum();
    if infeas > PHASE1_INFEAS_TOL {
        return Some(LpOutcome {
            status: LpStatus::Infeasible,
            objective: f64::NAN,
            values: vec![],
            iterations: w.iterations,
            refactors: w.refactors,
            eta_pivots: w.eta_pivots,
            warm: w.warm,
            ftran_nanos: w.ftran_nanos,
            btran_nanos: w.btran_nanos,
        });
    }
    // Freeze artificials at zero so phase 2 cannot reuse them; basic
    // artificials at ~0 sit in degenerate or redundant rows and get pivoted
    // out where a usable pivot exists.
    for &aj in &artificial_cols {
        w.lb[aj] = 0.0;
        w.ub[aj] = 0.0;
    }
    pivot_out_artificials(p, w);
    None
}

/// Phase 2 on the real objective from the current (feasible) basis,
/// including the residual-at-optimality re-check.
fn phase2_finish(p: &Problem, w: &mut Work, opts: &SimplexOptions) -> LpStatus {
    let total = p.n + w.art_row.len();
    w.cost.clear();
    w.cost.resize(total, 0.0);
    w.cost[..p.n_struct].copy_from_slice(&p.cost);
    let cost = std::mem::take(&mut w.cost);
    let mut status = optimize(p, w, &cost, opts);
    if status == LpStatus::Optimal && !residual_ok(p, w) {
        refactor(p, w);
        status = optimize(p, w, &cost, opts);
    }
    w.cost = cost;
    status
}

/// Attempts to replace basic artificial variables (at value 0) with
/// structural or slack columns.
fn pivot_out_artificials(p: &Problem, w: &mut Work) {
    let m = p.m;
    for row in 0..m {
        if (w.basis[row] as usize) < p.n {
            continue;
        }
        // Row `row` of B^{-1} A_j = rho . A_j over candidates.
        btran_unit(w, row);
        let mut best: Option<(usize, f64)> = None;
        for j in 0..p.n {
            if w.basic_row[j] >= 0 || w.lb[j] == w.ub[j] {
                continue;
            }
            let mut t = 0.0;
            for &(i, a) in &p.cols[j] {
                t += w.rho[i as usize] * a;
            }
            if t.abs() > ARTIFICIAL_PIVOT_TOL && best.is_none_or(|(_, bt)| t.abs() > bt.abs()) {
                best = Some((j, t));
            }
        }
        if let Some((j, _)) = best {
            compute_column(p, w, j);
            let enter_val = nb_value(w, j);
            let v = std::mem::take(&mut w.v);
            apply_pivot(p, w, row, j, &v, enter_val);
            w.v = v;
        }
    }
}

/// Fills `w.colbuf` with the sparse entries of column `j`.
fn gather_col(p: &Problem, w: &mut Work, j: usize) {
    w.colbuf.clear();
    if j < p.n {
        w.colbuf.extend_from_slice(&p.cols[j]);
    } else {
        let idx = j - p.n;
        w.colbuf.push((w.art_row[idx], w.art_sign[idx]));
    }
}

/// Fills `w.v = B^{-1} A_j` (FTRAN of the entering column).
fn compute_column(p: &Problem, w: &mut Work, j: usize) {
    gather_col(p, w, j);
    let t0 = std::time::Instant::now();
    match &mut w.engine {
        Engine::Dense(d) => d.ftran_col(&w.colbuf, &mut w.v),
        Engine::Sparse(s) => s.ftran_col(&w.colbuf, &mut w.v),
    }
    w.ftran_nanos += t0.elapsed().as_nanos() as u64;
}

/// Fills `w.y = c_B' B^{-1}` (BTRAN of the basic costs).
fn btran_cb(w: &mut Work, cost: &[f64]) {
    for (k, &bv) in w.basis.iter().enumerate() {
        w.cb[k] = cost[bv as usize];
    }
    let t0 = std::time::Instant::now();
    match &mut w.engine {
        Engine::Dense(d) => d.btran(&mut w.cb, &mut w.y),
        Engine::Sparse(s) => s.btran(&mut w.cb, &mut w.y),
    }
    w.btran_nanos += t0.elapsed().as_nanos() as u64;
}

/// Fills `w.rho = e_r' B^{-1}` (row `r` of the basis inverse).
fn btran_unit(w: &mut Work, r: usize) {
    let t0 = std::time::Instant::now();
    match &mut w.engine {
        Engine::Dense(d) => d.btran_unit(r, &mut w.rho),
        Engine::Sparse(s) => {
            w.cb.iter_mut().for_each(|x| *x = 0.0);
            w.cb[r] = 1.0;
            s.btran(&mut w.cb, &mut w.rho);
        }
    }
    w.btran_nanos += t0.elapsed().as_nanos() as u64;
}

/// True when the engine's pending-update state asks for an out-of-cycle
/// refactorization (sparse eta file outgrew its budget).
fn refactor_due(w: &Work, opts: &SimplexOptions, m: usize) -> bool {
    w.pivots_since_refactor >= opts.refactor_every || w.engine.eta_nnz() >= opts.eta_cap(m)
}

/// Core primal simplex loop minimizing `cost` from the current basis.
#[allow(clippy::needless_range_loop)] // columns index several parallel arrays
fn optimize(p: &Problem, w: &mut Work, cost: &[f64], opts: &SimplexOptions) -> LpStatus {
    let m = p.m;
    loop {
        if w.iterations >= opts.max_iterations {
            return LpStatus::IterLimit;
        }
        // Amortize the clock read and the cancellation check over a few
        // hundred iterations.
        if w.iterations.is_multiple_of(256) {
            if opts.stop.is_stopped() {
                return LpStatus::IterLimit;
            }
            if let Some(deadline) = opts.deadline {
                if std::time::Instant::now() >= deadline {
                    return LpStatus::IterLimit;
                }
            }
        }
        // Deterministic fault injection: one hit per pivot iteration. A
        // stall takes the watchdog's abandon path; a spurious timeout takes
        // the deadline path; a panic unwinds from inside `fire` itself.
        if let Some(action) = opts.fault.fire(FaultSite::SimplexPivot) {
            match action {
                FaultAction::Stall => return LpStatus::Stalled,
                FaultAction::SpuriousTimeout => return LpStatus::IterLimit,
                FaultAction::Panic | FaultAction::PerturbIncumbent => {}
            }
        }
        if refactor_due(w, opts, m) {
            refactor(p, w);
        }
        btran_cb(w, cost);
        // Pricing.
        let total = p.n + w.art_row.len();
        let bland = w.degen_streak >= opts.degen_limit;
        let mut enter: Option<(usize, f64, i8)> = None; // (col, |d|, dir)
        for j in 0..total {
            if w.basic_row[j] >= 0 || w.lb[j] == w.ub[j] {
                continue;
            }
            let mut d = cost[j];
            for_col(p, w, j, |i, a| d -= w.y[i] * a);
            let free = !w.lb[j].is_finite() && !w.ub[j].is_finite();
            let dir: i8 = if free {
                if d < -OPT_TOL {
                    1
                } else if d > OPT_TOL {
                    -1
                } else {
                    0
                }
            } else if w.at_upper[j] {
                if d > OPT_TOL {
                    -1
                } else {
                    0
                }
            } else if d < -OPT_TOL {
                1
            } else {
                0
            };
            if dir == 0 {
                continue;
            }
            if bland {
                enter = Some((j, d.abs(), dir));
                break;
            }
            if enter.is_none_or(|(_, best, _)| d.abs() > best) {
                enter = Some((j, d.abs(), dir));
            }
        }
        let Some((j, _, dir)) = enter else {
            return LpStatus::Optimal;
        };

        compute_column(p, w, j);
        let sigma = dir as f64;

        // Ratio test: step `t >= 0` in direction sigma.
        let span = w.ub[j] - w.lb[j]; // may be inf
        let mut t_best = if span.is_finite() {
            span
        } else {
            f64::INFINITY
        };
        let mut leave: Option<(usize, bool)> = None; // (row, leaves_at_upper)
        for k in 0..m {
            let wk = sigma * w.v[k];
            if wk.abs() <= PIVOT_TOL {
                continue;
            }
            let bvar = w.basis[k] as usize;
            // x_Bk moves by -t * wk.
            let (limit, at_up) = if wk > 0.0 {
                (w.lb[bvar], false)
            } else {
                (w.ub[bvar], true)
            };
            if !limit.is_finite() {
                continue;
            }
            let t = ((w.xb[k] - limit) / wk).max(0.0);
            if t < t_best - RATIO_TIE_TOL
                || (t < t_best + RATIO_TIE_TOL
                    && leave.is_some_and(|(lk, _)| w.v[k].abs() > w.v[lk].abs()))
            {
                t_best = t;
                leave = Some((k, at_up));
            }
        }

        if t_best.is_infinite() {
            return LpStatus::Unbounded;
        }
        w.iterations += 1;
        w.degen_streak = if t_best < DEGEN_STEP_TOL {
            w.degen_streak + 1
        } else {
            0
        };
        // Watchdog escalation: Bland's rule engaged at `degen_limit` (see
        // `bland` above); a persisting streak next forces a refactorization
        // (a drifted basis representation can fake degeneracy), and finally
        // abandons the solve rather than cycle forever on an unstable
        // instance.
        if w.degen_streak == opts.stall_refactor {
            refactor(p, w);
        } else if w.degen_streak >= opts.stall_abort {
            return LpStatus::Stalled;
        }

        match leave {
            None => {
                // Bound flip: entering runs to its opposite bound.
                for k in 0..m {
                    w.xb[k] -= sigma * t_best * w.v[k];
                }
                w.at_upper[j] = !w.at_upper[j];
            }
            Some((row, leaves_at_upper)) => {
                let enter_val = nb_value(w, j) + sigma * t_best;
                for k in 0..m {
                    if k != row {
                        w.xb[k] -= sigma * t_best * w.v[k];
                    }
                }
                let leaving = w.basis[row] as usize;
                w.at_upper[leaving] = leaves_at_upper;
                let v = std::mem::take(&mut w.v);
                apply_pivot(p, w, row, j, &v, enter_val);
                w.v = v;
            }
        }
    }
}

/// Outcome of one warm-start attempt.
enum WarmTry {
    /// The restart ran to a terminal status; extract from the workspace.
    Done(LpStatus),
    /// The restart was given up; fall back to a cold start.
    Abandon,
}

/// Outcome of the dual-simplex feasibility restoration loop.
enum DualResult {
    /// Primal feasibility restored; hand over to the primal clean-up pass.
    Feasible,
    /// A basic variable's row proves the child's box empty (no column can
    /// move it toward its violated bound).
    Infeasible,
    /// Budget/cancellation/fault exit with the status to report.
    Interrupted(LpStatus),
    /// Numerical trouble or pivot cap: abandon the warm start.
    Abandon,
}

/// Installs a parent basis snapshot and re-solves via dual simplex + primal
/// clean-up.
fn try_warm(
    p: &Problem,
    w: &mut Work,
    snap: &Basis,
    lb: &[f64],
    ub: &[f64],
    opts: &SimplexOptions,
) -> WarmTry {
    init_work(p, w, lb, ub, opts);
    // Install the snapshot: nonbasic rest sides, then the basis itself.
    w.at_upper.copy_from_slice(&snap.at_upper);
    w.basic_row.iter_mut().for_each(|x| *x = -1);
    w.basis.copy_from_slice(&snap.basis);
    for (k, &bv) in w.basis.iter().enumerate() {
        w.basic_row[bv as usize] = k as i32;
    }
    // Factorize the installed basis; a singular snapshot (possible after
    // aggressive bound fixing) abandons the restart.
    if !refactor(p, w) {
        return WarmTry::Abandon;
    }
    w.warm = WarmStart::Taken;

    let total = p.n;
    w.cost.clear();
    w.cost.resize(total, 0.0);
    w.cost[..p.n_struct].copy_from_slice(&p.cost);
    let cost = std::mem::take(&mut w.cost);
    let dual = dual_restore(p, w, &cost, opts);
    w.cost = cost;
    match dual {
        DualResult::Feasible => WarmTry::Done(phase2_finish(p, w, opts)),
        DualResult::Infeasible => WarmTry::Done(LpStatus::Infeasible),
        DualResult::Interrupted(status) => WarmTry::Done(status),
        DualResult::Abandon => WarmTry::Abandon,
    }
}

/// Bounded dual simplex: starting from a dual-feasible basis (the parent's
/// optimal basis with unchanged costs), drives out primal bound violations
/// introduced by the child's bound change. Leaving row = largest violation;
/// entering column by the dual ratio test `min |d_j / alpha_j|` over
/// sign-eligible columns; no eligible column proves infeasibility (the row
/// is a Farkas certificate over the box).
#[allow(clippy::needless_range_loop)] // rows/columns index parallel arrays
fn dual_restore(p: &Problem, w: &mut Work, cost: &[f64], opts: &SimplexOptions) -> DualResult {
    let m = p.m;
    let mut pivots: u64 = 0;
    loop {
        // Leaving row: the basic variable with the largest bound violation.
        let mut leave: Option<(usize, f64, bool)> = None; // (row, viol, above)
        for k in 0..m {
            let bv = w.basis[k] as usize;
            let below = w.lb[bv] - w.xb[k];
            let above = w.xb[k] - w.ub[bv];
            let (viol, is_above) = if above > below {
                (above, true)
            } else {
                (below, false)
            };
            if viol > FEAS_TOL && leave.is_none_or(|(_, bviol, _)| viol > bviol) {
                leave = Some((k, viol, is_above));
            }
        }
        let Some((r, _, above)) = leave else {
            return DualResult::Feasible;
        };
        if pivots >= opts.warm_pivot_cap {
            return DualResult::Abandon;
        }
        if w.iterations >= opts.max_iterations {
            return DualResult::Interrupted(LpStatus::IterLimit);
        }
        if w.iterations.is_multiple_of(256) {
            if opts.stop.is_stopped() {
                return DualResult::Interrupted(LpStatus::IterLimit);
            }
            if let Some(deadline) = opts.deadline {
                if std::time::Instant::now() >= deadline {
                    return DualResult::Interrupted(LpStatus::IterLimit);
                }
            }
        }
        // The dual loop is a pivot loop like the primal one, so the chaos
        // fault site fires here too with the same action mapping.
        if let Some(action) = opts.fault.fire(FaultSite::SimplexPivot) {
            match action {
                FaultAction::Stall => return DualResult::Interrupted(LpStatus::Stalled),
                FaultAction::SpuriousTimeout => {
                    return DualResult::Interrupted(LpStatus::IterLimit)
                }
                FaultAction::Panic | FaultAction::PerturbIncumbent => {}
            }
        }
        if refactor_due(w, opts, m) {
            refactor(p, w);
        }
        btran_unit(w, r);
        btran_cb(w, cost);
        // Entering column: dual ratio test over sign-eligible nonbasics.
        // `alpha = rho . A_j` is the pivot row entry; moving x_j by `s`
        // moves x_Br by `-s * alpha`, so eligibility is a sign condition on
        // alpha against the column's rest side and the violation side.
        let mut best: Option<(usize, f64, f64)> = None; // (col, ratio, |alpha|)
        for j in 0..p.n {
            if w.basic_row[j] >= 0 || w.lb[j] == w.ub[j] {
                continue;
            }
            let mut alpha = 0.0;
            let mut d = cost[j];
            for &(i, a) in &p.cols[j] {
                alpha += w.rho[i as usize] * a;
                d -= w.y[i as usize] * a;
            }
            if alpha.abs() <= PIVOT_TOL {
                continue;
            }
            let free = !w.lb[j].is_finite() && !w.ub[j].is_finite();
            let eligible = free
                || if above {
                    // Need x_Br to decrease: s*alpha > 0.
                    if w.at_upper[j] {
                        alpha < 0.0
                    } else {
                        alpha > 0.0
                    }
                } else {
                    // Need x_Br to increase: s*alpha < 0.
                    if w.at_upper[j] {
                        alpha > 0.0
                    } else {
                        alpha < 0.0
                    }
                };
            if !eligible {
                continue;
            }
            let ratio = d.abs() / alpha.abs();
            let better = match best {
                None => true,
                Some((_, bratio, balpha)) => {
                    ratio < bratio - RATIO_TIE_TOL
                        || (ratio < bratio + RATIO_TIE_TOL && alpha.abs() > balpha)
                }
            };
            if better {
                best = Some((j, ratio, alpha.abs()));
            }
        }
        let Some((j, _, _)) = best else {
            return DualResult::Infeasible;
        };
        compute_column(p, w, j);
        let vr = w.v[r];
        if vr.abs() <= PIVOT_TOL {
            // FTRAN disagrees with the BTRAN row — the factorization has
            // drifted; a cold start is safer than pivoting on noise.
            return DualResult::Abandon;
        }
        let bvr = w.basis[r] as usize;
        let target = if above { w.ub[bvr] } else { w.lb[bvr] };
        let s = (w.xb[r] - target) / vr;
        w.iterations += 1;
        pivots += 1;
        let enter_val = nb_value(w, j) + s;
        for k in 0..m {
            if k != r {
                w.xb[k] -= s * w.v[k];
            }
        }
        w.at_upper[bvr] = above;
        let v = std::mem::take(&mut w.v);
        apply_pivot(p, w, r, j, &v, enter_val);
        w.v = v;
    }
}

/// Replaces the basic variable of `row` with column `j`, given the
/// transformed entering column `v = B^{-1} A_j`, updating the basis
/// representation and bookkeeping.
fn apply_pivot(p: &Problem, w: &mut Work, row: usize, j: usize, v: &[f64], enter_val: f64) {
    let leaving = w.basis[row] as usize;
    w.basic_row[leaving] = -1;
    w.basis[row] = j as u32;
    w.basic_row[j] = row as i32;
    w.xb[row] = enter_val;
    let _ = p;
    match &mut w.engine {
        Engine::Dense(d) => d.pivot(row, v),
        Engine::Sparse(s) => {
            s.push_eta(row, v);
            w.eta_pivots += 1;
        }
    }
    w.pivots_since_refactor += 1;
}

/// Rebuilds the basis representation (and `xb`) from the basis columns.
/// Returns false when the basis is numerically singular, in which case the
/// previous representation (dense inverse, or LU factor plus etas) stays in
/// place for the residual check to judge.
fn refactor(p: &Problem, w: &mut Work) -> bool {
    let m = p.m;
    let Work {
        engine,
        basis,
        art_row,
        art_sign,
        ..
    } = w;
    let col = |q: usize, f: &mut dyn FnMut(usize, f64)| {
        let bv = basis[q] as usize;
        if bv < p.n {
            for &(i, a) in &p.cols[bv] {
                f(i as usize, a);
            }
        } else {
            let idx = bv - p.n;
            f(art_row[idx] as usize, art_sign[idx]);
        }
    };
    let ok = match engine {
        Engine::Dense(d) => d.refactor(m, col),
        Engine::Sparse(s) => s.refactor(m, col),
    };
    if ok {
        recompute_xb(p, w);
        w.pivots_since_refactor = 0;
        w.refactors += 1;
    }
    ok
}

/// Recomputes basic values `x_B = B^{-1} (b - N x_N)`.
fn recompute_xb(p: &Problem, w: &mut Work) {
    let total = p.n + w.art_row.len();
    let mut rhs = p.b.clone();
    for j in 0..total {
        if w.basic_row[j] >= 0 {
            continue;
        }
        let x = nb_value(w, j);
        if x != 0.0 {
            for_col(p, w, j, |i, a| rhs[i] -= a * x);
        }
    }
    let t0 = std::time::Instant::now();
    match &mut w.engine {
        Engine::Dense(d) => d.ftran_rhs(&rhs, &mut w.xb),
        Engine::Sparse(s) => s.ftran_rhs(&rhs, &mut w.xb),
    }
    w.ftran_nanos += t0.elapsed().as_nanos() as u64;
}

/// Verifies `A x = b` within tolerance for the current point.
fn residual_ok(p: &Problem, w: &mut Work) -> bool {
    let total = p.n + w.art_row.len();
    let mut r = p.b.clone();
    for j in 0..total {
        let x = if w.basic_row[j] >= 0 {
            w.xb[w.basic_row[j] as usize]
        } else {
            nb_value(w, j)
        };
        if x != 0.0 {
            for_col(p, w, j, |i, a| r[i] -= a * x);
        }
    }
    r.iter().all(|x| x.abs() <= RESIDUAL_TOL)
}

fn extract(p: &Problem, w: &Work, status: LpStatus) -> LpOutcome {
    let mut values = vec![0.0; p.n_struct];
    if status == LpStatus::Optimal {
        for (j, value) in values.iter_mut().enumerate() {
            *value = if w.basic_row[j] >= 0 {
                w.xb[w.basic_row[j] as usize]
            } else {
                nb_value(w, j)
            };
        }
    }
    let raw: f64 = values.iter().zip(&p.cost).map(|(x, c)| x * c).sum();
    let objective = if status == LpStatus::Optimal {
        if p.maximize {
            -raw + p.obj_constant
        } else {
            raw + p.obj_constant
        }
    } else {
        f64::NAN
    };
    LpOutcome {
        status,
        objective,
        values,
        iterations: w.iterations,
        refactors: w.refactors,
        eta_pivots: w.eta_pivots,
        warm: w.warm,
        ftran_nanos: w.ftran_nanos,
        btran_nanos: w.btran_nanos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    fn opts_for(engine: SimplexEngine) -> SimplexOptions {
        SimplexOptions {
            engine,
            ..Default::default()
        }
    }

    fn solve_with(model: &Model, engine: SimplexEngine) -> LpOutcome {
        let mut sx = Simplex::new(model);
        let lb: Vec<f64> = (0..model.num_vars()).map(|j| model.vars[j].lb).collect();
        let ub: Vec<f64> = (0..model.num_vars()).map(|j| model.vars[j].ub).collect();
        sx.solve(&lb, &ub, &opts_for(engine))
    }

    /// Solves under both engines, asserts agreement, returns the sparse
    /// outcome. All correctness tests below go through this so every
    /// fixture doubles as a dense-vs-sparse differential check.
    fn solve_lp(model: &Model) -> LpOutcome {
        let dense = solve_with(model, SimplexEngine::Dense);
        let sparse = solve_with(model, SimplexEngine::Sparse);
        assert_eq!(dense.status, sparse.status, "engine status disagreement");
        if dense.status == LpStatus::Optimal {
            assert!(
                (dense.objective - sparse.objective).abs() < 1e-6,
                "engine objective disagreement: dense {} vs sparse {}",
                dense.objective,
                sparse.objective
            );
        }
        assert_eq!(dense.eta_pivots, 0, "dense engine must not report etas");
        sparse
    }

    #[test]
    fn trivial_bounds_only() {
        let mut m = Model::new();
        let x = m.num_var(1.0, 5.0, "x");
        m.set_objective(Sense::Minimize, [(x, 1.0)]);
        let out = solve_lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.objective - 1.0).abs() < 1e-8);
    }

    #[test]
    fn classic_2d_max() {
        // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 -> obj 36 at (2, 6)
        let mut m = Model::new();
        let x = m.num_var(0.0, f64::INFINITY, "x");
        let y = m.num_var(0.0, f64::INFINITY, "y");
        m.set_objective(Sense::Maximize, [(x, 3.0), (y, 5.0)]);
        m.add_le([(x, 1.0)], 4.0, "c1");
        m.add_le([(y, 2.0)], 12.0, "c2");
        m.add_le([(x, 3.0), (y, 2.0)], 18.0, "c3");
        let out = solve_lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.objective - 36.0).abs() < 1e-7, "{}", out.objective);
        assert!((out.values[0] - 2.0).abs() < 1e-7);
        assert!((out.values[1] - 6.0).abs() < 1e-7);
    }

    #[test]
    fn equality_rows_need_phase1() {
        // min x + y st x + y = 10, x - y = 4 -> x=7, y=3, obj 10
        let mut m = Model::new();
        let x = m.num_var(0.0, f64::INFINITY, "x");
        let y = m.num_var(0.0, f64::INFINITY, "y");
        m.set_objective(Sense::Minimize, [(x, 1.0), (y, 1.0)]);
        m.add_eq([(x, 1.0), (y, 1.0)], 10.0, "sum");
        m.add_eq([(x, 1.0), (y, -1.0)], 4.0, "diff");
        let out = solve_lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.values[0] - 7.0).abs() < 1e-7);
        assert!((out.values[1] - 3.0).abs() < 1e-7);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new();
        let x = m.num_var(0.0, 1.0, "x");
        m.add_ge([(x, 1.0)], 2.0, "too-big");
        let out = solve_lp(&m);
        assert_eq!(out.status, LpStatus::Infeasible);
    }

    #[test]
    fn interrupted_phase1_is_not_an_infeasibility_proof() {
        // min x + y st x + y = 10 needs an artificial at the slack start.
        // Stall the very first phase-1 pivot: the solve must report the
        // interruption, not mistake the still-positive artificial for a
        // Farkas certificate (a feasible subtree would be pruned).
        let mut m = Model::new();
        let x = m.num_var(0.0, 8.0, "x");
        let y = m.num_var(0.0, 8.0, "y");
        m.set_objective(Sense::Minimize, [(x, 1.0), (y, 1.0)]);
        m.add_eq([(x, 1.0), (y, 1.0)], 10.0, "sum");
        for engine in [SimplexEngine::Dense, SimplexEngine::Sparse] {
            let opts = SimplexOptions {
                fault: crate::fault::FaultPlan::single(
                    crate::fault::FaultSite::SimplexPivot,
                    crate::fault::FaultAction::Stall,
                    1,
                ),
                ..opts_for(engine)
            };
            let mut sx = Simplex::new(&m);
            let out = sx.solve(&[0.0, 0.0], &[8.0, 8.0], &opts);
            assert_eq!(
                out.status,
                LpStatus::Stalled,
                "{engine:?}: stalled phase 1 must propagate, got {:?}",
                out.status
            );
            // And without the fault the same model solves fine.
            let ok = sx.solve(&[0.0, 0.0], &[8.0, 8.0], &opts_for(engine));
            assert_eq!(ok.status, LpStatus::Optimal);
            assert!((ok.objective - 10.0).abs() < 1e-7);
        }
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new();
        let x = m.num_var(0.0, f64::INFINITY, "x");
        m.set_objective(Sense::Maximize, [(x, 1.0)]);
        m.add_ge([(x, 1.0)], 1.0, "at-least-one");
        let out = solve_lp(&m);
        assert_eq!(out.status, LpStatus::Unbounded);
    }

    #[test]
    fn ge_rows_and_negative_coeffs() {
        let mut m = Model::new();
        let x = m.num_var(0.0, f64::INFINITY, "x");
        let y = m.num_var(0.0, 3.0, "y");
        m.set_objective(Sense::Minimize, [(x, 2.0), (y, 3.0)]);
        m.add_ge([(x, 1.0), (y, 1.0)], 4.0, "c1");
        m.add_le([(x, 1.0), (y, -1.0)], 2.0, "c2");
        let out = solve_lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.objective - 9.0).abs() < 1e-7, "{}", out.objective);
    }

    #[test]
    fn free_variable_enters() {
        // min x st x + y = 3, y in [0, 1], x free -> x = 2
        let mut m = Model::new();
        let x = m.num_var(f64::NEG_INFINITY, f64::INFINITY, "x");
        let y = m.num_var(0.0, 1.0, "y");
        m.set_objective(Sense::Minimize, [(x, 1.0)]);
        m.add_eq([(x, 1.0), (y, 1.0)], 3.0, "sum");
        let out = solve_lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.objective - 2.0).abs() < 1e-7, "{}", out.objective);
    }

    #[test]
    fn negative_lower_bounds() {
        let mut m = Model::new();
        let x = m.num_var(-5.0, 5.0, "x");
        let y = m.num_var(-5.0, 5.0, "y");
        m.set_objective(Sense::Minimize, [(x, 1.0), (y, 1.0)]);
        m.add_ge([(x, 1.0), (y, 1.0)], -3.0, "floor");
        let out = solve_lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.objective + 3.0).abs() < 1e-7, "{}", out.objective);
    }

    #[test]
    fn bound_flip_path() {
        let mut m = Model::new();
        let x = m.num_var(0.0, 1.0, "x");
        let y = m.num_var(0.0, 1.0, "y");
        m.set_objective(Sense::Maximize, [(x, 1.0), (y, 1.0)]);
        m.add_le([(x, 1.0), (y, 1.0)], 1.5, "cap");
        let out = solve_lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.objective - 1.5).abs() < 1e-7);
    }

    #[test]
    fn degenerate_problem_terminates() {
        let mut m = Model::new();
        let x = m.num_var(0.0, 10.0, "x");
        let y = m.num_var(0.0, 10.0, "y");
        m.set_objective(Sense::Maximize, [(x, 1.0), (y, 1.0)]);
        for i in 0..20 {
            let a = 1.0 + (i as f64) * 0.1;
            m.add_le([(x, a), (y, 1.0)], 10.0, format!("c{i}"));
        }
        let out = solve_lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!(out.objective > 0.0);
    }

    #[test]
    fn fixed_variables_are_respected() {
        let mut m = Model::new();
        let x = m.num_var(2.0, 2.0, "x");
        let y = m.num_var(0.0, 10.0, "y");
        m.set_objective(Sense::Minimize, [(y, 1.0)]);
        m.add_ge([(x, 1.0), (y, 1.0)], 5.0, "c");
        let out = solve_lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.values[1] - 3.0).abs() < 1e-7);
    }

    #[test]
    fn workspace_reuse_across_solves() {
        // The same instance solved repeatedly with different bounds must
        // give fresh, correct answers each time.
        for engine in [SimplexEngine::Dense, SimplexEngine::Sparse] {
            let mut m = Model::new();
            let x = m.num_var(0.0, 10.0, "x");
            let y = m.num_var(0.0, 10.0, "y");
            m.set_objective(Sense::Maximize, [(x, 1.0), (y, 2.0)]);
            m.add_le([(x, 1.0), (y, 1.0)], 6.0, "cap");
            let mut sx = Simplex::new(&m);
            let opts = opts_for(engine);
            let o1 = sx.solve(&[0.0, 0.0], &[10.0, 10.0], &opts);
            assert!((o1.objective - 12.0).abs() < 1e-7); // y = 6
            let o2 = sx.solve(&[0.0, 0.0], &[10.0, 2.0], &opts);
            assert!((o2.objective - 8.0).abs() < 1e-7); // y = 2, x = 4
            let o3 = sx.solve(&[5.0, 5.0], &[10.0, 10.0], &opts);
            assert_eq!(o3.status, LpStatus::Infeasible); // 5 + 5 > 6
            let o4 = sx.solve(&[0.0, 0.0], &[10.0, 10.0], &opts);
            assert!((o4.objective - 12.0).abs() < 1e-7);
        }
    }

    #[test]
    fn warm_restart_matches_cold_solve() {
        // Parent LP, snapshot, tighten one bound (exactly the B&B child
        // pattern), warm solve must agree with a cold solve and actually
        // take the warm path.
        for engine in [SimplexEngine::Dense, SimplexEngine::Sparse] {
            let mut m = Model::new();
            let x = m.num_var(0.0, 10.0, "x");
            let y = m.num_var(0.0, 10.0, "y");
            let z = m.num_var(0.0, 10.0, "z");
            m.set_objective(Sense::Maximize, [(x, 3.0), (y, 2.0), (z, 4.0)]);
            m.add_le([(x, 1.0), (y, 1.0), (z, 1.0)], 7.5, "cap");
            m.add_le([(x, 2.0), (z, 1.0)], 9.0, "mix");
            let mut sx = Simplex::new(&m);
            let opts = opts_for(engine);
            let parent = sx.solve(&[0.0; 3], &[10.0; 3], &opts);
            assert_eq!(parent.status, LpStatus::Optimal);
            let snap = sx.basis_snapshot().expect("clean optimal basis");

            // Child: force z <= 3 (tighter than its relaxation value).
            let child_ub = [10.0, 10.0, 3.0];
            let warm = sx.solve_warm(&[0.0; 3], &child_ub, &opts, Some(&snap));
            assert_eq!(warm.status, LpStatus::Optimal);
            assert_eq!(warm.warm, WarmStart::Taken);
            let cold = sx.solve(&[0.0; 3], &child_ub, &opts);
            assert!(
                (warm.objective - cold.objective).abs() < 1e-7,
                "warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
            assert!(
                warm.iterations <= cold.iterations,
                "warm restart took more pivots ({}) than cold ({})",
                warm.iterations,
                cold.iterations
            );
        }
    }

    #[test]
    fn warm_restart_detects_child_infeasibility() {
        for engine in [SimplexEngine::Dense, SimplexEngine::Sparse] {
            let mut m = Model::new();
            let x = m.num_var(0.0, 10.0, "x");
            let y = m.num_var(0.0, 10.0, "y");
            m.set_objective(Sense::Minimize, [(x, 1.0), (y, 1.0)]);
            m.add_ge([(x, 1.0), (y, 1.0)], 8.0, "floor");
            let mut sx = Simplex::new(&m);
            let opts = opts_for(engine);
            let parent = sx.solve(&[0.0; 2], &[10.0; 2], &opts);
            assert_eq!(parent.status, LpStatus::Optimal);
            let snap = sx.basis_snapshot().expect("snapshot");
            // x <= 3 and y <= 3 cannot reach x + y >= 8.
            let out = sx.solve_warm(&[0.0; 2], &[3.0, 3.0], &opts, Some(&snap));
            assert_eq!(out.status, LpStatus::Infeasible);
        }
    }

    #[test]
    fn warm_start_disabled_is_cold() {
        let mut m = Model::new();
        let x = m.num_var(0.0, 4.0, "x");
        m.set_objective(Sense::Maximize, [(x, 1.0)]);
        m.add_le([(x, 1.0)], 3.0, "cap");
        let mut sx = Simplex::new(&m);
        let opts = SimplexOptions::default();
        sx.solve(&[0.0], &[4.0], &opts);
        let snap = sx.basis_snapshot().expect("snapshot");
        let off = SimplexOptions {
            warm_start: false,
            ..Default::default()
        };
        let out = sx.solve_warm(&[0.0], &[2.0], &off, Some(&snap));
        assert_eq!(out.status, LpStatus::Optimal);
        assert_eq!(out.warm, WarmStart::Cold);
    }

    #[test]
    fn tunable_refactor_cadence_is_honored() {
        // With refactor_every = 1 every pivot is followed by a rebuild, so
        // refactors grows with iterations; the stock cadence (400) performs
        // none on a tiny LP.
        let mut m = Model::new();
        let x = m.num_var(0.0, f64::INFINITY, "x");
        let y = m.num_var(0.0, f64::INFINITY, "y");
        m.set_objective(Sense::Maximize, [(x, 3.0), (y, 5.0)]);
        m.add_le([(x, 1.0)], 4.0, "c1");
        m.add_le([(y, 2.0)], 12.0, "c2");
        m.add_le([(x, 3.0), (y, 2.0)], 18.0, "c3");
        let mut sx = Simplex::new(&m);
        let eager = SimplexOptions {
            refactor_every: 1,
            ..Default::default()
        };
        let out = sx.solve(&[0.0, 0.0], &[f64::INFINITY, f64::INFINITY], &eager);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!(
            out.refactors >= out.iterations.saturating_sub(1),
            "eager cadence ignored"
        );
        let stock = sx.solve(
            &[0.0, 0.0],
            &[f64::INFINITY, f64::INFINITY],
            &SimplexOptions::default(),
        );
        assert_eq!(stock.refactors, 0);
    }

    #[test]
    fn sparse_engine_counts_eta_pivots() {
        let mut m = Model::new();
        let x = m.num_var(0.0, f64::INFINITY, "x");
        let y = m.num_var(0.0, f64::INFINITY, "y");
        m.set_objective(Sense::Maximize, [(x, 3.0), (y, 5.0)]);
        m.add_le([(x, 1.0)], 4.0, "c1");
        m.add_le([(y, 2.0)], 12.0, "c2");
        m.add_le([(x, 3.0), (y, 2.0)], 18.0, "c3");
        let out = solve_with(&m, SimplexEngine::Sparse);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!(out.eta_pivots > 0, "basis-changing pivots must record etas");
        assert_eq!(out.warm, WarmStart::Cold);
    }
}
