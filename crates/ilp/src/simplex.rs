//! Bounded-variable primal simplex with an explicit dense basis inverse.
//!
//! The implementation follows the classic two-phase revised simplex method
//! for problems of the form
//!
//! ```text
//!     minimize    c'x
//!     subject to  A x (<=|=|>=) b,    l <= x <= u
//! ```
//!
//! Every row receives a slack column with coefficient +1 whose bounds encode
//! the row sense (`<=` → `[0, ∞)`, `>=` → `(-∞, 0]`, `=` → `[0, 0]`).
//! Phase 1 introduces signed artificial columns only for rows whose slack
//! cannot absorb the initial residual. Nonbasic variables rest at one of
//! their bounds (or at 0 when free); the ratio test supports bound flips.
//!
//! Numerical robustness: Dantzig pricing with a Bland's-rule fallback after
//! a run of degenerate pivots, periodic refactorization of the basis
//! inverse, and a residual check at claimed optimality.
//!
//! Branch-and-bound solves thousands of closely related LPs, so the solver
//! keeps all working storage (basis inverse, pricing buffers, bound arrays)
//! inside the [`Simplex`] value and reuses it across [`Simplex::solve`]
//! calls — no per-node allocation of the constraint matrix.

use crate::fault::{FaultAction, FaultPlan, FaultSite};
use crate::model::{Model, RowSense, Sense};
use crate::stop::StopFlag;
use crate::tol::{
    ARTIFICIAL_PIVOT_TOL, DEGEN_STEP_TOL, ELIM_SKIP_TOL, FEAS_TOL, OPT_TOL, PHASE1_INFEAS_TOL,
    PIVOT_TOL, RATIO_TIE_TOL, RESIDUAL_TOL, SINGULAR_TOL,
};

// Every f64 comparison tolerance lives in [`crate::tol`]; the constants
// below are iteration *counts* for the anti-cycling watchdog, not
// tolerances, so they stay with the machinery they drive.

/// Number of consecutive degenerate pivots before switching to Bland's rule.
const DEGEN_LIMIT: u32 = 60;
/// Refactorize the basis inverse after this many pivots.
const REFACTOR_EVERY: u64 = 400;
/// Degenerate-pivot streak at which the watchdog forces an out-of-cycle
/// refactorization (a drifted basis inverse can fake degeneracy).
const STALL_REFACTOR: u32 = 2_000;
/// Degenerate-pivot streak at which the solve is abandoned as numerically
/// unstable ([`LpStatus::Stalled`]). Bland's rule terminates in exact
/// arithmetic, so a streak this long under Bland's pricing means floating
/// point is cycling; burning the rest of a branch-and-bound budget on one
/// LP would be worse than reporting the stall.
const STALL_ABORT: u32 = 50_000;

/// Outcome status of a single LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// Proven optimal within tolerances.
    Optimal,
    /// No feasible point exists (phase 1 ended with positive infeasibility).
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The per-solve iteration limit was exhausted.
    IterLimit,
    /// The watchdog abandoned the solve: degenerate pivots kept cycling
    /// after the switch to Bland's rule and a forced refactorization —
    /// numerical instability on this LP instance.
    Stalled,
}

/// Result of solving one LP relaxation.
#[derive(Debug, Clone)]
pub struct LpOutcome {
    /// Solve status; `values`/`objective` are meaningful only for
    /// [`LpStatus::Optimal`].
    pub status: LpStatus,
    /// Objective value in the *model's* sense (a maximization model reports
    /// the maximum).
    pub objective: f64,
    /// Values of the structural (model) variables.
    pub values: Vec<f64>,
    /// Simplex iterations (pivots and bound flips) performed by this solve.
    pub iterations: u64,
    /// Basis refactorizations performed by this solve (scheduled rebuilds
    /// plus watchdog-forced ones).
    pub refactors: u64,
}

/// Tunables for the simplex method.
#[derive(Debug, Clone)]
pub struct SimplexOptions {
    /// Hard cap on iterations for one LP solve.
    pub max_iterations: u64,
    /// Wall-clock deadline; checked every few hundred iterations so a
    /// single large LP cannot overshoot a branch-and-bound budget. A
    /// deadline hit reports [`LpStatus::IterLimit`].
    pub deadline: Option<std::time::Instant>,
    /// Cooperative cancellation, checked alongside the deadline inside the
    /// pivot loop; a stop reports [`LpStatus::IterLimit`]. Unlike the
    /// poll-only deadline this lets *another thread* interrupt a solve —
    /// the parallel branch-and-bound and the scheduler's speculative `II`
    /// race both rely on it.
    pub stop: StopFlag,
    /// Deterministic fault injection ([`FaultSite::SimplexPivot`] fires one
    /// hit per pivot-loop iteration). Disabled by default.
    pub fault: FaultPlan,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            max_iterations: 200_000,
            deadline: None,
            stop: StopFlag::new(),
            fault: FaultPlan::none(),
        }
    }
}

/// Immutable problem data compiled from a [`Model`].
#[derive(Debug, Clone)]
struct Problem {
    m: usize,
    n_struct: usize,
    /// Structural + slack columns (artificials live in `Work`).
    n: usize,
    cols: Vec<Vec<(u32, f64)>>,
    slack_lb: Vec<f64>,
    slack_ub: Vec<f64>,
    b: Vec<f64>,
    /// Minimization cost vector over structural columns.
    cost: Vec<f64>,
    obj_constant: f64,
    maximize: bool,
}

/// Reusable per-solve state. Indices `0..n` are structural + slack columns;
/// `n..n+arts` are artificial columns (single signed entry each).
#[derive(Debug, Clone, Default)]
struct Work {
    lb: Vec<f64>,
    ub: Vec<f64>,
    at_upper: Vec<bool>,
    basic_row: Vec<i32>,
    art_row: Vec<u32>,
    art_sign: Vec<f64>,
    basis: Vec<u32>,
    xb: Vec<f64>,
    binv: Vec<f64>,
    /// Pricing buffer `y = c_B' B^{-1}`.
    y: Vec<f64>,
    /// Transformed entering column `v = B^{-1} A_j`.
    v: Vec<f64>,
    /// Phase cost vector (resized as artificials appear).
    cost: Vec<f64>,
    iterations: u64,
    pivots_since_refactor: u64,
    degen_streak: u32,
    refactors: u64,
}

/// A sparse-column LP instance with reusable solver workspace.
///
/// Build once per model with [`Simplex::new`]; call [`Simplex::solve`] with
/// per-solve structural bounds (branch-and-bound tightens bounds without
/// rebuilding the matrix).
#[derive(Debug, Clone)]
pub struct Simplex {
    p: Problem,
    w: Work,
}

impl Simplex {
    /// Compiles `model` into a solvable instance. Constraint rows and the
    /// objective are fixed; structural bounds are passed to
    /// [`Simplex::solve`].
    pub fn new(model: &Model) -> Self {
        let m = model.num_constraints();
        let n_struct = model.num_vars();
        let mut cols: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n_struct + m];
        let mut slack_lb = Vec::with_capacity(m);
        let mut slack_ub = Vec::with_capacity(m);
        let mut b = Vec::with_capacity(m);
        for (i, row) in model.rows.iter().enumerate() {
            for &(v, c) in &row.coeffs {
                cols[v.index()].push((i as u32, c));
            }
            cols[n_struct + i].push((i as u32, 1.0));
            let (lo, hi) = match row.sense {
                RowSense::Le => (0.0, f64::INFINITY),
                RowSense::Ge => (f64::NEG_INFINITY, 0.0),
                RowSense::Eq => (0.0, 0.0),
            };
            slack_lb.push(lo);
            slack_ub.push(hi);
            b.push(row.rhs);
        }
        let maximize = model.obj_sense == Sense::Maximize;
        let mut cost = vec![0.0; n_struct];
        for &(v, c) in &model.objective {
            cost[v.index()] = if maximize { -c } else { c };
        }
        Simplex {
            p: Problem {
                m,
                n_struct,
                n: n_struct + m,
                cols,
                slack_lb,
                slack_ub,
                b,
                cost,
                obj_constant: model.obj_constant,
                maximize,
            },
            w: Work::default(),
        }
    }

    /// Number of constraint rows.
    pub fn num_rows(&self) -> usize {
        self.p.m
    }

    /// Solves the LP relaxation with the given structural bounds.
    ///
    /// `lb`/`ub` must have one entry per structural variable. A crossed
    /// bound pair (`lb[j] > ub[j]`) describes an empty box and reports
    /// [`LpStatus::Infeasible`] — branch-and-bound tightens bounds
    /// concurrently with pruning, so an empty box is a legitimate node, not
    /// a caller bug.
    ///
    /// # Panics
    ///
    /// Panics if the bound slices have the wrong length.
    pub fn solve(&mut self, lb: &[f64], ub: &[f64], opts: &SimplexOptions) -> LpOutcome {
        let p = &self.p;
        assert_eq!(lb.len(), p.n_struct, "lower-bound slice length mismatch");
        assert_eq!(ub.len(), p.n_struct, "upper-bound slice length mismatch");
        if (0..p.n_struct).any(|j| lb[j] > ub[j]) {
            return LpOutcome {
                status: LpStatus::Infeasible,
                objective: f64::NAN,
                values: vec![],
                iterations: 0,
                refactors: 0,
            };
        }

        init_work(p, &mut self.w, lb, ub);

        if let Some(outcome) = phase1(p, &mut self.w, opts) {
            return outcome;
        }

        // Phase 2 on the real objective.
        let total = p.n + self.w.art_row.len();
        self.w.cost.clear();
        self.w.cost.resize(total, 0.0);
        self.w.cost[..p.n_struct].copy_from_slice(&p.cost);
        let cost = std::mem::take(&mut self.w.cost);
        let mut status = optimize(p, &mut self.w, &cost, opts);
        if status == LpStatus::Optimal && !residual_ok(p, &mut self.w) {
            refactor(p, &mut self.w);
            status = optimize(p, &mut self.w, &cost, opts);
        }
        self.w.cost = cost;
        extract(p, &self.w, status)
    }
}

fn nb_value(w: &Work, j: usize) -> f64 {
    let (lo, hi) = (w.lb[j], w.ub[j]);
    if w.at_upper[j] {
        if hi.is_finite() {
            hi
        } else {
            0.0
        }
    } else if lo.is_finite() {
        lo
    } else if hi.is_finite() {
        hi
    } else {
        0.0
    }
}

/// Iterates the sparse entries of column `j` (structural, slack, or
/// artificial).
#[inline]
fn for_col(p: &Problem, w: &Work, j: usize, mut f: impl FnMut(usize, f64)) {
    if j < p.n {
        for &(i, a) in &p.cols[j] {
            f(i as usize, a);
        }
    } else {
        let idx = j - p.n;
        f(w.art_row[idx] as usize, w.art_sign[idx]);
    }
}

fn init_work(p: &Problem, w: &mut Work, lb: &[f64], ub: &[f64]) {
    let m = p.m;
    w.lb.clear();
    w.ub.clear();
    w.lb.extend_from_slice(lb);
    w.ub.extend_from_slice(ub);
    w.lb.extend_from_slice(&p.slack_lb);
    w.ub.extend_from_slice(&p.slack_ub);

    w.at_upper.clear();
    w.at_upper.resize(p.n, false);
    for j in 0..p.n_struct {
        // Rest nonbasic structurals at the finite bound nearest zero.
        w.at_upper[j] = match (w.lb[j].is_finite(), w.ub[j].is_finite()) {
            (true, true) => w.ub[j].abs() < w.lb[j].abs(),
            (true, false) => false,
            (false, true) => true,
            (false, false) => false, // free: rests at 0
        };
    }

    w.art_row.clear();
    w.art_sign.clear();
    w.basic_row.clear();
    w.basic_row.resize(p.n, -1);
    w.basis.clear();
    w.basis.extend((0..m).map(|i| (p.n_struct + i) as u32));
    for i in 0..m {
        w.basic_row[p.n_struct + i] = i as i32;
    }
    w.binv.clear();
    w.binv.resize(m * m, 0.0);
    for i in 0..m {
        w.binv[i * m + i] = 1.0;
    }
    w.xb.clear();
    w.xb.resize(m, 0.0);
    w.y.clear();
    w.y.resize(m, 0.0);
    w.v.clear();
    w.v.resize(m, 0.0);
    w.iterations = 0;
    w.pivots_since_refactor = 0;
    w.degen_streak = 0;
    w.refactors = 0;
}

/// Residual of the slack-basis start: `b - N x_N` for the current nonbasic
/// rest positions, per row.
fn start_residual(p: &Problem, w: &Work) -> Vec<f64> {
    let mut r = p.b.clone();
    for j in 0..p.n_struct {
        let x = nb_value(w, j);
        if x != 0.0 {
            for &(i, a) in &p.cols[j] {
                r[i as usize] -= a * x;
            }
        }
    }
    r
}

/// Installs the initial basis; adds artificial columns where the slack
/// cannot absorb the residual and runs phase 1 over them. Returns an
/// outcome early only on infeasibility or an iteration-limit hit.
#[allow(clippy::needless_range_loop)] // rows index several parallel arrays
fn phase1(p: &Problem, w: &mut Work, opts: &SimplexOptions) -> Option<LpOutcome> {
    let residual = start_residual(p, w);
    let mut artificial_cols = Vec::new();
    for i in 0..p.m {
        let s = p.n_struct + i;
        let r = residual[i];
        if r >= w.lb[s] - FEAS_TOL && r <= w.ub[s] + FEAS_TOL {
            w.xb[i] = r.clamp(w.lb[s].max(f64::NEG_INFINITY), w.ub[s]);
        } else {
            // Pin the slack nonbasic at its nearest bound and absorb the
            // remainder in a signed artificial column.
            let pin = if r > w.ub[s] { w.ub[s] } else { w.lb[s] };
            w.basic_row[s] = -1;
            w.at_upper[s] = pin == w.ub[s] && w.ub[s].is_finite();
            let rem = r - pin;
            let aj = p.n + w.art_row.len();
            // The artificial column is sign(rem) * e_i; the basis inverse
            // diagonal for this slot carries the same sign.
            w.binv[i * p.m + i] = rem.signum();
            w.art_row.push(i as u32);
            w.art_sign.push(rem.signum());
            w.lb.push(0.0);
            w.ub.push(f64::INFINITY);
            w.at_upper.push(false);
            w.basic_row.push(i as i32);
            w.basis[i] = aj as u32;
            w.xb[i] = rem.abs();
            artificial_cols.push(aj);
        }
    }
    if artificial_cols.is_empty() {
        return None;
    }
    let total = p.n + w.art_row.len();
    w.cost.clear();
    w.cost.resize(total, 0.0);
    for &aj in &artificial_cols {
        w.cost[aj] = 1.0;
    }
    let cost = std::mem::take(&mut w.cost);
    let status = optimize(p, w, &cost, opts);
    w.cost = cost;
    if status == LpStatus::IterLimit {
        return Some(LpOutcome {
            status: LpStatus::IterLimit,
            objective: f64::NAN,
            values: vec![],
            iterations: w.iterations,
            refactors: w.refactors,
        });
    }
    let infeas: f64 = (0..p.m)
        .filter(|&i| w.basis[i] as usize >= p.n)
        .map(|i| w.xb[i].max(0.0))
        .sum();
    if infeas > PHASE1_INFEAS_TOL {
        return Some(LpOutcome {
            status: LpStatus::Infeasible,
            objective: f64::NAN,
            values: vec![],
            iterations: w.iterations,
            refactors: w.refactors,
        });
    }
    // Freeze artificials at zero so phase 2 cannot reuse them; basic
    // artificials at ~0 sit in degenerate or redundant rows and get pivoted
    // out where a usable pivot exists.
    for &aj in &artificial_cols {
        w.lb[aj] = 0.0;
        w.ub[aj] = 0.0;
    }
    pivot_out_artificials(p, w);
    None
}

/// Attempts to replace basic artificial variables (at value 0) with
/// structural or slack columns.
fn pivot_out_artificials(p: &Problem, w: &mut Work) {
    let m = p.m;
    for row in 0..m {
        if (w.basis[row] as usize) < p.n {
            continue;
        }
        // Row `row` of B^{-1} A_j = binv[row, :] . A_j over candidates.
        let mut best: Option<(usize, f64)> = None;
        for j in 0..p.n {
            if w.basic_row[j] >= 0 || w.lb[j] == w.ub[j] {
                continue;
            }
            let mut t = 0.0;
            for &(i, a) in &p.cols[j] {
                t += w.binv[row * m + i as usize] * a;
            }
            if t.abs() > ARTIFICIAL_PIVOT_TOL && best.is_none_or(|(_, bt)| t.abs() > bt.abs()) {
                best = Some((j, t));
            }
        }
        if let Some((j, _)) = best {
            compute_column(p, w, j);
            let enter_val = nb_value(w, j);
            let v = std::mem::take(&mut w.v);
            apply_pivot(p, w, row, j, &v, enter_val);
            w.v = v;
        }
    }
}

/// Fills `w.v = B^{-1} A_j`.
fn compute_column(p: &Problem, w: &mut Work, j: usize) {
    let m = p.m;
    w.v.iter_mut().for_each(|x| *x = 0.0);
    // Split borrow: read binv, write v.
    let binv = &w.binv;
    let v = &mut w.v;
    if j < p.n {
        for &(i, a) in &p.cols[j] {
            let col = i as usize;
            for k in 0..m {
                v[k] += binv[k * m + col] * a;
            }
        }
    } else {
        let idx = j - p.n;
        let col = w.art_row[idx] as usize;
        let a = w.art_sign[idx];
        for k in 0..m {
            v[k] += binv[k * m + col] * a;
        }
    }
}

/// Core primal simplex loop minimizing `cost` from the current basis.
#[allow(clippy::needless_range_loop)] // columns index several parallel arrays
fn optimize(p: &Problem, w: &mut Work, cost: &[f64], opts: &SimplexOptions) -> LpStatus {
    let m = p.m;
    loop {
        if w.iterations >= opts.max_iterations {
            return LpStatus::IterLimit;
        }
        // Amortize the clock read and the cancellation check over a few
        // hundred iterations.
        if w.iterations.is_multiple_of(256) {
            if opts.stop.is_stopped() {
                return LpStatus::IterLimit;
            }
            if let Some(deadline) = opts.deadline {
                if std::time::Instant::now() >= deadline {
                    return LpStatus::IterLimit;
                }
            }
        }
        // Deterministic fault injection: one hit per pivot iteration. A
        // stall takes the watchdog's abandon path; a spurious timeout takes
        // the deadline path; a panic unwinds from inside `fire` itself.
        if let Some(action) = opts.fault.fire(FaultSite::SimplexPivot) {
            match action {
                FaultAction::Stall => return LpStatus::Stalled,
                FaultAction::SpuriousTimeout => return LpStatus::IterLimit,
                FaultAction::Panic | FaultAction::PerturbIncumbent => {}
            }
        }
        if w.pivots_since_refactor >= REFACTOR_EVERY {
            refactor(p, w);
        }
        // y = c_B' B^{-1}
        w.y.iter_mut().for_each(|x| *x = 0.0);
        for k in 0..m {
            let cb = cost[w.basis[k] as usize];
            if cb != 0.0 {
                let row = &w.binv[k * m..(k + 1) * m];
                for (yi, ri) in w.y.iter_mut().zip(row) {
                    *yi += cb * ri;
                }
            }
        }
        // Pricing.
        let total = p.n + w.art_row.len();
        let bland = w.degen_streak >= DEGEN_LIMIT;
        let mut enter: Option<(usize, f64, i8)> = None; // (col, |d|, dir)
        for j in 0..total {
            if w.basic_row[j] >= 0 || w.lb[j] == w.ub[j] {
                continue;
            }
            let mut d = cost[j];
            for_col(p, w, j, |i, a| d -= w.y[i] * a);
            let free = !w.lb[j].is_finite() && !w.ub[j].is_finite();
            let dir: i8 = if free {
                if d < -OPT_TOL {
                    1
                } else if d > OPT_TOL {
                    -1
                } else {
                    0
                }
            } else if w.at_upper[j] {
                if d > OPT_TOL {
                    -1
                } else {
                    0
                }
            } else if d < -OPT_TOL {
                1
            } else {
                0
            };
            if dir == 0 {
                continue;
            }
            if bland {
                enter = Some((j, d.abs(), dir));
                break;
            }
            if enter.is_none_or(|(_, best, _)| d.abs() > best) {
                enter = Some((j, d.abs(), dir));
            }
        }
        let Some((j, _, dir)) = enter else {
            return LpStatus::Optimal;
        };

        compute_column(p, w, j);
        let sigma = dir as f64;

        // Ratio test: step `t >= 0` in direction sigma.
        let span = w.ub[j] - w.lb[j]; // may be inf
        let mut t_best = if span.is_finite() {
            span
        } else {
            f64::INFINITY
        };
        let mut leave: Option<(usize, bool)> = None; // (row, leaves_at_upper)
        for k in 0..m {
            let wk = sigma * w.v[k];
            if wk.abs() <= PIVOT_TOL {
                continue;
            }
            let bvar = w.basis[k] as usize;
            // x_Bk moves by -t * wk.
            let (limit, at_up) = if wk > 0.0 {
                (w.lb[bvar], false)
            } else {
                (w.ub[bvar], true)
            };
            if !limit.is_finite() {
                continue;
            }
            let t = ((w.xb[k] - limit) / wk).max(0.0);
            if t < t_best - RATIO_TIE_TOL
                || (t < t_best + RATIO_TIE_TOL
                    && leave.is_some_and(|(lk, _)| w.v[k].abs() > w.v[lk].abs()))
            {
                t_best = t;
                leave = Some((k, at_up));
            }
        }

        if t_best.is_infinite() {
            return LpStatus::Unbounded;
        }
        w.iterations += 1;
        w.degen_streak = if t_best < DEGEN_STEP_TOL {
            w.degen_streak + 1
        } else {
            0
        };
        // Watchdog escalation: Bland's rule engaged at DEGEN_LIMIT (see
        // `bland` above); a persisting streak next forces a refactorization
        // (a drifted inverse can fake degeneracy), and finally abandons the
        // solve rather than cycle forever on an unstable instance.
        if w.degen_streak == STALL_REFACTOR {
            refactor(p, w);
        } else if w.degen_streak >= STALL_ABORT {
            return LpStatus::Stalled;
        }

        match leave {
            None => {
                // Bound flip: entering runs to its opposite bound.
                for k in 0..m {
                    w.xb[k] -= sigma * t_best * w.v[k];
                }
                w.at_upper[j] = !w.at_upper[j];
            }
            Some((row, leaves_at_upper)) => {
                let enter_val = nb_value(w, j) + sigma * t_best;
                for k in 0..m {
                    if k != row {
                        w.xb[k] -= sigma * t_best * w.v[k];
                    }
                }
                let leaving = w.basis[row] as usize;
                w.at_upper[leaving] = leaves_at_upper;
                let v = std::mem::take(&mut w.v);
                apply_pivot(p, w, row, j, &v, enter_val);
                w.v = v;
            }
        }
    }
}

/// Replaces the basic variable of `row` with column `j`, given the
/// transformed entering column `v = B^{-1} A_j`, updating the inverse and
/// bookkeeping.
fn apply_pivot(p: &Problem, w: &mut Work, row: usize, j: usize, v: &[f64], enter_val: f64) {
    let m = p.m;
    let leaving = w.basis[row] as usize;
    w.basic_row[leaving] = -1;
    w.basis[row] = j as u32;
    w.basic_row[j] = row as i32;
    w.xb[row] = enter_val;

    let inv_piv = 1.0 / v[row];
    // Scale pivot row of binv, then eliminate the other rows.
    for c in 0..m {
        w.binv[row * m + c] *= inv_piv;
    }
    let (before, rest) = w.binv.split_at_mut(row * m);
    let (pivot_row, after) = rest.split_at_mut(m);
    for (k, chunk) in before.chunks_exact_mut(m).enumerate() {
        let f = v[k];
        if f.abs() > ELIM_SKIP_TOL {
            for (x, pr) in chunk.iter_mut().zip(pivot_row.iter()) {
                *x -= f * pr;
            }
        }
    }
    for (k, chunk) in after.chunks_exact_mut(m).enumerate() {
        let f = v[row + 1 + k];
        if f.abs() > ELIM_SKIP_TOL {
            for (x, pr) in chunk.iter_mut().zip(pivot_row.iter()) {
                *x -= f * pr;
            }
        }
    }
    w.pivots_since_refactor += 1;
}

/// Rebuilds `binv` and `xb` from the basis by Gauss-Jordan elimination.
#[allow(clippy::needless_range_loop)] // dense Gauss-Jordan indexing
fn refactor(p: &Problem, w: &mut Work) {
    let m = p.m;
    let mut bmat = vec![0.0; m * m];
    for (col, &bv) in w.basis.iter().enumerate() {
        let bv = bv as usize;
        if bv < p.n {
            for &(i, a) in &p.cols[bv] {
                bmat[i as usize * m + col] = a;
            }
        } else {
            let idx = bv - p.n;
            bmat[w.art_row[idx] as usize * m + col] = w.art_sign[idx];
        }
    }
    let mut inv = vec![0.0; m * m];
    for i in 0..m {
        inv[i * m + i] = 1.0;
    }
    for col in 0..m {
        let mut piv = col;
        for r in col + 1..m {
            if bmat[r * m + col].abs() > bmat[piv * m + col].abs() {
                piv = r;
            }
        }
        if bmat[piv * m + col].abs() < SINGULAR_TOL {
            // Singular basis should not happen; bail out leaving the old
            // inverse in place (residual check will catch trouble).
            return;
        }
        if piv != col {
            for c in 0..m {
                bmat.swap(piv * m + c, col * m + c);
                inv.swap(piv * m + c, col * m + c);
            }
        }
        let d = 1.0 / bmat[col * m + col];
        for c in 0..m {
            bmat[col * m + c] *= d;
            inv[col * m + c] *= d;
        }
        for r in 0..m {
            if r == col {
                continue;
            }
            let f = bmat[r * m + col];
            if f == 0.0 {
                continue;
            }
            for c in 0..m {
                bmat[r * m + c] -= f * bmat[col * m + c];
                inv[r * m + c] -= f * inv[col * m + c];
            }
        }
    }
    w.binv = inv;
    recompute_xb(p, w);
    w.pivots_since_refactor = 0;
    w.refactors += 1;
}

/// Recomputes basic values `x_B = B^{-1} (b - N x_N)`.
fn recompute_xb(p: &Problem, w: &mut Work) {
    let m = p.m;
    let total = p.n + w.art_row.len();
    let mut rhs = p.b.clone();
    for j in 0..total {
        if w.basic_row[j] >= 0 {
            continue;
        }
        let x = nb_value(w, j);
        if x != 0.0 {
            for_col(p, w, j, |i, a| rhs[i] -= a * x);
        }
    }
    for k in 0..m {
        let row = &w.binv[k * m..(k + 1) * m];
        w.xb[k] = row.iter().zip(&rhs).map(|(a, b)| a * b).sum();
    }
}

/// Verifies `A x = b` within tolerance for the current point.
fn residual_ok(p: &Problem, w: &mut Work) -> bool {
    let total = p.n + w.art_row.len();
    let mut r = p.b.clone();
    for j in 0..total {
        let x = if w.basic_row[j] >= 0 {
            w.xb[w.basic_row[j] as usize]
        } else {
            nb_value(w, j)
        };
        if x != 0.0 {
            for_col(p, w, j, |i, a| r[i] -= a * x);
        }
    }
    r.iter().all(|x| x.abs() <= RESIDUAL_TOL)
}

fn extract(p: &Problem, w: &Work, status: LpStatus) -> LpOutcome {
    let mut values = vec![0.0; p.n_struct];
    if status == LpStatus::Optimal {
        for (j, value) in values.iter_mut().enumerate() {
            *value = if w.basic_row[j] >= 0 {
                w.xb[w.basic_row[j] as usize]
            } else {
                nb_value(w, j)
            };
        }
    }
    let raw: f64 = values.iter().zip(&p.cost).map(|(x, c)| x * c).sum();
    let objective = if status == LpStatus::Optimal {
        if p.maximize {
            -raw + p.obj_constant
        } else {
            raw + p.obj_constant
        }
    } else {
        f64::NAN
    };
    LpOutcome {
        status,
        objective,
        values,
        iterations: w.iterations,
        refactors: w.refactors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    fn solve_lp(model: &Model) -> LpOutcome {
        let mut sx = Simplex::new(model);
        let lb: Vec<f64> = (0..model.num_vars()).map(|j| model.vars[j].lb).collect();
        let ub: Vec<f64> = (0..model.num_vars()).map(|j| model.vars[j].ub).collect();
        sx.solve(&lb, &ub, &SimplexOptions::default())
    }

    #[test]
    fn trivial_bounds_only() {
        let mut m = Model::new();
        let x = m.num_var(1.0, 5.0, "x");
        m.set_objective(Sense::Minimize, [(x, 1.0)]);
        let out = solve_lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.objective - 1.0).abs() < 1e-8);
    }

    #[test]
    fn classic_2d_max() {
        // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 -> obj 36 at (2, 6)
        let mut m = Model::new();
        let x = m.num_var(0.0, f64::INFINITY, "x");
        let y = m.num_var(0.0, f64::INFINITY, "y");
        m.set_objective(Sense::Maximize, [(x, 3.0), (y, 5.0)]);
        m.add_le([(x, 1.0)], 4.0, "c1");
        m.add_le([(y, 2.0)], 12.0, "c2");
        m.add_le([(x, 3.0), (y, 2.0)], 18.0, "c3");
        let out = solve_lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.objective - 36.0).abs() < 1e-7, "{}", out.objective);
        assert!((out.values[0] - 2.0).abs() < 1e-7);
        assert!((out.values[1] - 6.0).abs() < 1e-7);
    }

    #[test]
    fn equality_rows_need_phase1() {
        // min x + y st x + y = 10, x - y = 4 -> x=7, y=3, obj 10
        let mut m = Model::new();
        let x = m.num_var(0.0, f64::INFINITY, "x");
        let y = m.num_var(0.0, f64::INFINITY, "y");
        m.set_objective(Sense::Minimize, [(x, 1.0), (y, 1.0)]);
        m.add_eq([(x, 1.0), (y, 1.0)], 10.0, "sum");
        m.add_eq([(x, 1.0), (y, -1.0)], 4.0, "diff");
        let out = solve_lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.values[0] - 7.0).abs() < 1e-7);
        assert!((out.values[1] - 3.0).abs() < 1e-7);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new();
        let x = m.num_var(0.0, 1.0, "x");
        m.add_ge([(x, 1.0)], 2.0, "too-big");
        let out = solve_lp(&m);
        assert_eq!(out.status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new();
        let x = m.num_var(0.0, f64::INFINITY, "x");
        m.set_objective(Sense::Maximize, [(x, 1.0)]);
        m.add_ge([(x, 1.0)], 1.0, "at-least-one");
        let out = solve_lp(&m);
        assert_eq!(out.status, LpStatus::Unbounded);
    }

    #[test]
    fn ge_rows_and_negative_coeffs() {
        let mut m = Model::new();
        let x = m.num_var(0.0, f64::INFINITY, "x");
        let y = m.num_var(0.0, 3.0, "y");
        m.set_objective(Sense::Minimize, [(x, 2.0), (y, 3.0)]);
        m.add_ge([(x, 1.0), (y, 1.0)], 4.0, "c1");
        m.add_le([(x, 1.0), (y, -1.0)], 2.0, "c2");
        let out = solve_lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.objective - 9.0).abs() < 1e-7, "{}", out.objective);
    }

    #[test]
    fn free_variable_enters() {
        // min x st x + y = 3, y in [0, 1], x free -> x = 2
        let mut m = Model::new();
        let x = m.num_var(f64::NEG_INFINITY, f64::INFINITY, "x");
        let y = m.num_var(0.0, 1.0, "y");
        m.set_objective(Sense::Minimize, [(x, 1.0)]);
        m.add_eq([(x, 1.0), (y, 1.0)], 3.0, "sum");
        let out = solve_lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.objective - 2.0).abs() < 1e-7, "{}", out.objective);
    }

    #[test]
    fn negative_lower_bounds() {
        let mut m = Model::new();
        let x = m.num_var(-5.0, 5.0, "x");
        let y = m.num_var(-5.0, 5.0, "y");
        m.set_objective(Sense::Minimize, [(x, 1.0), (y, 1.0)]);
        m.add_ge([(x, 1.0), (y, 1.0)], -3.0, "floor");
        let out = solve_lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.objective + 3.0).abs() < 1e-7, "{}", out.objective);
    }

    #[test]
    fn bound_flip_path() {
        let mut m = Model::new();
        let x = m.num_var(0.0, 1.0, "x");
        let y = m.num_var(0.0, 1.0, "y");
        m.set_objective(Sense::Maximize, [(x, 1.0), (y, 1.0)]);
        m.add_le([(x, 1.0), (y, 1.0)], 1.5, "cap");
        let out = solve_lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.objective - 1.5).abs() < 1e-7);
    }

    #[test]
    fn degenerate_problem_terminates() {
        let mut m = Model::new();
        let x = m.num_var(0.0, 10.0, "x");
        let y = m.num_var(0.0, 10.0, "y");
        m.set_objective(Sense::Maximize, [(x, 1.0), (y, 1.0)]);
        for i in 0..20 {
            let a = 1.0 + (i as f64) * 0.1;
            m.add_le([(x, a), (y, 1.0)], 10.0, format!("c{i}"));
        }
        let out = solve_lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!(out.objective > 0.0);
    }

    #[test]
    fn fixed_variables_are_respected() {
        let mut m = Model::new();
        let x = m.num_var(2.0, 2.0, "x");
        let y = m.num_var(0.0, 10.0, "y");
        m.set_objective(Sense::Minimize, [(y, 1.0)]);
        m.add_ge([(x, 1.0), (y, 1.0)], 5.0, "c");
        let out = solve_lp(&m);
        assert_eq!(out.status, LpStatus::Optimal);
        assert!((out.values[1] - 3.0).abs() < 1e-7);
    }

    #[test]
    fn workspace_reuse_across_solves() {
        // The same instance solved repeatedly with different bounds must
        // give fresh, correct answers each time.
        let mut m = Model::new();
        let x = m.num_var(0.0, 10.0, "x");
        let y = m.num_var(0.0, 10.0, "y");
        m.set_objective(Sense::Maximize, [(x, 1.0), (y, 2.0)]);
        m.add_le([(x, 1.0), (y, 1.0)], 6.0, "cap");
        let mut sx = Simplex::new(&m);
        let o1 = sx.solve(&[0.0, 0.0], &[10.0, 10.0], &SimplexOptions::default());
        assert!((o1.objective - 12.0).abs() < 1e-7); // y = 6
        let o2 = sx.solve(&[0.0, 0.0], &[10.0, 2.0], &SimplexOptions::default());
        assert!((o2.objective - 8.0).abs() < 1e-7); // y = 2, x = 4
        let o3 = sx.solve(&[5.0, 5.0], &[10.0, 10.0], &SimplexOptions::default());
        assert_eq!(o3.status, LpStatus::Infeasible); // 5 + 5 > 6
        let o4 = sx.solve(&[0.0, 0.0], &[10.0, 10.0], &SimplexOptions::default());
        assert!((o4.objective - 12.0).abs() < 1e-7);
    }
}
