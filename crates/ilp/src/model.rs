//! Problem description: variables, linear expressions, constraints, and the
//! [`Model`] builder.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

use crate::branch_bound::{SolveLimits, Solver};
use crate::solution::SolveOutcome;

/// Identifier of a decision variable inside one [`Model`].
///
/// `VarId`s are dense indices handed out by [`Model::num_var`] and friends; they
/// are only meaningful for the model that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Returns the dense index of this variable (its creation order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Identifier of a constraint row inside one [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConstraintId(pub(crate) u32);

impl ConstraintId {
    /// Returns the dense index of this constraint (its creation order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Direction of optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Sense {
    /// Minimize the objective expression.
    #[default]
    Minimize,
    /// Maximize the objective expression.
    Maximize,
}

/// Relation of a constraint row to its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowSense {
    /// `expr <= rhs`
    Le,
    /// `expr = rhs`
    Eq,
    /// `expr >= rhs`
    Ge,
}

/// A linear expression `sum(coeff_i * var_i) + constant`.
///
/// Expressions are built either from `(VarId, f64)` pairs or with the
/// overloaded `+`, `-`, and `*` operators:
///
/// ```
/// use optimod_ilp::{LinExpr, Model};
/// let mut m = Model::new();
/// let x = m.num_var(0.0, 10.0, "x");
/// let y = m.num_var(0.0, 10.0, "y");
/// let e = LinExpr::from(x) * 3.0 + y - 1.0;
/// assert_eq!(e.constant(), -1.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    terms: Vec<(VarId, f64)>,
    constant: f64,
}

impl LinExpr {
    /// Creates the zero expression.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a constant expression.
    pub fn constant_expr(c: f64) -> Self {
        LinExpr {
            terms: Vec::new(),
            constant: c,
        }
    }

    /// Creates the expression `coeff * var`.
    pub fn term(var: VarId, coeff: f64) -> Self {
        LinExpr {
            terms: vec![(var, coeff)],
            constant: 0.0,
        }
    }

    /// Adds `coeff * var` to the expression.
    pub fn add_term(&mut self, var: VarId, coeff: f64) -> &mut Self {
        self.terms.push((var, coeff));
        self
    }

    /// Adds a constant to the expression.
    pub fn add_constant(&mut self, c: f64) -> &mut Self {
        self.constant += c;
        self
    }

    /// The additive constant of the expression.
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// Iterates over the raw (possibly duplicated) terms.
    pub fn terms(&self) -> impl Iterator<Item = (VarId, f64)> + '_ {
        self.terms.iter().copied()
    }

    /// Number of raw terms (duplicates not merged).
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the expression has no variable terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Merges duplicate variables and drops (numerically) zero coefficients.
    ///
    /// Returns dense `(var, coeff)` pairs sorted by variable index.
    pub fn compacted(&self) -> Vec<(VarId, f64)> {
        let mut v = self.terms.clone();
        v.sort_by_key(|&(var, _)| var);
        let mut out: Vec<(VarId, f64)> = Vec::with_capacity(v.len());
        for (var, c) in v {
            match out.last_mut() {
                Some((last, acc)) if *last == var => *acc += c,
                _ => out.push((var, c)),
            }
        }
        out.retain(|&(_, c)| c.abs() > 1e-12);
        out
    }

    /// Evaluates the expression against a dense assignment indexed by
    /// variable index.
    ///
    /// # Panics
    ///
    /// Panics if a referenced variable index is out of range of `values`.
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|&(v, c)| c * values[v.index()])
                .sum::<f64>()
    }
}

impl From<VarId> for LinExpr {
    fn from(v: VarId) -> Self {
        LinExpr::term(v, 1.0)
    }
}

impl<I: IntoIterator<Item = (VarId, f64)>> From<I> for LinExpr {
    fn from(terms: I) -> Self {
        LinExpr {
            terms: terms.into_iter().collect(),
            constant: 0.0,
        }
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        self += rhs;
        self
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        self.terms.extend(rhs.terms);
        self.constant += rhs.constant;
    }
}

impl Add<VarId> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, v: VarId) -> LinExpr {
        self.terms.push((v, 1.0));
        self
    }
}

impl Add<f64> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, c: f64) -> LinExpr {
        self.constant += c;
        self
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: LinExpr) -> LinExpr {
        self -= rhs;
        self
    }
}

impl SubAssign for LinExpr {
    fn sub_assign(&mut self, rhs: LinExpr) {
        self.terms
            .extend(rhs.terms.into_iter().map(|(v, c)| (v, -c)));
        self.constant -= rhs.constant;
    }
}

impl Sub<VarId> for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, v: VarId) -> LinExpr {
        self.terms.push((v, -1.0));
        self
    }
}

impl Sub<f64> for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, c: f64) -> LinExpr {
        self.constant -= c;
        self
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, s: f64) -> LinExpr {
        for (_, c) in &mut self.terms {
            *c *= s;
        }
        self.constant *= s;
        self
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        self * -1.0
    }
}

#[derive(Debug, Clone)]
pub(crate) struct VarDef {
    pub lb: f64,
    pub ub: f64,
    pub integer: bool,
    pub name: String,
}

/// Provenance of a constraint row: which source-level scheduling construct
/// built it.
///
/// Tags let analyses (presolve clique detection, the infeasibility
/// explanation engine) map rows back to dependence edges, MRT resource
/// rows, and assignment constraints without parsing row names. Builders
/// that don't record provenance leave rows [`RowTag::Untagged`]; the tag
/// never affects solving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RowTag {
    /// No provenance recorded (the default for ad-hoc rows).
    #[default]
    Untagged,
    /// Eq. 1 assignment row of operation `#i`.
    Assignment(u32),
    /// Dependence row(s) of scheduling edge `#i` (a structured-form edge
    /// contributes several rows, all tagged with the same edge).
    Dependence(u32),
    /// MRT packing row (Ineq. 5) of one resource at one row.
    Resource {
        /// Dense resource index (creation order in the machine).
        resource: u32,
        /// MRT row within `0..II`.
        row: u32,
    },
    /// Secondary-objective coupling row (kills, MaxLive, lifetimes).
    Objective,
}

#[derive(Debug, Clone)]
pub(crate) struct RowDef {
    pub coeffs: Vec<(VarId, f64)>,
    pub sense: RowSense,
    pub rhs: f64,
    pub name: String,
    pub tag: RowTag,
}

/// Read-only view of one constraint row, as stored in a [`Model`].
///
/// Obtained from [`Model::row`] / [`Model::rows`]; the coefficient slice is
/// compacted (duplicates merged, zero coefficients dropped) and sorted by
/// variable index.
#[derive(Debug, Clone, Copy)]
pub struct RowView<'a> {
    /// Compacted `(variable, coefficient)` pairs, sorted by variable index.
    pub coeffs: &'a [(VarId, f64)],
    /// Relation of the row to its right-hand side.
    pub sense: RowSense,
    /// Right-hand side (expression constants already folded in).
    pub rhs: f64,
    /// Name given to the row at creation.
    pub name: &'a str,
    /// Provenance of the row (see [`RowTag`]).
    pub tag: RowTag,
}

/// A mixed-integer linear program under construction.
///
/// A model owns its variables and constraints; solving is delegated to
/// [`Solver`] (or the [`Model::solve`] convenience wrapper).
///
/// Variables always carry finite or infinite bounds; integrality is a
/// per-variable flag. Constraints are stored verbatim — no presolve or row
/// reduction is applied, so [`Model::num_vars`]/[`Model::num_constraints`]
/// report the formulation sizes "prior to any simplifications", exactly as
/// the paper's Tables 1 and 2 do.
#[derive(Debug, Clone, Default)]
pub struct Model {
    pub(crate) vars: Vec<VarDef>,
    pub(crate) rows: Vec<RowDef>,
    pub(crate) obj_sense: Sense,
    pub(crate) objective: Vec<(VarId, f64)>,
    pub(crate) obj_constant: f64,
}

impl Model {
    /// Creates an empty model (minimization by default, zero objective).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a continuous variable with bounds `[lb, ub]`.
    ///
    /// Use `f64::NEG_INFINITY` / `f64::INFINITY` for unbounded directions.
    ///
    /// # Panics
    ///
    /// Panics if `lb > ub` or either bound is NaN.
    pub fn num_var(&mut self, lb: f64, ub: f64, name: impl Into<String>) -> VarId {
        assert!(
            !lb.is_nan() && !ub.is_nan(),
            "variable bounds must not be NaN"
        );
        assert!(lb <= ub, "variable lower bound exceeds upper bound");
        let id = VarId(u32::try_from(self.vars.len()).expect("too many variables"));
        self.vars.push(VarDef {
            lb,
            ub,
            integer: false,
            name: name.into(),
        });
        id
    }

    /// Adds an integer variable with bounds `[lb, ub]`.
    ///
    /// # Panics
    ///
    /// Panics if `lb > ub` or either bound is NaN.
    pub fn int_var(&mut self, lb: f64, ub: f64, name: impl Into<String>) -> VarId {
        let id = self.num_var(lb, ub, name);
        self.vars[id.index()].integer = true;
        id
    }

    /// Adds a binary (0/1 integer) variable.
    pub fn bool_var(&mut self, name: impl Into<String>) -> VarId {
        self.int_var(0.0, 1.0, name)
    }

    /// Number of variables in the model.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraint rows in the model.
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Number of integer (including binary) variables.
    pub fn num_int_vars(&self) -> usize {
        self.vars.iter().filter(|v| v.integer).count()
    }

    /// Iterates over every variable id, in creation order.
    pub fn var_ids(&self) -> impl Iterator<Item = VarId> {
        (0..self.vars.len() as u32).map(VarId)
    }

    /// Lower bound of `var`.
    pub fn lb(&self, var: VarId) -> f64 {
        self.vars[var.index()].lb
    }

    /// Upper bound of `var`.
    pub fn ub(&self, var: VarId) -> f64 {
        self.vars[var.index()].ub
    }

    /// Whether `var` is constrained to integer values.
    pub fn is_integer(&self, var: VarId) -> bool {
        self.vars[var.index()].integer
    }

    /// Name given to `var` at creation.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.vars[var.index()].name
    }

    /// Replaces the bounds of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `lb > ub` or either bound is NaN.
    pub fn set_bounds(&mut self, var: VarId, lb: f64, ub: f64) {
        assert!(
            !lb.is_nan() && !ub.is_nan(),
            "variable bounds must not be NaN"
        );
        assert!(lb <= ub, "variable lower bound exceeds upper bound");
        let v = &mut self.vars[var.index()];
        v.lb = lb;
        v.ub = ub;
    }

    /// Sets the objective `sense` and expression.
    pub fn set_objective(&mut self, sense: Sense, expr: impl Into<LinExpr>) {
        let expr = expr.into();
        self.obj_sense = sense;
        self.objective = expr.compacted();
        self.obj_constant = expr.constant();
    }

    /// The objective sense.
    pub fn objective_sense(&self) -> Sense {
        self.obj_sense
    }

    /// The compacted objective terms.
    pub fn objective_terms(&self) -> &[(VarId, f64)] {
        &self.objective
    }

    /// Adds a constraint `expr (sense) rhs`. The expression's constant is
    /// folded into the right-hand side.
    pub fn add_row(
        &mut self,
        expr: impl Into<LinExpr>,
        sense: RowSense,
        rhs: f64,
        name: impl Into<String>,
    ) -> ConstraintId {
        let expr = expr.into();
        let id = ConstraintId(u32::try_from(self.rows.len()).expect("too many constraints"));
        self.rows.push(RowDef {
            coeffs: expr.compacted(),
            sense,
            rhs: rhs - expr.constant(),
            name: name.into(),
            tag: RowTag::default(),
        });
        id
    }

    /// Records provenance for the rows added since index `start` (used by
    /// model builders to tag a just-emitted batch, e.g. all rows of one
    /// dependence edge).
    pub fn tag_rows_from(&mut self, start: usize, tag: RowTag) {
        for r in &mut self.rows[start..] {
            r.tag = tag;
        }
    }

    /// Provenance tag of the constraint row at dense index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.num_constraints()`.
    pub fn row_tag(&self, i: usize) -> RowTag {
        self.rows[i].tag
    }

    /// Adds `expr <= rhs`.
    pub fn add_le(
        &mut self,
        expr: impl Into<LinExpr>,
        rhs: f64,
        name: impl Into<String>,
    ) -> ConstraintId {
        self.add_row(expr, RowSense::Le, rhs, name)
    }

    /// Adds `expr >= rhs`.
    pub fn add_ge(
        &mut self,
        expr: impl Into<LinExpr>,
        rhs: f64,
        name: impl Into<String>,
    ) -> ConstraintId {
        self.add_row(expr, RowSense::Ge, rhs, name)
    }

    /// Adds `expr = rhs`.
    pub fn add_eq(
        &mut self,
        expr: impl Into<LinExpr>,
        rhs: f64,
        name: impl Into<String>,
    ) -> ConstraintId {
        self.add_row(expr, RowSense::Eq, rhs, name)
    }

    /// Read-only view of the constraint row at dense index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.num_constraints()`.
    pub fn row(&self, i: usize) -> RowView<'_> {
        let r = &self.rows[i];
        RowView {
            coeffs: &r.coeffs,
            sense: r.sense,
            rhs: r.rhs,
            name: &r.name,
            tag: r.tag,
        }
    }

    /// Iterates over read-only views of all constraint rows, in creation
    /// order.
    pub fn rows(&self) -> impl Iterator<Item = RowView<'_>> {
        self.rows.iter().map(|r| RowView {
            coeffs: &r.coeffs,
            sense: r.sense,
            rhs: r.rhs,
            name: &r.name,
            tag: r.tag,
        })
    }

    /// Retains only the constraint rows whose dense index satisfies `keep`,
    /// preserving the relative order of the survivors.
    ///
    /// Intended for presolve-style row elimination. Any [`ConstraintId`]
    /// handed out before this call is invalidated (row indices are dense and
    /// re-compacted); variables and their ids are untouched.
    pub fn retain_rows(&mut self, mut keep: impl FnMut(usize) -> bool) {
        let mut i = 0usize;
        self.rows.retain(|_| {
            let k = keep(i);
            i += 1;
            k
        });
    }

    /// Checks a candidate assignment against all rows, bounds, and
    /// integrality requirements; returns the first violation description.
    ///
    /// Intended for tests and debugging (`None` means feasible within
    /// `tol`).
    pub fn check_feasible(&self, values: &[f64], tol: f64) -> Option<String> {
        if values.len() != self.vars.len() {
            return Some(format!(
                "assignment has {} values for {} variables",
                values.len(),
                self.vars.len()
            ));
        }
        for (j, v) in self.vars.iter().enumerate() {
            let x = values[j];
            if x < v.lb - tol || x > v.ub + tol {
                return Some(format!(
                    "variable {} = {x} outside [{}, {}]",
                    v.name, v.lb, v.ub
                ));
            }
            if v.integer && (x - x.round()).abs() > tol.max(crate::INT_TOL) {
                return Some(format!("variable {} = {x} not integral", v.name));
            }
        }
        for row in &self.rows {
            let lhs: f64 = row.coeffs.iter().map(|&(v, c)| c * values[v.index()]).sum();
            let ok = match row.sense {
                RowSense::Le => lhs <= row.rhs + tol,
                RowSense::Ge => lhs >= row.rhs - tol,
                RowSense::Eq => (lhs - row.rhs).abs() <= tol,
            };
            if !ok {
                return Some(format!(
                    "row {}: lhs {lhs} {:?} rhs {}",
                    row.name, row.sense, row.rhs
                ));
            }
        }
        None
    }

    /// True when every objective coefficient is integral and every variable
    /// with a nonzero objective coefficient is an integer variable — in that
    /// case any feasible objective value is integral, which lets
    /// branch-and-bound round its dual bounds.
    pub fn objective_is_integral(&self) -> bool {
        self.objective
            .iter()
            .all(|&(v, c)| self.vars[v.index()].integer && (c - c.round()).abs() < 1e-9)
            && (self.obj_constant - self.obj_constant.round()).abs() < 1e-9
    }

    /// Solves the model with default [`SolveLimits`].
    ///
    /// Convenience for `Solver::new(limits).solve(self)`.
    pub fn solve(&self) -> SolveOutcome {
        Solver::new(SolveLimits::default()).solve(self)
    }

    /// Solves the model with explicit limits.
    pub fn solve_with(&self, limits: SolveLimits) -> SolveOutcome {
        Solver::new(limits).solve(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_operators_combine_terms() {
        let mut m = Model::new();
        let x = m.num_var(0.0, 1.0, "x");
        let y = m.num_var(0.0, 1.0, "y");
        let e = (LinExpr::from(x) * 2.0 + y - 0.5) - LinExpr::term(x, 1.0);
        let c = e.compacted();
        assert_eq!(c, vec![(x, 1.0), (y, 1.0)]);
        assert_eq!(e.constant(), -0.5);
    }

    #[test]
    fn compacted_drops_zero_coefficients() {
        let mut m = Model::new();
        let x = m.num_var(0.0, 1.0, "x");
        let e = LinExpr::from(x) - LinExpr::from(x);
        assert!(e.compacted().is_empty());
    }

    #[test]
    fn row_constant_folds_into_rhs() {
        let mut m = Model::new();
        let x = m.num_var(0.0, 10.0, "x");
        let e = LinExpr::from(x) + 3.0;
        m.add_le(e, 5.0, "r");
        assert_eq!(m.rows[0].rhs, 2.0);
    }

    #[test]
    fn check_feasible_reports_violations() {
        let mut m = Model::new();
        let x = m.int_var(0.0, 4.0, "x");
        m.add_ge([(x, 1.0)], 2.0, "low");
        assert!(m.check_feasible(&[1.0], 1e-9).is_some());
        assert!(m.check_feasible(&[2.5], 1e-9).is_some()); // not integral
        assert!(m.check_feasible(&[3.0], 1e-9).is_none());
    }

    #[test]
    fn objective_integrality_detection() {
        let mut m = Model::new();
        let x = m.int_var(0.0, 4.0, "x");
        let y = m.num_var(0.0, 4.0, "y");
        m.set_objective(Sense::Minimize, [(x, 2.0)]);
        assert!(m.objective_is_integral());
        m.set_objective(Sense::Minimize, [(x, 2.0), (y, 1.0)]);
        assert!(!m.objective_is_integral());
        m.set_objective(Sense::Minimize, [(x, 0.5)]);
        assert!(!m.objective_is_integral());
    }

    #[test]
    #[should_panic(expected = "lower bound exceeds upper")]
    fn invalid_bounds_panic() {
        let mut m = Model::new();
        m.num_var(1.0, 0.0, "bad");
    }
}
