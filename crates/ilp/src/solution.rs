//! Solve outcomes and the effort statistics the paper's evaluation reports.

use std::error::Error;
use std::fmt;
use std::time::Duration;

/// An abnormal solver condition, reported alongside the outcome instead of
/// unwinding through the caller.
///
/// A [`SolveOutcome`] carrying one of these still has a well-formed status
/// (typically [`SolveStatus::LimitReached`], or [`SolveStatus::Feasible`]
/// when an incumbent was already in hand): the solver degrades, it does not
/// die. Callers that need the cause (the scheduler's fallback ladder, the
/// corpus driver's outcome table) read it from [`SolveOutcome::error`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The simplex stalled: a long run of degenerate pivots survived both
    /// the switch to Bland's anti-cycling rule and a basis refactorization,
    /// indicating numerical instability on this LP.
    NumericallyUnstable {
        /// Pivots performed by the stalled LP before it was abandoned.
        iterations: u64,
    },
    /// A worker thread of the parallel search (or a speculative racer)
    /// panicked; the payload is the panic message.
    WorkerPanic(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::NumericallyUnstable { iterations } => write!(
                f,
                "simplex stalled after {iterations} iterations of degenerate pivots \
                 (numerical instability)"
            ),
            SolveError::WorkerPanic(msg) => write!(f, "solver worker panicked: {msg}"),
        }
    }
}

impl Error for SolveError {}

/// Extracts a human-readable message from a panic payload (the `Box<dyn
/// Any>` that [`std::thread::JoinHandle::join`] and
/// [`std::panic::catch_unwind`] return on unwind).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Final status of a branch-and-bound solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// An integral solution was found and proven optimal.
    Optimal,
    /// An integral solution was found, but a limit stopped the proof of
    /// optimality.
    Feasible,
    /// The problem was proven integer-infeasible.
    Infeasible,
    /// A limit (time, nodes, or iterations) was reached before any integral
    /// solution was found; nothing is known.
    LimitReached,
}

impl SolveStatus {
    /// Whether an integral assignment is available in the outcome.
    pub fn has_solution(self) -> bool {
        matches!(self, SolveStatus::Optimal | SolveStatus::Feasible)
    }

    /// Stable lower-case identifier (used in trace events and JSON).
    pub fn name(self) -> &'static str {
        match self {
            SolveStatus::Optimal => "optimal",
            SolveStatus::Feasible => "feasible",
            SolveStatus::Infeasible => "infeasible",
            SolveStatus::LimitReached => "limit-reached",
        }
    }
}

impl fmt::Display for SolveStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SolveStatus::Optimal => "optimal",
            SolveStatus::Feasible => "feasible (limit reached)",
            SolveStatus::Infeasible => "infeasible",
            SolveStatus::LimitReached => "limit reached (no solution)",
        };
        f.write_str(s)
    }
}

/// Solver-effort statistics, mirroring the measurements of the paper's
/// Tables 1 and 2 (variables, constraints, branch-and-bound nodes, simplex
/// iterations).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolveStats {
    /// Variables in the formulation, prior to any simplification.
    pub variables: u64,
    /// Constraint rows in the formulation, prior to any simplification.
    pub constraints: u64,
    /// Branch-and-bound nodes visited *beyond the root relaxation* — the
    /// paper counts the nodes CPLEX explores "when it must force variables to
    /// integral values", so a problem whose root LP is integral reports 0.
    pub bb_nodes: u64,
    /// Total simplex iterations across all LP solves.
    pub simplex_iterations: u64,
    /// Number of LP relaxations solved (root + one per node).
    pub lp_solves: u64,
    /// Incumbent updates: how many times a strictly better integral
    /// solution was accepted during the search.
    pub incumbents: u64,
    /// Basis refactorizations performed across all LP solves (the scheduled
    /// cadence set by [`SimplexOptions::refactor_every`](crate::SimplexOptions),
    /// watchdog-forced rebuilds, and warm-start basis installations).
    pub refactors: u64,
    /// Product-form eta updates absorbed by the sparse basis engine across
    /// all LP solves (0 when the dense engine ran).
    pub eta_pivots: u64,
    /// LP re-solves that successfully restarted from a parent node's basis
    /// snapshot instead of a crash basis.
    pub warm_starts: u64,
    /// Warm-start attempts abandoned (singular snapshot basis or dual-pivot
    /// cap) and retried cold.
    pub warm_abandoned: u64,
    /// Time spent in FTRAN solves (transformed columns and right-hand
    /// sides) across all LP solves.
    pub ftran_time: Duration,
    /// Time spent in BTRAN solves (pricing and dual rows) across all LP
    /// solves.
    pub btran_time: Duration,
    /// LP relaxations abandoned by the degenerate-pivot stall watchdog
    /// ([`LpStatus::Stalled`](crate::LpStatus)).
    pub stalled_lps: u64,
    /// Worker panics caught and recovered by the parallel search (and the
    /// scheduler's speculative racers).
    pub panics_recovered: u64,
    /// Injections of the solve's [`FaultPlan`](crate::FaultPlan) that
    /// tripped during this solve (0 when no plan is armed).
    pub faults_injected: u64,
    /// Portfolio SAT backend: decisions made by the CDCL search (0 when
    /// no SAT backend ran).
    pub sat_decisions: u64,
    /// Portfolio SAT backend: literal assignments made (decisions plus
    /// propagated implications).
    pub sat_propagations: u64,
    /// Portfolio SAT backend: conflicts analyzed.
    pub sat_conflicts: u64,
    /// Portfolio SAT backend: Luby restarts taken.
    pub sat_restarts: u64,
    /// Portfolio SAT backend: clauses learned from conflicts.
    pub sat_learned: u64,
    /// Wall-clock time spent in the solver.
    pub wall_time: Duration,
}

impl SolveStats {
    /// Accumulates another run's statistics into `self` (durations add).
    ///
    /// This is the *only* merge path for parallel workers and for the
    /// scheduler's per-`II` accumulation, so every counter must be folded
    /// here — the `absorb_merges_every_counter` test destructures the
    /// struct exhaustively so that adding a field without merging it fails
    /// to compile.
    pub fn absorb(&mut self, other: &SolveStats) {
        self.variables = self.variables.max(other.variables);
        self.constraints = self.constraints.max(other.constraints);
        self.bb_nodes += other.bb_nodes;
        self.simplex_iterations += other.simplex_iterations;
        self.lp_solves += other.lp_solves;
        self.incumbents += other.incumbents;
        self.refactors += other.refactors;
        self.eta_pivots += other.eta_pivots;
        self.warm_starts += other.warm_starts;
        self.warm_abandoned += other.warm_abandoned;
        self.ftran_time += other.ftran_time;
        self.btran_time += other.btran_time;
        self.stalled_lps += other.stalled_lps;
        self.panics_recovered += other.panics_recovered;
        self.faults_injected += other.faults_injected;
        self.sat_decisions += other.sat_decisions;
        self.sat_propagations += other.sat_propagations;
        self.sat_conflicts += other.sat_conflicts;
        self.sat_restarts += other.sat_restarts;
        self.sat_learned += other.sat_learned;
        self.wall_time += other.wall_time;
    }
}

/// Result of a branch-and-bound solve.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// Final status.
    pub status: SolveStatus,
    /// Objective of the best integral solution (model sense); `NaN` when no
    /// solution was found.
    pub objective: f64,
    /// Best integral assignment (empty when no solution was found).
    pub values: Vec<f64>,
    /// Best proven dual bound on the optimum (in the model's sense). Equals
    /// `objective` for [`SolveStatus::Optimal`].
    pub best_bound: f64,
    /// Effort statistics.
    pub stats: SolveStats,
    /// Abnormal condition encountered during the solve (numerical
    /// instability, a worker panic), if any. The status above remains
    /// honest — an error with an incumbent reports [`SolveStatus::Feasible`],
    /// without one [`SolveStatus::LimitReached`].
    pub error: Option<SolveError>,
}

impl SolveOutcome {
    /// Value of variable `v` in the best solution.
    ///
    /// # Panics
    ///
    /// Panics if no solution is available.
    pub fn value(&self, v: crate::VarId) -> f64 {
        assert!(
            self.status.has_solution(),
            "no solution available (status: {})",
            self.status
        );
        self.values[v.index()]
    }

    /// Value of variable `v` rounded to the nearest integer.
    ///
    /// # Panics
    ///
    /// Panics if no solution is available.
    pub fn int_value(&self, v: crate::VarId) -> i64 {
        self.value(v).round() as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `absorb` is the single merge path for parallel-worker and per-`II`
    /// statistics. The destructuring below is exhaustive on purpose: a new
    /// counter added to [`SolveStats`] without a merge rule (and without a
    /// line here) stops compiling instead of silently dropping data.
    #[test]
    fn absorb_merges_every_counter() {
        let mut a = SolveStats {
            variables: 10,
            constraints: 20,
            bb_nodes: 3,
            simplex_iterations: 100,
            lp_solves: 4,
            incumbents: 1,
            refactors: 2,
            eta_pivots: 50,
            warm_starts: 2,
            warm_abandoned: 1,
            ftran_time: Duration::from_millis(2),
            btran_time: Duration::from_millis(3),
            stalled_lps: 1,
            panics_recovered: 0,
            faults_injected: 1,
            sat_decisions: 10,
            sat_propagations: 100,
            sat_conflicts: 4,
            sat_restarts: 1,
            sat_learned: 3,
            wall_time: Duration::from_millis(5),
        };
        let b = SolveStats {
            variables: 7,
            constraints: 30,
            bb_nodes: 5,
            simplex_iterations: 40,
            lp_solves: 6,
            incumbents: 2,
            refactors: 3,
            eta_pivots: 25,
            warm_starts: 4,
            warm_abandoned: 0,
            ftran_time: Duration::from_millis(1),
            btran_time: Duration::from_millis(4),
            stalled_lps: 0,
            panics_recovered: 4,
            faults_injected: 2,
            sat_decisions: 5,
            sat_propagations: 50,
            sat_conflicts: 6,
            sat_restarts: 2,
            sat_learned: 7,
            wall_time: Duration::from_millis(7),
        };
        a.absorb(&b);
        let SolveStats {
            variables,
            constraints,
            bb_nodes,
            simplex_iterations,
            lp_solves,
            incumbents,
            refactors,
            eta_pivots,
            warm_starts,
            warm_abandoned,
            ftran_time,
            btran_time,
            stalled_lps,
            panics_recovered,
            faults_injected,
            sat_decisions,
            sat_propagations,
            sat_conflicts,
            sat_restarts,
            sat_learned,
            wall_time,
        } = a;
        // Model sizes keep the larger formulation; everything else sums.
        assert_eq!(variables, 10);
        assert_eq!(constraints, 30);
        assert_eq!(bb_nodes, 8);
        assert_eq!(simplex_iterations, 140);
        assert_eq!(lp_solves, 10);
        assert_eq!(incumbents, 3);
        assert_eq!(refactors, 5);
        assert_eq!(eta_pivots, 75);
        assert_eq!(warm_starts, 6);
        assert_eq!(warm_abandoned, 1);
        assert_eq!(ftran_time, Duration::from_millis(3));
        assert_eq!(btran_time, Duration::from_millis(7));
        assert_eq!(stalled_lps, 1);
        assert_eq!(panics_recovered, 4);
        assert_eq!(faults_injected, 3);
        assert_eq!(sat_decisions, 15);
        assert_eq!(sat_propagations, 150);
        assert_eq!(sat_conflicts, 10);
        assert_eq!(sat_restarts, 3);
        assert_eq!(sat_learned, 10);
        assert_eq!(wall_time, Duration::from_millis(12));
    }

    #[test]
    fn absorb_identity_on_default() {
        let mut a = SolveStats::default();
        let b = SolveStats {
            variables: 3,
            bb_nodes: 9,
            incumbents: 2,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a, b);
    }
}
