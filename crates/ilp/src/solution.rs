//! Solve outcomes and the effort statistics the paper's evaluation reports.

use std::fmt;
use std::time::Duration;

/// Final status of a branch-and-bound solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// An integral solution was found and proven optimal.
    Optimal,
    /// An integral solution was found, but a limit stopped the proof of
    /// optimality.
    Feasible,
    /// The problem was proven integer-infeasible.
    Infeasible,
    /// A limit (time, nodes, or iterations) was reached before any integral
    /// solution was found; nothing is known.
    LimitReached,
}

impl SolveStatus {
    /// Whether an integral assignment is available in the outcome.
    pub fn has_solution(self) -> bool {
        matches!(self, SolveStatus::Optimal | SolveStatus::Feasible)
    }
}

impl fmt::Display for SolveStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SolveStatus::Optimal => "optimal",
            SolveStatus::Feasible => "feasible (limit reached)",
            SolveStatus::Infeasible => "infeasible",
            SolveStatus::LimitReached => "limit reached (no solution)",
        };
        f.write_str(s)
    }
}

/// Solver-effort statistics, mirroring the measurements of the paper's
/// Tables 1 and 2 (variables, constraints, branch-and-bound nodes, simplex
/// iterations).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolveStats {
    /// Variables in the formulation, prior to any simplification.
    pub variables: u64,
    /// Constraint rows in the formulation, prior to any simplification.
    pub constraints: u64,
    /// Branch-and-bound nodes visited *beyond the root relaxation* — the
    /// paper counts the nodes CPLEX explores "when it must force variables to
    /// integral values", so a problem whose root LP is integral reports 0.
    pub bb_nodes: u64,
    /// Total simplex iterations across all LP solves.
    pub simplex_iterations: u64,
    /// Number of LP relaxations solved (root + one per node).
    pub lp_solves: u64,
    /// Wall-clock time spent in the solver.
    pub wall_time: Duration,
}

impl SolveStats {
    /// Accumulates another run's statistics into `self` (durations add).
    pub fn absorb(&mut self, other: &SolveStats) {
        self.variables = self.variables.max(other.variables);
        self.constraints = self.constraints.max(other.constraints);
        self.bb_nodes += other.bb_nodes;
        self.simplex_iterations += other.simplex_iterations;
        self.lp_solves += other.lp_solves;
        self.wall_time += other.wall_time;
    }
}

/// Result of a branch-and-bound solve.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// Final status.
    pub status: SolveStatus,
    /// Objective of the best integral solution (model sense); `NaN` when no
    /// solution was found.
    pub objective: f64,
    /// Best integral assignment (empty when no solution was found).
    pub values: Vec<f64>,
    /// Best proven dual bound on the optimum (in the model's sense). Equals
    /// `objective` for [`SolveStatus::Optimal`].
    pub best_bound: f64,
    /// Effort statistics.
    pub stats: SolveStats,
}

impl SolveOutcome {
    /// Value of variable `v` in the best solution.
    ///
    /// # Panics
    ///
    /// Panics if no solution is available.
    pub fn value(&self, v: crate::VarId) -> f64 {
        assert!(
            self.status.has_solution(),
            "no solution available (status: {})",
            self.status
        );
        self.values[v.index()]
    }

    /// Value of variable `v` rounded to the nearest integer.
    ///
    /// # Panics
    ///
    /// Panics if no solution is available.
    pub fn int_value(&self, v: crate::VarId) -> i64 {
        self.value(v).round() as i64
    }
}
