//! Sparse LU factorization of the simplex basis with a product-form eta file.
//!
//! The basis matrices arising from the modulo-scheduling formulations are
//! extremely sparse (the 0-1-structured rows of Ineq. 20 carry a handful of
//! ±1 entries each), so an explicit dense inverse wastes both the
//! factorization (O(m³)) and every FTRAN/BTRAN (O(m²)). This module stores
//! the basis as `P B Q = L U` with
//!
//! * `L` unit lower triangular, held column-wise in pivot coordinates,
//! * `U` upper triangular, held column-wise (off-diagonal) plus a diagonal,
//! * `P`/`Q` the row/column pivot orders chosen by Markowitz selection with
//!   threshold partial pivoting,
//!
//! which supports all four triangular solves (`L`, `Lᵀ`, `U`, `Uᵀ`) needed
//! by FTRAN (`B v = a`) and BTRAN (`Bᵀ y = c`) with a single dense scratch
//! vector. Between refactorizations, basis changes are absorbed as
//! product-form eta updates: after a pivot on basis position `r` with
//! transformed column `v = B⁻¹ a`, the new basis is `B' = B·E` where `E` is
//! the identity with column `r` replaced by `v`, so
//!
//! * FTRAN applies the etas **in order** after the base LU solve
//!   (`z_r ← z_r / v_r`, then `z_i ← z_i − v_i z_r`), and
//! * BTRAN applies the transposed etas **in reverse** before the base
//!   transpose solve (`y_r ← (y_r − Σ_{i≠r} v_i y_i) / v_r`).
//!
//! The eta file is bounded: [`SparseBasis::eta_nnz`] lets the caller force a
//! refactorization once the accumulated update entries outgrow the factor.

use crate::tol::{ELIM_SKIP_TOL, LU_DROP_TOL, LU_PIVOT_REL, SINGULAR_TOL};

/// A numerically singular basis was handed to [`LuFactor::factor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Singular;

/// Sparse LU factors of one basis matrix, `P B Q = L U`.
///
/// All internal row/column indices of `L` and `U` are *pivot coordinates*
/// (elimination order); `row_of`/`col_of` map them back to original
/// constraint rows and basis positions.
#[derive(Debug, Clone, Default)]
pub(crate) struct LuFactor {
    m: usize,
    /// `row_of[k]` = original constraint row eliminated at step `k`.
    row_of: Vec<u32>,
    /// `col_of[k]` = basis position whose column was the pivot at step `k`.
    col_of: Vec<u32>,
    /// Unit-lower-triangular multipliers, column-wise: `l_cols[k]` holds
    /// `(i, L_ik)` with `i > k`.
    l_cols: Vec<Vec<(u32, f64)>>,
    /// Off-diagonal of `U`, column-wise: `u_cols[k]` holds `(i, U_ik)` with
    /// `i < k`.
    u_cols: Vec<Vec<(u32, f64)>>,
    u_diag: Vec<f64>,
}

impl LuFactor {
    /// Factor for a ±1-diagonal basis (the initial slack basis, possibly
    /// with signed artificial columns): `B = diag(signs)` in original
    /// coordinates, no fill, no permutation.
    pub(crate) fn diagonal(signs: &[f64]) -> Self {
        let m = signs.len();
        LuFactor {
            m,
            row_of: (0..m as u32).collect(),
            col_of: (0..m as u32).collect(),
            l_cols: vec![Vec::new(); m],
            u_cols: vec![Vec::new(); m],
            u_diag: signs.to_vec(),
        }
    }

    /// True while the factor is a pure diagonal (no elimination happened),
    /// which is when [`LuFactor::set_diag`] is legal.
    pub(crate) fn is_diagonal(&self) -> bool {
        self.l_cols.iter().all(Vec::is_empty)
            && self.u_cols.iter().all(Vec::is_empty)
            && self
                .row_of
                .iter()
                .enumerate()
                .all(|(k, &r)| r as usize == k)
            && self
                .col_of
                .iter()
                .enumerate()
                .all(|(k, &c)| c as usize == k)
    }

    /// Overwrites one diagonal entry of a diagonal factor (phase 1 installs
    /// signed artificial columns into the initial slack basis this way).
    pub(crate) fn set_diag(&mut self, i: usize, sign: f64) {
        debug_assert!(self.is_diagonal(), "set_diag on a factored basis");
        self.u_diag[i] = sign;
    }

    /// Factorizes an `m × m` basis given by a column oracle: `col(q, f)`
    /// must call `f(row, value)` for every nonzero of the basis column at
    /// position `q`. Markowitz pivot selection — minimize
    /// `(row_count − 1)(col_count − 1)` over entries passing the relative
    /// threshold `|a| ≥ LU_PIVOT_REL · max|column|` — with ties broken
    /// toward larger magnitude.
    #[allow(clippy::needless_range_loop)] // pivot steps index parallel arrays
    pub(crate) fn factor(
        m: usize,
        col: impl Fn(usize, &mut dyn FnMut(usize, f64)),
    ) -> Result<Self, Singular> {
        // Active-submatrix rows, sorted by column position. The invariant
        // maintained below: active rows only ever contain unpivoted columns,
        // so `rows[i].len()` is the live Markowitz row count.
        let mut rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); m];
        for q in 0..m {
            col(q, &mut |i, a| {
                if a != 0.0 {
                    rows[i].push((q as u32, a));
                }
            });
        }
        for r in rows.iter_mut() {
            r.sort_unstable_by_key(|&(q, _)| q);
        }
        // Rows known to contain each column; entries can go stale after
        // elimination and are re-checked (lazy deletion).
        let mut col_rows: Vec<Vec<u32>> = vec![Vec::new(); m];
        for (i, r) in rows.iter().enumerate() {
            for &(q, _) in r {
                col_rows[q as usize].push(i as u32);
            }
        }
        let mut row_active = vec![true; m];
        let mut col_active = vec![true; m];
        let mut col_max = vec![0.0f64; m];
        let mut col_cnt = vec![0u32; m];

        let mut fac = LuFactor {
            m,
            row_of: Vec::with_capacity(m),
            col_of: Vec::with_capacity(m),
            l_cols: vec![Vec::new(); m],
            u_cols: vec![Vec::new(); m],
            u_diag: vec![0.0; m],
        };
        // L and U are recorded in original coordinates during elimination
        // and remapped to pivot coordinates once the full orders are known.
        let mut l_tmp: Vec<Vec<(u32, f64)>> = vec![Vec::new(); m];
        let mut u_rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); m];
        let mut spill: Vec<(u32, f64)> = Vec::new();

        for step in 0..m {
            // One sweep over the active submatrix recovers the exact column
            // maxima and counts (cheaper and safer than maintaining them
            // incrementally under drop tolerances).
            col_max.iter_mut().for_each(|x| *x = 0.0);
            col_cnt.iter_mut().for_each(|x| *x = 0);
            for (i, row) in rows.iter().enumerate() {
                if !row_active[i] {
                    continue;
                }
                for &(q, a) in row {
                    let q = q as usize;
                    col_cnt[q] += 1;
                    if a.abs() > col_max[q] {
                        col_max[q] = a.abs();
                    }
                }
            }
            // Markowitz selection over threshold-eligible entries.
            let mut best: Option<(usize, usize, f64, u64)> = None; // (row, col, val, score)
            for (i, row) in rows.iter().enumerate() {
                if !row_active[i] {
                    continue;
                }
                let rdeg = row.len() as u64;
                for &(q, a) in row {
                    let q = q as usize;
                    if a.abs() < SINGULAR_TOL || a.abs() < LU_PIVOT_REL * col_max[q] {
                        continue;
                    }
                    let score = (rdeg - 1) * (col_cnt[q] as u64 - 1);
                    let better = match best {
                        None => true,
                        Some((_, _, bv, bs)) => score < bs || (score == bs && a.abs() > bv.abs()),
                    };
                    if better {
                        best = Some((i, q, a, score));
                    }
                }
            }
            let Some((pr, pc, pv, _)) = best else {
                return Err(Singular);
            };
            fac.row_of.push(pr as u32);
            fac.col_of.push(pc as u32);
            fac.u_diag[step] = pv;
            row_active[pr] = false;
            col_active[pc] = false;

            // The pivot row (minus the pivot entry) becomes row `step` of U.
            let pivot_row = std::mem::take(&mut rows[pr]);
            u_rows[step] = pivot_row
                .iter()
                .filter(|&&(q, _)| q as usize != pc)
                .copied()
                .collect();

            // Eliminate the pivot column from every other active row.
            let candidates = std::mem::take(&mut col_rows[pc]);
            for &ri in &candidates {
                let ri = ri as usize;
                if !row_active[ri] {
                    continue;
                }
                let Ok(pos) = rows[ri].binary_search_by_key(&(pc as u32), |&(q, _)| q) else {
                    continue; // stale index entry
                };
                let mult = rows[ri][pos].1 / pv;
                l_tmp[step].push((ri as u32, mult));
                // rows[ri] ← rows[ri] − mult · pivot_row, merged by column.
                spill.clear();
                let old = &rows[ri];
                let mut a_it = old.iter().copied().peekable();
                let mut b_it = pivot_row.iter().copied().peekable();
                while a_it.peek().is_some() || b_it.peek().is_some() {
                    let take_a = match (a_it.peek(), b_it.peek()) {
                        (Some(&(qa, _)), Some(&(qb, _))) => {
                            if qa == qb {
                                let (q, av) = a_it.next().unwrap();
                                let (_, bv) = b_it.next().unwrap();
                                if q as usize != pc {
                                    let x = av - mult * bv;
                                    if x.abs() > LU_DROP_TOL {
                                        spill.push((q, x));
                                    }
                                }
                                continue;
                            }
                            qa < qb
                        }
                        (Some(_), None) => true,
                        (None, Some(_)) => false,
                        (None, None) => unreachable!(),
                    };
                    if take_a {
                        let (q, av) = a_it.next().unwrap();
                        if q as usize != pc {
                            spill.push((q, av));
                        }
                    } else {
                        let (q, bv) = b_it.next().unwrap();
                        if q as usize != pc {
                            let x = -mult * bv;
                            if x.abs() > LU_DROP_TOL {
                                // Fill-in: register the row under the new column.
                                col_rows[q as usize].push(ri as u32);
                                spill.push((q, x));
                            }
                        }
                    }
                }
                rows[ri].clear();
                rows[ri].extend_from_slice(&spill);
            }
        }
        debug_assert!(col_active.iter().all(|&a| !a));

        // Remap L and U from original coordinates into pivot coordinates.
        let mut pos_of_row = vec![0u32; m];
        let mut pos_of_col = vec![0u32; m];
        for k in 0..m {
            pos_of_row[fac.row_of[k] as usize] = k as u32;
            pos_of_col[fac.col_of[k] as usize] = k as u32;
        }
        for k in 0..m {
            let col: Vec<(u32, f64)> = l_tmp[k]
                .iter()
                .map(|&(ri, v)| (pos_of_row[ri as usize], v))
                .collect();
            debug_assert!(col.iter().all(|&(i, _)| i as usize > k));
            fac.l_cols[k] = col;
            // U row `k` scatters into the columns of its entries.
            for &(q, v) in &u_rows[k] {
                let qc = pos_of_col[q as usize] as usize;
                debug_assert!(qc > k);
                fac.u_cols[qc].push((k as u32, v));
            }
        }
        for c in fac.u_cols.iter_mut() {
            c.sort_unstable_by_key(|&(i, _)| i);
        }
        Ok(fac)
    }

    /// Solves `B x = rhs`. `rhs` is dense in original row coordinates and is
    /// consumed as scratch; the solution lands in `out`, indexed by **basis
    /// position**. `work` is an `m`-length scratch vector.
    pub(crate) fn ftran(&self, rhs: &[f64], work: &mut [f64], out: &mut [f64]) {
        let m = self.m;
        // Permute into pivot coordinates: w = P·rhs.
        for k in 0..m {
            work[k] = rhs[self.row_of[k] as usize];
        }
        // Forward solve L z = w (column-oriented).
        for k in 0..m {
            let val = work[k];
            if val != 0.0 {
                for &(i, mult) in &self.l_cols[k] {
                    work[i as usize] -= mult * val;
                }
            }
        }
        // Back solve U x = z (column-oriented).
        for k in (0..m).rev() {
            let xk = work[k] / self.u_diag[k];
            work[k] = xk;
            if xk != 0.0 {
                for &(i, v) in &self.u_cols[k] {
                    work[i as usize] -= v * xk;
                }
            }
        }
        // Scatter back to basis positions: x = Q·w.
        for k in 0..m {
            out[self.col_of[k] as usize] = work[k];
        }
    }

    /// Solves `Bᵀ y = c`. `c` is dense, indexed by basis position; the
    /// solution lands in `out`, indexed by original constraint row. `work`
    /// is an `m`-length scratch vector.
    pub(crate) fn btran(&self, c: &[f64], work: &mut [f64], out: &mut [f64]) {
        let m = self.m;
        // With M = L·U in pivot coordinates, Bᵀ y = c becomes Mᵀ yp = cp
        // where cp_q = c[col_of[q]] and yp_k = y[row_of[k]].
        // Forward solve Uᵀ w = cp (u_cols[q] is row q of Uᵀ).
        for q in 0..m {
            let mut s = c[self.col_of[q] as usize];
            for &(i, v) in &self.u_cols[q] {
                s -= v * work[i as usize];
            }
            work[q] = s / self.u_diag[q];
        }
        // Back solve Lᵀ yp = w (l_cols[k] is row k of Lᵀ, entries i > k).
        for k in (0..m).rev() {
            let mut s = work[k];
            for &(i, mult) in &self.l_cols[k] {
                s -= mult * work[i as usize];
            }
            work[k] = s;
        }
        for k in 0..m {
            out[self.row_of[k] as usize] = work[k];
        }
    }
}

/// One product-form update: basis position `r` was replaced by a column
/// whose transformed image was `v = B⁻¹ a`.
#[derive(Debug, Clone)]
struct Eta {
    r: u32,
    /// `1 / v_r`.
    inv_piv: f64,
    /// `(i, v_i)` for `i ≠ r` with `|v_i|` above the skip tolerance.
    others: Vec<(u32, f64)>,
}

/// Bounded product-form eta file layered on top of an [`LuFactor`].
#[derive(Debug, Clone, Default)]
pub(crate) struct EtaFile {
    etas: Vec<Eta>,
    nnz: usize,
}

impl EtaFile {
    pub(crate) fn clear(&mut self) {
        self.etas.clear();
        self.nnz = 0;
    }

    /// Number of eta updates currently stacked on the base factor.
    #[cfg_attr(not(test), allow(dead_code))] // exercised by the unit tests
    pub(crate) fn len(&self) -> usize {
        self.etas.len()
    }

    /// Total stored off-pivot entries across all etas — the FTRAN/BTRAN
    /// surcharge per solve, and the quantity the refactorization cadence
    /// bounds.
    pub(crate) fn nnz(&self) -> usize {
        self.nnz
    }

    /// Records the pivot `(r, v)`; `v` is the dense transformed column.
    pub(crate) fn push(&mut self, r: usize, v: &[f64]) {
        let others: Vec<(u32, f64)> = v
            .iter()
            .enumerate()
            .filter(|&(i, &x)| i != r && x.abs() > ELIM_SKIP_TOL)
            .map(|(i, &x)| (i as u32, x))
            .collect();
        self.nnz += others.len();
        self.etas.push(Eta {
            r: r as u32,
            inv_piv: 1.0 / v[r],
            others,
        });
    }

    /// Applies the eta inverses in chronological order (FTRAN tail):
    /// `z ← E_k⁻¹ ⋯ E_1⁻¹ z`, all in basis-position coordinates.
    pub(crate) fn ftran(&self, z: &mut [f64]) {
        for eta in &self.etas {
            let zr = z[eta.r as usize] * eta.inv_piv;
            z[eta.r as usize] = zr;
            if zr != 0.0 {
                for &(i, v) in &eta.others {
                    z[i as usize] -= v * zr;
                }
            }
        }
    }

    /// Applies the transposed eta inverses in reverse order (BTRAN head):
    /// `y ← E_1⁻ᵀ ⋯ E_k⁻ᵀ y`, all in basis-position coordinates.
    pub(crate) fn btran(&self, y: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            let mut s = y[eta.r as usize];
            for &(i, v) in &eta.others {
                s -= v * y[i as usize];
            }
            y[eta.r as usize] = s * eta.inv_piv;
        }
    }
}

/// The complete sparse basis representation: base LU factor + eta file +
/// scratch storage, exposing exactly the operations the simplex loops need.
#[derive(Debug, Clone, Default)]
pub(crate) struct SparseBasis {
    m: usize,
    lu: LuFactor,
    etas: EtaFile,
    /// Pivot-coordinate scratch for the triangular solves.
    work: Vec<f64>,
    /// Original-row-coordinate scratch for gathers.
    rhs: Vec<f64>,
}

impl SparseBasis {
    /// Fresh identity basis of dimension `m` (the initial slack basis).
    pub(crate) fn identity(m: usize) -> Self {
        let ones = vec![1.0; m];
        SparseBasis {
            m,
            lu: LuFactor::diagonal(&ones),
            etas: EtaFile::default(),
            work: vec![0.0; m],
            rhs: vec![0.0; m],
        }
    }

    /// Resets to the identity basis of dimension `m`, reusing the scratch
    /// allocations where possible.
    pub(crate) fn reset_identity(&mut self, m: usize) {
        let ones = vec![1.0; m];
        self.m = m;
        self.lu = LuFactor::diagonal(&ones);
        self.etas.clear();
        self.work.clear();
        self.work.resize(m, 0.0);
        self.rhs.clear();
        self.rhs.resize(m, 0.0);
    }

    /// Phase-1 hook: replace the `i`-th diagonal of the (still diagonal)
    /// factor with the sign of an installed artificial column.
    pub(crate) fn set_diag_sign(&mut self, i: usize, sign: f64) {
        self.lu.set_diag(i, sign);
    }

    #[cfg_attr(not(test), allow(dead_code))] // exercised by the unit tests
    pub(crate) fn eta_count(&self) -> usize {
        self.etas.len()
    }

    pub(crate) fn eta_nnz(&self) -> usize {
        self.etas.nnz()
    }

    /// FTRAN of a sparse column: `out = B⁻¹ a` (basis-position coords).
    pub(crate) fn ftran_col(&mut self, entries: &[(u32, f64)], out: &mut [f64]) {
        self.rhs.iter_mut().for_each(|x| *x = 0.0);
        for &(i, a) in entries {
            self.rhs[i as usize] += a;
        }
        self.lu.ftran(&self.rhs, &mut self.work, out);
        self.etas.ftran(out);
    }

    /// FTRAN of a dense right-hand side in original row coordinates.
    pub(crate) fn ftran_rhs(&mut self, rhs: &[f64], out: &mut [f64]) {
        self.lu.ftran(rhs, &mut self.work, out);
        self.etas.ftran(out);
    }

    /// BTRAN: `out = B⁻ᵀ c` where `c` is indexed by basis position (consumed
    /// as scratch) and `out` by original constraint row.
    pub(crate) fn btran(&mut self, c: &mut [f64], out: &mut [f64]) {
        self.etas.btran(c);
        self.lu.btran(c, &mut self.work, out);
    }

    /// Absorbs a pivot at basis position `r` with transformed column `v` as
    /// an eta update.
    pub(crate) fn push_eta(&mut self, r: usize, v: &[f64]) {
        self.etas.push(r, v);
    }

    /// Refactorizes from the column oracle. On success the eta file is
    /// cleared; on a singular basis the previous factor (including etas) is
    /// kept so the caller can continue exactly like the dense path does when
    /// its Gauss-Jordan rebuild bails.
    pub(crate) fn refactor(
        &mut self,
        m: usize,
        col: impl Fn(usize, &mut dyn FnMut(usize, f64)),
    ) -> bool {
        match LuFactor::factor(m, col) {
            Ok(lu) => {
                self.m = m;
                self.lu = lu;
                self.etas.clear();
                self.work.resize(m, 0.0);
                self.rhs.resize(m, 0.0);
                true
            }
            Err(Singular) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense reference: `cols[q]` is the dense basis column at position `q`.
    fn dense_cols(cols: &[Vec<f64>]) -> impl Fn(usize, &mut dyn FnMut(usize, f64)) + '_ {
        move |q, f| {
            for (i, &a) in cols[q].iter().enumerate() {
                if a != 0.0 {
                    f(i, a);
                }
            }
        }
    }

    fn mat_vec(cols: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
        let m = cols.len();
        let mut out = vec![0.0; m];
        for (q, col) in cols.iter().enumerate() {
            for (i, &a) in col.iter().enumerate() {
                out[i] += a * x[q];
            }
        }
        out
    }

    fn mat_t_vec(cols: &[Vec<f64>], y: &[f64]) -> Vec<f64> {
        cols.iter()
            .map(|col| col.iter().zip(y).map(|(a, b)| a * b).sum())
            .collect()
    }

    fn check_solves(cols: &[Vec<f64>]) {
        let m = cols.len();
        let fac = LuFactor::factor(m, dense_cols(cols)).expect("nonsingular");
        let mut work = vec![0.0; m];
        let mut out = vec![0.0; m];
        // FTRAN: B x = e_i for each i.
        for i in 0..m {
            let mut rhs = vec![0.0; m];
            rhs[i] = 1.0;
            fac.ftran(&rhs, &mut work, &mut out);
            let back = mat_vec(cols, &out);
            for (k, &b) in back.iter().enumerate() {
                let want = if k == i { 1.0 } else { 0.0 };
                assert!((b - want).abs() < 1e-9, "ftran col {i} row {k}: {b}");
            }
        }
        // BTRAN: Bᵀ y = e_q for each q.
        for q in 0..m {
            let mut c = vec![0.0; m];
            c[q] = 1.0;
            fac.btran(&c, &mut work, &mut out);
            let back = mat_t_vec(cols, &out);
            for (k, &b) in back.iter().enumerate() {
                let want = if k == q { 1.0 } else { 0.0 };
                assert!((b - want).abs() < 1e-9, "btran col {q} pos {k}: {b}");
            }
        }
    }

    #[test]
    fn factors_identity() {
        let cols = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        check_solves(&cols);
    }

    #[test]
    fn factors_permuted_signed_diagonal() {
        let cols = vec![
            vec![0.0, -1.0, 0.0],
            vec![0.0, 0.0, 2.0],
            vec![1.0, 0.0, 0.0],
        ];
        check_solves(&cols);
    }

    #[test]
    fn factors_dense_3x3() {
        let cols = vec![
            vec![2.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 2.0],
        ];
        check_solves(&cols);
    }

    #[test]
    fn factors_zero_one_structured() {
        // The shape the structured formulation produces: 0-1 rows with a
        // handful of entries, including duplicated-pattern columns that
        // force genuine elimination.
        let cols = vec![
            vec![1.0, 1.0, 0.0, 0.0, 0.0],
            vec![0.0, 1.0, 1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0, 1.0, 0.0],
            vec![0.0, 0.0, 0.0, 1.0, 1.0],
            vec![1.0, 0.0, 0.0, 0.0, 1.0],
        ];
        // This circulant is nonsingular for odd m.
        check_solves(&cols);
    }

    #[test]
    fn rejects_singular_matrix() {
        let cols = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        assert!(LuFactor::factor(2, dense_cols(&cols)).is_err());
    }

    #[test]
    fn rejects_zero_column() {
        let cols = vec![vec![1.0, 0.0], vec![0.0, 0.0]];
        assert!(LuFactor::factor(2, dense_cols(&cols)).is_err());
    }

    #[test]
    fn eta_updates_track_basis_change() {
        // Start from B0 = I, replace column 1 with a = (1, 2, 1)ᵀ, then
        // column 0 with a' = (3, 0, 1)ᵀ; compare eta-updated solves against
        // a direct factorization of the final basis.
        let m = 3;
        let mut sb = SparseBasis::identity(m);
        let a1 = [(0u32, 1.0), (1u32, 2.0), (2u32, 1.0)];
        let mut v = vec![0.0; m];
        sb.ftran_col(&a1, &mut v);
        sb.push_eta(1, &v);
        let a0 = [(0u32, 3.0), (2u32, 1.0)];
        sb.ftran_col(&a0, &mut v);
        sb.push_eta(0, &v);

        let final_cols = vec![
            vec![3.0, 0.0, 1.0],
            vec![1.0, 2.0, 1.0],
            vec![0.0, 0.0, 1.0],
        ];
        let direct = LuFactor::factor(m, dense_cols(&final_cols)).unwrap();
        let mut work = vec![0.0; m];
        let mut want = vec![0.0; m];
        let mut got = vec![0.0; m];
        for i in 0..m {
            let mut rhs = vec![0.0; m];
            rhs[i] = 1.0;
            direct.ftran(&rhs, &mut work, &mut want);
            sb.ftran_rhs(&rhs, &mut got);
            for k in 0..m {
                assert!((got[k] - want[k]).abs() < 1e-10, "ftran {i}/{k}");
            }
        }
        for q in 0..m {
            let mut c = vec![0.0; m];
            c[q] = 1.0;
            direct.btran(&c, &mut work, &mut want);
            let mut c2 = vec![0.0; m];
            c2[q] = 1.0;
            sb.btran(&mut c2, &mut got);
            for k in 0..m {
                assert!((got[k] - want[k]).abs() < 1e-10, "btran {q}/{k}");
            }
        }
        assert_eq!(sb.eta_count(), 2);
        assert!(sb.eta_nnz() > 0);
    }

    #[test]
    fn refactor_clears_eta_file_and_keeps_old_factor_on_singular() {
        let m = 2;
        let mut sb = SparseBasis::identity(m);
        let a = [(0u32, 2.0), (1u32, 1.0)];
        let mut v = vec![0.0; m];
        sb.ftran_col(&a, &mut v);
        sb.push_eta(0, &v);
        assert_eq!(sb.eta_count(), 1);

        // Singular refactor target: factor must refuse and keep the etas.
        let singular = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        assert!(!sb.refactor(m, dense_cols(&singular)));
        assert_eq!(sb.eta_count(), 1);

        // A good refactor clears them.
        let good = vec![vec![2.0, 1.0], vec![0.0, 1.0]];
        assert!(sb.refactor(m, dense_cols(&good)));
        assert_eq!(sb.eta_count(), 0);
        assert_eq!(sb.eta_nnz(), 0);
    }

    #[test]
    fn markowitz_keeps_arrow_matrix_sparse() {
        // Arrow matrix: dense first row and column + diagonal. Eliminating
        // the dense corner first would fill the whole matrix; Markowitz
        // must pick diagonal pivots and keep L/U linear-sized.
        let m = 20;
        let mut cols = vec![vec![0.0; m]; m];
        for (q, col) in cols.iter_mut().enumerate() {
            col[q] = 4.0;
            col[0] = 1.0;
        }
        for v in cols[0].iter_mut() {
            *v = 1.0;
        }
        cols[0][0] = 4.0;
        let fac = LuFactor::factor(m, dense_cols(&cols)).expect("nonsingular");
        let l_nnz: usize = fac.l_cols.iter().map(Vec::len).sum();
        let u_nnz: usize = fac.u_cols.iter().map(Vec::len).sum();
        // A fill-free arrow factorization has m−1 entries in each factor.
        assert!(
            l_nnz <= 2 * m && u_nnz <= 2 * m,
            "fill-in exploded: L {l_nnz}, U {u_nnz}"
        );
        check_solves(&cols);
    }
}
