//! A self-contained integer linear programming solver.
//!
//! This crate implements the solver substrate needed to reproduce
//! *"Efficient Formulation for Optimal Modulo Schedulers"* (Eichenberger &
//! Davidson, PLDI 1997): a dense bounded-variable primal simplex method and a
//! depth-first branch-and-bound search. The paper evaluates formulations by
//! the number of **branch-and-bound nodes** and **simplex iterations** a
//! solver needs; both statistics are first-class citizens here (see
//! [`SolveStats`]).
//!
//! The solver is deliberately in the style of 1990s LP-based branch-and-bound
//! codes (no cutting planes, no presolve by default) so that the *relative*
//! behaviour of the traditional and 0-1-structured formulations mirrors the
//! paper's CPLEX experiments.
//!
//! # Quickstart
//!
//! ```
//! use optimod_ilp::{Model, Sense, SolveStatus};
//!
//! // maximize x + 2y  s.t.  x + y <= 4, x, y integer in [0, 3]
//! let mut m = Model::new();
//! let x = m.int_var(0.0, 3.0, "x");
//! let y = m.int_var(0.0, 3.0, "y");
//! m.set_objective(Sense::Maximize, [(x, 1.0), (y, 2.0)]);
//! m.add_le([(x, 1.0), (y, 1.0)], 4.0, "cap");
//! let out = m.solve();
//! assert_eq!(out.status, SolveStatus::Optimal);
//! assert_eq!(out.objective.round() as i64, 7); // x=1, y=3
//! ```

#![warn(missing_docs)]

mod branch_bound;
mod export;
mod factor;
pub mod fault;
mod model;
mod parallel;
mod simplex;
mod solution;
mod stop;
pub mod tol;

pub use branch_bound::{BranchRule, SolveLimits, Solver};
pub use export::lp_format;
pub use fault::{FaultAction, FaultPlan, FaultSite, Injection};
pub use model::{ConstraintId, LinExpr, Model, RowSense, RowTag, RowView, Sense, VarId};
pub use simplex::{Basis, LpOutcome, LpStatus, Simplex, SimplexEngine, SimplexOptions, WarmStart};
pub use solution::{panic_message, SolveError, SolveOutcome, SolveStats, SolveStatus};
pub use stop::StopFlag;

// Re-exported so downstream crates can attach a trace to [`SolveLimits`]
// without naming `optimod-trace` themselves.
pub use optimod_trace as trace;
pub use optimod_trace::{Trace, TraceSink};

// The tolerance constants historically lived at the crate root; they now
// live (documented, with rationale) in [`tol`] and are re-exported here for
// compatibility.
pub use tol::{FEAS_TOL, INT_TOL, OPT_TOL};
