//! Work-stealing parallel branch-and-bound (selected when
//! [`SolveLimits`](crate::SolveLimits) resolves to more than one thread).
//!
//! Architecture:
//!
//! * The root relaxation is solved on the calling thread; if it branches,
//!   its two children seed the node pool and `threads` workers are spawned
//!   with [`std::thread::scope`].
//! * Each worker owns a private [`Simplex`] workspace (the dense basis
//!   inverse is far too hot to share) and a deque of open nodes. Workers
//!   pop from the *back* of their own deque (depth-first, keeping the
//!   open-node memory footprint low) and steal from the *front* of a victim's
//!   deque (breadth-first steals hand out the shallowest — largest —
//!   subtrees).
//! * An open node is a path of bound tightenings (`Arc` chain back to the
//!   root), not a bound vector: pushing a child is O(1) and memory is
//!   shared between siblings. Workers materialize the bound arrays by
//!   replaying the path onto the root bounds; branch tightenings are
//!   monotone (`lb` only rises, `ub` only falls), so `max`/`min` folding in
//!   any order reproduces the exact node bounds.
//! * The incumbent objective is shared as an [`AtomicU64`] holding `f64`
//!   bits (monotonically decreasing in minimize sense, updated under the
//!   incumbent mutex, read lock-free on the pruning fast path).
//! * Termination: `pending` counts nodes that are queued or in flight;
//!   a worker that finds every deque empty exits when `pending == 0`.
//!   Cancellation (budget exhausted, first solution found in
//!   `first_solution_only` mode, or a caller-side stop) is broadcast
//!   through a [`StopFlag`] that every worker and every LP pivot loop
//!   polls.
//!
//! Node counts and which optimal *solution vector* is found may vary
//! between runs (pruning races); solve status and optimal objective value
//! do not.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use optimod_trace::{NodeOutcome, Phase, TraceEvent};

use crate::branch_bound::{
    choose_branch, down_child_first, lp_class, tighten_integral_bound, SolveLimits,
};
use crate::fault::{FaultAction, FaultSite};
use crate::model::{Model, Sense, VarId};
use crate::simplex::{Basis, LpStatus, Simplex, SimplexOptions, WarmStart};
use crate::solution::{panic_message, SolveError, SolveOutcome, SolveStats, SolveStatus};
use crate::stop::StopFlag;
use crate::tol::PRUNE_TOL;

/// One open node: a single bound tightening plus the chain to the root.
struct PathStep {
    j: usize,
    /// `true` tightens `lb[j]` up to `value`; `false` tightens `ub[j]`
    /// down to `value`.
    is_lb: bool,
    value: f64,
    parent: Option<Arc<PathStep>>,
    /// The parent node's optimal basis, for a warm-started re-solve.
    /// Shared (`Arc`) between siblings and cheap to hand across
    /// work-stealing workers — the snapshot holds no factorization state,
    /// so the stealing worker refactorizes into its own private workspace.
    warm: Option<Arc<Basis>>,
}

/// State shared by all workers of one solve.
struct Shared<'a> {
    model: &'a Model,
    limits: &'a SolveLimits,
    start: Instant,
    minimize: bool,
    integral_objective: bool,
    int_vars: &'a [VarId],
    root_lb: &'a [f64],
    root_ub: &'a [f64],
    /// External cutoff in minimize sense (+inf when unset).
    cutoff_min: f64,
    /// Per-worker deques; worker `i` owns `queues[i]`.
    queues: Vec<Mutex<VecDeque<Arc<PathStep>>>>,
    /// Nodes queued or currently being expanded.
    pending: AtomicUsize,
    /// Incumbent objective (minimize sense) as `f64` bits; read lock-free
    /// for pruning, written only under the `incumbent` lock.
    incumbent_bits: AtomicU64,
    incumbent: Mutex<Option<(f64, Vec<f64>)>>,
    bb_nodes: AtomicU64,
    lp_solves: AtomicU64,
    simplex_iterations: AtomicU64,
    incumbents: AtomicU64,
    refactors: AtomicU64,
    eta_pivots: AtomicU64,
    warm_starts: AtomicU64,
    warm_abandoned: AtomicU64,
    ftran_nanos: AtomicU64,
    btran_nanos: AtomicU64,
    stalled_lps: AtomicU64,
    panics_recovered: AtomicU64,
    limit_hit: AtomicBool,
    /// Set when `first_solution_only` found its solution, so the resulting
    /// cooperative LP interruptions are not misread as a budget limit.
    found_first: AtomicBool,
    /// First abnormal condition observed by any worker (stalled LP, worker
    /// panic); later ones are dropped.
    error: Mutex<Option<SolveError>>,
    /// Search-internal stop (child of the caller's flag).
    stop: StopFlag,
}

impl Shared<'_> {
    fn to_min(&self, model_obj: f64) -> f64 {
        if self.minimize {
            model_obj
        } else {
            -model_obj
        }
    }

    /// Current pruning threshold in minimize sense.
    fn threshold(&self) -> f64 {
        f64::from_bits(self.incumbent_bits.load(Ordering::Acquire)).min(self.cutoff_min)
    }

    fn hit_limit(&self) {
        self.limit_hit.store(true, Ordering::Release);
        self.stop.stop();
    }

    /// Records the first abnormal condition of the solve.
    fn record_error(&self, err: SolveError) {
        let mut guard = self.error.lock().expect("error lock poisoned");
        guard.get_or_insert(err);
    }

    /// Records an integral solution; returns whether it became incumbent.
    fn offer_incumbent(&self, obj_min: f64, values: Vec<f64>) -> bool {
        let mut guard = self.incumbent.lock().expect("incumbent lock poisoned");
        let current = guard.as_ref().map_or(f64::INFINITY, |(o, _)| *o);
        if obj_min < current.min(self.cutoff_min) - PRUNE_TOL {
            self.incumbent_bits
                .store(obj_min.to_bits(), Ordering::Release);
            *guard = Some((obj_min, values));
            true
        } else {
            false
        }
    }

    /// Budget check at node entry (mirrors the serial `out_of_budget`).
    fn out_of_budget(&self) -> bool {
        if self.start.elapsed() >= self.limits.time_limit
            || self.bb_nodes.load(Ordering::Relaxed) >= self.limits.node_limit
            || self.simplex_iterations.load(Ordering::Relaxed) >= self.limits.iteration_limit
        {
            self.hit_limit();
            return true;
        }
        false
    }
}

/// Pops work for `wid`: own deque from the back, else steal from the front
/// of the first non-empty victim.
fn pop_work(shared: &Shared, wid: usize) -> Option<Arc<PathStep>> {
    if let Some(node) = shared.queues[wid]
        .lock()
        .expect("queue lock poisoned")
        .pop_back()
    {
        return Some(node);
    }
    let n = shared.queues.len();
    for d in 1..n {
        let victim = &shared.queues[(wid + d) % n];
        if let Some(node) = victim.lock().expect("queue lock poisoned").pop_front() {
            return Some(node);
        }
    }
    None
}

fn worker(shared: &Shared, opts: &SimplexOptions, wid: usize) {
    // Deterministic fault injection at worker startup. A stall or spurious
    // timeout wedges this worker before it processes anything; the limit
    // broadcast stops the search cleanly instead of letting a drained pool
    // masquerade as a proof of infeasibility. A panic unwinds from inside
    // `fire` and is recovered by the spawn wrapper.
    if let Some(action) = shared.limits.fault.fire(FaultSite::WorkerStart) {
        shared.limits.trace.emit(|| TraceEvent::FaultInjected {
            worker: wid as u32,
            site: FaultSite::WorkerStart.name(),
            action: action.name(),
        });
        match action {
            FaultAction::Stall | FaultAction::SpuriousTimeout => {
                shared.hit_limit();
                return;
            }
            FaultAction::Panic | FaultAction::PerturbIncumbent => {}
        }
    }
    let mut simplex = Simplex::new(shared.model);
    let mut lb = vec![0.0; shared.root_lb.len()];
    let mut ub = vec![0.0; shared.root_ub.len()];
    let mut idle_rounds = 0u32;
    loop {
        if shared.stop.is_stopped() {
            return;
        }
        let Some(node) = pop_work(shared, wid) else {
            if shared.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            // Other workers still hold nodes that may spawn children; back
            // off progressively so a 2-thread solve on one core does not
            // burn half the machine spinning.
            idle_rounds += 1;
            if idle_rounds > 32 {
                std::thread::sleep(std::time::Duration::from_micros(100));
            } else {
                std::thread::yield_now();
            }
            continue;
        };
        idle_rounds = 0;
        // A panic inside node expansion (numerical debug_assert, index bug
        // on a pathological model) must not abort the process: record it as
        // a typed error, drop the node, and let the solve wind down with
        // whatever incumbent exists.
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            expand_node(shared, &mut simplex, opts, &node, &mut lb, &mut ub, wid);
        }));
        shared.pending.fetch_sub(1, Ordering::AcqRel);
        if let Err(payload) = unwound {
            // The node's NodeOpen was already emitted (it directly follows
            // the budget check, which cannot panic), so close it here to
            // keep every worker's open/close stream balanced.
            shared.panics_recovered.fetch_add(1, Ordering::Relaxed);
            shared.limits.trace.emit(|| TraceEvent::NodeClose {
                worker: wid as u32,
                outcome: NodeOutcome::Panicked,
            });
            shared
                .limits
                .trace
                .emit(|| TraceEvent::PanicRecovered { worker: wid as u32 });
            shared.record_error(SolveError::WorkerPanic(panic_message(payload.as_ref())));
            shared.hit_limit();
            return;
        }
    }
}

/// Expands one open node: materialize bounds, solve the relaxation, prune /
/// record / enqueue children.
fn expand_node(
    shared: &Shared,
    simplex: &mut Simplex,
    opts: &SimplexOptions,
    node: &Arc<PathStep>,
    lb: &mut [f64],
    ub: &mut [f64],
    wid: usize,
) {
    if shared.out_of_budget() {
        return;
    }
    shared.bb_nodes.fetch_add(1, Ordering::Relaxed);
    let trace = &shared.limits.trace;
    // NodeOpen directly follows the node-count increment so that a panic
    // anywhere in the expansion always has an open to match its
    // `NodeClose(Panicked)`, and so that every open is a counted node.
    if trace.is_active() {
        let mut depth = 0u32;
        let mut step: Option<&Arc<PathStep>> = Some(node);
        while let Some(s) = step {
            depth += 1;
            step = s.parent.as_ref();
        }
        trace.emit(|| TraceEvent::NodeOpen {
            worker: wid as u32,
            depth,
        });
    }
    let close = |outcome: NodeOutcome| {
        trace.emit(|| TraceEvent::NodeClose {
            worker: wid as u32,
            outcome,
        });
    };

    // Deterministic fault injection at node expansion. Placed after NodeOpen
    // so an injected panic (raised inside `fire`) is matched by the worker's
    // `NodeClose(Panicked)`; stall and spurious-timeout actions close the
    // node themselves before wedging the search.
    if let Some(action) = shared.limits.fault.fire(FaultSite::NodeExpand) {
        trace.emit(|| TraceEvent::FaultInjected {
            worker: wid as u32,
            site: FaultSite::NodeExpand.name(),
            action: action.name(),
        });
        match action {
            FaultAction::Stall => {
                shared.record_error(SolveError::NumericallyUnstable {
                    iterations: shared.simplex_iterations.load(Ordering::Relaxed),
                });
                shared.hit_limit();
                close(NodeOutcome::Limit);
                return;
            }
            FaultAction::SpuriousTimeout => {
                shared.hit_limit();
                close(NodeOutcome::Limit);
                return;
            }
            FaultAction::Panic | FaultAction::PerturbIncumbent => {}
        }
    }

    // Replay the path's tightenings onto the root bounds.
    lb.copy_from_slice(shared.root_lb);
    ub.copy_from_slice(shared.root_ub);
    let mut step: Option<&Arc<PathStep>> = Some(node);
    while let Some(s) = step {
        if s.is_lb {
            lb[s.j] = lb[s.j].max(s.value);
        } else {
            ub[s.j] = ub[s.j].min(s.value);
        }
        step = s.parent.as_ref();
    }

    let lp = simplex.solve_warm(lb, ub, opts, node.warm.as_deref());
    shared.lp_solves.fetch_add(1, Ordering::Relaxed);
    shared
        .simplex_iterations
        .fetch_add(lp.iterations, Ordering::Relaxed);
    shared.refactors.fetch_add(lp.refactors, Ordering::Relaxed);
    shared
        .eta_pivots
        .fetch_add(lp.eta_pivots, Ordering::Relaxed);
    shared
        .ftran_nanos
        .fetch_add(lp.ftran_nanos, Ordering::Relaxed);
    shared
        .btran_nanos
        .fetch_add(lp.btran_nanos, Ordering::Relaxed);
    match lp.warm {
        WarmStart::Taken => {
            shared.warm_starts.fetch_add(1, Ordering::Relaxed);
        }
        WarmStart::Abandoned => {
            shared.warm_abandoned.fetch_add(1, Ordering::Relaxed);
        }
        WarmStart::Cold => {}
    }
    trace.emit(|| TraceEvent::LpSolved {
        worker: wid as u32,
        class: lp_class(lp.status),
        iterations: lp.iterations,
        refactors: lp.refactors,
        etas: lp.eta_pivots,
        warm: lp.warm.name(),
    });
    match lp.status {
        LpStatus::Infeasible => {
            close(NodeOutcome::Infeasible);
            return; // subtree pruned
        }
        LpStatus::Unbounded => {
            shared.hit_limit();
            close(NodeOutcome::Limit);
            return;
        }
        LpStatus::IterLimit => {
            // Either a genuine per-LP/deadline limit or our own cooperative
            // cancellation after the first solution was found — only the
            // former is a reportable limit.
            if !shared.found_first.load(Ordering::Acquire) {
                shared.hit_limit();
            }
            close(NodeOutcome::Limit);
            return;
        }
        LpStatus::Stalled => {
            shared.stalled_lps.fetch_add(1, Ordering::Relaxed);
            shared.record_error(SolveError::NumericallyUnstable {
                iterations: lp.iterations,
            });
            shared.hit_limit();
            close(NodeOutcome::Limit);
            return;
        }
        LpStatus::Optimal => {}
    }

    let mut bound = shared.to_min(lp.objective);
    if shared.integral_objective {
        bound = tighten_integral_bound(bound);
    }
    if bound >= shared.threshold() - PRUNE_TOL {
        close(NodeOutcome::PrunedBound);
        return; // pruned by incumbent or external cutoff
    }

    let rule = shared.limits.branch_rule;
    let Some((bv, bx)) = choose_branch(rule, shared.int_vars, &lp.values) else {
        // Integral solution.
        let mut obj = shared.to_min(lp.objective);
        if shared.limits.fault.take_incumbent_perturbation() {
            // Corrupt only the *claimed* objective, never the assignment:
            // the exact-arithmetic certifier downstream must catch the
            // mismatch, and a corrupted assignment would instead fail much
            // earlier inside the solver's own integrality checks.
            obj += 0.5;
        }
        let obj_model = if shared.minimize { obj } else { -obj };
        if shared.offer_incumbent(obj, lp.values) {
            shared.incumbents.fetch_add(1, Ordering::Relaxed);
            trace.emit(|| TraceEvent::Incumbent {
                worker: wid as u32,
                objective: obj_model,
            });
            if shared.limits.first_solution_only {
                shared.found_first.store(true, Ordering::Release);
                shared.stop.stop();
            }
        }
        close(NodeOutcome::Integral);
        return;
    };

    let j = bv.index();
    let floor = bx.floor();
    if floor >= ub[j] || floor + 1.0 <= lb[j] {
        debug_assert!(
            false,
            "LP value {bx} of {} escapes node bounds [{}, {}]",
            shared.model.var_name(bv),
            lb[j],
            ub[j]
        );
        shared.hit_limit();
        close(NodeOutcome::Limit);
        return;
    }
    let snapshot = simplex.basis_snapshot().map(Arc::new);
    let down = Arc::new(PathStep {
        j,
        is_lb: false,
        value: floor,
        parent: Some(Arc::clone(node)),
        warm: snapshot.clone(),
    });
    let up = Arc::new(PathStep {
        j,
        is_lb: true,
        value: floor + 1.0,
        parent: Some(Arc::clone(node)),
        warm: snapshot,
    });
    let (first, second) = if down_child_first(rule, bx, floor) {
        (down, up)
    } else {
        (up, down)
    };
    shared.pending.fetch_add(2, Ordering::AcqRel);
    {
        let mut q = shared.queues[wid].lock().expect("queue lock poisoned");
        q.push_back(second);
        q.push_back(first); // owner pops from the back: first child explored next
    }
    close(NodeOutcome::Branched);
}

/// Entry point: parallel counterpart of the serial `Solver::solve` body.
/// `base_opts` carries the per-LP options with the whole-solve deadline
/// already clamped and `stop` set to the *caller's* flag.
pub(crate) fn solve(
    model: &Model,
    limits: &SolveLimits,
    base_opts: &SimplexOptions,
    start: Instant,
) -> SolveOutcome {
    let threads = limits.resolve_threads();
    let trace = limits.trace.clone();
    trace.emit(|| TraceEvent::SolveBegin {
        variables: model.num_vars() as u64,
        constraints: model.num_constraints() as u64,
        threads: threads as u32,
    });
    let minimize = model.obj_sense == Sense::Minimize;
    let cutoff_min = limits
        .cutoff
        .map_or(f64::INFINITY, |c| if minimize { c } else { -c });
    let min_to_model = |v: f64| if minimize { v } else { -v };
    let mut stats = SolveStats {
        variables: model.num_vars() as u64,
        constraints: model.num_constraints() as u64,
        ..Default::default()
    };
    let int_vars: Vec<VarId> = (0..model.num_vars())
        .map(|i| VarId(i as u32))
        .filter(|v| model.is_integer(*v))
        .collect();

    let finish =
        |status: SolveStatus, mut stats: SolveStats, best_bound: f64, error: Option<SolveError>| {
            stats.wall_time = start.elapsed();
            trace.emit(|| TraceEvent::SolveEnd {
                status: status.name(),
            });
            SolveOutcome {
                status,
                objective: f64::NAN,
                values: vec![],
                best_bound: min_to_model(best_bound),
                stats,
                error,
            }
        };

    let mut root_lb: Vec<f64> = (0..model.num_vars()).map(|j| model.vars[j].lb).collect();
    let mut root_ub: Vec<f64> = (0..model.num_vars()).map(|j| model.vars[j].ub).collect();
    for &v in &int_vars {
        let j = v.index();
        root_lb[j] = root_lb[j].ceil();
        root_ub[j] = root_ub[j].floor();
        if root_lb[j] > root_ub[j] {
            return finish(SolveStatus::Infeasible, stats, f64::NEG_INFINITY, None);
        }
    }

    // Search-internal cancellation: a child of the caller's flag, so that
    // stopping the search (budget, first solution) does not stop the
    // caller's other solves, while a caller-side stop still reaches us.
    let search_stop = limits.stop.child();
    let opts = SimplexOptions {
        stop: search_stop.clone(),
        ..base_opts.clone()
    };

    // Root relaxation on the calling thread.
    let mut root_simplex = Simplex::new(model);
    let lp = {
        let _root_span = trace.span(Phase::RootLp);
        root_simplex.solve(&root_lb, &root_ub, &opts)
    };
    stats.lp_solves += 1;
    stats.simplex_iterations += lp.iterations;
    stats.refactors += lp.refactors;
    stats.eta_pivots += lp.eta_pivots;
    stats.ftran_time += std::time::Duration::from_nanos(lp.ftran_nanos);
    stats.btran_time += std::time::Duration::from_nanos(lp.btran_nanos);
    trace.emit(|| TraceEvent::LpSolved {
        worker: 0,
        class: lp_class(lp.status),
        iterations: lp.iterations,
        refactors: lp.refactors,
        etas: lp.eta_pivots,
        warm: lp.warm.name(),
    });
    match lp.status {
        LpStatus::Infeasible => {
            return finish(SolveStatus::Infeasible, stats, f64::NEG_INFINITY, None)
        }
        LpStatus::Unbounded | LpStatus::IterLimit => {
            return finish(SolveStatus::LimitReached, stats, f64::NEG_INFINITY, None)
        }
        LpStatus::Stalled => {
            stats.stalled_lps += 1;
            return finish(
                SolveStatus::LimitReached,
                stats,
                f64::NEG_INFINITY,
                Some(SolveError::NumericallyUnstable {
                    iterations: lp.iterations,
                }),
            );
        }
        LpStatus::Optimal => {}
    }
    let mut root_bound = if minimize {
        lp.objective
    } else {
        -lp.objective
    };
    if model.objective_is_integral() {
        root_bound = tighten_integral_bound(root_bound);
    }
    if root_bound >= cutoff_min - PRUNE_TOL {
        // Nothing can beat the external cutoff (same Infeasible contract as
        // the serial search).
        return finish(SolveStatus::Infeasible, stats, root_bound, None);
    }

    let root_branch = choose_branch(limits.branch_rule, &int_vars, &lp.values);
    let Some((bv, bx)) = root_branch else {
        // Root already integral: optimal without any branching.
        let obj = if minimize {
            lp.objective
        } else {
            -lp.objective
        };
        stats.incumbents += 1;
        trace.emit(|| TraceEvent::Incumbent {
            worker: 0,
            objective: min_to_model(obj),
        });
        stats.wall_time = start.elapsed();
        trace.emit(|| TraceEvent::SolveEnd {
            status: SolveStatus::Optimal.name(),
        });
        return SolveOutcome {
            status: SolveStatus::Optimal,
            objective: min_to_model(obj),
            values: lp.values,
            best_bound: min_to_model(obj),
            stats,
            error: None,
        };
    };
    let root_snapshot = root_simplex.basis_snapshot().map(Arc::new);
    drop(root_simplex);

    let shared = Shared {
        model,
        limits,
        start,
        minimize,
        integral_objective: model.objective_is_integral(),
        int_vars: &int_vars,
        root_lb: &root_lb,
        root_ub: &root_ub,
        cutoff_min,
        queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
        pending: AtomicUsize::new(2),
        incumbent_bits: AtomicU64::new(f64::INFINITY.to_bits()),
        incumbent: Mutex::new(None),
        bb_nodes: AtomicU64::new(0),
        lp_solves: AtomicU64::new(0),
        simplex_iterations: AtomicU64::new(0),
        incumbents: AtomicU64::new(0),
        refactors: AtomicU64::new(0),
        eta_pivots: AtomicU64::new(0),
        warm_starts: AtomicU64::new(0),
        warm_abandoned: AtomicU64::new(0),
        ftran_nanos: AtomicU64::new(0),
        btran_nanos: AtomicU64::new(0),
        stalled_lps: AtomicU64::new(0),
        panics_recovered: AtomicU64::new(0),
        limit_hit: AtomicBool::new(false),
        found_first: AtomicBool::new(false),
        error: Mutex::new(None),
        stop: search_stop,
    };

    // Seed the pool with the root's two children, first-explored on top.
    {
        let j = bv.index();
        let floor = bx.floor();
        if floor >= root_ub[j] || floor + 1.0 <= root_lb[j] {
            debug_assert!(false, "root LP value {bx} escapes bounds");
            return finish(SolveStatus::LimitReached, stats, root_bound, None);
        }
        let down = Arc::new(PathStep {
            j,
            is_lb: false,
            value: floor,
            parent: None,
            warm: root_snapshot.clone(),
        });
        let up = Arc::new(PathStep {
            j,
            is_lb: true,
            value: floor + 1.0,
            parent: None,
            warm: root_snapshot,
        });
        let (first, second) = if down_child_first(limits.branch_rule, bx, floor) {
            (down, up)
        } else {
            (up, down)
        };
        let mut q = shared.queues[0].lock().expect("queue lock poisoned");
        q.push_back(second);
        q.push_back(first);
    }

    std::thread::scope(|scope| {
        for wid in 0..threads {
            let shared = &shared;
            let opts = opts.clone();
            scope.spawn(move || {
                // A panic that escapes the worker loop itself (e.g. an
                // injected worker-startup fault, or a bug outside the
                // per-node recovery) must not propagate through the scope
                // and abort the solve: record it and wind the search down.
                let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    worker(shared, &opts, wid)
                }));
                if let Err(payload) = unwound {
                    shared.panics_recovered.fetch_add(1, Ordering::Relaxed);
                    shared
                        .limits
                        .trace
                        .emit(|| TraceEvent::PanicRecovered { worker: wid as u32 });
                    shared.record_error(SolveError::WorkerPanic(panic_message(payload.as_ref())));
                    shared.hit_limit();
                }
            });
        }
    });

    stats.bb_nodes = shared.bb_nodes.load(Ordering::Relaxed);
    stats.lp_solves += shared.lp_solves.load(Ordering::Relaxed);
    stats.simplex_iterations += shared.simplex_iterations.load(Ordering::Relaxed);
    stats.incumbents += shared.incumbents.load(Ordering::Relaxed);
    stats.refactors += shared.refactors.load(Ordering::Relaxed);
    stats.eta_pivots += shared.eta_pivots.load(Ordering::Relaxed);
    stats.warm_starts += shared.warm_starts.load(Ordering::Relaxed);
    stats.warm_abandoned += shared.warm_abandoned.load(Ordering::Relaxed);
    stats.ftran_time += std::time::Duration::from_nanos(shared.ftran_nanos.load(Ordering::Relaxed));
    stats.btran_time += std::time::Duration::from_nanos(shared.btran_nanos.load(Ordering::Relaxed));
    stats.stalled_lps += shared.stalled_lps.load(Ordering::Relaxed);
    stats.panics_recovered += shared.panics_recovered.load(Ordering::Relaxed);
    stats.wall_time = start.elapsed();
    // A caller-side cancellation must read as a limit, never as an
    // infeasibility proof: workers drain without touching `limit_hit` when
    // the parent flag stops them mid-search, and an exhausted-looking pool
    // with no incumbent would otherwise be misreported as `Infeasible` —
    // unsound for anyone (the cross-backend portfolio, the speculative II
    // race) who treats infeasibility as a certificate.
    let limit_hit = shared.limit_hit.load(Ordering::Acquire) || limits.stop.is_stopped();
    let error = shared.error.lock().expect("error lock poisoned").take();
    let incumbent = shared
        .incumbent
        .lock()
        .expect("incumbent lock poisoned")
        .take();
    let outcome = match incumbent {
        Some((obj, values)) => {
            let status = if limit_hit && !limits.first_solution_only {
                SolveStatus::Feasible
            } else {
                SolveStatus::Optimal
            };
            SolveOutcome {
                status,
                objective: min_to_model(obj),
                values,
                best_bound: min_to_model(if status == SolveStatus::Optimal {
                    obj
                } else {
                    root_bound
                }),
                stats,
                error,
            }
        }
        None => SolveOutcome {
            status: if limit_hit {
                SolveStatus::LimitReached
            } else {
                SolveStatus::Infeasible
            },
            objective: f64::NAN,
            values: vec![],
            best_bound: min_to_model(root_bound),
            stats,
            error,
        },
    };
    trace.emit(|| TraceEvent::SolveEnd {
        status: outcome.status.name(),
    });
    outcome
}
