//! Every floating-point tolerance the solver compares against, in one place.
//!
//! The simplex method, the branch-and-bound search, and the schedule
//! extraction all run in `f64`; each comparison against "zero" or "integral"
//! needs an explicit tolerance, and a tolerance chosen for one site is rarely
//! right for another (a pivot magnitude and a constraint residual live on
//! different scales). Scattering the literals through the code made auditing
//! them impossible — this module centralizes them with the rationale for each
//! value, and `optimod-verify` exists precisely because none of these
//! tolerances is a proof: emitted schedules are re-checked in exact integer
//! arithmetic downstream.
//!
//! Scale assumptions: modulo-scheduling models have coefficients that are
//! small integers (±1 for the 0-1-structured rows, up to `II`·`row` ≈ 1e3 for
//! the traditional rows) and right-hand sides of similar size, so absolute
//! tolerances are appropriate; nothing here is scaled by problem norms.

/// Absolute tolerance used to decide primal feasibility of a value with
/// respect to a bound. Loose enough to absorb the error of a few thousand
/// pivots on small-integer data, tight enough that a genuinely violated
/// scheduling constraint (slack ≥ 1 away) can never pass.
pub const FEAS_TOL: f64 = 1e-7;

/// Tolerance on reduced costs when testing dual feasibility (optimality).
/// Matches [`FEAS_TOL`]: both sides of the duality check should give up at
/// the same precision or phase transitions oscillate.
pub const OPT_TOL: f64 = 1e-7;

/// A value within this distance of an integer is considered integral.
/// Deliberately much looser than [`FEAS_TOL`]: branching on a variable that
/// is integral to 1e-6 creates a child identical to its parent and loops
/// the search.
pub const INT_TOL: f64 = 1e-5;

/// Pivot magnitudes below this are not eligible pivots. Dividing by a
/// smaller pivot amplifies existing error by > 1e9, which visibly corrupts
/// the dense basis inverse on the very next elimination.
pub const PIVOT_TOL: f64 = 1e-9;

/// Tie window for the ratio test: two blocking ratios within this distance
/// are "equal", and the tie breaks toward the larger pivot magnitude for
/// stability. Much smaller than [`PIVOT_TOL`] because ratios are quotients
/// of already-validated pivots.
pub const RATIO_TIE_TOL: f64 = 1e-12;

/// A ratio-test step below this counts as a degenerate pivot for the
/// anti-cycling watchdog (Bland's rule / forced refactorization / stall
/// abort). Same scale as [`PIVOT_TOL`]: a step that small moves no basic
/// value meaningfully.
pub const DEGEN_STEP_TOL: f64 = 1e-9;

/// Row-elimination multipliers below this are skipped when updating the
/// basis inverse after a pivot. Pure dead-work elimination: a multiplier of
/// 1e-13 times any entry of a well-conditioned inverse is below the noise
/// floor already present.
pub const ELIM_SKIP_TOL: f64 = 1e-13;

/// A Gauss-Jordan pivot below this during refactorization means the basis
/// matrix is numerically singular; the refactorization bails out and leaves
/// the previous inverse in place for the residual check to judge.
pub const SINGULAR_TOL: f64 = 1e-12;

/// Relative threshold for partial pivoting inside the sparse LU
/// factorization: an entry is an eligible Markowitz pivot only if its
/// magnitude is at least this fraction of the largest entry in its column
/// of the active submatrix. The classic 0.1 trades a bounded growth factor
/// (≤ 10 per elimination step) for the freedom to pick sparser pivots.
pub const LU_PIVOT_REL: f64 = 0.1;

/// Entries produced by sparse elimination below this magnitude are dropped
/// from the active submatrix. Same scale as [`ELIM_SKIP_TOL`]: on
/// small-integer scheduling data an entry this size is exact-cancellation
/// residue, and keeping it would only manufacture fill-in.
pub const LU_DROP_TOL: f64 = 1e-13;

/// Maximum `|Ax - b|` residual accepted at claimed optimality. Looser than
/// [`FEAS_TOL`] because it bounds the *accumulated* error of a full solve,
/// not one comparison; a failure forces a refactorization and a re-solve.
pub const RESIDUAL_TOL: f64 = 1e-6;

/// Remaining phase-1 artificial mass above this proves infeasibility.
/// Matches [`RESIDUAL_TOL`]: both measure total constraint violation.
pub const PHASE1_INFEAS_TOL: f64 = 1e-6;

/// Minimum transformed-column magnitude for pivoting an artificial variable
/// out of the basis after phase 1. Looser than [`PIVOT_TOL`] on purpose: a
/// marginal pivot here only swaps a zero-valued artificial for a structural
/// column, and declining it is always safe (the artificial stays fixed at
/// zero).
pub const ARTIFICIAL_PIVOT_TOL: f64 = 1e-7;

/// Bound-pruning slack in the branch-and-bound search: a node whose
/// relaxation bound is within this of the incumbent cannot improve on it
/// (objectives of interest are integral, so the true gap is either 0 or
/// ≥ 1). Also the margin by which a new incumbent must beat the old one.
pub const PRUNE_TOL: f64 = 1e-9;

/// Window for snapping an almost-integral `f64` to the nearest integer when
/// rounding relaxation bounds or extracting integer solution values.
/// Matches [`INT_TOL`] in spirit but is tighter because the snapped value
/// feeds exact integer arithmetic afterwards.
pub const INT_ROUND_TOL: f64 = 1e-6;

#[cfg(test)]
mod tests {
    use super::*;

    /// The documented orderings between tolerances are load-bearing
    /// (pruning vs integrality, pivot eligibility vs tie-breaking); pin
    /// them so a future retune cannot silently invert one.
    #[test]
    #[allow(clippy::assertions_on_constants)] // pinning constants is the point
    fn tolerance_scales_are_ordered() {
        assert!(RATIO_TIE_TOL < PIVOT_TOL);
        assert!(ELIM_SKIP_TOL < SINGULAR_TOL);
        assert!(LU_DROP_TOL <= ELIM_SKIP_TOL);
        assert!(LU_DROP_TOL < SINGULAR_TOL);
        assert!(SINGULAR_TOL < LU_PIVOT_REL);
        assert!(PIVOT_TOL <= DEGEN_STEP_TOL);
        assert!(FEAS_TOL < RESIDUAL_TOL);
        assert_eq!(RESIDUAL_TOL, PHASE1_INFEAS_TOL);
        assert!(FEAS_TOL < INT_TOL);
        assert!(INT_ROUND_TOL < INT_TOL);
        assert!(PRUNE_TOL < INT_ROUND_TOL);
    }
}
