//! Cooperative cancellation for long-running solves.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shareable cancellation token checked cooperatively by the solvers.
///
/// Cloning a `StopFlag` shares the underlying flag: calling
/// [`StopFlag::stop`] on any clone stops every holder. [`StopFlag::child`]
/// creates a *derived* flag that also observes its parent — stopping the
/// parent stops every descendant, while stopping a child leaves the parent
/// (and its other children) running. This is how the scheduler races two
/// candidate `II` values: each racer gets a child of the caller's flag, so
/// the loser can be cancelled individually while a user-level stop still
/// reaches both.
///
/// ```
/// use optimod_ilp::StopFlag;
/// let parent = StopFlag::new();
/// let a = parent.child();
/// let b = parent.child();
/// a.stop();
/// assert!(a.is_stopped() && !b.is_stopped() && !parent.is_stopped());
/// parent.stop();
/// assert!(b.is_stopped());
/// ```
#[derive(Debug, Clone)]
pub struct StopFlag(Arc<Node>);

#[derive(Debug)]
struct Node {
    stopped: AtomicBool,
    parent: Option<Arc<Node>>,
}

impl Default for StopFlag {
    fn default() -> Self {
        StopFlag::new()
    }
}

impl StopFlag {
    /// A fresh, unstopped flag with no parent.
    pub fn new() -> Self {
        StopFlag(Arc::new(Node {
            stopped: AtomicBool::new(false),
            parent: None,
        }))
    }

    /// A derived flag: stopped when either it or any ancestor is stopped.
    pub fn child(&self) -> Self {
        StopFlag(Arc::new(Node {
            stopped: AtomicBool::new(false),
            parent: Some(Arc::clone(&self.0)),
        }))
    }

    /// Requests cancellation of this flag and all flags derived from it.
    pub fn stop(&self) {
        self.0.stopped.store(true, Ordering::Release);
    }

    /// Whether this flag or any ancestor has been stopped.
    #[inline]
    pub fn is_stopped(&self) -> bool {
        let mut node = &self.0;
        loop {
            if node.stopped.load(Ordering::Acquire) {
                return true;
            }
            match &node.parent {
                Some(p) => node = p,
                None => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let a = StopFlag::new();
        let b = a.clone();
        assert!(!b.is_stopped());
        a.stop();
        assert!(b.is_stopped());
    }

    #[test]
    fn grandchildren_observe_root() {
        let root = StopFlag::new();
        let gc = root.child().child();
        assert!(!gc.is_stopped());
        root.stop();
        assert!(gc.is_stopped());
    }

    #[test]
    fn sibling_isolation() {
        let root = StopFlag::new();
        let a = root.child();
        let b = root.child();
        b.stop();
        assert!(!a.is_stopped());
        assert!(b.is_stopped());
        assert!(!root.is_stopped());
    }
}
