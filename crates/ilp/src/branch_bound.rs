//! Depth-first branch-and-bound over LP relaxations.
//!
//! The search mirrors the behaviour of early-90s LP-based MIP codes (and
//! therefore the CPLEX 3.x solver used in the paper): solve the LP
//! relaxation, pick a fractional integer variable, branch `x <= floor(v)` /
//! `x >= ceil(v)`, and explore depth-first, pruning on the incumbent. There
//! are no cuts, no heuristics, and no presolve, so the branch-and-bound node
//! count directly reflects the tightness of the formulation — which is
//! exactly the quantity the paper uses to compare formulations.

use std::time::{Duration, Instant};

use crate::model::{Model, Sense, VarId};
use crate::simplex::{LpStatus, Simplex, SimplexOptions};
use crate::solution::{SolveOutcome, SolveStats, SolveStatus};
use crate::INT_TOL;

/// Rule for choosing the branching variable among fractional candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BranchRule {
    /// Variable whose LP value is closest to 0.5 away from integrality
    /// (most fractional); dive toward the nearest integer first.
    MostFractional,
    /// First fractional variable in index order. The default: on the
    /// modulo scheduling formulations, index order follows the operations,
    /// so the search fixes the schedule one operation at a time — measured
    /// several times faster than most-fractional on both formulations (see
    /// the `ablation_branching` benchmark).
    #[default]
    FirstFractional,
    /// Most fractional, but always explore the *up* (ceil) child first —
    /// effective on assignment-style binaries where setting a variable to 1
    /// carries the information.
    MostFractionalUp,
    /// Prefer the fractional variable with the highest index (stages and
    /// kill variables are created after the row binaries in the modulo
    /// scheduling formulations), exploring the up child first.
    HighestIndexUp,
}

/// Resource limits for one branch-and-bound solve.
///
/// The paper caps each loop at 15 minutes of CPLEX time; [`SolveLimits`]
/// plays the same role here with both a wall-clock deadline and a node cap.
#[derive(Debug, Clone, Copy)]
pub struct SolveLimits {
    /// Wall-clock limit for the whole solve.
    pub time_limit: Duration,
    /// Maximum number of branch-and-bound nodes (beyond the root).
    pub node_limit: u64,
    /// Maximum total simplex iterations.
    pub iteration_limit: u64,
    /// Branching rule.
    pub branch_rule: BranchRule,
    /// Stop at the first integral solution instead of proving optimality.
    /// This is what the paper's NoObj scheduler does ("simply returns the
    /// first schedule that it finds").
    pub first_solution_only: bool,
    /// Known-achievable objective value (in the model's sense), e.g. from a
    /// heuristic solution. The search prunes every subtree that cannot
    /// *strictly* beat it, so an [`SolveStatus::Infeasible`] outcome under
    /// a cutoff means "nothing better than the cutoff exists" — the caller
    /// already holds a solution attaining it.
    pub cutoff: Option<f64>,
}

impl Default for SolveLimits {
    fn default() -> Self {
        SolveLimits {
            time_limit: Duration::from_secs(900),
            node_limit: 1_000_000,
            iteration_limit: u64::MAX,
            branch_rule: BranchRule::default(),
            first_solution_only: false,
            cutoff: None,
        }
    }
}

impl SolveLimits {
    /// Limits with a given wall-clock budget, other limits at default.
    pub fn with_time(time_limit: Duration) -> Self {
        SolveLimits {
            time_limit,
            ..Default::default()
        }
    }
}

/// LP-based branch-and-bound solver.
///
/// ```
/// use optimod_ilp::{Model, Sense, Solver, SolveLimits, SolveStatus};
/// let mut m = Model::new();
/// let x = m.bool_var("x");
/// let y = m.bool_var("y");
/// m.set_objective(Sense::Maximize, [(x, 2.0), (y, 3.0)]);
/// m.add_le([(x, 1.0), (y, 1.0)], 1.0, "choose-one");
/// let out = Solver::new(SolveLimits::default()).solve(&m);
/// assert_eq!(out.status, SolveStatus::Optimal);
/// assert_eq!(out.int_value(y), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Solver {
    limits: SolveLimits,
    simplex_options: SimplexOptions,
}

struct Search<'a> {
    model: &'a Model,
    simplex: Simplex,
    limits: SolveLimits,
    opts: SimplexOptions,
    start: Instant,
    minimize: bool,
    integral_objective: bool,
    incumbent: Option<(f64, Vec<f64>)>, // objective in minimize sense
    /// External cutoff converted to minimize sense (+inf when unset).
    cutoff_min: f64,
    best_bound: f64,                    // minimize sense
    stats: SolveStats,
    int_vars: Vec<VarId>,
    limit_hit: bool,
}

impl Solver {
    /// Creates a solver with the given limits and default simplex options.
    pub fn new(limits: SolveLimits) -> Self {
        Solver {
            limits,
            simplex_options: SimplexOptions::default(),
        }
    }

    /// Overrides the per-LP simplex options.
    pub fn with_simplex_options(mut self, opts: SimplexOptions) -> Self {
        self.simplex_options = opts;
        self
    }

    /// Solves `model` to integral optimality (or until a limit fires).
    pub fn solve(&self, model: &Model) -> SolveOutcome {
        let start = Instant::now();
        let minimize = model.obj_sense == Sense::Minimize;
        // Individual LP solves must not overshoot the whole-solve budget.
        let mut opts = self.simplex_options;
        if let Some(budget_end) = start.checked_add(self.limits.time_limit) {
            opts.deadline = Some(opts.deadline.map_or(budget_end, |d| d.min(budget_end)));
        }
        let mut search = Search {
            model,
            simplex: Simplex::new(model),
            limits: self.limits,
            opts,
            start,
            minimize,
            integral_objective: model.objective_is_integral(),
            incumbent: None,
            cutoff_min: self
                .limits
                .cutoff
                .map_or(f64::INFINITY, |c| if minimize { c } else { -c }),
            best_bound: f64::NEG_INFINITY,
            stats: SolveStats {
                variables: model.num_vars() as u64,
                constraints: model.num_constraints() as u64,
                ..Default::default()
            },
            int_vars: (0..model.num_vars())
                .map(|i| VarId(i as u32))
                .filter(|v| model.is_integer(*v))
                .collect(),
            limit_hit: false,
        };

        let mut lb: Vec<f64> = (0..model.num_vars()).map(|j| model.vars[j].lb).collect();
        let mut ub: Vec<f64> = (0..model.num_vars()).map(|j| model.vars[j].ub).collect();
        // Tighten integer bounds to integral values up front.
        for &v in &search.int_vars {
            let j = v.index();
            lb[j] = lb[j].ceil();
            ub[j] = ub[j].floor();
            if lb[j] > ub[j] {
                return search.finish(true);
            }
        }

        let root_pruned = search.explore(&mut lb, &mut ub, 0);
        let proven_infeasible =
            root_pruned == Explored::Infeasible && search.incumbent.is_none();
        search.finish(proven_infeasible)
    }
}

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum Explored {
    Done,
    Infeasible,
    Stop,
}

impl Search<'_> {
    /// Objective value converted to "minimize" orientation.
    fn to_min(&self, model_obj: f64) -> f64 {
        if self.minimize {
            model_obj
        } else {
            -model_obj
        }
    }

    fn min_to_model(&self, min_obj: f64) -> f64 {
        if self.minimize {
            min_obj
        } else {
            -min_obj
        }
    }

    fn out_of_budget(&mut self) -> bool {
        if self.start.elapsed() >= self.limits.time_limit
            || self.stats.bb_nodes >= self.limits.node_limit
            || self.stats.simplex_iterations >= self.limits.iteration_limit
        {
            self.limit_hit = true;
            true
        } else {
            false
        }
    }

    /// Depth-first exploration; `depth == 0` is the root relaxation, which
    /// is not counted as a branch-and-bound node (matching the paper, where
    /// "0 nodes" means the root LP was already integral).
    fn explore(&mut self, lb: &mut [f64], ub: &mut [f64], depth: u32) -> Explored {
        if self.out_of_budget() {
            return Explored::Stop;
        }
        if depth > 0 {
            self.stats.bb_nodes += 1;
        }
        let lp = self.simplex.solve(lb, ub, self.opts);
        self.stats.lp_solves += 1;
        self.stats.simplex_iterations += lp.iterations;
        match lp.status {
            LpStatus::Infeasible => return Explored::Infeasible,
            LpStatus::Unbounded => {
                // An unbounded relaxation of a bounded integer program can
                // only occur with unbounded integer variables; treat the
                // whole subtree as unprunable and bail out conservatively.
                self.limit_hit = true;
                return Explored::Stop;
            }
            LpStatus::IterLimit => {
                self.limit_hit = true;
                return Explored::Stop;
            }
            LpStatus::Optimal => {}
        }
        let mut bound = self.to_min(lp.objective);
        if self.integral_objective {
            // Any integral solution has an integral objective: round up.
            bound = (bound - 1e-6).ceil();
        }
        if depth == 0 {
            self.best_bound = bound;
        }
        let threshold = self
            .incumbent
            .as_ref()
            .map_or(f64::INFINITY, |(inc, _)| *inc)
            .min(self.cutoff_min);
        if bound >= threshold - 1e-9 {
            return Explored::Done; // pruned by incumbent or external cutoff
        }

        // Find a fractional integer variable.
        let mut branch: Option<(VarId, f64)> = None;
        let mut best_frac = 0.0;
        for &v in &self.int_vars {
            let x = lp.values[v.index()];
            let frac = (x - x.round()).abs();
            if frac > INT_TOL {
                match self.limits.branch_rule {
                    BranchRule::FirstFractional => {
                        branch = Some((v, x));
                        break;
                    }
                    BranchRule::HighestIndexUp => {
                        branch = Some((v, x)); // int_vars is index-ordered
                    }
                    BranchRule::MostFractional | BranchRule::MostFractionalUp => {
                        let dist = (x - x.floor() - 0.5).abs(); // 0 = most fractional
                        let score = 0.5 - dist;
                        if branch.is_none() || score > best_frac {
                            best_frac = score;
                            branch = Some((v, x));
                        }
                    }
                }
            }
        }

        let Some((bv, bx)) = branch else {
            // Integral solution.
            let obj = self.to_min(lp.objective);
            let threshold = self
                .incumbent
                .as_ref()
                .map_or(f64::INFINITY, |(inc, _)| *inc)
                .min(self.cutoff_min);
            if obj < threshold - 1e-9 {
                self.incumbent = Some((obj, lp.values.clone()));
            }
            if self.limits.first_solution_only {
                return Explored::Stop;
            }
            return Explored::Done;
        };

        // Branch: explore the child nearest the LP value first.
        let j = bv.index();
        let floor = bx.floor();
        let (old_lb, old_ub) = (lb[j], ub[j]);
        // Defensive: an LP value outside the node bounds signals a numerical
        // failure in the relaxation; branching would not shrink the domain
        // and the search could recurse forever.
        if floor >= old_ub || floor + 1.0 <= old_lb {
            debug_assert!(
                false,
                "LP value {bx} of {} escapes node bounds [{old_lb}, {old_ub}]",
                self.model.var_name(bv)
            );
            self.limit_hit = true;
            return Explored::Stop;
        }
        let down_first = match self.limits.branch_rule {
            BranchRule::MostFractionalUp | BranchRule::HighestIndexUp => false,
            _ => bx - floor <= 0.5,
        };

        let run = |this: &mut Self, lb: &mut [f64], ub: &mut [f64], down: bool| {
            if down {
                ub[j] = floor;
            } else {
                lb[j] = floor + 1.0;
            }
            let r = this.explore(lb, ub, depth + 1);
            lb[j] = old_lb;
            ub[j] = old_ub;
            r
        };

        let first = run(self, lb, ub, down_first);
        if first == Explored::Stop {
            return Explored::Stop;
        }
        let second = run(self, lb, ub, !down_first);
        if second == Explored::Stop {
            return Explored::Stop;
        }
        Explored::Done
    }

    fn finish(mut self, proven_infeasible: bool) -> SolveOutcome {
        self.stats.wall_time = self.start.elapsed();
        match self.incumbent.take() {
            Some((obj, values)) => {
                let status = if self.limit_hit && !self.limits.first_solution_only {
                    SolveStatus::Feasible
                } else {
                    SolveStatus::Optimal
                };
                SolveOutcome {
                    status,
                    objective: self.min_to_model(obj),
                    values,
                    best_bound: self.min_to_model(if status == SolveStatus::Optimal {
                        obj
                    } else {
                        self.best_bound
                    }),
                    stats: self.stats,
                }
            }
            None => SolveOutcome {
                status: if proven_infeasible && !self.limit_hit {
                    SolveStatus::Infeasible
                } else if self.limit_hit {
                    SolveStatus::LimitReached
                } else {
                    SolveStatus::Infeasible
                },
                objective: f64::NAN,
                values: vec![],
                best_bound: self.min_to_model(self.best_bound),
                stats: self.stats,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c st 3a + 4b + 2c <= 6, binary -> a + c = 17?
        // candidates: a+c (w5, v17), b+c (w6, v20). Optimal 20.
        let mut m = Model::new();
        let a = m.bool_var("a");
        let b = m.bool_var("b");
        let c = m.bool_var("c");
        m.set_objective(Sense::Maximize, [(a, 10.0), (b, 13.0), (c, 7.0)]);
        m.add_le([(a, 3.0), (b, 4.0), (c, 2.0)], 6.0, "w");
        let out = m.solve();
        assert_eq!(out.status, SolveStatus::Optimal);
        assert_eq!(out.objective.round() as i64, 20);
        assert!(m.check_feasible(&out.values, 1e-6).is_none());
    }

    #[test]
    fn integer_rounding_gap() {
        // min y st 2y >= 5, y integer -> 3 (LP bound 2.5 rounds to 3).
        let mut m = Model::new();
        let y = m.int_var(0.0, 100.0, "y");
        m.set_objective(Sense::Minimize, [(y, 1.0)]);
        m.add_ge([(y, 2.0)], 5.0, "c");
        let out = m.solve();
        assert_eq!(out.status, SolveStatus::Optimal);
        assert_eq!(out.int_value(y), 3);
    }

    #[test]
    fn infeasible_integer_program() {
        // 2 <= 3x <= 4 has no integer x... x=1 gives 3 in [2,4]! Use tighter:
        // 4 <= 3x <= 5 -> x would be 4/3..5/3, no integer.
        let mut m = Model::new();
        let x = m.int_var(0.0, 10.0, "x");
        m.add_ge([(x, 3.0)], 4.0, "lo");
        m.add_le([(x, 3.0)], 5.0, "hi");
        let out = m.solve();
        assert_eq!(out.status, SolveStatus::Infeasible);
    }

    #[test]
    fn equality_assignment() {
        // Exactly one of three binaries, max weight.
        let mut m = Model::new();
        let xs: Vec<_> = (0..3).map(|i| m.bool_var(format!("x{i}"))).collect();
        m.add_eq(xs.iter().map(|&x| (x, 1.0)), 1.0, "one");
        m.set_objective(
            Sense::Maximize,
            [(xs[0], 1.0), (xs[1], 5.0), (xs[2], 3.0)],
        );
        let out = m.solve();
        assert_eq!(out.status, SolveStatus::Optimal);
        assert_eq!(out.int_value(xs[1]), 1);
        assert_eq!(out.objective.round() as i64, 5);
    }

    #[test]
    fn first_solution_mode_stops_early() {
        let mut m = Model::new();
        let xs: Vec<_> = (0..6).map(|i| m.bool_var(format!("x{i}"))).collect();
        m.add_eq(xs.iter().map(|&x| (x, 1.0)), 1.0, "one");
        // No objective: any feasible point is fine.
        let limits = SolveLimits {
            first_solution_only: true,
            ..Default::default()
        };
        let out = m.solve_with(limits);
        assert_eq!(out.status, SolveStatus::Optimal);
        let total: f64 = out.values.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn node_limit_reported() {
        // A problem needing branching, with node_limit 0: the root solves,
        // then branching is forbidden.
        let mut m = Model::new();
        let xs: Vec<_> = (0..10).map(|i| m.bool_var(format!("x{i}"))).collect();
        // sum 3x_i == 7 cannot be satisfied at the root LP integrally but has
        // no integer solution at all (7 not divisible by 3)... choose rhs 6
        // so solutions exist but the root is likely fractional with these
        // conflicting weights.
        let expr: Vec<_> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, 2.0 + (i % 3) as f64))
            .collect();
        m.add_eq(expr.clone(), 7.0, "sum");
        m.set_objective(Sense::Maximize, xs.iter().map(|&x| (x, 1.0)));
        let limits = SolveLimits {
            node_limit: 0,
            ..Default::default()
        };
        let out = m.solve_with(limits);
        // With zero nodes we may or may not have an incumbent; the status
        // must reflect that honestly.
        match out.status {
            SolveStatus::Optimal | SolveStatus::Feasible => {
                assert!(m.check_feasible(&out.values, 1e-6).is_none());
            }
            SolveStatus::LimitReached => assert!(out.values.is_empty()),
            SolveStatus::Infeasible => panic!("problem is feasible"),
        }
    }

    #[test]
    fn maximization_bound_sense() {
        // max 3x + 2y, x,y int in [0,4], x + y <= 5 -> 3*4 + 2*1 = 14.
        let mut m = Model::new();
        let x = m.int_var(0.0, 4.0, "x");
        let y = m.int_var(0.0, 4.0, "y");
        m.set_objective(Sense::Maximize, [(x, 3.0), (y, 2.0)]);
        m.add_le([(x, 1.0), (y, 1.0)], 5.0, "cap");
        let out = m.solve();
        assert_eq!(out.status, SolveStatus::Optimal);
        assert_eq!(out.objective.round() as i64, 14);
        assert!((out.best_bound - out.objective).abs() < 1e-6);
    }

    #[test]
    fn mixed_integer_continuous() {
        // min x + y, x int, y cont; x + 2y >= 3.5; y <= 1 -> x=2,y=0.75?
        // cost x+y: try x=2, y=0.75 -> 2.75; x=1 -> y=1.25 > ub; x=3,y=0.25
        // -> 3.25. So 2.75.
        let mut m = Model::new();
        let x = m.int_var(0.0, 10.0, "x");
        let y = m.num_var(0.0, 1.0, "y");
        m.set_objective(Sense::Minimize, [(x, 1.0), (y, 1.0)]);
        m.add_ge([(x, 1.0), (y, 2.0)], 3.5, "c");
        let out = m.solve();
        assert_eq!(out.status, SolveStatus::Optimal);
        assert!((out.objective - 2.75).abs() < 1e-6, "{}", out.objective);
    }
}
