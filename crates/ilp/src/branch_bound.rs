//! Depth-first branch-and-bound over LP relaxations.
//!
//! The search mirrors the behaviour of early-90s LP-based MIP codes (and
//! therefore the CPLEX 3.x solver used in the paper): solve the LP
//! relaxation, pick a fractional integer variable, branch `x <= floor(v)` /
//! `x >= ceil(v)`, and explore depth-first, pruning on the incumbent. There
//! are no cuts, no heuristics, and no presolve, so the branch-and-bound node
//! count directly reflects the tightness of the formulation — which is
//! exactly the quantity the paper uses to compare formulations.
//!
//! Two search engines share the node logic:
//!
//! * **Serial** ([`SolveLimits::threads`] resolving to 1): an explicit
//!   open-node stack that reproduces the classic recursive DFS order
//!   exactly — node counts and simplex-iteration totals are bit-identical
//!   run to run, which the figure/table experiments depend on. The explicit
//!   stack also removes any recursion-depth limit on deep searches.
//! * **Parallel** (threads > 1): a work-stealing pool where each worker
//!   owns a private [`Simplex`] workspace and a deque of open nodes
//!   (depth-first from the back of its own deque, stealing from the front
//!   of others'), sharing the incumbent through an atomic. Node counts may
//!   vary between runs — statuses and optimal objectives do not.

use std::sync::Arc;
use std::time::{Duration, Instant};

use optimod_trace::{LpClass, NodeOutcome, Phase, Trace, TraceEvent};

use crate::fault::{FaultAction, FaultPlan, FaultSite};
use crate::model::{Model, Sense, VarId};
use crate::parallel;
use crate::simplex::{Basis, LpOutcome, LpStatus, Simplex, SimplexOptions, WarmStart};
use crate::solution::{panic_message, SolveError, SolveOutcome, SolveStats, SolveStatus};
use crate::stop::StopFlag;
use crate::tol::{INT_ROUND_TOL, INT_TOL, PRUNE_TOL};

/// Maps an LP status to its trace classification.
pub(crate) fn lp_class(status: LpStatus) -> LpClass {
    match status {
        LpStatus::Optimal => LpClass::Optimal,
        LpStatus::Infeasible => LpClass::Infeasible,
        LpStatus::Unbounded => LpClass::Unbounded,
        LpStatus::IterLimit => LpClass::Limit,
        LpStatus::Stalled => LpClass::Stalled,
    }
}

/// Rule for choosing the branching variable among fractional candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BranchRule {
    /// Variable whose LP value is closest to 0.5 away from integrality
    /// (most fractional); dive toward the nearest integer first.
    MostFractional,
    /// First fractional variable in index order. The default: on the
    /// modulo scheduling formulations, index order follows the operations,
    /// so the search fixes the schedule one operation at a time — measured
    /// several times faster than most-fractional on both formulations (see
    /// the `ablation_branching` benchmark).
    #[default]
    FirstFractional,
    /// Most fractional, but always explore the *up* (ceil) child first —
    /// effective on assignment-style binaries where setting a variable to 1
    /// carries the information.
    MostFractionalUp,
    /// Prefer the fractional variable with the highest index (stages and
    /// kill variables are created after the row binaries in the modulo
    /// scheduling formulations), exploring the up child first.
    HighestIndexUp,
}

/// Picks the branching variable under `rule` from the fractional integer
/// variables of an LP point. Shared by the serial and parallel engines so
/// both walk the same tree shape.
pub(crate) fn choose_branch(
    rule: BranchRule,
    int_vars: &[VarId],
    values: &[f64],
) -> Option<(VarId, f64)> {
    let mut branch: Option<(VarId, f64)> = None;
    let mut best_frac = 0.0;
    for &v in int_vars {
        let x = values[v.index()];
        let frac = (x - x.round()).abs();
        if frac > INT_TOL {
            match rule {
                BranchRule::FirstFractional => return Some((v, x)),
                BranchRule::HighestIndexUp => {
                    branch = Some((v, x)); // int_vars is index-ordered
                }
                BranchRule::MostFractional | BranchRule::MostFractionalUp => {
                    let dist = (x - x.floor() - 0.5).abs(); // 0 = most fractional
                    let score = 0.5 - dist;
                    if branch.is_none() || score > best_frac {
                        best_frac = score;
                        branch = Some((v, x));
                    }
                }
            }
        }
    }
    branch
}

/// Whether to explore the down (floor) child before the up (ceil) child.
pub(crate) fn down_child_first(rule: BranchRule, bx: f64, floor: f64) -> bool {
    match rule {
        BranchRule::MostFractionalUp | BranchRule::HighestIndexUp => false,
        _ => bx - floor <= 0.5,
    }
}

/// Rounds an LP bound up to the next representable objective value when the
/// objective is integral over integer solutions.
#[inline]
pub(crate) fn tighten_integral_bound(bound: f64) -> f64 {
    (bound - INT_ROUND_TOL).ceil()
}

/// Resource limits for one branch-and-bound solve.
///
/// The paper caps each loop at 15 minutes of CPLEX time; [`SolveLimits`]
/// plays the same role here with both a wall-clock deadline and a node cap.
#[derive(Debug, Clone)]
pub struct SolveLimits {
    /// Wall-clock limit for the whole solve.
    pub time_limit: Duration,
    /// Maximum number of branch-and-bound nodes (beyond the root).
    pub node_limit: u64,
    /// Maximum total simplex iterations.
    pub iteration_limit: u64,
    /// Branching rule.
    pub branch_rule: BranchRule,
    /// Stop at the first integral solution instead of proving optimality.
    /// This is what the paper's NoObj scheduler does ("simply returns the
    /// first schedule that it finds").
    pub first_solution_only: bool,
    /// Known-achievable objective value (in the model's sense), e.g. from a
    /// heuristic solution. The search prunes every subtree that cannot
    /// *strictly* beat it, so an [`SolveStatus::Infeasible`] outcome under
    /// a cutoff means "nothing better than the cutoff exists" — the caller
    /// already holds a solution attaining it.
    pub cutoff: Option<f64>,
    /// Worker threads for the search. `1` (the experiments' setting) runs
    /// the deterministic serial DFS; `n > 1` runs the work-stealing
    /// parallel search; `0` resolves from the environment — the
    /// `OPTIMOD_THREADS` variable when set, otherwise the machine's
    /// available parallelism.
    pub threads: u32,
    /// Cooperative cancellation observed between nodes and inside every LP
    /// pivot loop. Cloning `SolveLimits` shares the flag, so a caller can
    /// keep a clone and stop a solve running on another thread.
    pub stop: StopFlag,
    /// Structured trace of the solve (node lifecycle, LP solves, incumbent
    /// updates). Cloning `SolveLimits` shares the sink, so the scheduler's
    /// per-`II` solves land on one timeline. The default handle is disabled
    /// and costs one pointer check per event site.
    pub trace: Trace,
    /// Deterministic fault injection for chaos testing. Cloning
    /// `SolveLimits` shares the plan's hit counters (like `stop` and
    /// `trace`), so "the Nth hit" counts across the whole pipeline. The
    /// default plan is disabled and costs one pointer check per site.
    pub fault: FaultPlan,
}

impl Default for SolveLimits {
    fn default() -> Self {
        SolveLimits {
            time_limit: Duration::from_secs(900),
            node_limit: 1_000_000,
            iteration_limit: u64::MAX,
            branch_rule: BranchRule::default(),
            first_solution_only: false,
            cutoff: None,
            threads: 0,
            stop: StopFlag::new(),
            trace: Trace::disabled(),
            fault: FaultPlan::none(),
        }
    }
}

impl SolveLimits {
    /// Limits with a given wall-clock budget, other limits at default.
    pub fn with_time(time_limit: Duration) -> Self {
        SolveLimits {
            time_limit,
            ..Default::default()
        }
    }

    /// The effective worker-thread count: the `threads` field when
    /// positive, otherwise `OPTIMOD_THREADS` from the environment, falling
    /// back to the machine's available parallelism.
    pub fn resolve_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads as usize
        } else {
            optimod_par::default_threads()
        }
    }
}

/// LP-based branch-and-bound solver.
///
/// ```
/// use optimod_ilp::{Model, Sense, Solver, SolveLimits, SolveStatus};
/// let mut m = Model::new();
/// let x = m.bool_var("x");
/// let y = m.bool_var("y");
/// m.set_objective(Sense::Maximize, [(x, 2.0), (y, 3.0)]);
/// m.add_le([(x, 1.0), (y, 1.0)], 1.0, "choose-one");
/// let out = Solver::new(SolveLimits::default()).solve(&m);
/// assert_eq!(out.status, SolveStatus::Optimal);
/// assert_eq!(out.int_value(y), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Solver {
    limits: SolveLimits,
    simplex_options: SimplexOptions,
}

struct Search<'a> {
    model: &'a Model,
    simplex: Simplex,
    limits: SolveLimits,
    opts: SimplexOptions,
    start: Instant,
    minimize: bool,
    integral_objective: bool,
    incumbent: Option<(f64, Vec<f64>)>, // objective in minimize sense
    /// External cutoff converted to minimize sense (+inf when unset).
    cutoff_min: f64,
    best_bound: f64, // minimize sense
    stats: SolveStats,
    int_vars: Vec<VarId>,
    limit_hit: bool,
    error: Option<SolveError>,
}

impl Solver {
    /// Creates a solver with the given limits and default simplex options.
    pub fn new(limits: SolveLimits) -> Self {
        Solver {
            limits,
            simplex_options: SimplexOptions::default(),
        }
    }

    /// Overrides the per-LP simplex options.
    pub fn with_simplex_options(mut self, opts: SimplexOptions) -> Self {
        self.simplex_options = opts;
        self
    }

    /// Solves `model` to integral optimality (or until a limit fires).
    ///
    /// Never unwinds: a panic anywhere in the search (an injected fault, a
    /// genuine bug) is caught here as a last resort and reported as
    /// [`SolveError::WorkerPanic`] on a [`SolveStatus::LimitReached`]
    /// outcome. (The serial per-LP and parallel per-node recovery paths
    /// usually catch panics earlier with better bookkeeping.)
    pub fn solve(&self, model: &Model) -> SolveOutcome {
        let start = Instant::now();
        // Individual LP solves must not overshoot the whole-solve budget,
        // and must observe the caller's cancellation flag and fault plan.
        let mut opts = self.simplex_options.clone();
        if let Some(budget_end) = start.checked_add(self.limits.time_limit) {
            opts.deadline = Some(opts.deadline.map_or(budget_end, |d| d.min(budget_end)));
        }
        opts.stop = self.limits.stop.clone();
        opts.fault = self.limits.fault.clone();

        let fired_before = self.limits.fault.fired_count();
        let solved = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if self.limits.resolve_threads() > 1 {
                parallel::solve(model, &self.limits, &opts, start)
            } else {
                self.solve_serial(model, start, opts.clone())
            }
        }));
        let mut outcome = match solved {
            Ok(outcome) => outcome,
            Err(payload) => {
                self.limits
                    .trace
                    .emit(|| TraceEvent::PanicRecovered { worker: 0 });
                self.limits.trace.emit(|| TraceEvent::SolveEnd {
                    status: SolveStatus::LimitReached.name(),
                });
                SolveOutcome {
                    status: SolveStatus::LimitReached,
                    objective: f64::NAN,
                    values: vec![],
                    best_bound: f64::NAN,
                    stats: SolveStats {
                        variables: model.num_vars() as u64,
                        constraints: model.num_constraints() as u64,
                        panics_recovered: 1,
                        wall_time: start.elapsed(),
                        ..Default::default()
                    },
                    error: Some(SolveError::WorkerPanic(panic_message(payload.as_ref()))),
                }
            }
        };
        outcome.stats.faults_injected +=
            self.limits.fault.fired_count().saturating_sub(fired_before);
        outcome
    }

    /// The deterministic serial DFS engine.
    fn solve_serial(&self, model: &Model, start: Instant, opts: SimplexOptions) -> SolveOutcome {
        let minimize = model.obj_sense == Sense::Minimize;
        self.limits.trace.emit(|| TraceEvent::SolveBegin {
            variables: model.num_vars() as u64,
            constraints: model.num_constraints() as u64,
            threads: 1,
        });
        let mut search = Search {
            model,
            simplex: Simplex::new(model),
            limits: self.limits.clone(),
            opts,
            start,
            minimize,
            integral_objective: model.objective_is_integral(),
            incumbent: None,
            cutoff_min: self
                .limits
                .cutoff
                .map_or(f64::INFINITY, |c| if minimize { c } else { -c }),
            best_bound: f64::NEG_INFINITY,
            stats: SolveStats {
                variables: model.num_vars() as u64,
                constraints: model.num_constraints() as u64,
                ..Default::default()
            },
            int_vars: (0..model.num_vars())
                .map(|i| VarId(i as u32))
                .filter(|v| model.is_integer(*v))
                .collect(),
            limit_hit: false,
            error: None,
        };

        let mut lb: Vec<f64> = (0..model.num_vars()).map(|j| model.vars[j].lb).collect();
        let mut ub: Vec<f64> = (0..model.num_vars()).map(|j| model.vars[j].ub).collect();
        // Tighten integer bounds to integral values up front.
        for &v in &search.int_vars {
            let j = v.index();
            lb[j] = lb[j].ceil();
            ub[j] = ub[j].floor();
            if lb[j] > ub[j] {
                return search.finish(true);
            }
        }

        let root_result = search.run(&mut lb, &mut ub);
        let proven_infeasible = root_result == Explored::Infeasible && search.incumbent.is_none();
        search.finish(proven_infeasible)
    }
}

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum Explored {
    Done,
    Infeasible,
    Stop,
}

/// One entry of the explicit DFS stack. `Node` expands the subproblem
/// defined by the *current* contents of the bound arrays; the `Set*`
/// frames mutate one bound in place, serving both as "apply child bound"
/// (pushed below a `Node`) and as "undo on the way back up" (pushed below
/// the sibling's frames). This replaces recursion one-for-one: frames are
/// pushed in reverse execution order, so popping replays exactly the
/// recursive apply/explore/restore sequence — same node order, same node
/// count — without consuming call stack on deep searches.
enum Frame {
    /// `warm` carries the parent's optimal basis for a warm-started
    /// re-solve; `Arc` so both children (and the parallel engine's stolen
    /// nodes) share one snapshot.
    Node {
        depth: u32,
        warm: Option<Arc<Basis>>,
    },
    SetLb {
        j: usize,
        v: f64,
    },
    SetUb {
        j: usize,
        v: f64,
    },
}

impl Search<'_> {
    /// Objective value converted to "minimize" orientation.
    fn to_min(&self, model_obj: f64) -> f64 {
        if self.minimize {
            model_obj
        } else {
            -model_obj
        }
    }

    fn min_to_model(&self, min_obj: f64) -> f64 {
        if self.minimize {
            min_obj
        } else {
            -min_obj
        }
    }

    fn out_of_budget(&mut self) -> bool {
        if self.start.elapsed() >= self.limits.time_limit
            || self.stats.bb_nodes >= self.limits.node_limit
            || self.stats.simplex_iterations >= self.limits.iteration_limit
            || self.limits.stop.is_stopped()
        {
            self.limit_hit = true;
            true
        } else {
            false
        }
    }

    /// Iterative depth-first exploration from the root relaxation.
    /// Returns the root's own classification (`Infeasible` only when the
    /// root LP itself was infeasible — a child's infeasibility just prunes
    /// that subtree, as in the recursive formulation).
    fn run(&mut self, lb: &mut [f64], ub: &mut [f64]) -> Explored {
        let mut stack: Vec<Frame> = vec![Frame::Node {
            depth: 0,
            warm: None,
        }];
        let mut root_result = Explored::Done;
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::SetLb { j, v } => lb[j] = v,
                Frame::SetUb { j, v } => ub[j] = v,
                Frame::Node { depth, warm } => match self.expand(lb, ub, depth, warm, &mut stack) {
                    Explored::Stop => return Explored::Stop,
                    r => {
                        if depth == 0 {
                            root_result = r;
                        }
                    }
                },
            }
        }
        root_result
    }

    /// Processes one node: budget check, LP relaxation, prune / record /
    /// branch. Child subproblems are pushed onto `stack`; `depth == 0` is
    /// the root relaxation, which is not counted as a branch-and-bound node
    /// (matching the paper, where "0 nodes" means the root LP was already
    /// integral).
    fn expand(
        &mut self,
        lb: &mut [f64],
        ub: &mut [f64],
        depth: u32,
        warm: Option<Arc<Basis>>,
        stack: &mut Vec<Frame>,
    ) -> Explored {
        if self.out_of_budget() {
            return Explored::Stop;
        }
        // Deterministic fault injection at node expansion. The check sits
        // before the NodeOpen emit so an injected panic (raised inside
        // `fire`) leaves the trace's open/close pairing balanced.
        if let Some(action) = self.limits.fault.fire(FaultSite::NodeExpand) {
            self.limits.trace.emit(|| TraceEvent::FaultInjected {
                worker: 0,
                site: FaultSite::NodeExpand.name(),
                action: action.name(),
            });
            match action {
                FaultAction::Stall => {
                    self.limit_hit = true;
                    self.error = Some(SolveError::NumericallyUnstable {
                        iterations: self.stats.simplex_iterations,
                    });
                    return Explored::Stop;
                }
                FaultAction::SpuriousTimeout => {
                    self.limit_hit = true;
                    return Explored::Stop;
                }
                FaultAction::Panic | FaultAction::PerturbIncumbent => {}
            }
        }
        // Cloning releases the borrow on `self.limits` so spans can coexist
        // with `&mut self` field access below; clones share the sink.
        let trace = self.limits.trace.clone();
        // The root (depth 0) is not a counted node and gets no open/close
        // pair — every NodeOpen in the stream is a counted bb_node.
        let close = |outcome: NodeOutcome| {
            if depth > 0 {
                trace.emit(|| TraceEvent::NodeClose { worker: 0, outcome });
            }
        };
        if depth > 0 {
            self.stats.bb_nodes += 1;
            trace.emit(|| TraceEvent::NodeOpen { worker: 0, depth });
        }
        // Recover panics from inside the LP solve (injected faults, numeric
        // bugs) as a typed error with the node closed, mirroring the
        // parallel workers' per-node recovery.
        let lp: LpOutcome = {
            let _root_span = if depth == 0 {
                Some(trace.span(Phase::RootLp))
            } else {
                None
            };
            let solved = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.simplex.solve_warm(lb, ub, &self.opts, warm.as_deref())
            }));
            match solved {
                Ok(lp) => lp,
                Err(payload) => {
                    self.stats.panics_recovered += 1;
                    self.limit_hit = true;
                    self.error = Some(SolveError::WorkerPanic(panic_message(payload.as_ref())));
                    close(NodeOutcome::Panicked);
                    trace.emit(|| TraceEvent::PanicRecovered { worker: 0 });
                    return Explored::Stop;
                }
            }
        };
        self.stats.lp_solves += 1;
        self.stats.simplex_iterations += lp.iterations;
        self.stats.refactors += lp.refactors;
        self.stats.eta_pivots += lp.eta_pivots;
        self.stats.ftran_time += Duration::from_nanos(lp.ftran_nanos);
        self.stats.btran_time += Duration::from_nanos(lp.btran_nanos);
        match lp.warm {
            WarmStart::Taken => self.stats.warm_starts += 1,
            WarmStart::Abandoned => self.stats.warm_abandoned += 1,
            WarmStart::Cold => {}
        }
        trace.emit(|| TraceEvent::LpSolved {
            worker: 0,
            class: lp_class(lp.status),
            iterations: lp.iterations,
            refactors: lp.refactors,
            etas: lp.eta_pivots,
            warm: lp.warm.name(),
        });
        match lp.status {
            LpStatus::Infeasible => {
                close(NodeOutcome::Infeasible);
                return Explored::Infeasible;
            }
            LpStatus::Unbounded => {
                // An unbounded relaxation of a bounded integer program can
                // only occur with unbounded integer variables; treat the
                // whole subtree as unprunable and bail out conservatively.
                self.limit_hit = true;
                close(NodeOutcome::Limit);
                return Explored::Stop;
            }
            LpStatus::IterLimit => {
                self.limit_hit = true;
                close(NodeOutcome::Limit);
                return Explored::Stop;
            }
            LpStatus::Stalled => {
                // The watchdog abandoned a numerically unstable LP. Keep
                // whatever incumbent exists and report the cause.
                self.stats.stalled_lps += 1;
                self.limit_hit = true;
                self.error = Some(SolveError::NumericallyUnstable {
                    iterations: lp.iterations,
                });
                close(NodeOutcome::Limit);
                return Explored::Stop;
            }
            LpStatus::Optimal => {}
        }
        let mut bound = self.to_min(lp.objective);
        if self.integral_objective {
            // Any integral solution has an integral objective: round up.
            bound = tighten_integral_bound(bound);
        }
        if depth == 0 {
            self.best_bound = bound;
        }
        let threshold = self
            .incumbent
            .as_ref()
            .map_or(f64::INFINITY, |(inc, _)| *inc)
            .min(self.cutoff_min);
        if bound >= threshold - PRUNE_TOL {
            close(NodeOutcome::PrunedBound);
            return Explored::Done; // pruned by incumbent or external cutoff
        }

        let Some((bv, bx)) = choose_branch(self.limits.branch_rule, &self.int_vars, &lp.values)
        else {
            // Integral solution.
            let mut obj = self.to_min(lp.objective);
            if obj < threshold - PRUNE_TOL {
                self.stats.incumbents += 1;
                if self.limits.fault.take_incumbent_perturbation() {
                    // Injected corruption: the claimed objective no longer
                    // matches the stored values. The exact-arithmetic
                    // certifier downstream must catch the mismatch if this
                    // incumbent survives to the final outcome.
                    obj += 0.5;
                }
                let model_obj = self.min_to_model(obj);
                trace.emit(|| TraceEvent::Incumbent {
                    worker: 0,
                    objective: model_obj,
                });
                self.incumbent = Some((obj, lp.values.clone()));
            }
            close(NodeOutcome::Integral);
            if self.limits.first_solution_only {
                return Explored::Stop;
            }
            return Explored::Done;
        };

        // Branch: explore the child nearest the LP value first.
        let j = bv.index();
        let floor = bx.floor();
        let (old_lb, old_ub) = (lb[j], ub[j]);
        // Defensive: an LP value outside the node bounds signals a numerical
        // failure in the relaxation; branching would not shrink the domain
        // and the search could loop forever.
        if floor >= old_ub || floor + 1.0 <= old_lb {
            debug_assert!(
                false,
                "LP value {bx} of {} escapes node bounds [{old_lb}, {old_ub}]",
                self.model.var_name(bv)
            );
            self.limit_hit = true;
            close(NodeOutcome::Limit);
            return Explored::Stop;
        }
        let down_first = down_child_first(self.limits.branch_rule, bx, floor);

        // Push apply / explore / restore frames for both children in
        // reverse execution order (the down child tightens the upper bound
        // to `floor`, the up child raises the lower bound to `floor + 1`).
        let child = |down: bool| {
            if down {
                (Frame::SetUb { j, v: floor }, Frame::SetUb { j, v: old_ub })
            } else {
                (
                    Frame::SetLb { j, v: floor + 1.0 },
                    Frame::SetLb { j, v: old_lb },
                )
            }
        };
        let (first_apply, first_restore) = child(down_first);
        let (second_apply, second_restore) = child(!down_first);
        // This node's optimal basis warm-starts both children (one bound
        // change away, so the parent basis stays dual feasible for them).
        let snapshot = self.simplex.basis_snapshot().map(Arc::new);
        stack.push(second_restore);
        stack.push(Frame::Node {
            depth: depth + 1,
            warm: snapshot.clone(),
        });
        stack.push(second_apply);
        stack.push(first_restore);
        stack.push(Frame::Node {
            depth: depth + 1,
            warm: snapshot,
        });
        stack.push(first_apply);
        close(NodeOutcome::Branched);
        Explored::Done
    }

    fn finish(mut self, proven_infeasible: bool) -> SolveOutcome {
        self.stats.wall_time = self.start.elapsed();
        let outcome = match self.incumbent.take() {
            Some((obj, values)) => {
                let status = if self.limit_hit && !self.limits.first_solution_only {
                    SolveStatus::Feasible
                } else {
                    SolveStatus::Optimal
                };
                SolveOutcome {
                    status,
                    objective: self.min_to_model(obj),
                    values,
                    best_bound: self.min_to_model(if status == SolveStatus::Optimal {
                        obj
                    } else {
                        self.best_bound
                    }),
                    stats: self.stats,
                    error: self.error.take(),
                }
            }
            None => SolveOutcome {
                status: if proven_infeasible && !self.limit_hit {
                    SolveStatus::Infeasible
                } else if self.limit_hit {
                    SolveStatus::LimitReached
                } else {
                    SolveStatus::Infeasible
                },
                objective: f64::NAN,
                values: vec![],
                best_bound: self.min_to_model(self.best_bound),
                stats: self.stats,
                error: self.error.take(),
            },
        };
        self.limits.trace.emit(|| TraceEvent::SolveEnd {
            status: outcome.status.name(),
        });
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c st 3a + 4b + 2c <= 6, binary -> a + c = 17?
        // candidates: a+c (w5, v17), b+c (w6, v20). Optimal 20.
        let mut m = Model::new();
        let a = m.bool_var("a");
        let b = m.bool_var("b");
        let c = m.bool_var("c");
        m.set_objective(Sense::Maximize, [(a, 10.0), (b, 13.0), (c, 7.0)]);
        m.add_le([(a, 3.0), (b, 4.0), (c, 2.0)], 6.0, "w");
        let out = m.solve();
        assert_eq!(out.status, SolveStatus::Optimal);
        assert_eq!(out.objective.round() as i64, 20);
        assert!(m.check_feasible(&out.values, 1e-6).is_none());
    }

    #[test]
    fn integer_rounding_gap() {
        // min y st 2y >= 5, y integer -> 3 (LP bound 2.5 rounds to 3).
        let mut m = Model::new();
        let y = m.int_var(0.0, 100.0, "y");
        m.set_objective(Sense::Minimize, [(y, 1.0)]);
        m.add_ge([(y, 2.0)], 5.0, "c");
        let out = m.solve();
        assert_eq!(out.status, SolveStatus::Optimal);
        assert_eq!(out.int_value(y), 3);
    }

    #[test]
    fn infeasible_integer_program() {
        // 2 <= 3x <= 4 has no integer x... x=1 gives 3 in [2,4]! Use tighter:
        // 4 <= 3x <= 5 -> x would be 4/3..5/3, no integer.
        let mut m = Model::new();
        let x = m.int_var(0.0, 10.0, "x");
        m.add_ge([(x, 3.0)], 4.0, "lo");
        m.add_le([(x, 3.0)], 5.0, "hi");
        let out = m.solve();
        assert_eq!(out.status, SolveStatus::Infeasible);
    }

    #[test]
    fn equality_assignment() {
        // Exactly one of three binaries, max weight.
        let mut m = Model::new();
        let xs: Vec<_> = (0..3).map(|i| m.bool_var(format!("x{i}"))).collect();
        m.add_eq(xs.iter().map(|&x| (x, 1.0)), 1.0, "one");
        m.set_objective(Sense::Maximize, [(xs[0], 1.0), (xs[1], 5.0), (xs[2], 3.0)]);
        let out = m.solve();
        assert_eq!(out.status, SolveStatus::Optimal);
        assert_eq!(out.int_value(xs[1]), 1);
        assert_eq!(out.objective.round() as i64, 5);
    }

    #[test]
    fn first_solution_mode_stops_early() {
        let mut m = Model::new();
        let xs: Vec<_> = (0..6).map(|i| m.bool_var(format!("x{i}"))).collect();
        m.add_eq(xs.iter().map(|&x| (x, 1.0)), 1.0, "one");
        // No objective: any feasible point is fine.
        let limits = SolveLimits {
            first_solution_only: true,
            ..Default::default()
        };
        let out = m.solve_with(limits);
        assert_eq!(out.status, SolveStatus::Optimal);
        let total: f64 = out.values.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn node_limit_reported() {
        // A problem needing branching, with node_limit 0: the root solves,
        // then branching is forbidden.
        let mut m = Model::new();
        let xs: Vec<_> = (0..10).map(|i| m.bool_var(format!("x{i}"))).collect();
        // sum 3x_i == 7 cannot be satisfied at the root LP integrally but has
        // no integer solution at all (7 not divisible by 3)... choose rhs 6
        // so solutions exist but the root is likely fractional with these
        // conflicting weights.
        let expr: Vec<_> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, 2.0 + (i % 3) as f64))
            .collect();
        m.add_eq(expr.clone(), 7.0, "sum");
        m.set_objective(Sense::Maximize, xs.iter().map(|&x| (x, 1.0)));
        let limits = SolveLimits {
            node_limit: 0,
            ..Default::default()
        };
        let out = m.solve_with(limits);
        // With zero nodes we may or may not have an incumbent; the status
        // must reflect that honestly.
        match out.status {
            SolveStatus::Optimal | SolveStatus::Feasible => {
                assert!(m.check_feasible(&out.values, 1e-6).is_none());
            }
            SolveStatus::LimitReached => assert!(out.values.is_empty()),
            SolveStatus::Infeasible => panic!("problem is feasible"),
        }
    }

    #[test]
    fn maximization_bound_sense() {
        // max 3x + 2y, x,y int in [0,4], x + y <= 5 -> 3*4 + 2*1 = 14.
        let mut m = Model::new();
        let x = m.int_var(0.0, 4.0, "x");
        let y = m.int_var(0.0, 4.0, "y");
        m.set_objective(Sense::Maximize, [(x, 3.0), (y, 2.0)]);
        m.add_le([(x, 1.0), (y, 1.0)], 5.0, "cap");
        let out = m.solve();
        assert_eq!(out.status, SolveStatus::Optimal);
        assert_eq!(out.objective.round() as i64, 14);
        assert!((out.best_bound - out.objective).abs() < 1e-6);
    }

    #[test]
    fn mixed_integer_continuous() {
        // min x + y, x int, y cont; x + 2y >= 3.5; y <= 1 -> x=2,y=0.75?
        // cost x+y: try x=2, y=0.75 -> 2.75; x=1 -> y=1.25 > ub; x=3,y=0.25
        // -> 3.25. So 2.75.
        let mut m = Model::new();
        let x = m.int_var(0.0, 10.0, "x");
        let y = m.num_var(0.0, 1.0, "y");
        m.set_objective(Sense::Minimize, [(x, 1.0), (y, 1.0)]);
        m.add_ge([(x, 1.0), (y, 2.0)], 3.5, "c");
        let out = m.solve();
        assert_eq!(out.status, SolveStatus::Optimal);
        assert!((out.objective - 2.75).abs() < 1e-6, "{}", out.objective);
    }

    /// A knapsack-style model big enough to force some branching.
    fn branching_model(n: usize) -> Model {
        let mut m = Model::new();
        let xs: Vec<_> = (0..n).map(|i| m.bool_var(format!("x{i}"))).collect();
        let weights: Vec<f64> = (0..n).map(|i| 2.0 + ((i * 7) % 5) as f64).collect();
        let values: Vec<f64> = (0..n).map(|i| 3.0 + ((i * 11) % 7) as f64).collect();
        m.add_le(
            xs.iter().zip(&weights).map(|(&x, &w)| (x, w)),
            weights.iter().sum::<f64>() / 2.5,
            "cap",
        );
        m.set_objective(
            Sense::Maximize,
            xs.iter().zip(&values).map(|(&x, &v)| (x, v)),
        );
        m
    }

    #[test]
    fn parallel_matches_serial_objective() {
        let m = branching_model(14);
        let serial = m.solve_with(SolveLimits {
            threads: 1,
            ..Default::default()
        });
        assert_eq!(serial.status, SolveStatus::Optimal);
        for threads in [2, 4] {
            let par = m.solve_with(SolveLimits {
                threads,
                ..Default::default()
            });
            assert_eq!(par.status, SolveStatus::Optimal, "{threads} threads");
            assert!(
                (par.objective - serial.objective).abs() < 1e-6,
                "{threads} threads: {} vs {}",
                par.objective,
                serial.objective
            );
            assert!(m.check_feasible(&par.values, 1e-6).is_none());
        }
    }

    #[test]
    fn parallel_detects_infeasible() {
        let mut m = Model::new();
        let x = m.int_var(0.0, 10.0, "x");
        m.add_ge([(x, 3.0)], 4.0, "lo");
        m.add_le([(x, 3.0)], 5.0, "hi");
        let out = m.solve_with(SolveLimits {
            threads: 4,
            ..Default::default()
        });
        assert_eq!(out.status, SolveStatus::Infeasible);
    }

    #[test]
    fn parallel_respects_node_limit() {
        let m = branching_model(18);
        let out = m.solve_with(SolveLimits {
            threads: 4,
            node_limit: 3,
            ..Default::default()
        });
        // The node counter may overshoot by at most one in-flight node per
        // worker.
        assert!(out.stats.bb_nodes <= 3 + 4, "{}", out.stats.bb_nodes);
        match out.status {
            SolveStatus::Feasible | SolveStatus::LimitReached | SolveStatus::Optimal => {}
            SolveStatus::Infeasible => panic!("problem is feasible"),
        }
    }

    #[test]
    fn stop_flag_cancels_solve() {
        let m = branching_model(20);
        let limits = SolveLimits::default();
        limits.stop.stop(); // cancelled before it starts
        let out = m.solve_with(limits);
        assert_eq!(out.status, SolveStatus::LimitReached);
    }

    /// A cancelled parallel solve of a *feasible* model must never claim
    /// `Infeasible`: workers drain on the caller's stop flag without
    /// setting the internal limit marker, and before the explicit
    /// caller-stop check in the finish path an empty pool with no incumbent
    /// was misreported as an infeasibility proof — which the cross-backend
    /// portfolio then escalated into a phantom backend disagreement.
    #[test]
    fn parallel_stop_is_a_limit_not_an_infeasibility_proof() {
        for delay_us in [0u64, 20, 50, 100, 200, 500, 1000, 2000] {
            let m = branching_model(20);
            let limits = SolveLimits {
                threads: 4,
                first_solution_only: true,
                ..Default::default()
            };
            let stop = limits.stop.clone();
            std::thread::scope(|s| {
                s.spawn(move || {
                    std::thread::sleep(std::time::Duration::from_micros(delay_us));
                    stop.stop();
                });
                let out = m.solve_with(limits);
                match out.status {
                    // Won the race outright, or was cut off: both fine.
                    SolveStatus::Optimal | SolveStatus::Feasible | SolveStatus::LimitReached => {}
                    SolveStatus::Infeasible => {
                        panic!("delay {delay_us}us: cancellation forged an infeasibility proof")
                    }
                }
            });
        }
    }

    #[test]
    fn parallel_first_solution_is_feasible() {
        let m = branching_model(12);
        let out = m.solve_with(SolveLimits {
            threads: 4,
            first_solution_only: true,
            ..Default::default()
        });
        assert_eq!(out.status, SolveStatus::Optimal);
        assert!(m.check_feasible(&out.values, 1e-6).is_none());
    }
}
