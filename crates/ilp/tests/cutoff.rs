//! Tests for the external-cutoff pruning feature of the solver.

use optimod_ilp::{Model, Sense, SolveLimits, SolveStatus};

fn knapsack() -> (Model, f64) {
    // max Σ v_i x_i st Σ w_i x_i <= 20, 12 binaries. Optimal value is
    // computed by the unconstrained solve in each test.
    let mut m = Model::new();
    let items: Vec<(f64, f64)> = vec![
        (4.0, 5.0),
        (7.0, 9.0),
        (3.0, 4.0),
        (5.0, 6.0),
        (8.0, 10.0),
        (2.0, 2.0),
        (6.0, 7.0),
        (1.0, 1.5),
        (9.0, 11.0),
        (4.0, 4.5),
        (3.0, 3.2),
        (5.0, 6.1),
    ];
    let xs: Vec<_> = (0..items.len())
        .map(|i| m.bool_var(format!("x{i}")))
        .collect();
    m.add_le(
        xs.iter().zip(&items).map(|(&x, &(w, _))| (x, w)),
        20.0,
        "capacity",
    );
    m.set_objective(
        Sense::Maximize,
        xs.iter().zip(&items).map(|(&x, &(_, v))| (x, v)),
    );
    let opt = m.solve();
    assert_eq!(opt.status, SolveStatus::Optimal);
    (m, opt.objective)
}

#[test]
fn cutoff_below_optimum_finds_better_solution() {
    let (m, opt) = knapsack();
    let limits = SolveLimits {
        cutoff: Some(opt - 3.0),
        ..Default::default()
    };
    let out = m.solve_with(limits);
    assert_eq!(out.status, SolveStatus::Optimal);
    assert!((out.objective - opt).abs() < 1e-6);
}

#[test]
fn cutoff_at_optimum_proves_nothing_better() {
    let (m, opt) = knapsack();
    let limits = SolveLimits {
        cutoff: Some(opt),
        ..Default::default()
    };
    let out = m.solve_with(limits);
    // Nothing strictly better exists; the solver reports "infeasible under
    // the cutoff", which certifies the cutoff value as optimal.
    assert_eq!(out.status, SolveStatus::Infeasible);
}

#[test]
fn cutoff_reduces_search_effort() {
    let (m, opt) = knapsack();
    let base = m.solve();
    let limits = SolveLimits {
        cutoff: Some(opt - 0.5),
        ..Default::default()
    };
    let tight = m.solve_with(limits);
    assert_eq!(tight.status, SolveStatus::Optimal);
    assert!(
        tight.stats.bb_nodes <= base.stats.bb_nodes,
        "cutoff enlarged the search: {} > {}",
        tight.stats.bb_nodes,
        base.stats.bb_nodes
    );
}

#[test]
fn cutoff_in_minimize_sense() {
    // min x + y st x + y >= 7, integers in [0, 10]: optimum 7.
    let mut m = Model::new();
    let x = m.int_var(0.0, 10.0, "x");
    let y = m.int_var(0.0, 10.0, "y");
    m.set_objective(Sense::Minimize, [(x, 1.0), (y, 1.0)]);
    m.add_ge([(x, 1.0), (y, 1.0)], 7.0, "floor");
    let out = m.solve_with(SolveLimits {
        cutoff: Some(8.0),
        ..Default::default()
    });
    assert_eq!(out.status, SolveStatus::Optimal);
    assert_eq!(out.objective.round() as i64, 7);
    let none = m.solve_with(SolveLimits {
        cutoff: Some(7.0),
        ..Default::default()
    });
    assert_eq!(none.status, SolveStatus::Infeasible);
}
