//! Differential A/B testing of the two simplex engines.
//!
//! The dense Gauss-Jordan basis inverse is kept alive as an oracle for the
//! sparse LU + product-form-eta engine: both must agree on every randomly
//! generated program — same solve status, objectives within tolerance —
//! for both continuous relaxations (pure LP) and integer programs (where
//! the sparse engine additionally exercises the warm-started dual-simplex
//! re-solve path at every branch-and-bound node).

use optimod_ilp::{
    Model, RowSense, Sense, SimplexEngine, SimplexOptions, SolveLimits, SolveStatus, Solver,
};
use proptest::prelude::*;

/// A randomly generated program over small bounded variables.
#[derive(Debug, Clone)]
struct RandomProgram {
    bounds: Vec<(i64, i64)>,
    objective: Vec<i64>,
    maximize: bool,
    rows: Vec<(Vec<i64>, RowSense, i64)>,
}

fn row_sense() -> impl Strategy<Value = RowSense> {
    prop_oneof![Just(RowSense::Le), Just(RowSense::Ge), Just(RowSense::Eq)]
}

fn random_program() -> impl Strategy<Value = RandomProgram> {
    (2usize..=6)
        .prop_flat_map(|n| {
            let bounds = proptest::collection::vec((0i64..=2, 2i64..=5), n).prop_map(
                |v| -> Vec<(i64, i64)> { v.into_iter().map(|(a, b)| (a.min(b), b)).collect() },
            );
            let objective = proptest::collection::vec(-4i64..=4, n);
            let rows = proptest::collection::vec(
                (
                    proptest::collection::vec(-3i64..=3, n),
                    row_sense(),
                    -6i64..=12,
                ),
                0..=5,
            );
            (bounds, objective, proptest::bool::ANY, rows)
        })
        .prop_map(|(bounds, objective, maximize, rows)| RandomProgram {
            bounds,
            objective,
            maximize,
            rows,
        })
}

fn build_model(p: &RandomProgram, integral: bool) -> Model {
    let mut m = Model::new();
    let vars: Vec<_> = p
        .bounds
        .iter()
        .enumerate()
        .map(|(i, &(lo, hi))| {
            if integral {
                m.int_var(lo as f64, hi as f64, format!("x{i}"))
            } else {
                m.num_var(lo as f64, hi as f64, format!("x{i}"))
            }
        })
        .collect();
    m.set_objective(
        if p.maximize {
            Sense::Maximize
        } else {
            Sense::Minimize
        },
        vars.iter().zip(&p.objective).map(|(&v, &c)| (v, c as f64)),
    );
    for (i, (coeffs, sense, rhs)) in p.rows.iter().enumerate() {
        m.add_row(
            vars.iter().zip(coeffs).map(|(&v, &c)| (v, c as f64)),
            *sense,
            *rhs as f64,
            format!("r{i}"),
        );
    }
    m
}

fn solve_with_engine(m: &Model, engine: SimplexEngine) -> optimod_ilp::SolveOutcome {
    let opts = SimplexOptions {
        engine,
        ..SimplexOptions::default()
    };
    Solver::new(SolveLimits::default())
        .with_simplex_options(opts)
        .solve(m)
}

fn assert_engines_agree(m: &Model, what: &str) -> Result<(), String> {
    let dense = solve_with_engine(m, SimplexEngine::Dense);
    let sparse = solve_with_engine(m, SimplexEngine::Sparse);
    prop_assert_eq!(
        dense.status,
        sparse.status,
        "{}: dense status {:?} != sparse status {:?}",
        what,
        dense.status,
        sparse.status
    );
    if dense.status.has_solution() {
        prop_assert!(
            (dense.objective - sparse.objective).abs() < 1e-6,
            "{}: dense objective {} != sparse objective {}",
            what,
            dense.objective,
            sparse.objective
        );
        // Both engines must return genuinely feasible points, even when
        // they land on different optimal vertices.
        prop_assert!(m.check_feasible(&dense.values, 1e-6).is_none());
        prop_assert!(m.check_feasible(&sparse.values, 1e-6).is_none());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Pure LP relaxations: identical status, objectives within tolerance.
    #[test]
    fn engines_agree_on_lps(p in random_program()) {
        let m = build_model(&p, false);
        assert_engines_agree(&m, "LP")?;
    }

    /// Integer programs: the sparse engine's warm-started branch-and-bound
    /// must reach the same proven optimum (or infeasibility proof) as the
    /// dense cold-start oracle.
    #[test]
    fn engines_agree_on_ips(p in random_program()) {
        let m = build_model(&p, true);
        assert_engines_agree(&m, "IP")?;
    }

    /// Warm starts must not change integer answers: sparse with warm starts
    /// disabled agrees with sparse with warm starts enabled.
    #[test]
    fn warm_start_preserves_ip_answers(p in random_program()) {
        let m = build_model(&p, true);
        let warm = solve_with_engine(&m, SimplexEngine::Sparse);
        let cold = Solver::new(SolveLimits::default())
            .with_simplex_options(SimplexOptions {
                engine: SimplexEngine::Sparse,
                warm_start: false,
                ..SimplexOptions::default()
            })
            .solve(&m);
        prop_assert_eq!(warm.status, cold.status);
        if warm.status.has_solution() {
            prop_assert!((warm.objective - cold.objective).abs() < 1e-6,
                "warm {} != cold {}", warm.objective, cold.objective);
        }
        prop_assert_eq!(cold.stats.warm_starts, 0);
    }
}

/// The dense engine never produces eta updates; the sparse engine never
/// pays the dense engine's O(m^2) pivot cost (spot check: eta counters
/// only move under the sparse engine).
#[test]
fn eta_counter_is_engine_specific() {
    let p = RandomProgram {
        bounds: vec![(0, 4); 4],
        objective: vec![3, -2, 1, 4],
        maximize: true,
        rows: vec![
            (vec![1, 1, 1, 1], RowSense::Le, 9),
            (vec![2, -1, 0, 1], RowSense::Ge, 1),
            (vec![1, 0, 2, -1], RowSense::Le, 6),
        ],
    };
    let m = build_model(&p, true);
    let dense = solve_with_engine(&m, SimplexEngine::Dense);
    let sparse = solve_with_engine(&m, SimplexEngine::Sparse);
    assert_eq!(dense.status, SolveStatus::Optimal);
    assert_eq!(sparse.status, SolveStatus::Optimal);
    assert_eq!(dense.stats.eta_pivots, 0, "dense engine must not push etas");
    assert!(
        sparse.stats.eta_pivots > 0,
        "sparse engine should absorb pivots as eta updates"
    );
}
