//! Brute-force validation of *mixed* integer programs: integer variables
//! are enumerated, and the single continuous variable is optimized
//! analytically per assignment (its feasible set is an interval, so the
//! optimum sits at an endpoint).

use optimod_ilp::{Model, RowSense, Sense, SolveStatus};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct MixedIp {
    int_bounds: Vec<(i64, i64)>,
    int_obj: Vec<i64>,
    /// Continuous variable: bounds and objective coefficient.
    y_bounds: (f64, f64),
    y_obj: f64,
    /// Rows: integer coefficients, y coefficient, sense, rhs.
    rows: Vec<(Vec<i64>, i64, RowSense, i64)>,
    maximize: bool,
}

fn strategy() -> impl Strategy<Value = MixedIp> {
    (2usize..=4).prop_flat_map(|n| {
        (
            proptest::collection::vec((0i64..=1, 2i64..=3), n)
                .prop_map(|v| v.into_iter().collect::<Vec<_>>()),
            proptest::collection::vec(-3i64..=3, n),
            (-2i64..=0, 1i64..=4).prop_map(|(a, b)| (a as f64, b as f64)),
            -3i64..=3,
            proptest::collection::vec(
                (
                    proptest::collection::vec(-2i64..=2, n),
                    -2i64..=2,
                    prop_oneof![Just(RowSense::Le), Just(RowSense::Ge)],
                    -4i64..=8,
                ),
                1..=3,
            ),
            proptest::bool::ANY,
        )
            .prop_map(
                move |(int_bounds, int_obj, y_bounds, y_obj, rows, maximize)| MixedIp {
                    int_bounds,
                    int_obj,
                    y_bounds,
                    y_obj: y_obj as f64,
                    rows,
                    maximize,
                },
            )
    })
}

/// Best objective over the integer grid with analytic continuous optimum.
fn brute(ip: &MixedIp) -> Option<f64> {
    let n = ip.int_bounds.len();
    let mut asn = vec![0i64; n];
    let mut best: Option<f64> = None;
    fn rec(ip: &MixedIp, i: usize, asn: &mut Vec<i64>, best: &mut Option<f64>) {
        if i == asn.len() {
            // Feasible y interval from bounds and rows.
            let (mut lo, mut hi) = ip.y_bounds;
            for (coef, yc, sense, rhs) in &ip.rows {
                let fixed: i64 = coef.iter().zip(asn.iter()).map(|(c, x)| c * x).sum();
                let rem = (*rhs - fixed) as f64;
                let yc = *yc as f64;
                match (sense, yc) {
                    (RowSense::Le, c) if c > 0.0 => hi = hi.min(rem / c),
                    (RowSense::Le, c) if c < 0.0 => lo = lo.max(rem / c),
                    (RowSense::Le, _) => {
                        if 0.0 > rem {
                            return;
                        }
                    }
                    (RowSense::Ge, c) if c > 0.0 => lo = lo.max(rem / c),
                    (RowSense::Ge, c) if c < 0.0 => hi = hi.min(rem / c),
                    (RowSense::Ge, _) => {
                        if 0.0 < rem {
                            return;
                        }
                    }
                    (RowSense::Eq, _) => unreachable!("no Eq rows generated"),
                }
            }
            if lo > hi + 1e-12 {
                return;
            }
            let int_part: f64 = ip
                .int_obj
                .iter()
                .zip(asn.iter())
                .map(|(c, x)| (c * x) as f64)
                .sum();
            let y = if (ip.y_obj > 0.0) == ip.maximize {
                hi
            } else {
                lo
            };
            let obj = int_part + ip.y_obj * y;
            *best = Some(match *best {
                None => obj,
                Some(b) if ip.maximize => b.max(obj),
                Some(b) => b.min(obj),
            });
            return;
        }
        let (lo, hi) = ip.int_bounds[i];
        for v in lo..=hi {
            asn[i] = v;
            rec(ip, i + 1, asn, best);
        }
    }
    rec(ip, 0, &mut asn, &mut best);
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn mixed_bb_matches_analytic_brute_force(ip in strategy()) {
        let mut m = Model::new();
        let xs: Vec<_> = ip
            .int_bounds
            .iter()
            .enumerate()
            .map(|(i, &(lo, hi))| m.int_var(lo as f64, hi as f64, format!("x{i}")))
            .collect();
        let y = m.num_var(ip.y_bounds.0, ip.y_bounds.1, "y");
        let mut obj: Vec<(optimod_ilp::VarId, f64)> = xs
            .iter()
            .zip(&ip.int_obj)
            .map(|(&x, &c)| (x, c as f64))
            .collect();
        obj.push((y, ip.y_obj));
        m.set_objective(
            if ip.maximize { Sense::Maximize } else { Sense::Minimize },
            obj,
        );
        for (i, (coef, yc, sense, rhs)) in ip.rows.iter().enumerate() {
            let mut terms: Vec<(optimod_ilp::VarId, f64)> = xs
                .iter()
                .zip(coef)
                .map(|(&x, &c)| (x, c as f64))
                .collect();
            terms.push((y, *yc as f64));
            m.add_row(terms, *sense, *rhs as f64, format!("r{i}"));
        }
        let out = m.solve();
        match brute(&ip) {
            None => prop_assert_eq!(out.status, SolveStatus::Infeasible),
            Some(best) => {
                prop_assert_eq!(out.status, SolveStatus::Optimal);
                prop_assert!(
                    (out.objective - best).abs() < 1e-6,
                    "solver {} vs brute {}", out.objective, best
                );
                prop_assert!(m.check_feasible(&out.values, 1e-6).is_none());
            }
        }
    }
}
