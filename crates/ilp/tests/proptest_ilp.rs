//! Property-based validation of the branch-and-bound solver against
//! brute-force enumeration on randomly generated small integer programs.

use optimod_ilp::{Model, RowSense, Sense, SolveStatus};
use proptest::prelude::*;

/// A randomly generated integer program with small bounded variables.
#[derive(Debug, Clone)]
struct RandomIp {
    num_vars: usize,
    bounds: Vec<(i64, i64)>,
    objective: Vec<i64>,
    maximize: bool,
    rows: Vec<(Vec<i64>, RowSense, i64)>,
}

fn row_sense() -> impl Strategy<Value = RowSense> {
    prop_oneof![Just(RowSense::Le), Just(RowSense::Ge), Just(RowSense::Eq),]
}

fn random_ip() -> impl Strategy<Value = RandomIp> {
    (2usize..=5)
        .prop_flat_map(|num_vars| {
            let bounds = proptest::collection::vec((0i64..=2, 2i64..=4), num_vars).prop_map(
                |v| -> Vec<(i64, i64)> { v.into_iter().map(|(a, b)| (a.min(b), b)).collect() },
            );
            let objective = proptest::collection::vec(-4i64..=4, num_vars);
            let rows = proptest::collection::vec(
                (
                    proptest::collection::vec(-3i64..=3, num_vars),
                    row_sense(),
                    -6i64..=12,
                ),
                0..=4,
            );
            (Just(num_vars), bounds, objective, proptest::bool::ANY, rows)
        })
        .prop_map(|(num_vars, bounds, objective, maximize, rows)| RandomIp {
            num_vars,
            bounds,
            objective,
            maximize,
            rows,
        })
}

/// Enumerates every integral point of the box and returns the best feasible
/// objective (in the model's sense), if any point is feasible.
fn brute_force(ip: &RandomIp) -> Option<i64> {
    let mut assignment = vec![0i64; ip.num_vars];
    let mut best: Option<i64> = None;
    fn rec(ip: &RandomIp, idx: usize, assignment: &mut Vec<i64>, best: &mut Option<i64>) {
        if idx == ip.num_vars {
            for (coeffs, sense, rhs) in &ip.rows {
                let lhs: i64 = coeffs
                    .iter()
                    .zip(assignment.iter())
                    .map(|(c, x)| c * x)
                    .sum();
                let ok = match sense {
                    RowSense::Le => lhs <= *rhs,
                    RowSense::Ge => lhs >= *rhs,
                    RowSense::Eq => lhs == *rhs,
                };
                if !ok {
                    return;
                }
            }
            let obj: i64 = ip
                .objective
                .iter()
                .zip(assignment.iter())
                .map(|(c, x)| c * x)
                .sum();
            *best = Some(match *best {
                None => obj,
                Some(b) if ip.maximize => b.max(obj),
                Some(b) => b.min(obj),
            });
            return;
        }
        let (lo, hi) = ip.bounds[idx];
        for v in lo..=hi {
            assignment[idx] = v;
            rec(ip, idx + 1, assignment, best);
        }
    }
    rec(ip, 0, &mut assignment, &mut best);
    best
}

fn build_model(ip: &RandomIp) -> Model {
    let mut m = Model::new();
    let vars: Vec<_> = ip
        .bounds
        .iter()
        .enumerate()
        .map(|(i, &(lo, hi))| m.int_var(lo as f64, hi as f64, format!("x{i}")))
        .collect();
    m.set_objective(
        if ip.maximize {
            Sense::Maximize
        } else {
            Sense::Minimize
        },
        vars.iter().zip(&ip.objective).map(|(&v, &c)| (v, c as f64)),
    );
    for (i, (coeffs, sense, rhs)) in ip.rows.iter().enumerate() {
        m.add_row(
            vars.iter().zip(coeffs).map(|(&v, &c)| (v, c as f64)),
            *sense,
            *rhs as f64,
            format!("r{i}"),
        );
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Branch-and-bound matches brute force exactly on small IPs.
    #[test]
    fn bb_matches_brute_force(ip in random_ip()) {
        let model = build_model(&ip);
        let expected = brute_force(&ip);
        let out = model.solve();
        match expected {
            None => prop_assert_eq!(out.status, SolveStatus::Infeasible),
            Some(best) => {
                prop_assert_eq!(out.status, SolveStatus::Optimal);
                prop_assert!((out.objective - best as f64).abs() < 1e-6,
                    "solver found {} but brute force found {}", out.objective, best);
                prop_assert!(model.check_feasible(&out.values, 1e-6).is_none(),
                    "solver returned an infeasible point: {:?}", out.values);
            }
        }
    }

    /// The LP relaxation bound never cuts off the integer optimum.
    #[test]
    fn dual_bound_is_valid(ip in random_ip()) {
        let model = build_model(&ip);
        let out = model.solve();
        if out.status == SolveStatus::Optimal {
            if ip.maximize {
                prop_assert!(out.best_bound >= out.objective - 1e-6);
            } else {
                prop_assert!(out.best_bound <= out.objective + 1e-6);
            }
        }
    }

    /// First-solution mode always returns a feasible point when one exists.
    #[test]
    fn first_solution_is_feasible(ip in random_ip()) {
        let model = build_model(&ip);
        let limits = optimod_ilp::SolveLimits {
            first_solution_only: true,
            ..Default::default()
        };
        let out = model.solve_with(limits);
        match brute_force(&ip) {
            None => prop_assert_eq!(out.status, SolveStatus::Infeasible),
            Some(_) => {
                prop_assert!(out.status.has_solution());
                prop_assert!(model.check_feasible(&out.values, 1e-6).is_none());
            }
        }
    }
}

/// Continuous relaxations: the LP optimum must never be worse than the IP
/// optimum of the same data (sanity of the relaxation machinery).
#[test]
fn lp_relaxation_dominates_ip() {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(7);
    for trial in 0..200 {
        let n = rng.gen_range(2..=5);
        let ip = RandomIp {
            num_vars: n,
            bounds: (0..n).map(|_| (0, rng.gen_range(2..=4))).collect(),
            objective: (0..n).map(|_| rng.gen_range(-4..=4)).collect(),
            maximize: rng.gen_bool(0.5),
            rows: (0..rng.gen_range(1..=4))
                .map(|_| {
                    (
                        (0..n).map(|_| rng.gen_range(-3..=3)).collect(),
                        [RowSense::Le, RowSense::Ge, RowSense::Eq][rng.gen_range(0..3)],
                        rng.gen_range(-6..=12),
                    )
                })
                .collect(),
        };
        let Some(ip_best) = brute_force(&ip) else {
            continue;
        };
        // Relax: same model with continuous variables.
        let mut m = Model::new();
        let vars: Vec<_> = ip
            .bounds
            .iter()
            .enumerate()
            .map(|(i, &(lo, hi))| m.num_var(lo as f64, hi as f64, format!("x{i}")))
            .collect();
        m.set_objective(
            if ip.maximize {
                Sense::Maximize
            } else {
                Sense::Minimize
            },
            vars.iter().zip(&ip.objective).map(|(&v, &c)| (v, c as f64)),
        );
        for (i, (coeffs, sense, rhs)) in ip.rows.iter().enumerate() {
            m.add_row(
                vars.iter().zip(coeffs).map(|(&v, &c)| (v, c as f64)),
                *sense,
                *rhs as f64,
                format!("r{i}"),
            );
        }
        let out = m.solve();
        assert_eq!(
            out.status,
            SolveStatus::Optimal,
            "trial {trial}: LP must be feasible when IP is"
        );
        if ip.maximize {
            assert!(
                out.objective >= ip_best as f64 - 1e-6,
                "trial {trial}: LP {} < IP {}",
                out.objective,
                ip_best
            );
        } else {
            assert!(
                out.objective <= ip_best as f64 + 1e-6,
                "trial {trial}: LP {} > IP {}",
                out.objective,
                ip_best
            );
        }
    }
}
