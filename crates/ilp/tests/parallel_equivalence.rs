//! Property-based equivalence between the serial branch-and-bound search and
//! the work-stealing parallel search: at any thread count the parallel solver
//! must report the same status and the same optimal objective, and a
//! first-solution-only run must always return a feasible point.

use optimod_ilp::{Model, RowSense, Sense, SolveLimits, SolveStatus};
use proptest::prelude::*;

/// A randomly generated integer program with small bounded variables.
#[derive(Debug, Clone)]
struct RandomIp {
    bounds: Vec<(i64, i64)>,
    objective: Vec<i64>,
    maximize: bool,
    rows: Vec<(Vec<i64>, RowSense, i64)>,
}

fn row_sense() -> impl Strategy<Value = RowSense> {
    prop_oneof![Just(RowSense::Le), Just(RowSense::Ge), Just(RowSense::Eq),]
}

fn random_ip() -> impl Strategy<Value = RandomIp> {
    (3usize..=6)
        .prop_flat_map(|num_vars| {
            let bounds = proptest::collection::vec((0i64..=2, 2i64..=5), num_vars).prop_map(
                |v| -> Vec<(i64, i64)> { v.into_iter().map(|(a, b)| (a.min(b), b)).collect() },
            );
            let objective = proptest::collection::vec(-4i64..=4, num_vars);
            let rows = proptest::collection::vec(
                (
                    proptest::collection::vec(-3i64..=3, num_vars),
                    row_sense(),
                    -6i64..=12,
                ),
                1..=5,
            );
            (bounds, objective, proptest::bool::ANY, rows)
        })
        .prop_map(|(bounds, objective, maximize, rows)| RandomIp {
            bounds,
            objective,
            maximize,
            rows,
        })
}

fn build_model(ip: &RandomIp) -> Model {
    let mut m = Model::new();
    let vars: Vec<_> = ip
        .bounds
        .iter()
        .enumerate()
        .map(|(i, &(lo, hi))| m.int_var(lo as f64, hi as f64, format!("x{i}")))
        .collect();
    m.set_objective(
        if ip.maximize {
            Sense::Maximize
        } else {
            Sense::Minimize
        },
        vars.iter().zip(&ip.objective).map(|(&v, &c)| (v, c as f64)),
    );
    for (i, (coeffs, sense, rhs)) in ip.rows.iter().enumerate() {
        m.add_row(
            vars.iter().zip(coeffs).map(|(&v, &c)| (v, c as f64)),
            *sense,
            *rhs as f64,
            format!("r{i}"),
        );
    }
    m
}

fn limits_with(threads: u32, first_solution_only: bool) -> SolveLimits {
    SolveLimits {
        threads,
        first_solution_only,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The work-stealing search agrees with the serial search on status and
    /// optimal objective value at 2, 4, and 8 worker threads.
    #[test]
    fn parallel_matches_serial(ip in random_ip()) {
        let model = build_model(&ip);
        let serial = model.solve_with(limits_with(1, false));
        for threads in [2u32, 4, 8] {
            let par = model.solve_with(limits_with(threads, false));
            prop_assert_eq!(par.status, serial.status, "threads={}", threads);
            if serial.status == SolveStatus::Optimal {
                prop_assert!(
                    (par.objective - serial.objective).abs() < 1e-6,
                    "threads={}: parallel {} vs serial {}",
                    threads, par.objective, serial.objective
                );
                prop_assert!(
                    model.check_feasible(&par.values, 1e-6).is_none(),
                    "threads={}: parallel returned an infeasible point", threads
                );
            }
        }
    }

    /// First-solution-only parallel runs terminate with a feasible point
    /// exactly when the serial solver finds the model feasible.
    #[test]
    fn parallel_first_solution_is_feasible(ip in random_ip()) {
        let model = build_model(&ip);
        let serial = model.solve_with(limits_with(1, false));
        for threads in [2u32, 4] {
            let par = model.solve_with(limits_with(threads, true));
            match serial.status {
                SolveStatus::Infeasible => {
                    prop_assert_eq!(par.status, SolveStatus::Infeasible);
                }
                _ => {
                    prop_assert!(par.status.has_solution(), "threads={}", threads);
                    prop_assert!(
                        model.check_feasible(&par.values, 1e-6).is_none(),
                        "threads={}: first solution is infeasible", threads
                    );
                }
            }
        }
    }
}
