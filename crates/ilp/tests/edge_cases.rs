//! Edge-case and robustness tests for the solver's public API.

use std::time::{Duration, Instant};

use optimod_ilp::{LinExpr, Model, Sense, SimplexOptions, SolveLimits, SolveStatus, Solver};

#[test]
fn empty_model_is_trivially_optimal() {
    let m = Model::new();
    let out = m.solve();
    assert_eq!(out.status, SolveStatus::Optimal);
    assert_eq!(out.objective, 0.0);
    assert!(out.values.is_empty());
}

#[test]
fn variables_without_constraints_go_to_their_best_bound() {
    let mut m = Model::new();
    let x = m.int_var(-3.0, 9.0, "x");
    let y = m.int_var(-3.0, 9.0, "y");
    m.set_objective(Sense::Maximize, [(x, 1.0), (y, -1.0)]);
    let out = m.solve();
    assert_eq!(out.status, SolveStatus::Optimal);
    assert_eq!(out.int_value(x), 9);
    assert_eq!(out.int_value(y), -3);
}

#[test]
fn constant_objective_reports_constant() {
    let mut m = Model::new();
    let x = m.bool_var("x");
    m.set_objective(Sense::Minimize, LinExpr::constant_expr(5.0));
    m.add_ge([(x, 1.0)], 1.0, "force");
    let out = m.solve();
    assert_eq!(out.status, SolveStatus::Optimal);
    assert_eq!(out.objective, 5.0);
    assert_eq!(out.int_value(x), 1);
}

#[test]
fn fixed_integer_variables() {
    let mut m = Model::new();
    let x = m.int_var(4.0, 4.0, "x");
    let y = m.int_var(0.0, 10.0, "y");
    m.set_objective(Sense::Minimize, [(y, 1.0)]);
    m.add_ge([(x, 1.0), (y, 2.0)], 10.0, "c");
    let out = m.solve();
    assert_eq!(out.status, SolveStatus::Optimal);
    assert_eq!(out.int_value(y), 3);
}

#[test]
fn fractional_bounds_on_integer_variables_are_tightened() {
    let mut m = Model::new();
    let x = m.int_var(0.5, 2.5, "x");
    m.set_objective(Sense::Maximize, [(x, 1.0)]);
    let out = m.solve();
    assert_eq!(out.status, SolveStatus::Optimal);
    assert_eq!(out.int_value(x), 2);

    let mut m2 = Model::new();
    let y = m2.int_var(0.2, 0.8, "y"); // no integer inside
    m2.set_objective(Sense::Maximize, [(y, 1.0)]);
    assert_eq!(m2.solve().status, SolveStatus::Infeasible);
}

#[test]
fn redundant_rows_are_harmless() {
    let mut m = Model::new();
    let x = m.int_var(0.0, 5.0, "x");
    for i in 0..6 {
        m.add_le([(x, 1.0)], 4.0, format!("dup{i}"));
    }
    m.add_eq([(x, 2.0)], 8.0, "eq"); // x = 4
    m.add_eq([(x, 2.0)], 8.0, "eq-dup");
    m.set_objective(Sense::Maximize, [(x, 1.0)]);
    let out = m.solve();
    assert_eq!(out.status, SolveStatus::Optimal);
    assert_eq!(out.int_value(x), 4);
}

#[test]
fn deadline_stops_runaway_solves() {
    // A hard equality knapsack with ~28 binaries is far beyond a 5ms
    // budget; the solver must return promptly and honestly.
    let mut m = Model::new();
    let xs: Vec<_> = (0..28).map(|i| m.bool_var(format!("x{i}"))).collect();
    let coeffs: Vec<f64> = (0..28).map(|i| (17 * i % 97 + 3) as f64).collect();
    m.add_eq(xs.iter().zip(&coeffs).map(|(&x, &c)| (x, c)), 531.0, "knap");
    m.set_objective(
        Sense::Maximize,
        xs.iter().zip(&coeffs).map(|(&x, &c)| (x, c * 0.9 + 1.0)),
    );
    let limits = SolveLimits {
        time_limit: Duration::from_millis(5),
        ..Default::default()
    };
    let t = Instant::now();
    let out = m.solve_with(limits);
    assert!(
        t.elapsed() < Duration::from_millis(500),
        "deadline overshoot: {:?}",
        t.elapsed()
    );
    match out.status {
        SolveStatus::Optimal | SolveStatus::Feasible => {
            assert!(m.check_feasible(&out.values, 1e-6).is_none());
        }
        SolveStatus::LimitReached => assert!(out.values.is_empty()),
        SolveStatus::Infeasible => {
            // Possible only if the solver proved it fast; verify by brute
            // force that no subset actually sums to 531 would be overkill —
            // accept the proof.
        }
    }
}

#[test]
fn iteration_limit_is_respected() {
    let mut m = Model::new();
    let xs: Vec<_> = (0..20)
        .map(|i| m.num_var(0.0, 1.0, format!("x{i}")))
        .collect();
    for i in 0..19 {
        m.add_le([(xs[i], 1.0), (xs[i + 1], 1.0)], 1.2, format!("c{i}"));
    }
    m.set_objective(Sense::Maximize, xs.iter().map(|&x| (x, 1.0)));
    let solver = Solver::new(SolveLimits::default()).with_simplex_options(SimplexOptions {
        max_iterations: 1,
        ..Default::default()
    });
    let out = solver.solve(&m);
    // One pivot cannot finish this; the status must reflect the limit.
    assert_eq!(out.status, SolveStatus::LimitReached);
}

#[test]
fn negative_rhs_and_coefficients() {
    // min -x - y st -x - y >= -7, x,y int in [0,10] -> x+y = 7, obj -7.
    let mut m = Model::new();
    let x = m.int_var(0.0, 10.0, "x");
    let y = m.int_var(0.0, 10.0, "y");
    m.set_objective(Sense::Minimize, [(x, -1.0), (y, -1.0)]);
    m.add_ge([(x, -1.0), (y, -1.0)], -7.0, "cap");
    let out = m.solve();
    assert_eq!(out.status, SolveStatus::Optimal);
    assert_eq!(out.objective.round() as i64, -7);
}

#[test]
fn large_coefficient_spread_stays_accurate() {
    // Mixing unit and II-sized (say 100) coefficients, like the
    // traditional dependence rows.
    let mut m = Model::new();
    let k = m.int_var(0.0, 50.0, "k");
    let r = m.int_var(0.0, 99.0, "r");
    // 100k + r = 1234 -> k=12, r=34.
    m.add_eq([(k, 100.0), (r, 1.0)], 1234.0, "decompose");
    m.set_objective(Sense::Minimize, [(k, 1.0)]);
    let out = m.solve();
    assert_eq!(out.status, SolveStatus::Optimal);
    assert_eq!(out.int_value(k), 12);
    assert_eq!(out.int_value(r), 34);
}
