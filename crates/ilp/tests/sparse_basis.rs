//! Stress tests for the sparse basis engine on degenerate, rank-deficient,
//! and stall-prone inputs: singular-basis recovery during refactorization,
//! eta-file growth bounds, and warm-start fallback behaviour.
//!
//! Everything here drives the public [`Simplex`] API; the LU kernel's own
//! unit tests (pivot selection, singular rejection, eta algebra) live next
//! to the implementation in `src/factor.rs`.

use optimod_ilp::{
    LpOutcome, LpStatus, Model, Sense, Simplex, SimplexEngine, SimplexOptions, WarmStart,
};

fn sparse_opts() -> SimplexOptions {
    SimplexOptions {
        engine: SimplexEngine::Sparse,
        ..Default::default()
    }
}

/// Solves `model` at its native bounds with the given options.
fn solve(model: &Model, bounds: &[(f64, f64)], opts: &SimplexOptions) -> LpOutcome {
    let lb: Vec<f64> = bounds.iter().map(|b| b.0).collect();
    let ub: Vec<f64> = bounds.iter().map(|b| b.1).collect();
    Simplex::new(model).solve(&lb, &ub, opts)
}

/// A transportation-style LP whose equality system is rank deficient: the
/// supply rows and demand rows each sum to the same total, so one row is
/// implied by the others and a redundant duplicate is stacked on top. A
/// degenerate phase 1 must park the surplus artificials at zero (or pivot
/// them out) without declaring the basis singular.
fn rank_deficient_transport() -> (Model, Vec<(f64, f64)>) {
    let mut m = Model::new();
    let inf = f64::INFINITY;
    let mut x = Vec::new();
    for i in 0..2 {
        for j in 0..3 {
            x.push(m.num_var(0.0, inf, format!("x{i}{j}")));
        }
    }
    let cost = [4.0, 6.0, 9.0, 5.0, 3.0, 8.0];
    m.set_objective(Sense::Minimize, x.iter().zip(cost).map(|(&v, c)| (v, c)));
    m.add_eq([(x[0], 1.0), (x[1], 1.0), (x[2], 1.0)], 10.0, "supply0");
    m.add_eq([(x[3], 1.0), (x[4], 1.0), (x[5], 1.0)], 8.0, "supply1");
    m.add_eq([(x[0], 1.0), (x[3], 1.0)], 6.0, "demand0");
    m.add_eq([(x[1], 1.0), (x[4], 1.0)], 7.0, "demand1");
    // Implied by the four rows above (total supply = total demand).
    m.add_eq([(x[2], 1.0), (x[5], 1.0)], 5.0, "demand2");
    // Exact duplicate of supply0: outright rank deficiency.
    m.add_eq([(x[0], 1.0), (x[1], 1.0), (x[2], 1.0)], 10.0, "supply0-dup");
    (m, vec![(0.0, inf); 6])
}

/// A highly degenerate LP: many redundant facets all passing through the
/// optimal vertex, which historically provokes long runs of zero-progress
/// pivots (the classic stall shape).
fn stall_prone(n: usize) -> (Model, Vec<(f64, f64)>) {
    let mut m = Model::new();
    let inf = f64::INFINITY;
    let x: Vec<_> = (0..n)
        .map(|j| m.num_var(0.0, inf, format!("x{j}")))
        .collect();
    m.set_objective(Sense::Maximize, x.iter().map(|&v| (v, 1.0)));
    // One binding budget row ...
    m.add_le(x.iter().map(|&v| (v, 1.0)), 1.0, "budget");
    // ... plus n exact duplicates, every one tight at the same optimal
    // face, so each pivot along that face is degenerate in n + 1 rows.
    for k in 0..n {
        m.add_le(x.iter().map(|&v| (v, 1.0)), 1.0, format!("copy{k}"));
    }
    (m, vec![(0.0, inf); n])
}

#[test]
fn rank_deficient_equalities_solve_on_both_engines() {
    let (m, bounds) = rank_deficient_transport();
    let dense = solve(
        &m,
        &bounds,
        &SimplexOptions {
            engine: SimplexEngine::Dense,
            ..Default::default()
        },
    );
    let sparse = solve(&m, &bounds, &sparse_opts());
    assert_eq!(dense.status, LpStatus::Optimal);
    assert_eq!(sparse.status, LpStatus::Optimal);
    assert!(
        (dense.objective - sparse.objective).abs() < 1e-6,
        "dense {} vs sparse {}",
        dense.objective,
        sparse.objective
    );
}

#[test]
fn refactor_every_pivot_survives_rank_deficiency() {
    // Refactorizing from scratch after every pivot exercises the LU path on
    // every intermediate basis of a rank-deficient system; any singular
    // intermediate basis must be recovered (kept factor + forced cadence),
    // not propagated into a wrong answer.
    let (m, bounds) = rank_deficient_transport();
    let stock = solve(&m, &bounds, &sparse_opts());
    let paranoid = solve(
        &m,
        &bounds,
        &SimplexOptions {
            refactor_every: 1,
            ..sparse_opts()
        },
    );
    assert_eq!(paranoid.status, LpStatus::Optimal);
    assert!((paranoid.objective - stock.objective).abs() < 1e-6);
    assert!(
        paranoid.refactors > stock.refactors,
        "per-pivot cadence should refactor more ({} vs {})",
        paranoid.refactors,
        stock.refactors
    );
}

#[test]
fn eta_file_growth_is_bounded_by_nnz_limit() {
    // A tiny eta nonzero budget must cap the product file: the engine
    // trades etas for refactorizations instead of letting the file grow
    // with the pivot count, and the answer cannot move.
    let (m, bounds) = stall_prone(24);
    let stock = solve(&m, &bounds, &sparse_opts());
    let capped = solve(
        &m,
        &bounds,
        &SimplexOptions {
            eta_nnz_limit: 8,
            ..sparse_opts()
        },
    );
    assert_eq!(stock.status, LpStatus::Optimal);
    assert_eq!(capped.status, LpStatus::Optimal);
    assert!((stock.objective - capped.objective).abs() < 1e-6);
    assert!(
        capped.refactors >= stock.refactors,
        "a tight eta budget cannot refactor less ({} vs {})",
        capped.refactors,
        stock.refactors
    );
}

#[test]
fn stall_prone_kernel_terminates_under_tight_watchdog() {
    // Aggressive watchdog thresholds (forced refactor after 4 degenerate
    // pivots) on a degeneracy-heavy LP: the solve must still terminate at
    // the optimum rather than stalling or cycling.
    let (m, bounds) = stall_prone(32);
    let out = solve(
        &m,
        &bounds,
        &SimplexOptions {
            degen_limit: 4,
            stall_refactor: 16,
            ..sparse_opts()
        },
    );
    assert_eq!(out.status, LpStatus::Optimal);
    assert!((out.objective - 1.0).abs() < 1e-6, "{}", out.objective);
}

#[test]
fn warm_pivot_cap_zero_abandons_to_cold() {
    // With a zero dual-pivot budget, any child that actually needs dual
    // pivots must abandon the warm start and still produce the right
    // answer from a cold basis, reporting the abandonment honestly.
    let mut m = Model::new();
    let inf = f64::INFINITY;
    let x = m.num_var(0.0, inf, "x");
    let y = m.num_var(0.0, inf, "y");
    m.set_objective(Sense::Maximize, [(x, 3.0), (y, 5.0)]);
    m.add_le([(x, 1.0), (y, 2.0)], 14.0, "c1");
    m.add_le([(x, 3.0), (y, -1.0)], 0.0, "c2");
    m.add_le([(x, 1.0), (y, -1.0)], 2.0, "c3");

    let opts = SimplexOptions {
        warm_pivot_cap: 0,
        ..sparse_opts()
    };
    let mut sx = Simplex::new(&m);
    let parent = sx.solve(&[0.0, 0.0], &[inf, inf], &opts);
    assert_eq!(parent.status, LpStatus::Optimal);
    let snap = sx.basis_snapshot().expect("optimal parent basis");

    // Tighten x like a branch would; the parent vertex goes infeasible.
    let child = sx.solve_warm(&[0.0, 0.0], &[1.0, inf], &opts, Some(&snap));
    assert_eq!(child.status, LpStatus::Optimal);
    assert_eq!(
        child.warm,
        WarmStart::Abandoned,
        "zero pivot budget must abandon, not fail"
    );

    let cold = solve(&m, &[(0.0, 1.0), (0.0, inf)], &sparse_opts());
    assert!((child.objective - cold.objective).abs() < 1e-6);
}

#[test]
fn warm_start_with_fixed_variable_child() {
    // Branch-and-bound fixes variables outright (lb == ub); the warm dual
    // restart must handle the snapshot basis under a collapsed box.
    let mut m = Model::new();
    let x = m.num_var(0.0, 4.0, "x");
    let y = m.num_var(0.0, 4.0, "y");
    let z = m.num_var(0.0, 4.0, "z");
    m.set_objective(Sense::Maximize, [(x, 2.0), (y, 3.0), (z, 1.0)]);
    m.add_le([(x, 1.0), (y, 1.0), (z, 1.0)], 6.0, "sum");
    m.add_le([(x, 2.0), (y, 1.0)], 7.0, "mix");

    let opts = sparse_opts();
    let mut sx = Simplex::new(&m);
    let parent = sx.solve(&[0.0; 3], &[4.0; 3], &opts);
    assert_eq!(parent.status, LpStatus::Optimal);
    let snap = sx.basis_snapshot().expect("optimal parent basis");

    let warm = sx.solve_warm(&[0.0, 2.0, 0.0], &[4.0, 2.0, 4.0], &opts, Some(&snap));
    let cold = solve(&m, &[(0.0, 4.0), (2.0, 2.0), (0.0, 4.0)], &opts);
    assert_eq!(warm.status, cold.status);
    assert!(
        (warm.objective - cold.objective).abs() < 1e-6,
        "warm {} vs cold {}",
        warm.objective,
        cold.objective
    );
    assert_ne!(warm.warm, WarmStart::Cold, "snapshot was offered and valid");
}
