//! Mutation properties of the exact-arithmetic certifier: valid schedules
//! always certify, and every class of corruption — truncated times, a zero
//! II, a violated dependence, an over-subscribed resource row, a fabricated
//! or fractional objective, a bound the objective beats — is refused with
//! the *matching* typed [`CertError`] variant, never a panic and never a
//! pass.

use optimod::heuristic::{ims_schedule, ImsConfig};
use optimod::{certify, CertError, Claim, Schedule};
use optimod_ddg::{generate_loop, kernels, GeneratorConfig, Loop};
use optimod_machine::{cydra_like, example_3fu, vliw_4issue, Machine};
use proptest::prelude::*;

fn machine_for(idx: u8) -> Machine {
    match idx % 3 {
        0 => example_3fu(),
        1 => cydra_like(),
        _ => vliw_4issue(),
    }
}

/// A random loop with a valid IMS schedule — the certifier's happy path.
fn random_scheduled() -> impl Strategy<Value = (Machine, Loop, Schedule)> {
    (0u64..2_000, 0u8..3).prop_map(|(seed, midx)| {
        let machine = machine_for(midx);
        let cfg = GeneratorConfig {
            max_ops: 16,
            ..Default::default()
        };
        let l = generate_loop(&cfg, &machine, seed);
        let s = ims_schedule(&l, &machine, &ImsConfig::default())
            .expect("IMS schedules every generated loop")
            .schedule;
        (machine, l, s)
    })
}

/// Constraints-only claim: no optimality, no objective, no bound.
fn feasibility_claim<'a>(
    machine: &'a Machine,
    l: &'a Loop,
    ii: u32,
    times: &'a [i64],
) -> Claim<'a> {
    Claim {
        graph: l,
        machine,
        ii,
        times,
        claimed_optimal: false,
        claimed_objective: None,
        exact_objective: None,
        claimed_bound: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every valid schedule certifies, and the certificate's quantities
    /// match the loop (edge count) and the claim (II).
    #[test]
    fn valid_schedules_certify((machine, l, s) in random_scheduled()) {
        let cert = certify(&feasibility_claim(&machine, &l, s.ii(), s.times()))
            .expect("valid schedule must certify");
        prop_assert_eq!(cert.ii, s.ii());
        prop_assert_eq!(cert.edges_checked, l.edges().len());
        prop_assert!(cert.min_ii <= s.ii());
        prop_assert_eq!(cert.objective, None);
    }

    /// Certification is invariant under shifting every issue time by the
    /// same multiple of II (the steady-state kernel does not move).
    #[test]
    fn certification_is_shift_invariant((machine, l, s) in random_scheduled(), k in 1i64..4) {
        let shift = k * s.ii() as i64;
        let times: Vec<i64> = s.times().iter().map(|t| t + shift).collect();
        prop_assert!(certify(&feasibility_claim(&machine, &l, s.ii(), &times)).is_ok());
    }

    /// A schedule with the wrong number of issue times is refused as a
    /// length mismatch before anything else is looked at.
    #[test]
    fn truncated_times_rejected((machine, l, s) in random_scheduled()) {
        let mut times = s.times().to_vec();
        times.pop();
        let err = certify(&feasibility_claim(&machine, &l, s.ii(), &times))
            .expect_err("truncated schedule must be refused");
        prop_assert_eq!(
            err,
            CertError::LengthMismatch { ops: l.num_ops(), times: l.num_ops() - 1 }
        );
    }

    /// A zero initiation interval is refused outright.
    #[test]
    fn zero_ii_rejected((machine, l, s) in random_scheduled()) {
        let err = certify(&feasibility_claim(&machine, &l, 0, s.times()))
            .expect_err("II = 0 must be refused");
        prop_assert_eq!(err, CertError::ZeroIi);
    }

    /// Forcing one edge's separation below its latency is always caught as
    /// a dependence violation (never a formulation disagreement — both
    /// inequalities must reject it with the ground truth).
    #[test]
    fn dependence_mutation_detected((machine, l, s) in random_scheduled(), pick in 0usize..1_000_000) {
        let edges: Vec<usize> = (0..l.edges().len())
            .filter(|&i| l.edges()[i].latency >= 1)
            .collect();
        if edges.is_empty() {
            return Ok(()); // nothing to violate on this loop
        }
        let e = &l.edges()[edges[pick % edges.len()]];
        let mut times = s.times().to_vec();
        // separation = t_to + w*II - t_from = latency - 1 < latency.
        times[e.to.index()] =
            times[e.from.index()] - e.distance as i64 * s.ii() as i64 + e.latency - 1;
        let err = certify(&feasibility_claim(&machine, &l, s.ii(), &times))
            .expect_err("violated dependence must be refused");
        prop_assert!(
            matches!(err, CertError::Dependence { separation, latency, .. } if separation < latency),
            "expected a dependence refusal, got {err:?}"
        );
    }

    /// A fractional claimed objective is refused as non-integral even when
    /// the schedule itself is valid (this is what catches an incumbent
    /// perturbed by the fault injector).
    #[test]
    fn fractional_objective_rejected((machine, l, s) in random_scheduled()) {
        let exact = s.max_live(&l) as i64;
        let mut claim = feasibility_claim(&machine, &l, s.ii(), s.times());
        claim.claimed_objective = Some(exact as f64 + 0.5);
        claim.exact_objective = Some(exact);
        let err = certify(&claim).expect_err("fractional objective must be refused");
        prop_assert!(
            matches!(err, CertError::ObjectiveNotIntegral { .. }),
            "expected a non-integral refusal, got {err:?}"
        );
    }

    /// A claimed objective *below* the exact recomputation is impossible
    /// for a minimization and must be refused; for an optimal claim any
    /// inequality at all is refused.
    #[test]
    fn objective_mismatch_rejected((machine, l, s) in random_scheduled(), optimal in proptest::bool::ANY) {
        let exact = s.max_live(&l) as i64;
        let mut claim = feasibility_claim(&machine, &l, s.ii(), s.times());
        claim.claimed_optimal = optimal;
        claim.claimed_objective = Some((exact - 1) as f64);
        claim.exact_objective = Some(exact);
        let err = certify(&claim).expect_err("understated objective must be refused");
        prop_assert_eq!(
            err,
            CertError::ObjectiveMismatch { claimed: exact - 1, exact, optimal }
        );
    }

    /// An overstated objective is fine for a feasible claim (auxiliary ILP
    /// variables only ever overestimate) but refused for an optimal one.
    #[test]
    fn overstated_objective_only_valid_when_feasible((machine, l, s) in random_scheduled()) {
        let exact = s.max_live(&l) as i64;
        let mut claim = feasibility_claim(&machine, &l, s.ii(), s.times());
        claim.claimed_objective = Some((exact + 1) as f64);
        claim.exact_objective = Some(exact);
        prop_assert!(certify(&claim).is_ok());
        claim.claimed_optimal = true;
        let err = certify(&claim).expect_err("optimal claim requires equality");
        prop_assert_eq!(
            err,
            CertError::ObjectiveMismatch { claimed: exact + 1, exact, optimal: true }
        );
    }

    /// An objective beating its own claimed dual bound is refused.
    #[test]
    fn objective_beating_bound_rejected((machine, l, s) in random_scheduled()) {
        let exact = s.max_live(&l) as i64;
        let mut claim = feasibility_claim(&machine, &l, s.ii(), s.times());
        claim.claimed_objective = Some(exact as f64);
        claim.exact_objective = Some(exact);
        claim.claimed_bound = Some(exact as f64 + 1.0);
        let err = certify(&claim).expect_err("objective below the proven bound is impossible");
        prop_assert!(
            matches!(err, CertError::BoundViolated { .. }),
            "expected a bound refusal, got {err:?}"
        );
    }
}

/// Piling operations into rows beyond the machine's capacity (with all
/// dependences still satisfied) is caught as a resource refusal naming an
/// over-subscribed slot.
#[test]
fn resource_overflow_detected() {
    let machine = example_3fu();
    let l = kernels::figure1(&machine);
    // All five ops in even cycles -> all in row 0 of II=2, over the 3 FUs;
    // consecutive gaps of 2 cycles satisfy every latency.
    let times = vec![0, 2, 4, 6, 8];
    let err = certify(&feasibility_claim(&machine, &l, 2, &times))
        .expect_err("five ops in one row of a 3-FU machine must be refused");
    match err {
        CertError::Resource {
            row,
            used,
            available,
            ..
        } => {
            assert_eq!(row, 0);
            assert!(used > available);
        }
        other => panic!("expected a resource refusal, got {other:?}"),
    }
}

/// An optimality claim at an II below the independently recomputed MinII is
/// structurally impossible to reach with a *valid* schedule (a too-small II
/// always breaks a dependence cycle or overflows a resource row first), so
/// the certifier reports the concrete constraint violation, not the bound.
#[test]
fn sub_mii_schedule_names_a_concrete_violation() {
    let machine = example_3fu();
    let l = kernels::lfk6_recurrence(&machine);
    let s = ims_schedule(&l, &machine, &ImsConfig::default())
        .expect("lfk6 schedules")
        .schedule;
    let mii = optimod::compute_mii(&l, &machine).value();
    assert!(mii > 1, "lfk6 is recurrence-bound");
    let mut claim = feasibility_claim(&machine, &l, mii - 1, s.times());
    claim.claimed_optimal = true;
    let err = certify(&claim).expect_err("sub-MinII claim must be refused");
    assert!(
        matches!(
            err,
            CertError::Dependence { .. }
                | CertError::Resource { .. }
                | CertError::IiBelowMinIi { .. }
        ),
        "got {err:?}"
    );
}
