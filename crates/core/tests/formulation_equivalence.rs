//! Cross-validation of the traditional and 0-1-structured formulations.
//!
//! The paper's central claim is that Inequality (20) defines *exactly the
//! same* modulo scheduling space as Inequality (4), only with tighter LP
//! relaxations. These tests verify the "exactly the same" part on randomly
//! generated loops: both formulations must agree on the achievable `II` and
//! on every optimal secondary objective value, and the objective values the
//! ILP reports must equal ground-truth measurements on the extracted
//! schedules.

use std::time::Duration;

use optimod::heuristic::{ims_schedule, ImsConfig};
use optimod::{DepStyle, LoopStatus, Objective, OptimalScheduler, SchedulerConfig};
use optimod_ddg::{generate_loop, GeneratorConfig};
use optimod_machine::{example_3fu, vliw_4issue, Machine};

/// Small loops so both formulations solve quickly even in debug builds.
fn small_cfg() -> GeneratorConfig {
    GeneratorConfig {
        max_ops: 9,
        size_log_median: 5.0_f64.ln(),
        size_log_sigma: 0.4,
        ..Default::default()
    }
}

fn scheduler(style: DepStyle, objective: Objective) -> OptimalScheduler {
    OptimalScheduler::new(
        SchedulerConfig::new(style, objective).with_time_limit(Duration::from_secs(30)),
    )
}

fn machines() -> Vec<Machine> {
    vec![example_3fu(), vliw_4issue()]
}

#[test]
fn formulations_agree_on_ii_and_maxlive() {
    let cfg = small_cfg();
    let mut compared = 0;
    let mut attempted = 0;
    for machine in machines() {
        for seed in 0..30 {
            let l = generate_loop(&cfg, &machine, seed);
            attempted += 1;
            let a = scheduler(DepStyle::Traditional, Objective::MinMaxLive).schedule(&l, &machine);
            let b = scheduler(DepStyle::Structured, Objective::MinMaxLive).schedule(&l, &machine);
            // Loops where either style exhausts its budget carry no
            // equivalence information (the paper, too, compares only loops
            // "successfully scheduled by both formulations").
            if a.status != LoopStatus::Optimal || b.status != LoopStatus::Optimal {
                continue;
            }
            compared += 1;
            assert_eq!(a.ii, b.ii, "{} II mismatch", l.name());
            assert_eq!(
                a.objective_value,
                b.objective_value,
                "{} MaxLive mismatch",
                l.name()
            );
        }
    }
    assert!(
        compared * 10 >= attempted * 7,
        "only {compared}/{attempted} loops solved by both styles — solver regression?"
    );
}

#[test]
fn reported_maxlive_matches_schedule_ground_truth() {
    let cfg = small_cfg();
    let mut compared = 0;
    let mut attempted = 0;
    for machine in machines() {
        for seed in 30..55 {
            let l = generate_loop(&cfg, &machine, seed);
            attempted += 1;
            let r = scheduler(DepStyle::Structured, Objective::MinMaxLive).schedule(&l, &machine);
            if r.status != LoopStatus::Optimal {
                continue;
            }
            compared += 1;
            let s = r.schedule.expect("scheduled");
            assert_eq!(
                s.max_live(&l) as f64,
                r.objective_value.expect("objective"),
                "{}: ILP MaxLive differs from brute-force MaxLive",
                l.name()
            );
            assert_eq!(s.validate(&l, &machine), None, "{}", l.name());
        }
    }
    assert!(
        compared * 10 >= attempted * 8,
        "only {compared}/{attempted} loops solved to optimality — solver regression?"
    );
}

#[test]
fn formulations_agree_on_buffers() {
    let cfg = small_cfg();
    let machine = example_3fu();
    let mut compared = 0;
    for seed in 0..20 {
        let l = generate_loop(&cfg, &machine, seed);
        let a = scheduler(DepStyle::Traditional, Objective::MinBuffers).schedule(&l, &machine);
        let b = scheduler(DepStyle::Structured, Objective::MinBuffers).schedule(&l, &machine);
        if a.status != LoopStatus::Optimal || b.status != LoopStatus::Optimal {
            continue;
        }
        compared += 1;
        assert_eq!(a.ii, b.ii, "{}", l.name());
        assert_eq!(a.objective_value, b.objective_value, "{}", l.name());
        // Reported buffer count must match the measured schedule.
        let s = b.schedule.expect("scheduled");
        assert_eq!(
            s.buffers(&l) as f64,
            b.objective_value.expect("objective"),
            "{}: ILP buffers differ from measured buffers",
            l.name()
        );
    }
    assert!(
        compared >= 14,
        "only {compared}/20 buffer loops solved by both"
    );
}

#[test]
fn formulations_agree_on_cumulative_lifetime() {
    let cfg = small_cfg();
    let machine = example_3fu();
    let mut compared = 0;
    for seed in 20..40 {
        let l = generate_loop(&cfg, &machine, seed);
        let a = scheduler(DepStyle::Traditional, Objective::MinCumLifetime).schedule(&l, &machine);
        let b = scheduler(DepStyle::Structured, Objective::MinCumLifetime).schedule(&l, &machine);
        if a.status != LoopStatus::Optimal || b.status != LoopStatus::Optimal {
            continue;
        }
        compared += 1;
        assert_eq!(a.ii, b.ii, "{}", l.name());
        // The traditional objective counts `end - start` per register; the
        // structured one counts reserved cycles (`end - start + 1`). They
        // differ by exactly one per virtual register.
        let off = l.vregs().len() as f64;
        assert_eq!(
            a.objective_value.unwrap() + off,
            b.objective_value.unwrap(),
            "{}",
            l.name()
        );
        // And the measured cumulative lifetime equals the structured value.
        let s = b.schedule.expect("scheduled");
        assert_eq!(
            s.cumulative_lifetime(&l) as f64,
            b.objective_value.unwrap(),
            "{}",
            l.name()
        );
    }
    assert!(
        compared >= 14,
        "only {compared}/20 lifetime loops solved by both"
    );
}

#[test]
fn noobj_iis_agree_across_styles() {
    let cfg = GeneratorConfig {
        max_ops: 14,
        ..small_cfg()
    };
    let machine = vliw_4issue();
    for seed in 100..130 {
        let l = generate_loop(&cfg, &machine, seed);
        let a = scheduler(DepStyle::Traditional, Objective::FirstFeasible).schedule(&l, &machine);
        let b = scheduler(DepStyle::Structured, Objective::FirstFeasible).schedule(&l, &machine);
        if !a.status.scheduled() || !b.status.scheduled() {
            continue;
        }
        assert_eq!(a.ii, b.ii, "{}", l.name());
        // Any schedule at the achieved II must be valid.
        assert_eq!(
            b.schedule.unwrap().validate(&l, &machine),
            None,
            "{}",
            l.name()
        );
    }
}

#[test]
fn optimal_ii_is_a_floor_for_ims() {
    let cfg = small_cfg();
    let machine = vliw_4issue();
    for seed in 200..225 {
        let l = generate_loop(&cfg, &machine, seed);
        let opt = scheduler(DepStyle::Structured, Objective::FirstFeasible).schedule(&l, &machine);
        let Some(opt_ii) = opt.ii else { continue };
        let ims = ims_schedule(&l, &machine, &ImsConfig::default()).expect("ims");
        assert!(
            ims.schedule.ii() >= opt_ii,
            "{}: IMS beat the proven optimum ({} < {})",
            l.name(),
            ims.schedule.ii(),
            opt_ii
        );
    }
}

#[test]
fn minreg_is_a_floor_for_stage_scheduled_ims() {
    use optimod::heuristic::stage_schedule;
    let cfg = small_cfg();
    let machine = example_3fu();
    for seed in 300..320 {
        let l = generate_loop(&cfg, &machine, seed);
        let ims = ims_schedule(&l, &machine, &ImsConfig::default()).expect("ims");
        let staged = stage_schedule(&l, &machine, &ims.schedule);
        let opt = scheduler(DepStyle::Structured, Objective::MinMaxLive).schedule(&l, &machine);
        if opt.status == LoopStatus::Optimal && opt.ii == Some(ims.schedule.ii()) {
            assert!(
                opt.objective_value.unwrap() <= staged.max_live(&l) as f64,
                "{}: optimal MinReg above a heuristic schedule at the same II",
                l.name()
            );
        }
    }
}
