//! Property-based tests of schedule measurements and transformations,
//! using IMS on randomly generated loops as a source of valid schedules.

use optimod::heuristic::{ims_schedule, stage_schedule, ImsConfig};
use optimod::Schedule;
use optimod_ddg::{generate_loop, GeneratorConfig, Loop};
use optimod_machine::{cydra_like, example_3fu, vliw_4issue, Machine};
use proptest::prelude::*;

fn machine_for(idx: u8) -> Machine {
    match idx % 3 {
        0 => example_3fu(),
        1 => cydra_like(),
        _ => vliw_4issue(),
    }
}

fn random_scheduled() -> impl Strategy<Value = (Machine, Loop, Schedule)> {
    (0u64..2_000, 0u8..3).prop_map(|(seed, midx)| {
        let machine = machine_for(midx);
        let cfg = GeneratorConfig {
            max_ops: 16,
            ..Default::default()
        };
        let l = generate_loop(&cfg, &machine, seed);
        let s = ims_schedule(&l, &machine, &ImsConfig::default())
            .expect("IMS schedules every generated loop")
            .schedule;
        (machine, l, s)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// IMS output is always valid and at least MII.
    #[test]
    fn ims_schedules_are_valid((machine, l, s) in random_scheduled()) {
        prop_assert_eq!(s.validate(&l, &machine), None);
        let mii = optimod::compute_mii(&l, &machine).value();
        prop_assert!(s.ii() >= mii);
    }

    /// Shifting every issue time by the same multiple of II preserves rows,
    /// validity, and all register measurements (the steady-state kernel is
    /// shift-invariant).
    #[test]
    fn shift_by_ii_is_invariant((machine, l, s) in random_scheduled(), k in 1i64..4) {
        let shift = k * s.ii() as i64;
        let shifted = Schedule::new(s.ii(), s.times().iter().map(|t| t + shift).collect());
        prop_assert_eq!(shifted.validate(&l, &machine), None);
        for id in l.op_ids() {
            prop_assert_eq!(shifted.row(id), s.row(id));
            prop_assert_eq!(shifted.stage(id), s.stage(id) + k);
        }
        prop_assert_eq!(shifted.max_live(&l), s.max_live(&l));
        prop_assert_eq!(shifted.buffers(&l), s.buffers(&l));
        prop_assert_eq!(shifted.cumulative_lifetime(&l), s.cumulative_lifetime(&l));
    }

    /// Shifting by a non-multiple of II still satisfies dependences (they
    /// only see time differences).
    #[test]
    fn arbitrary_shift_keeps_dependences((_machine, l, s) in random_scheduled(), d in 1i64..7) {
        let shifted = Schedule::new(s.ii(), s.times().iter().map(|t| t + d).collect());
        prop_assert_eq!(shifted.check_dependences(&l), None);
    }

    /// Arithmetic relations between the three register measures:
    /// `cum_lifetime = Σ_rows live(row)`, `max_live >= cum/II`,
    /// `buffers >= #vregs`, and `buffers*II >= cum_lifetime`.
    #[test]
    fn measurement_relations((_machine, l, s) in random_scheduled()) {
        let rows = s.live_per_row(&l);
        let cum: i64 = s.cumulative_lifetime(&l);
        prop_assert_eq!(rows.iter().map(|&x| x as i64).sum::<i64>(), cum);
        let ml = s.max_live(&l) as i64;
        let ii = s.ii() as i64;
        prop_assert!(ml * ii >= cum);
        prop_assert!(ml <= cum);
        let buf = s.buffers(&l) as i64;
        prop_assert!(buf >= l.vregs().len() as i64);
        prop_assert!(buf * ii >= cum);
    }

    /// Stage scheduling: valid, same rows, never worse cumulative lifetime,
    /// and never a larger MaxLive than the lifetime bound implies breaking.
    #[test]
    fn stage_scheduling_invariants((machine, l, s) in random_scheduled()) {
        let staged = stage_schedule(&l, &machine, &s);
        prop_assert_eq!(staged.validate(&l, &machine), None);
        prop_assert_eq!(staged.ii(), s.ii());
        for id in l.op_ids() {
            prop_assert_eq!(staged.row(id), s.row(id));
        }
        prop_assert!(staged.cumulative_lifetime(&l) <= s.cumulative_lifetime(&l));
    }

    /// `lifetime` spans every use of every register.
    #[test]
    fn lifetimes_cover_uses((_machine, l, s) in random_scheduled()) {
        let ii = s.ii() as i64;
        for vr in l.vregs() {
            let lt = s.lifetime(vr);
            prop_assert!(lt.start <= lt.end);
            prop_assert_eq!(lt.start, s.time(vr.def));
            for u in &vr.uses {
                let use_time = s.time(u.op) + ii * u.distance as i64;
                prop_assert!(lt.end >= use_time);
            }
        }
    }
}
