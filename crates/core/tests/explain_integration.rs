//! End-to-end wiring of the infeasibility explanation engine: an
//! `OptimalScheduler` with [`SchedulerConfig::explain`] set attaches a
//! certified explanation (and a replayable repro) to `Infeasible` results,
//! emits the `explain` trace phase, and leaves every other outcome alone.

use std::sync::Arc;

use optimod::{DepStyle, ExplainOutcome, LoopStatus, Objective, OptimalScheduler, SchedulerConfig};
use optimod_analyze::{LintCode, Severity};
use optimod_ddg::{textfmt, DepKind, Loop, LoopBuilder};
use optimod_machine::OpClass;
use optimod_machine::{risc_scalar, Machine};
use optimod_trace::{MemorySink, Trace};

/// An MII-gap instance on the single-issue machine: the recurrence
/// `a -> b` (latency 2) and `b -> a` (latency 2, distance 2) pins `b`
/// exactly two cycles after `a` at II=2 — the same MRT row — while the
/// lone issue slot admits one op per row. RecMII = ceil(4/2) = 2 and
/// ResMII = 2/1 = 2, so the MII is 2, yet the first feasible II is 3.
fn gap_instance() -> (Loop, Machine) {
    let m = risc_scalar();
    let mut b = LoopBuilder::new("mii-gap");
    let a = b.op(OpClass::Move, "a");
    let c = b.op(OpClass::Move, "b");
    b.dep(a, c, 2, 0, DepKind::Memory);
    b.dep(c, a, 2, 2, DepKind::Memory);
    (b.build(&m), m)
}

fn explain_config() -> SchedulerConfig {
    let mut cfg = SchedulerConfig::new(DepStyle::Structured, Objective::FirstFeasible);
    cfg.max_ii_span = 0; // stop at the MII: the gap makes that Infeasible
    cfg.explain = true;
    cfg
}

#[test]
fn gap_instance_schedules_at_mii_plus_one() {
    // Sanity for the fixture itself: with the full II span the loop
    // schedules one past its MII, proving the gap is real.
    let (l, m) = gap_instance();
    let sched = OptimalScheduler::new(SchedulerConfig::new(
        DepStyle::Structured,
        Objective::FirstFeasible,
    ));
    let res = sched.schedule(&l, &m);
    assert_eq!(res.mii.value(), 2);
    assert_eq!(res.ii, Some(3));
}

#[test]
fn infeasible_result_carries_certified_explanation_and_repro() {
    let (l, m) = gap_instance();
    let res = OptimalScheduler::new(explain_config()).schedule(&l, &m);
    assert_eq!(res.status, LoopStatus::Infeasible);
    let ex = res
        .explanation
        .expect("explain=true attaches an explanation");
    assert_eq!(ex.ii, 2);
    assert!(ex.minimized && ex.certified, "small core must certify");
    assert!(
        ex.findings.iter().any(|f| f.severity == Severity::Error
            && matches!(
                f.code,
                LintCode::ConflictingEdges
                    | LintCode::ResourceOverSubscription
                    | LintCode::WindowConflict
            )),
        "an error-severity OM200-series finding names the conflict: {:?}",
        ex.findings
    );

    // The attached repro replays: it parses, names the same machine, and
    // is itself infeasible at the stated II under a fresh scheduler.
    let repro = ex.repro.as_deref().expect("repro attached");
    let file = textfmt::parse(repro).expect("repro parses");
    assert_eq!(file.machine.name(), m.name());
    let replay = OptimalScheduler::new(explain_config()).schedule(&file.l, &file.machine);
    assert_eq!(replay.status, LoopStatus::Infeasible, "repro replays");
}

#[test]
fn explanation_is_absent_without_the_flag_and_on_success() {
    let (l, m) = gap_instance();
    let mut cfg = explain_config();
    cfg.explain = false;
    let res = OptimalScheduler::new(cfg).schedule(&l, &m);
    assert_eq!(res.status, LoopStatus::Infeasible);
    assert!(res.explanation.is_none());

    let mut cfg = explain_config();
    cfg.max_ii_span = 8; // reaches the feasible II=3
    let res = OptimalScheduler::new(cfg).schedule(&l, &m);
    assert!(res.status.scheduled());
    assert!(res.explanation.is_none());
}

#[test]
fn explain_phase_traces_and_counters_tally() {
    let (l, m) = gap_instance();
    let sink = Arc::new(MemorySink::default());
    let mut cfg = explain_config();
    cfg.limits.trace = Trace::new(sink.clone());
    let res = OptimalScheduler::new(cfg).schedule(&l, &m);
    assert_eq!(res.status, LoopStatus::Infeasible);
    let report = sink.report();
    assert!(report.balanced(), "explain span must close");
    assert_eq!(report.explain_runs, 1);
    assert!(report.explain_raw_core_groups >= report.explain_min_core_groups);
    assert!(report.explain_min_core_groups >= 1);
    assert_eq!(report.explain_certified, 1);
}

#[test]
fn explain_at_reports_satisfiable_on_feasible_ii() {
    let (l, m) = gap_instance();
    let cfg = explain_config();
    let out = optimod::explain_at(&l, &m, 3, &cfg, &optimod::explain_options(&cfg));
    assert!(matches!(out, ExplainOutcome::Satisfiable));
}
