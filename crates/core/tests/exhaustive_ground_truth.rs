//! Exhaustive cross-validation on tiny loops: enumerate *every* schedule in
//! the stage-bounded window and compare the ground truth (feasibility and
//! minimum MaxLive) against both ILP formulations.
//!
//! This is the strongest correctness oracle in the suite: nothing is
//! mocked, approximated, or sampled — for loops small enough to enumerate,
//! the ILP must agree exactly.

use optimod::{build_model, DepStyle, FormulationConfig, Objective, Schedule};
use optimod_ddg::{DepKind, Loop, LoopBuilder};
use optimod_ilp::SolveStatus;
use optimod_machine::{Machine, MachineBuilder, OpClass};

/// A machine with a shared single-slot bus at offset 1, so resource
/// conflicts appear across rows (stressing the `(r - c) mod II` wrap).
fn bus_machine() -> Machine {
    let mut b = MachineBuilder::new("bus");
    let fu = b.resource("fu", 2);
    let bus = b.resource("bus", 1);
    b.reserve(OpClass::Load, 2, [(fu, 0), (bus, 1)]);
    b.reserve(OpClass::FMul, 3, [(fu, 0), (bus, 2)]);
    b.default_reservation(1, [(fu, 0)]);
    b.build()
}

fn tiny_loops(machine: &Machine) -> Vec<Loop> {
    let mut out = Vec::new();

    let mut b = LoopBuilder::new("chain");
    let a = b.op(OpClass::Load, "ld");
    let c = b.op(OpClass::FMul, "mul");
    let d = b.op(OpClass::Store, "st");
    b.flow(a, c, 0);
    b.flow(c, d, 0);
    out.push(b.build(machine));

    let mut b = LoopBuilder::new("diamond");
    let a = b.op(OpClass::Load, "ld");
    let c = b.op(OpClass::FMul, "mul");
    let d = b.op(OpClass::FAdd, "add");
    let e = b.op(OpClass::Store, "st");
    b.flow(a, c, 0);
    b.flow(a, d, 0);
    b.flow(c, e, 0);
    b.flow(d, e, 0);
    out.push(b.build(machine));

    let mut b = LoopBuilder::new("recurrence");
    let a = b.op(OpClass::Load, "ld");
    let c = b.op(OpClass::FAdd, "acc");
    b.flow(a, c, 0);
    b.flow(c, c, 1);
    out.push(b.build(machine));

    let mut b = LoopBuilder::new("anti");
    let a = b.op(OpClass::Load, "ld");
    let c = b.op(OpClass::Store, "st");
    b.flow(a, c, 0);
    b.dep(c, a, 1, 1, DepKind::Memory);
    out.push(b.build(machine));

    let mut b = LoopBuilder::new("cross-iteration-use");
    let a = b.op(OpClass::Load, "ld");
    let c = b.op(OpClass::FMul, "mul");
    b.flow(a, c, 0);
    b.flow(a, c, 2); // value from two iterations back
    out.push(b.build(machine));

    out
}

/// Enumerates every time assignment in `[0, window)^N`; returns the best
/// (validity, MaxLive) found.
fn brute_force(l: &Loop, machine: &Machine, ii: u32, window: i64) -> Option<u32> {
    let n = l.num_ops();
    let mut times = vec![0i64; n];
    let mut best: Option<u32> = None;
    fn rec(
        l: &Loop,
        machine: &Machine,
        ii: u32,
        window: i64,
        idx: usize,
        times: &mut Vec<i64>,
        best: &mut Option<u32>,
    ) {
        if idx == times.len() {
            let s = Schedule::new(ii, times.clone());
            if s.validate(l, machine).is_none() {
                let ml = s.max_live(l);
                *best = Some(best.map_or(ml, |b| b.min(ml)));
            }
            return;
        }
        for t in 0..window {
            times[idx] = t;
            rec(l, machine, ii, window, idx + 1, times, best);
        }
    }
    rec(l, machine, ii, window, 0, &mut times, &mut best);
    best
}

#[test]
fn ilp_matches_exhaustive_enumeration() {
    let machine = bus_machine();
    for l in tiny_loops(&machine) {
        for ii in 1..=4u32 {
            for style in [DepStyle::Traditional, DepStyle::Structured] {
                let cfg = FormulationConfig {
                    dep_style: style,
                    objective: Objective::MinMaxLive,
                    // Keep the window small enough to enumerate: stages
                    // limited by a slack of 4 cycles.
                    sched_len_slack: 4,
                    max_live_limit: None,
                };
                let Some(built) = build_model(&l, &machine, ii, &cfg) else {
                    // Below RecMII: brute force over the same window must
                    // also fail.
                    let bf = brute_force(&l, &machine, ii, 3 * ii as i64);
                    assert_eq!(bf, None, "{} II={ii} {style:?}", l.name());
                    continue;
                };
                let window = built.num_stages * ii as i64;
                let out = built.model.solve();
                let bf = brute_force(&l, &machine, ii, window);
                match (out.status, bf) {
                    (SolveStatus::Optimal, Some(best_ml)) => {
                        assert_eq!(
                            out.objective.round() as u32,
                            best_ml,
                            "{} II={ii} {style:?}: ILP MaxLive vs exhaustive",
                            l.name()
                        );
                        let s = built.extract_schedule(&out);
                        assert_eq!(s.validate(&l, &machine), None);
                        // The ILP may place ops in any window translate;
                        // only the objective must match.
                    }
                    (SolveStatus::Infeasible, None) => {}
                    (st, bf) => panic!(
                        "{} II={ii} {style:?}: ILP says {st:?}, exhaustive says {bf:?}",
                        l.name()
                    ),
                }
            }
        }
    }
}

#[test]
fn noobj_feasibility_matches_exhaustive() {
    let machine = bus_machine();
    for l in tiny_loops(&machine) {
        for ii in 1..=4u32 {
            let cfg = FormulationConfig {
                dep_style: DepStyle::Structured,
                objective: Objective::FirstFeasible,
                sched_len_slack: 4,
                max_live_limit: None,
            };
            let Some(built) = build_model(&l, &machine, ii, &cfg) else {
                continue;
            };
            let window = built.num_stages * ii as i64;
            let out = built.model.solve();
            let bf = brute_force(&l, &machine, ii, window);
            assert_eq!(
                out.status.has_solution(),
                bf.is_some(),
                "{} II={ii}: feasibility mismatch",
                l.name()
            );
        }
    }
}
