//! Tests for the register-file-constrained extension
//! (`SchedulerConfig::register_limit` / `FormulationConfig::max_live_limit`).

use std::time::Duration;

use optimod::{DepStyle, LoopStatus, Objective, OptimalScheduler, SchedulerConfig};
use optimod_ddg::kernels;
use optimod_machine::example_3fu;

fn scheduler(objective: Objective, limit: Option<u32>) -> OptimalScheduler {
    let mut cfg = SchedulerConfig::new(DepStyle::Structured, objective)
        .with_time_limit(Duration::from_secs(5));
    cfg.register_limit = limit;
    OptimalScheduler::new(cfg)
}

/// Figure 1 needs 7 registers at II=2; capping below that must push the
/// scheduler to a larger II (or fail), never to an over-budget schedule.
#[test]
fn cap_below_min_changes_ii_or_fails() {
    let machine = example_3fu();
    let l = kernels::figure1(&machine);

    // Unlimited: II=2, MaxLive 7.
    let free = scheduler(Objective::MinMaxLive, None).schedule(&l, &machine);
    assert_eq!(free.ii, Some(2));
    assert_eq!(free.schedule.as_ref().unwrap().max_live(&l), 7);

    // Cap at 6: any schedule returned must satisfy the cap.
    let capped = scheduler(Objective::MinMaxLive, Some(6)).schedule(&l, &machine);
    if let Some(s) = &capped.schedule {
        assert!(s.max_live(&l) <= 6, "cap violated: {}", s.max_live(&l));
        assert!(capped.ii.unwrap() > 2, "II=2 needs 7 registers");
    } else {
        assert!(matches!(
            capped.status,
            LoopStatus::Infeasible | LoopStatus::TimedOut
        ));
    }
}

/// A cap at exactly the unconstrained optimum changes nothing.
#[test]
fn cap_at_optimum_is_tight_but_feasible() {
    let machine = example_3fu();
    let l = kernels::figure1(&machine);
    let r = scheduler(Objective::MinMaxLive, Some(7)).schedule(&l, &machine);
    assert_eq!(r.status, LoopStatus::Optimal);
    assert_eq!(r.ii, Some(2));
    assert_eq!(r.schedule.unwrap().max_live(&l), 7);
}

/// The cap also works without an objective (feasibility mode): NoObj with
/// a register limit returns only cap-respecting schedules.
#[test]
fn cap_applies_to_noobj() {
    let machine = example_3fu();
    let l = kernels::figure1(&machine);

    // Without a cap, NoObj at II=2 may use more registers than 7.
    let capped = scheduler(Objective::FirstFeasible, Some(7)).schedule(&l, &machine);
    let s = capped.schedule.expect("figure1 schedulable within 7 regs");
    assert!(s.max_live(&l) <= 7, "cap violated: {}", s.max_live(&l));
    assert_eq!(s.validate(&l, &machine), None);
}

/// A generous cap must not change the optimum.
#[test]
fn loose_cap_is_a_noop() {
    let machine = example_3fu();
    for l in [kernels::saxpy(&machine), kernels::lfk1_hydro(&machine)] {
        let free = scheduler(Objective::MinMaxLive, None).schedule(&l, &machine);
        let capped = scheduler(Objective::MinMaxLive, Some(1000)).schedule(&l, &machine);
        assert_eq!(free.ii, capped.ii, "{}", l.name());
        assert_eq!(free.objective_value, capped.objective_value, "{}", l.name());
    }
}

/// Sweeping the cap downward yields a monotone (non-decreasing) II
/// staircase.
#[test]
fn cap_sweep_monotone() {
    let machine = example_3fu();
    let l = kernels::lfk7_eos(&machine);
    let mut last_ii = 0;
    for cap in [24u32, 16, 12] {
        let r = scheduler(Objective::FirstFeasible, Some(cap)).schedule(&l, &machine);
        let Some(ii) = r.ii else { continue };
        assert!(
            ii >= last_ii || last_ii == 0,
            "tighter cap {cap} gave smaller II {ii} (previous {last_ii})"
        );
        if let Some(s) = &r.schedule {
            assert!(s.max_live(&l) <= cap);
        }
        last_ii = ii.max(last_ii);
    }
}
