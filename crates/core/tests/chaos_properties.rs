//! Fault-injection properties of the scheduling pipeline: under *any*
//! seeded fault plan — injected panics, stalls, spurious timeouts, and
//! incumbent corruptions at the solver's named sites — `schedule()` must
//! return a typed [`LoopResult`] (never unwind), every schedule it does
//! emit must pass the exact-arithmetic certifier, and the trace stream must
//! stay balanced no matter where the fault landed.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Once};
use std::time::Duration;

use optimod::{
    certify, Claim, DepStyle, FallbackConfig, LoopResult, LoopStatus, Objective, OptimalScheduler,
    Provenance, SchedulerConfig,
};
use optimod_ddg::{kernels, Loop};
use optimod_ilp::{FaultAction, FaultPlan, FaultSite};
use optimod_machine::{example_3fu, Machine};
use optimod_trace::{MemorySink, Trace};
use proptest::prelude::*;

/// Injected panics are recovered inside the solver, but the default panic
/// hook would still spray their messages over the test output. Silence
/// exactly those; every other panic (including proptest assertion
/// failures) keeps the default report.
fn quiet_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.starts_with("injected fault:"));
            if !injected {
                default_hook(info);
            }
        }));
    });
}

fn chaos_loop(idx: u8, machine: &Machine) -> Loop {
    match idx % 3 {
        0 => kernels::figure1(machine),
        1 => kernels::lfk5_tridiag(machine),
        _ => kernels::fir4(machine),
    }
}

struct ChaosRun {
    result: LoopResult,
    balanced: bool,
}

/// Schedules `l` under `plan`, asserting the panic never escapes.
fn run_under_plan(machine: &Machine, l: &Loop, plan: FaultPlan, threads: u32) -> ChaosRun {
    quiet_injected_panics();
    let sink = Arc::new(MemorySink::default());
    let mut cfg = SchedulerConfig::new(DepStyle::Structured, Objective::MinMaxLive)
        .with_time_limit(Duration::from_millis(800));
    cfg.limits.threads = threads;
    cfg.limits.trace = Trace::new(sink.clone());
    cfg.limits.fault = plan;
    cfg.fallback = FallbackConfig::enabled();
    let sched = OptimalScheduler::new(cfg);
    let result = catch_unwind(AssertUnwindSafe(|| sched.schedule(l, machine)))
        .unwrap_or_else(|_| panic!("schedule() let a fault escape on {}", l.name()));
    ChaosRun {
        result,
        balanced: sink.report().balanced(),
    }
}

/// The invariant every chaos outcome must satisfy: balanced traces, typed
/// degradation, and certified schedules.
fn assert_outcome_well_formed(machine: &Machine, l: &Loop, run: &ChaosRun) {
    assert!(run.balanced, "{}: unbalanced trace stream", l.name());
    let r = &run.result;
    match &r.schedule {
        Some(s) => {
            let exact_rung = r.provenance == Some(Provenance::Exact);
            let claim = Claim {
                graph: l,
                machine,
                ii: s.ii(),
                times: s.times(),
                claimed_optimal: exact_rung && r.status == LoopStatus::Optimal,
                claimed_objective: if exact_rung { r.objective_value } else { None },
                exact_objective: exact_rung.then(|| s.max_live(l) as i64),
                claimed_bound: None,
            };
            certify(&claim).unwrap_or_else(|e| {
                panic!("{}: emitted schedule failed certification: {e}", l.name())
            });
        }
        None => {
            assert!(
                !r.status.scheduled(),
                "{}: scheduled status without a schedule",
                l.name()
            );
            if r.status == LoopStatus::Failed {
                assert!(
                    r.error.is_some(),
                    "{}: failed outcome without a typed cause",
                    l.name()
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any seed-derived fault plan, on serial and parallel engines alike,
    /// yields a certified schedule or a clean typed degradation.
    #[test]
    fn seeded_fault_plans_degrade_cleanly(seed in 0u64..10_000, lidx in 0u8..3) {
        let machine = example_3fu();
        let l = chaos_loop(lidx, &machine);
        let threads = 1 + (seed % 2) as u32;
        let run = run_under_plan(&machine, &l, FaultPlan::from_seed(seed), threads);
        assert_outcome_well_formed(&machine, &l, &run);
    }

    /// A single targeted injection at each site/action pair is survived.
    #[test]
    fn targeted_single_injections_degrade_cleanly(
        site_idx in 0usize..64,
        action_idx in 0usize..4,
        nth in 1u64..8,
        lidx in 0u8..3,
    ) {
        let machine = example_3fu();
        let l = chaos_loop(lidx, &machine);
        let site = FaultSite::ALL[site_idx % FaultSite::ALL.len()];
        let action = [
            FaultAction::Panic,
            FaultAction::Stall,
            FaultAction::SpuriousTimeout,
            FaultAction::PerturbIncumbent,
        ][action_idx];
        let run = run_under_plan(&machine, &l, FaultPlan::single(site, action, nth), 2);
        assert_outcome_well_formed(&machine, &l, &run);
    }
}

/// A stalled extraction with the fallback ladder disabled is a typed
/// failure — no schedule, a cause naming the injected fault, no panic.
#[test]
fn stalled_extraction_without_fallback_is_typed() {
    quiet_injected_panics();
    let machine = example_3fu();
    let l = kernels::figure1(&machine);
    let mut cfg = SchedulerConfig::new(DepStyle::Structured, Objective::MinMaxLive)
        .with_time_limit(Duration::from_millis(800));
    cfg.limits.threads = 1;
    cfg.limits.fault = FaultPlan::single(FaultSite::Extraction, FaultAction::Stall, 1);
    let r = OptimalScheduler::new(cfg).schedule(&l, &machine);
    assert!(r.schedule.is_none());
    let cause = r
        .error
        .expect("stalled extraction must carry a cause")
        .to_string();
    assert!(cause.contains("injected fault"), "cause was: {cause}");
}

/// An injected panic in the extraction path is recovered as a typed worker
/// panic, never an unwind out of `schedule()`.
#[test]
fn extraction_panic_is_recovered() {
    quiet_injected_panics();
    let machine = example_3fu();
    let l = kernels::figure1(&machine);
    let mut cfg = SchedulerConfig::new(DepStyle::Structured, Objective::MinMaxLive)
        .with_time_limit(Duration::from_millis(800));
    cfg.limits.threads = 1;
    cfg.limits.fault = FaultPlan::single(FaultSite::Extraction, FaultAction::Panic, 1);
    let r = catch_unwind(AssertUnwindSafe(|| {
        OptimalScheduler::new(cfg).schedule(&l, &machine)
    }))
    .expect("extraction panic must not escape");
    assert!(r.schedule.is_none());
    assert!(r.error.is_some());
}

/// An incumbent perturbed by +0.5 either gets displaced by a clean
/// incumbent before the end of the search or is refused by the certifier —
/// it can never surface as a silently-wrong objective.
#[test]
fn perturbed_incumbent_never_surfaces_unchecked() {
    quiet_injected_panics();
    let machine = example_3fu();
    let l = kernels::figure1(&machine);
    for nth in 1..=6u64 {
        let mut cfg = SchedulerConfig::new(DepStyle::Structured, Objective::MinMaxLive)
            .with_time_limit(Duration::from_millis(800));
        cfg.limits.threads = 1;
        cfg.limits.fault =
            FaultPlan::single(FaultSite::NodeExpand, FaultAction::PerturbIncumbent, nth);
        let r = OptimalScheduler::new(cfg).schedule(&l, &machine);
        match &r.schedule {
            Some(s) => {
                // Whatever survived certification is exactly right.
                assert_eq!(s.max_live(&l), 7, "figure1's optimal MaxLive");
                assert_eq!(r.objective_value, Some(7.0));
            }
            None => {
                let cause = r.error.expect("refusal must be typed").to_string();
                assert!(cause.contains("certification failed"), "cause was: {cause}");
            }
        }
    }
}
