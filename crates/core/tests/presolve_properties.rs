//! Equivalence properties of the analyzer's certified presolve: on random
//! loops, scheduling with presolve on and off must reach the *identical*
//! certified II and secondary-objective value — serially and under the
//! parallel branch-and-bound — because every presolve reduction is implied
//! by constraints already in the model. A divergence here means presolve
//! cut off an optimal integer point (unsound) or manufactured one
//! (nonsense); both would also be caught by the certifier, but this test
//! pins the equivalence directly at the scheduler interface.

use std::time::Duration;

use optimod::{DepStyle, LoopStatus, Objective, OptimalScheduler, SchedulerConfig};
use optimod_ddg::{generate_loop, GeneratorConfig};
use optimod_machine::{cydra_like, example_3fu, vliw_4issue, Machine};
use proptest::prelude::*;

/// Small loops so each case solves in milliseconds even in debug builds.
fn small_cfg() -> GeneratorConfig {
    GeneratorConfig {
        max_ops: 9,
        size_log_median: 5.0_f64.ln(),
        size_log_sigma: 0.4,
        ..Default::default()
    }
}

fn machine_for(idx: u8) -> Machine {
    match idx % 3 {
        0 => example_3fu(),
        1 => cydra_like(),
        _ => vliw_4issue(),
    }
}

fn scheduler(style: DepStyle, presolve: bool, threads: u32) -> OptimalScheduler {
    let mut cfg =
        SchedulerConfig::new(style, Objective::MinMaxLive).with_time_limit(Duration::from_secs(30));
    cfg.presolve = presolve;
    cfg.limits.threads = threads;
    OptimalScheduler::new(cfg)
}

/// The property proper, shared by the serial and parallel variants.
fn check_equivalence(seed: u64, midx: u8, style: DepStyle, threads: u32) {
    let machine = machine_for(midx);
    let l = generate_loop(&small_cfg(), &machine, seed);
    let off = scheduler(style, false, threads).schedule(&l, &machine);
    let on = scheduler(style, true, threads).schedule(&l, &machine);
    // Budget exhaustion on either side carries no equivalence information.
    if off.status != LoopStatus::Optimal || on.status != LoopStatus::Optimal {
        return;
    }
    assert_eq!(
        on.ii,
        off.ii,
        "{}: presolve changed the certified II",
        l.name()
    );
    assert_eq!(
        on.objective_value,
        off.objective_value,
        "{}: presolve changed the certified objective",
        l.name()
    );
    assert!(
        on.presolve.models > 0,
        "{}: presolve-enabled run never invoked presolve",
        l.name()
    );
    // Both schedules must stand on their own (the scheduler certified them
    // internally; re-validate the decoded schedules for good measure).
    for r in [&off, &on] {
        let s = r.schedule.as_ref().expect("optimal result has a schedule");
        assert_eq!(s.validate(&l, &machine), None, "{}", l.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Serial search: node-for-node deterministic, so any divergence is
    /// presolve's fault alone.
    #[test]
    fn presolve_preserves_certified_results_serial(
        seed in 0u64..2_000,
        midx in 0u8..3,
        structured in proptest::bool::ANY,
    ) {
        let style = if structured { DepStyle::Structured } else { DepStyle::Traditional };
        check_equivalence(seed, midx, style, 1);
    }

    /// Parallel search (2 workers): different node orders, same certified
    /// answers.
    #[test]
    fn presolve_preserves_certified_results_parallel(
        seed in 0u64..2_000,
        midx in 0u8..3,
    ) {
        check_equivalence(seed, midx, DepStyle::Structured, 2);
    }
}
