//! Robustness properties of the scheduling pipeline: degenerate or
//! adversarial inputs must come back as a typed error or a valid schedule —
//! never a panic — and mid-solve cancellation must leave a well-formed
//! [`LoopResult`] with the fallback ladder engaged.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use optimod::{
    DepStyle, FallbackConfig, LoopResult, LoopStatus, Objective, OptimalScheduler, ScheduleError,
    SchedulerConfig,
};
use optimod_ddg::{
    generate_loop, DepKind, GeneratorConfig, Loop, LoopBuilder, OpId, MAX_DISTANCE, MAX_LATENCY,
};
use optimod_machine::{example_3fu, Machine, OpClass};
use proptest::prelude::*;

fn tight_scheduler() -> OptimalScheduler {
    let mut cfg = SchedulerConfig::new(DepStyle::Structured, Objective::MinMaxLive)
        .with_time_limit(Duration::from_millis(250))
        .with_node_limit(2_000);
    cfg.limits.threads = 1;
    OptimalScheduler::new(cfg)
}

/// The invariant every input must satisfy: the scheduler returns (no
/// unwinding), an invalid loop is reported as such with a typed cause, and
/// any schedule handed back validates against the loop and machine.
fn assert_never_panics(l: &Loop, machine: &Machine, sched: &OptimalScheduler) -> LoopResult {
    let validity = l.validate();
    let r = catch_unwind(AssertUnwindSafe(|| sched.schedule(l, machine)))
        .unwrap_or_else(|_| panic!("scheduler panicked on {}", l.name()));
    match validity {
        Err(_) => {
            assert_eq!(r.status, LoopStatus::Invalid, "{}", l.name());
            assert!(
                r.error.is_some(),
                "{}: Invalid must carry a cause",
                l.name()
            );
            assert!(r.schedule.is_none(), "{}", l.name());
        }
        Ok(()) => {
            if r.status.scheduled() {
                let s = r.schedule.as_ref().expect("scheduled => schedule");
                assert_eq!(s.validate(l, machine), None, "{}", l.name());
                assert!(r.provenance.is_some(), "{}", l.name());
            } else {
                assert!(r.schedule.is_none(), "{}", l.name());
            }
        }
    }
    r
}

fn class_for(i: usize) -> OpClass {
    match i % 4 {
        0 => OpClass::Load,
        1 => OpClass::IAlu,
        2 => OpClass::FAdd,
        _ => OpClass::FMul,
    }
}

/// Arbitrary possibly-degenerate loops: up to 4 ops (including none at
/// all), edges whose endpoints may dangle, latencies and distances that
/// probe the validation caps, and a mix of dep kinds and register flows.
fn arb_degenerate_loop() -> impl Strategy<Value = Loop> {
    let edge = (0usize..6, 0usize..6, 0usize..6, 0usize..4, 0usize..3);
    (0usize..=4, proptest::collection::vec(edge, 0..8)).prop_map(|(n, edges)| {
        let machine = example_3fu();
        let mut b = LoopBuilder::new("prop-degenerate");
        for i in 0..n {
            b.op(class_for(i), format!("op{i}"));
        }
        for (f, t, lat_c, dist_c, kind_c) in edges {
            let from = OpId::from_index(f);
            let to = OpId::from_index(t);
            let latency = match lat_c {
                0 => 0,
                1 => 1,
                2 => 4,
                3 => -2,
                4 => MAX_LATENCY,
                _ => MAX_LATENCY + 1,
            };
            let distance = match dist_c {
                0 => 0,
                1 => 1,
                2 => 2,
                _ => MAX_DISTANCE + 1,
            };
            match kind_c {
                0 => b.dep(from, to, latency, distance, DepKind::Memory),
                1 => b.dep(from, to, latency, distance, DepKind::Anti),
                _ => b.flow(from, to, distance),
            };
        }
        b.build_unchecked(&machine)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite (c): arbitrary degenerate graphs — dangling endpoints,
    /// overflowing annotations, zero-distance cycles, empty bodies — go
    /// through `Loop::validate` and the full scheduler without panicking.
    #[test]
    fn degenerate_loops_yield_typed_error_or_valid_schedule(l in arb_degenerate_loop()) {
        let machine = example_3fu();
        assert_never_panics(&l, &machine, &tight_scheduler());
    }

    /// Satellite (d): a `StopFlag` child fired from another thread at a
    /// randomized point mid-solve. The pipeline must return a well-formed
    /// result, and with the ladder enabled a schedule must still land
    /// (the IMS rung does not consult the flag).
    #[test]
    fn stop_mid_solve_is_well_formed_and_ladder_engages(
        delay_us in 0u64..4_000,
        threads in 1u32..3,
        seed in 0u64..4,
    ) {
        let machine = example_3fu();
        let gen = GeneratorConfig {
            min_ops: 20,
            max_ops: 20,
            recurrence_prob: 0.5,
            ..Default::default()
        };
        let l = generate_loop(&gen, &machine, seed);
        let mut cfg = SchedulerConfig::new(DepStyle::Structured, Objective::MinMaxLive)
            .with_time_limit(Duration::from_secs(10));
        cfg.limits.threads = threads;
        cfg.fallback = FallbackConfig::enabled();
        let stop = cfg.limits.stop.clone();
        let sched = OptimalScheduler::new(cfg);
        let killer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_micros(delay_us));
            stop.stop();
        });
        let r = assert_never_panics(&l, &machine, &sched);
        killer.join().expect("killer thread");
        // Whether the stop landed before or after the exact solve
        // finished, the ladder guarantees a schedule on a valid loop.
        prop_assert!(r.status.scheduled(), "status {:?}", r.status);
        prop_assert!(r.provenance.is_some());
    }
}

// -- Deterministic corners named in the issue ------------------------------

#[test]
fn empty_body_schedules_without_panic() {
    let machine = example_3fu();
    let l = LoopBuilder::new("empty").build(&machine);
    let r = assert_never_panics(&l, &machine, &tight_scheduler());
    assert!(r.status.scheduled(), "empty loop is trivially schedulable");
}

#[test]
fn single_op_self_edge_schedules() {
    let machine = example_3fu();
    let mut b = LoopBuilder::new("self-edge");
    let a = b.op(OpClass::IAlu, "a");
    b.dep(a, a, 1, 1, DepKind::Memory);
    let l = b.build(&machine);
    let r = assert_never_panics(&l, &machine, &tight_scheduler());
    assert!(r.status.scheduled());
}

#[test]
fn zero_distance_self_edge_is_invalid_not_a_panic() {
    let machine = example_3fu();
    let mut b = LoopBuilder::new("zero-distance-self");
    let a = b.op(OpClass::IAlu, "a");
    b.dep(a, a, 1, 0, DepKind::Memory);
    let l = b.build_unchecked(&machine);
    let r = assert_never_panics(&l, &machine, &tight_scheduler());
    assert_eq!(r.status, LoopStatus::Invalid);
}

#[test]
fn max_latency_recurrence_is_rejected_with_typed_overflow() {
    // Passes `Loop::validate` (latency exactly at the cap) but implies a
    // RecMII of 2^40 — far past anything the ILP could formulate. The
    // scheduler must refuse with `MiiOverflow` instead of allocating.
    let machine = example_3fu();
    let mut b = LoopBuilder::new("max-latency-cycle");
    let a = b.op(OpClass::FAdd, "a");
    b.dep(a, a, MAX_LATENCY, 1, DepKind::Memory);
    let l = b.build(&machine);
    let r = assert_never_panics(&l, &machine, &tight_scheduler());
    assert_eq!(r.status, LoopStatus::Invalid);
    assert!(
        matches!(r.error, Some(ScheduleError::MiiOverflow { .. })),
        "{:?}",
        r.error
    );
}

#[test]
fn distance_beyond_ii_span_schedules() {
    // A dependence whose distance dwarfs any II the escalation will try:
    // the constraint `t_to - t_from >= latency - II * distance` is slack
    // at every candidate, and must not trip any arithmetic on the way.
    let machine = example_3fu();
    let mut b = LoopBuilder::new("long-distance");
    let x = b.op(OpClass::Load, "x");
    let y = b.op(OpClass::FAdd, "y");
    b.flow(x, y, 0);
    b.dep(y, x, 3, 500, DepKind::Memory);
    let l = b.build(&machine);
    let r = assert_never_panics(&l, &machine, &tight_scheduler());
    assert!(r.status.scheduled());
}

#[test]
fn ladder_engages_when_exact_budget_is_zero() {
    // Deterministic ladder engagement: a zero exact share times out rung 1
    // immediately, so any schedule that comes back is a degraded rung's.
    let machine = example_3fu();
    let l = optimod_ddg::kernels::lfk5_tridiag(&machine);
    let mut cfg = SchedulerConfig::new(DepStyle::Structured, Objective::MinMaxLive)
        .with_time_limit(Duration::from_secs(10));
    cfg.limits.threads = 1;
    cfg.fallback = FallbackConfig {
        enabled: true,
        exact_share: 0.0,
        stage_share: 0.5,
        ..FallbackConfig::default()
    };
    let r = OptimalScheduler::new(cfg).schedule(&l, &machine);
    assert!(r.status.scheduled(), "ladder must land: {:?}", r.status);
    let rung = r.provenance.expect("scheduled => provenance");
    assert!(rung.degraded(), "exact had no budget, got {rung}");
    assert_eq!(
        r.schedule
            .expect("scheduled => schedule")
            .validate(&l, &machine),
        None
    );
}

#[test]
fn unbounded_budget_with_full_shares_does_not_overflow() {
    // Regression: the fallback ladder used to slice the budget with
    // `Duration::mul_f64`, which panics when the product overflows — and
    // `Duration::MAX.as_secs_f64()` rounds *up* to 2^64 seconds, so even a
    // share of 1.0 overflowed. An effectively unbounded deadline combined
    // with the ladder must schedule, not abort.
    let machine = example_3fu();
    let l = optimod_ddg::kernels::figure1(&machine);
    let mut cfg = SchedulerConfig::new(DepStyle::Structured, Objective::MinMaxLive)
        .with_time_limit(Duration::MAX);
    cfg.limits.threads = 1;
    cfg.fallback = FallbackConfig {
        enabled: true,
        exact_share: 1.0,
        stage_share: 1.0,
        ..FallbackConfig::default()
    };
    let r = catch_unwind(AssertUnwindSafe(|| {
        OptimalScheduler::new(cfg).schedule(&l, &machine)
    }))
    .expect("near-u64::MAX budget with full ladder shares panicked");
    assert!(r.status.scheduled(), "{:?}", r.status);
}

#[test]
fn saturated_ii_span_does_not_overflow() {
    // `end_ii = mii + max_ii_span` must saturate, and the per-iteration
    // escalation steps must not wrap past a saturated `end_ii`. The node
    // budget keeps the walk short; the point is the arithmetic.
    let machine = example_3fu();
    let l = optimod_ddg::kernels::figure1(&machine);
    let mut cfg = SchedulerConfig::new(DepStyle::Structured, Objective::MinMaxLive)
        .with_time_limit(Duration::from_secs(5));
    cfg.limits.threads = 1;
    cfg.max_ii_span = u32::MAX;
    let r = catch_unwind(AssertUnwindSafe(|| {
        OptimalScheduler::new(cfg).schedule(&l, &machine)
    }))
    .expect("saturated II span panicked");
    assert!(r.status.scheduled(), "{:?}", r.status);
}
