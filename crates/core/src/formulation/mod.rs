//! Integer-linear-programming formulations of the modulo scheduling space.
//!
//! For a candidate initiation interval `II`, a formulation consists of
//! (paper Section 3):
//!
//! * **variables** — a binary MRT-row matrix `a[op][row]` and an integer
//!   stage vector `k[op]`, so `time(op) = k*II + row`;
//! * **assignment constraints** (Eq. 1) — every operation occupies exactly
//!   one row;
//! * **dependence constraints** — either the *traditional* form (Ineq. 4)
//!   or the *0-1-structured* form (Ineq. 20), chosen by [`DepStyle`];
//! * **resource constraints** (Ineq. 5) — MRT packing respects the machine.
//!
//! Secondary objectives (register requirements, buffers, lifetimes) add
//! *kill pseudo-operations* per virtual register; see [`objective`].

pub mod dependence;
pub mod objective;

use optimod_ddg::{Loop, OpId};
use optimod_ilp::{LinExpr, Model, RowTag, SolveOutcome, VarId};
use optimod_machine::Machine;

use crate::error::ScheduleError;
use crate::mii::asap_times;
use crate::schedule::Schedule;

/// Which dependence-constraint formulation to emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DepStyle {
    /// Inequality (4): row numbers weighted by `r`, stages by `II`.
    Traditional,
    /// Inequality (20): the paper's 0-1-structured contribution (default).
    #[default]
    Structured,
}

/// Secondary objective minimized among all schedules of the given `II`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Objective {
    /// No objective — accept the first feasible integral schedule (the
    /// paper's *NoObj* scheduler).
    #[default]
    FirstFeasible,
    /// Minimize MaxLive, the exact register requirement (*MinReg*).
    MinMaxLive,
    /// Minimize buffers, registers reserved in multiples of `II`
    /// (*MinBuff*).
    MinBuffers,
    /// Minimize the cumulative register lifetime (*MinLife*).
    MinCumLifetime,
    /// Minimize the schedule length of one iteration (extension; mentioned
    /// in the paper's introduction as a common secondary objective).
    MinSchedLength,
}

impl Objective {
    /// Whether this objective requires kill pseudo-operations.
    pub fn needs_kills(self, style: DepStyle) -> bool {
        match self {
            Objective::FirstFeasible | Objective::MinSchedLength => false,
            Objective::MinMaxLive | Objective::MinBuffers => true,
            // The traditional MinLife formulation (after [16]) bounds
            // per-use lifetimes directly; the structured one re-weights the
            // kill-based live counts.
            Objective::MinCumLifetime => style == DepStyle::Structured,
        }
    }
}

/// Formulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct FormulationConfig {
    /// Dependence-constraint style.
    pub dep_style: DepStyle,
    /// Secondary objective.
    pub objective: Objective,
    /// Extra schedule length allowed beyond the dependence-height minimum
    /// (the paper uses 20 cycles "to achieve schedules with high transient
    /// performance").
    pub sched_len_slack: u32,
    /// Hard register-file constraint: only schedules with
    /// `MaxLive <= limit` are feasible. An extension toward the
    /// register-file-aware scheduling the paper's introduction motivates
    /// ("the size of the register files"); composes with any objective.
    pub max_live_limit: Option<u32>,
}

impl Default for FormulationConfig {
    fn default() -> Self {
        FormulationConfig {
            dep_style: DepStyle::Structured,
            objective: Objective::FirstFeasible,
            sched_len_slack: 20,
            max_live_limit: None,
        }
    }
}

/// A compiled formulation: the ILP model plus the variable maps needed to
/// recover a schedule or pin parts of it.
#[derive(Debug, Clone)]
pub struct BuiltModel {
    /// The integer program.
    pub model: Model,
    /// Initiation interval the model was built for.
    pub ii: u32,
    /// Number of stages allowed (`k` bounds are `[0, num_stages-1]`).
    pub num_stages: i64,
    /// `a[op][row]` binaries.
    pub a: Vec<Vec<VarId>>,
    /// `k[op]` stage integers.
    pub k: Vec<VarId>,
    /// `kill_row[vreg][row]` binaries (empty unless the objective needs
    /// kills).
    pub kill_row: Vec<Vec<VarId>>,
    /// `kill_stage[vreg]` integers (empty unless the objective needs
    /// kills).
    pub kill_stage: Vec<VarId>,
    /// The MaxLive variable for [`Objective::MinMaxLive`].
    pub max_live_var: Option<VarId>,
}

impl BuiltModel {
    /// The analyzer's view of this model: the variable-to-operation mapping
    /// [`optimod_analyze::presolve`] needs alongside the raw [`Model`].
    pub fn analyzer_context(&self) -> optimod_analyze::IlpContext<'_> {
        optimod_analyze::IlpContext {
            ii: self.ii,
            num_stages: self.num_stages,
            a: &self.a,
            k: &self.k,
        }
    }

    /// Recovers the concrete schedule from a solved model.
    ///
    /// # Panics
    ///
    /// Panics if `out` carries no solution or the solution does not decode
    /// into a schedule; use [`BuiltModel::try_extract_schedule`] for a
    /// non-panicking variant.
    pub fn extract_schedule(&self, out: &SolveOutcome) -> Schedule {
        match self.try_extract_schedule(out) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Recovers the concrete schedule from a solved model, reporting a
    /// no-solution outcome or an undecodable assignment as a typed error
    /// instead of panicking.
    pub fn try_extract_schedule(&self, out: &SolveOutcome) -> Result<Schedule, ScheduleError> {
        if !out.status.has_solution() {
            return Err(ScheduleError::MalformedSolution {
                detail: format!("no solution available (status: {})", out.status),
            });
        }
        let ii = self.ii as i64;
        let mut times = Vec::with_capacity(self.a.len());
        for (i, (rows, &k)) in self.a.iter().zip(&self.k).enumerate() {
            let row = rows
                .iter()
                .position(|&v| out.value(v) > 0.5)
                .ok_or_else(|| ScheduleError::MalformedSolution {
                    detail: format!("no MRT row selected for op{i} (assignment violated)"),
                })?;
            times.push(out.int_value(k) * ii + row as i64);
        }
        Ok(Schedule::new(self.ii, times))
    }

    /// Pins the MRT rows of every operation to those of `s` (used by the
    /// ILP-optimal stage-scheduling ablation: rows fixed, stages free).
    ///
    /// # Panics
    ///
    /// Panics if `s` has a different `II` than the model.
    pub fn fix_rows(&mut self, s: &Schedule) {
        assert_eq!(s.ii(), self.ii, "schedule II differs from model II");
        for (i, rows) in self.a.iter().enumerate() {
            let row = s.row(OpId::from_index(i)) as usize;
            for (r, &v) in rows.iter().enumerate() {
                let fixed = if r == row { 1.0 } else { 0.0 };
                self.model.set_bounds(v, fixed, fixed);
            }
        }
    }
}

/// Builds the ILP for scheduling `l` on `machine` at the given `ii`.
///
/// Returns `None` when `ii` is below the recurrence bound (no schedule of
/// any length exists, so no finite stage count can be chosen).
pub fn build_model(
    l: &Loop,
    machine: &Machine,
    ii: u32,
    cfg: &FormulationConfig,
) -> Option<BuiltModel> {
    assert!(ii > 0, "II must be positive");
    let asap = asap_times(l, ii)?;
    let min_len = asap.iter().copied().max().unwrap_or(0) + 1;
    let max_len = min_len + cfg.sched_len_slack as i64;
    let num_stages = max_len.div_euclid(ii as i64) + 1;

    let n = l.num_ops();
    let mut model = Model::new();

    // Variables: a[op][row] binaries and k[op] stages.
    let a: Vec<Vec<VarId>> = (0..n)
        .map(|i| {
            (0..ii)
                .map(|r| model.bool_var(format!("a[{i}][{r}]")))
                .collect()
        })
        .collect();
    let k: Vec<VarId> = (0..n)
        .map(|i| model.int_var(0.0, (num_stages - 1) as f64, format!("k[{i}]")))
        .collect();

    // Assignment constraints (Eq. 1).
    for (i, rows) in a.iter().enumerate() {
        let before = model.num_constraints();
        model.add_eq(rows.iter().map(|&v| (v, 1.0)), 1.0, format!("assign[{i}]"));
        model.tag_rows_from(before, RowTag::Assignment(i as u32));
    }

    // Dependence constraints for every scheduling edge.
    for (ei, e) in l.edges().iter().enumerate() {
        let before = model.num_constraints();
        dependence::add_dependence(
            &mut model,
            cfg.dep_style,
            ii,
            (&a[e.from.index()], k[e.from.index()]),
            (&a[e.to.index()], k[e.to.index()]),
            e.latency,
            e.distance as i64,
            &format!("dep[{ei}]"),
        );
        model.tag_rows_from(before, RowTag::Dependence(ei as u32));
    }

    // Resource constraints (Ineq. 5). Following the paper, resources with a
    // single usage slot in the whole loop cannot conflict and are skipped;
    // a single operation with several usages of one resource *can* conflict
    // with its own copies from other iterations, so the criterion is the
    // total usage count, not the operation count.
    for q in machine.resources() {
        let mut slots: Vec<(usize, u32)> = Vec::new(); // (op, offset)
        for (i, op) in l.ops().iter().enumerate() {
            for &(r, c) in machine.usages(op.class) {
                if r == q {
                    slots.push((i, c));
                }
            }
        }
        if slots.len() < 2 {
            continue;
        }
        let cap = machine.resource_count(q) as f64;
        for r in 0..ii as i64 {
            let mut expr = LinExpr::new();
            for &(i, c) in &slots {
                let row = (r - c as i64).rem_euclid(ii as i64) as usize;
                expr.add_term(a[i][row], 1.0);
            }
            let before = model.num_constraints();
            model.add_le(expr, cap, format!("res[{}][{r}]", machine.resource_name(q)));
            model.tag_rows_from(
                before,
                RowTag::Resource {
                    resource: q.index() as u32,
                    row: r as u32,
                },
            );
        }
    }

    let mut built = BuiltModel {
        model,
        ii,
        num_stages,
        a,
        k,
        kill_row: Vec::new(),
        kill_stage: Vec::new(),
        max_live_var: None,
    };

    let before = built.model.num_constraints();
    objective::install(&mut built, l, cfg);
    built.model.tag_rows_from(before, RowTag::Objective);
    Some(built)
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimod_ddg::kernels;
    use optimod_ilp::SolveStatus;
    use optimod_machine::example_3fu;

    fn solve_figure1(style: DepStyle) -> (BuiltModel, SolveOutcome) {
        let m = example_3fu();
        let l = kernels::figure1(&m);
        let cfg = FormulationConfig {
            dep_style: style,
            ..Default::default()
        };
        let built = build_model(&l, &m, 2, &cfg).expect("II=2 >= RecMII");
        let out = built.model.solve();
        (built, out)
    }

    #[test]
    fn figure1_feasible_at_ii2_traditional() {
        let m = example_3fu();
        let l = kernels::figure1(&m);
        let (built, out) = solve_figure1(DepStyle::Traditional);
        assert_eq!(out.status, SolveStatus::Optimal);
        let s = built.extract_schedule(&out);
        assert_eq!(s.validate(&l, &m), None);
    }

    #[test]
    fn figure1_feasible_at_ii2_structured() {
        let m = example_3fu();
        let l = kernels::figure1(&m);
        let (built, out) = solve_figure1(DepStyle::Structured);
        assert_eq!(out.status, SolveStatus::Optimal);
        let s = built.extract_schedule(&out);
        assert_eq!(s.validate(&l, &m), None);
    }

    #[test]
    fn figure1_infeasible_at_ii1() {
        // 5 ops, 3 FUs: II=1 cannot pack the MRT.
        let m = example_3fu();
        let l = kernels::figure1(&m);
        for style in [DepStyle::Traditional, DepStyle::Structured] {
            let cfg = FormulationConfig {
                dep_style: style,
                ..Default::default()
            };
            let built = build_model(&l, &m, 1, &cfg).unwrap();
            let out = built.model.solve();
            assert_eq!(out.status, SolveStatus::Infeasible, "{style:?}");
        }
    }

    #[test]
    fn rows_carry_provenance_tags() {
        let m = example_3fu();
        let l = kernels::figure1(&m);
        let cfg = FormulationConfig {
            objective: Objective::MinMaxLive,
            ..Default::default()
        };
        let built = build_model(&l, &m, 2, &cfg).unwrap();
        let (mut assign, mut dep, mut res, mut obj) = (0usize, 0usize, 0usize, 0usize);
        for row in built.model.rows() {
            match row.tag {
                RowTag::Assignment(_) => {
                    assign += 1;
                    assert!(row.name.starts_with("assign["), "{}", row.name);
                }
                RowTag::Dependence(_) => {
                    dep += 1;
                    assert!(row.name.starts_with("dep["), "{}", row.name);
                }
                RowTag::Resource { .. } => {
                    res += 1;
                    assert!(row.name.starts_with("res["), "{}", row.name);
                }
                RowTag::Objective => obj += 1,
                RowTag::Untagged => panic!("builder left row {} untagged", row.name),
            }
        }
        assert_eq!(assign, l.num_ops());
        assert!(dep > 0 && res > 0 && obj > 0);
    }

    #[test]
    fn below_recmii_yields_no_model() {
        let m = example_3fu();
        let l = kernels::lfk5_tridiag(&m); // RecMII 5
        let cfg = FormulationConfig::default();
        assert!(build_model(&l, &m, 4, &cfg).is_none());
        assert!(build_model(&l, &m, 5, &cfg).is_some());
    }

    #[test]
    fn formulation_sizes_grow_with_style() {
        // Structured emits II dependence rows per edge; traditional emits 1.
        let m = example_3fu();
        let l = kernels::lfk1_hydro(&m);
        let t = build_model(&l, &m, 3, &FormulationConfig::default()).unwrap();
        let trad = build_model(
            &l,
            &m,
            3,
            &FormulationConfig {
                dep_style: DepStyle::Traditional,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(t.model.num_constraints() > trad.model.num_constraints());
        assert_eq!(t.model.num_vars(), trad.model.num_vars());
    }
}
