//! Secondary-objective formulations: register requirements (MaxLive),
//! buffers, cumulative lifetimes, schedule length.
//!
//! # Kill pseudo-operations
//!
//! Objectives that measure register lifetimes add, per virtual register
//! `v`, a *kill pseudo-operation* with row binaries `κ[v][r]` and stage
//! `kk_v`, constrained to issue no earlier than the definition and every
//! use (`time(kill) >= time(use) + dist·II`, expressed as a dependence
//! pseudo-edge with latency 0 and distance `-dist` in whichever style the
//! formulation uses). Minimization presses the kill onto the last use, so
//! the lifetime `[time(def), time(kill)]` is exact at the optimum.
//!
//! # Exact per-row live counts
//!
//! Splitting the lifetime into whole `II`-wraps plus a cyclic row window,
//! the number of instances of `v` live in row `r` is *exactly*
//!
//! ```text
//! live(v, r) = kk_v − k_def + Σ_{z=0}^{r} a[z][def] − Σ_{z=0}^{r−1} κ[v][z]
//! ```
//!
//! (the window-wrap indicator cancels between the two cumulative sums; see
//! DESIGN.md §4.2). Every term is ±1 on a distinct variable, so the MaxLive
//! rows `Σ_v live(v,r) <= MaxLive` are 0-1-structured — our reconstruction
//! of the formulation of Eichenberger, Davidson & Abraham (ICS'95, the
//! paper's reference \[4\]).
//!
//! # Buffers
//!
//! A lifetime spanning `Q` full wraps plus a window of `E+1` rows needs
//! `Q+1 = kk − k_def − wrap + 1` buffers. The structured form (after DuPont
//! de Dinechin, reference \[15\]) pins the binary `wrap_v` with the window
//! inequalities `0 <= Σ_{z<=r} a[z][def] − Σ_{z<r} κ[v][z] + wrap_v <= 1`;
//! the traditional form (Govindarajan et al., reference \[7\]) instead uses
//! `b_v·II >= time(kill) − time(def) + 1` with its `II`-sized coefficient.

use optimod_ddg::Loop;
use optimod_ilp::{LinExpr, Sense, VarId};

use super::{dependence, BuiltModel, DepStyle, FormulationConfig, Objective};

/// Installs the configured objective (and any kill machinery) into `built`.
pub fn install(built: &mut BuiltModel, l: &Loop, cfg: &FormulationConfig) {
    if cfg.objective.needs_kills(cfg.dep_style) || cfg.max_live_limit.is_some() {
        add_kill_nodes(built, l, cfg.dep_style);
    }
    match cfg.objective {
        Objective::FirstFeasible => {}
        Objective::MinMaxLive => install_max_live(built, l),
        Objective::MinBuffers => match cfg.dep_style {
            DepStyle::Structured => install_buffers_structured(built, l),
            DepStyle::Traditional => install_buffers_traditional(built, l),
        },
        Objective::MinCumLifetime => match cfg.dep_style {
            DepStyle::Structured => install_lifetime_structured(built, l),
            DepStyle::Traditional => install_lifetime_traditional(built, l),
        },
        Objective::MinSchedLength => install_sched_length(built, l),
    }
    if let Some(limit) = cfg.max_live_limit {
        install_max_live_limit(built, l, limit);
    }
}

/// Caps the register requirement: when a MaxLive variable exists its upper
/// bound is tightened; otherwise the per-row live-count constraints are
/// emitted against the constant limit.
fn install_max_live_limit(built: &mut BuiltModel, l: &Loop, limit: u32) {
    if let Some(ml) = built.max_live_var {
        let ub = built.model.ub(ml).min(limit as f64);
        let lb = built.model.lb(ml).min(ub);
        built.model.set_bounds(ml, lb, ub);
        return;
    }
    for r in 0..built.ii as usize {
        let mut expr = LinExpr::new();
        for v in 0..l.vregs().len() {
            expr += live_expr(built, l, v, r);
        }
        built
            .model
            .add_le(expr, limit as f64, format!("reg-limit[{r}]"));
    }
}

/// Stage upper bound for the kill of `v`: the defining op's last possible
/// stage plus the largest use distance.
fn kill_stage_bound(built: &BuiltModel, l: &Loop, v: usize) -> i64 {
    let max_dist = l.vregs()[v]
        .uses
        .iter()
        .map(|u| u.distance as i64)
        .max()
        .unwrap_or(0);
    built.num_stages - 1 + max_dist
}

fn add_kill_nodes(built: &mut BuiltModel, l: &Loop, style: DepStyle) {
    let ii = built.ii;
    for (v, vr) in l.vregs().iter().enumerate() {
        let rows: Vec<VarId> = (0..ii)
            .map(|r| built.model.bool_var(format!("kill[{v}][{r}]")))
            .collect();
        let kk = built.model.int_var(
            0.0,
            kill_stage_bound(built, l, v) as f64,
            format!("kkill[{v}]"),
        );
        built.model.add_eq(
            rows.iter().map(|&x| (x, 1.0)),
            1.0,
            format!("kill-assign[{v}]"),
        );
        // Kill at or after the definition.
        let d = vr.def.index();
        dependence::add_dependence(
            &mut built.model,
            style,
            ii,
            (&built.a[d], built.k[d]),
            (&rows, kk),
            0,
            0,
            &format!("kill-def[{v}]"),
        );
        // Kill at or after every use: time(kill) >= time(use) + dist*II,
        // i.e. an edge with latency 0 and distance -dist.
        for (ui, u) in vr.uses.iter().enumerate() {
            let uop = u.op.index();
            dependence::add_dependence(
                &mut built.model,
                style,
                ii,
                (&built.a[uop], built.k[uop]),
                (&rows, kk),
                0,
                -(u.distance as i64),
                &format!("kill-use[{v}][{ui}]"),
            );
        }
        built.kill_row.push(rows);
        built.kill_stage.push(kk);
    }
}

/// `live(v, r)` as a linear expression (see module docs).
fn live_expr(built: &BuiltModel, l: &Loop, v: usize, r: usize) -> LinExpr {
    let vr = &l.vregs()[v];
    let d = vr.def.index();
    let mut e = LinExpr::new();
    e.add_term(built.kill_stage[v], 1.0);
    e.add_term(built.k[d], -1.0);
    for z in 0..=r {
        e.add_term(built.a[d][z], 1.0);
    }
    for z in 0..r {
        e.add_term(built.kill_row[v][z], -1.0);
    }
    e
}

fn install_max_live(built: &mut BuiltModel, l: &Loop) {
    let ub: i64 = (0..l.vregs().len())
        .map(|v| kill_stage_bound(built, l, v) + 1)
        .sum();
    let ml = built.model.int_var(0.0, ub.max(0) as f64, "max-live");
    for r in 0..built.ii as usize {
        let mut expr = LinExpr::new();
        for v in 0..l.vregs().len() {
            expr += live_expr(built, l, v, r);
        }
        expr.add_term(ml, -1.0);
        built.model.add_le(expr, 0.0, format!("maxlive[{r}]"));
    }
    built
        .model
        .set_objective(Sense::Minimize, LinExpr::term(ml, 1.0));
    built.max_live_var = Some(ml);
}

fn install_buffers_structured(built: &mut BuiltModel, l: &Loop) {
    let mut obj = LinExpr::new();
    for (v, vr) in l.vregs().iter().enumerate() {
        let d = vr.def.index();
        let wrap = built.model.bool_var(format!("wrap[{v}]"));
        // Window inequalities pin `wrap` to "kill row < def row".
        for r in 0..built.ii as usize {
            let mut win = LinExpr::new();
            for z in 0..=r {
                win.add_term(built.a[d][z], 1.0);
            }
            for z in 0..r {
                win.add_term(built.kill_row[v][z], -1.0);
            }
            win.add_term(wrap, 1.0);
            built
                .model
                .add_ge(win.clone(), 0.0, format!("win-lo[{v}][{r}]"));
            built.model.add_le(win, 1.0, format!("win-hi[{v}][{r}]"));
        }
        // buffers(v) = kk - k_def - wrap + 1
        obj.add_term(built.kill_stage[v], 1.0);
        obj.add_term(built.k[d], -1.0);
        obj.add_term(wrap, -1.0);
        obj.add_constant(1.0);
    }
    built.model.set_objective(Sense::Minimize, obj);
}

fn install_buffers_traditional(built: &mut BuiltModel, l: &Loop) {
    let ii = built.ii as f64;
    let mut obj = LinExpr::new();
    for (v, vr) in l.vregs().iter().enumerate() {
        let d = vr.def.index();
        let ub = kill_stage_bound(built, l, v) + 2;
        let b = built.model.int_var(1.0, ub as f64, format!("buf[{v}]"));
        // b*II >= time(kill) - time(def) + 1, with times expanded into
        // row-weighted binaries and II-weighted stages (not 0-1-structured).
        let mut e = LinExpr::term(b, ii);
        for r in 0..built.ii as usize {
            e.add_term(built.kill_row[v][r], -(r as f64));
            e.add_term(built.a[d][r], r as f64);
        }
        e.add_term(built.kill_stage[v], -ii);
        e.add_term(built.k[d], ii);
        built.model.add_ge(e, 1.0, format!("buf-cover[{v}]"));
        obj.add_term(b, 1.0);
    }
    built.model.set_objective(Sense::Minimize, obj);
}

fn install_lifetime_structured(built: &mut BuiltModel, l: &Loop) {
    // Cumulative lifetime = Σ_v Σ_r live(v, r): re-weight the same live
    // counts; constraints are unchanged, so this stays 0-1-structured.
    let ii = built.ii as i64;
    let mut obj = LinExpr::new();
    for (v, vr) in l.vregs().iter().enumerate() {
        let d = vr.def.index();
        obj.add_term(built.kill_stage[v], ii as f64);
        obj.add_term(built.k[d], -(ii as f64));
        for z in 0..built.ii as i64 {
            obj.add_term(built.a[d][z as usize], (ii - z) as f64);
            obj.add_term(built.kill_row[v][z as usize], -((ii - 1 - z) as f64));
        }
    }
    built.model.set_objective(Sense::Minimize, obj);
}

fn install_lifetime_traditional(built: &mut BuiltModel, l: &Loop) {
    // After reference [16]: one lifetime variable per register bounded
    // below by each use; no kill nodes. Measures `time(last use) -
    // time(def)`; the reported cumulative lifetime adds one reserved cycle
    // per register, a constant that does not affect the argmin.
    let ii = built.ii as i64;
    let mut obj = LinExpr::new();
    for (v, vr) in l.vregs().iter().enumerate() {
        let d = vr.def.index();
        let ub = (kill_stage_bound(built, l, v) + 2) * ii;
        let lv = built.model.int_var(0.0, ub as f64, format!("life[{v}]"));
        for (ui, u) in vr.uses.iter().enumerate() {
            let uop = u.op.index();
            // L_v >= time(use) + dist*II - time(def)
            let mut e = LinExpr::term(lv, 1.0);
            for r in 0..built.ii as usize {
                e.add_term(built.a[uop][r], -(r as f64));
                e.add_term(built.a[d][r], r as f64);
            }
            e.add_term(built.k[uop], -(ii as f64));
            e.add_term(built.k[d], ii as f64);
            built.model.add_ge(
                e,
                (u.distance as i64 * ii) as f64,
                format!("life[{v}][{ui}]"),
            );
        }
        obj.add_term(lv, 1.0);
    }
    built.model.set_objective(Sense::Minimize, obj);
}

fn install_sched_length(built: &mut BuiltModel, l: &Loop) {
    let ii = built.ii as i64;
    let t = built
        .model
        .int_var(0.0, (built.num_stages * ii) as f64, "makespan");
    for i in 0..l.num_ops() {
        let mut e = LinExpr::term(t, 1.0);
        for r in 0..built.ii as usize {
            e.add_term(built.a[i][r], -(r as f64));
        }
        e.add_term(built.k[i], -(ii as f64));
        built.model.add_ge(e, 0.0, format!("span[{i}]"));
    }
    built
        .model
        .set_objective(Sense::Minimize, LinExpr::term(t, 1.0));
}
