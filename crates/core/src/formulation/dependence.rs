//! The two dependence-constraint formulations.
//!
//! A scheduling edge `(i, j)` with latency `l` and iteration distance `w`
//! requires `time(j) + w*II - time(i) >= l` where
//! `time(op) = k_op * II + row_op`.
//!
//! * [`DepStyle::Traditional`] emits the single Inequality (4):
//!
//!   ```text
//!   Σ_r r·(a[r][j] − a[r][i]) + (k_j − k_i)·II  >=  l − w·II
//!   ```
//!
//!   whose coefficients grow with `r` and `II` — LP-weak, hence many
//!   branch-and-bound nodes.
//!
//! * [`DepStyle::Structured`] emits the paper's Inequality (20), one row per
//!   MRT row `r`:
//!
//!   ```text
//!   Σ_{z=r}^{II−1} a[z][i] + Σ_{z=0}^{(r+l−1) mod II} a[z][j] + k_i − k_j
//!        <=  w − ⌊(r + l − 1)/II⌋ + 1
//!   ```
//!
//!   Every variable appears at most once with a ±1 coefficient
//!   (Definition 1, *0-1-structured*), yielding much tighter relaxations.
//!
//! Both forms accept any integer latency (zero and negative latencies are
//! used by kill pseudo-edges and anti-dependences) and any integer distance
//! (kill edges use negative distances to express `time(kill) >=
//! time(use) + dist·II`); euclidean `div`/`mod` keep the row/stage split
//! correct for negative values.

use optimod_ilp::{LinExpr, Model, VarId};

use super::DepStyle;

/// Emits the dependence constraint(s) for one edge into `model`.
///
/// `from`/`to` are the `(row binaries, stage var)` pairs of the two
/// endpoints (which may be kill pseudo-operations).
#[allow(clippy::too_many_arguments)]
pub fn add_dependence(
    model: &mut Model,
    style: DepStyle,
    ii: u32,
    from: (&[VarId], VarId),
    to: (&[VarId], VarId),
    latency: i64,
    distance: i64,
    name: &str,
) {
    match style {
        DepStyle::Traditional => add_traditional(model, ii, from, to, latency, distance, name),
        DepStyle::Structured => add_structured(model, ii, from, to, latency, distance, name),
    }
}

fn add_traditional(
    model: &mut Model,
    ii: u32,
    (a_from, k_from): (&[VarId], VarId),
    (a_to, k_to): (&[VarId], VarId),
    latency: i64,
    distance: i64,
    name: &str,
) {
    let ii = ii as i64;
    let mut expr = LinExpr::new();
    for (r, (&af, &at)) in a_from.iter().zip(a_to).enumerate() {
        let r = r as f64;
        expr.add_term(at, r);
        expr.add_term(af, -r);
    }
    expr.add_term(k_to, ii as f64);
    expr.add_term(k_from, -(ii as f64));
    model.add_ge(expr, (latency - distance * ii) as f64, name);
}

fn add_structured(
    model: &mut Model,
    ii: u32,
    (a_from, k_from): (&[VarId], VarId),
    (a_to, k_to): (&[VarId], VarId),
    latency: i64,
    distance: i64,
    name: &str,
) {
    let ii_i = ii as i64;
    for r in 0..ii_i {
        let x = r + latency - 1;
        let forbidden_row = x.rem_euclid(ii_i);
        let stage_carry = x.div_euclid(ii_i);
        let mut expr = LinExpr::new();
        // Rows r..II-1 of the producer.
        for z in r..ii_i {
            expr.add_term(a_from[z as usize], 1.0);
        }
        // Rows 0..=(r+l-1 mod II) of the consumer.
        for z in 0..=forbidden_row {
            expr.add_term(a_to[z as usize], 1.0);
        }
        expr.add_term(k_from, 1.0);
        expr.add_term(k_to, -1.0);
        model.add_le(
            expr,
            (distance - stage_carry + 1) as f64,
            format!("{name}[r{r}]"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimod_ilp::Model;

    /// Builds a two-op model with given II and stage bound and returns
    /// whether the (time_from, time_to) point satisfies the emitted
    /// constraints.
    fn accepts(
        style: DepStyle,
        ii: u32,
        stages: i64,
        latency: i64,
        distance: i64,
        t_from: i64,
        t_to: i64,
    ) -> bool {
        let mut model = Model::new();
        let a_from: Vec<_> = (0..ii).map(|r| model.bool_var(format!("af{r}"))).collect();
        let a_to: Vec<_> = (0..ii).map(|r| model.bool_var(format!("at{r}"))).collect();
        let k_from = model.int_var(0.0, stages as f64, "kf");
        let k_to = model.int_var(0.0, stages as f64, "kt");
        model.add_eq(a_from.iter().map(|&v| (v, 1.0)), 1.0, "as-f");
        model.add_eq(a_to.iter().map(|&v| (v, 1.0)), 1.0, "as-t");
        add_dependence(
            &mut model,
            style,
            ii,
            (&a_from, k_from),
            (&a_to, k_to),
            latency,
            distance,
            "e",
        );
        // Evaluate at the concrete point.
        let mut values = vec![0.0; model.num_vars()];
        let ii = ii as i64;
        values[a_from[t_from.rem_euclid(ii) as usize].index()] = 1.0;
        values[a_to[t_to.rem_euclid(ii) as usize].index()] = 1.0;
        values[k_from.index()] = t_from.div_euclid(ii) as f64;
        values[k_to.index()] = t_to.div_euclid(ii) as f64;
        model.check_feasible(&values, 1e-9).is_none()
    }

    /// Exhaustive agreement of both styles with the ground truth
    /// `t_to + w*II - t_from >= l` over a grid of parameters.
    #[test]
    fn both_styles_match_ground_truth_exhaustively() {
        for ii in 1..=4u32 {
            for latency in -2..=5i64 {
                for distance in -2..=2i64 {
                    for t_from in 0..(3 * ii as i64) {
                        for t_to in 0..(3 * ii as i64) {
                            let truth = t_to + distance * ii as i64 - t_from >= latency;
                            for style in [DepStyle::Traditional, DepStyle::Structured] {
                                let got = accepts(style, ii, 6, latency, distance, t_from, t_to);
                                assert_eq!(
                                    got, truth,
                                    "style={style:?} ii={ii} l={latency} w={distance} \
                                     t_from={t_from} t_to={t_to}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn structured_emits_ii_rows_per_edge() {
        let mut model = Model::new();
        let ii = 5u32;
        let a_from: Vec<_> = (0..ii).map(|r| model.bool_var(format!("af{r}"))).collect();
        let a_to: Vec<_> = (0..ii).map(|r| model.bool_var(format!("at{r}"))).collect();
        let k_from = model.int_var(0.0, 4.0, "kf");
        let k_to = model.int_var(0.0, 4.0, "kt");
        let before = model.num_constraints();
        add_structured(&mut model, ii, (&a_from, k_from), (&a_to, k_to), 2, 0, "e");
        assert_eq!(model.num_constraints() - before, ii as usize);
    }
}
