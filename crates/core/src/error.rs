//! Typed errors for the scheduling pipeline.
//!
//! Every abnormal path of [`OptimalScheduler`](crate::OptimalScheduler) —
//! malformed input, solver instability, worker panics, solution extraction
//! failures — surfaces as a [`ScheduleError`] carried in
//! [`LoopResult::error`](crate::LoopResult::error) instead of unwinding
//! through the caller. The corpus driver and CLI render them into per-loop
//! diagnostics.

use std::error::Error;
use std::fmt;

use optimod_ddg::LoopError;
use optimod_ilp::SolveError;
use optimod_verify::CertError;

/// An abnormal condition in the scheduling pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// The input dependence graph failed [`optimod_ddg::Loop::validate`].
    InvalidLoop(LoopError),
    /// The ILP solver reported an abnormal condition (numerical
    /// instability, a worker panic).
    Solver(SolveError),
    /// A solver outcome claimed a solution that does not decode into a
    /// schedule (e.g. no row binary set for an operation) — a solver or
    /// formulation bug, reported instead of panicking.
    MalformedSolution {
        /// What was wrong with the claimed solution.
        detail: String,
    },
    /// The extracted schedule failed post-hoc validation against the loop
    /// and machine (dependence or resource violation).
    InvalidSchedule {
        /// The violated constraint, as reported by
        /// [`Schedule::validate`](crate::Schedule::validate).
        detail: String,
    },
    /// The exact-arithmetic certifier refused the extracted schedule or
    /// the solver's claims about it (constraint violation, objective or
    /// bound inconsistency, II below the recomputed MinII). The typed
    /// cause names the offending edge, row, or resource.
    Certification(CertError),
    /// The portfolio's two backends returned contradictory *certified*
    /// verdicts for the same tentative `II`: one side's schedule passed
    /// exact-arithmetic certification while the other side proved the very
    /// same instance infeasible. This is a hard bug in one of the backends
    /// (or the CNF encoder between them) — never a legitimate outcome — so
    /// the run fails loudly instead of picking a side.
    BackendDisagreement {
        /// The tentative `II` both backends decided.
        ii: u32,
        /// Which backend said what (human-readable).
        detail: String,
        /// A minimized reproduction of the disagreeing instance in the
        /// textual loop format, ready to write to a `.loop` file and replay
        /// with `optimod --portfolio`.
        repro: String,
    },
    /// The loop's recurrence-constrained MII exceeds
    /// [`MAX_SCHEDULABLE_II`](crate::scheduler::MAX_SCHEDULABLE_II): the
    /// row binaries of the ILP grow linearly with `II`, so such a loop
    /// cannot be formulated (and no realistic pipeline wants an initiation
    /// interval that long).
    MiiOverflow {
        /// The combined MII lower bound (saturated at `u32::MAX`).
        mii: u32,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::InvalidLoop(e) => write!(f, "invalid loop: {e}"),
            ScheduleError::Solver(e) => write!(f, "solver failure: {e}"),
            ScheduleError::MalformedSolution { detail } => {
                write!(f, "malformed solver solution: {detail}")
            }
            ScheduleError::InvalidSchedule { detail } => {
                write!(f, "extracted schedule is invalid: {detail}")
            }
            ScheduleError::Certification(e) => write!(f, "certification failed: {e}"),
            ScheduleError::BackendDisagreement { ii, detail, .. } => write!(
                f,
                "cross-backend disagreement at II {ii}: {detail} \
                 (a minimized repro accompanies this error)"
            ),
            ScheduleError::MiiOverflow { mii } => write!(
                f,
                "recurrence-constrained MII {mii} exceeds the schedulable ceiling {}",
                crate::scheduler::MAX_SCHEDULABLE_II
            ),
        }
    }
}

impl Error for ScheduleError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScheduleError::InvalidLoop(e) => Some(e),
            ScheduleError::Solver(e) => Some(e),
            ScheduleError::Certification(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LoopError> for ScheduleError {
    fn from(e: LoopError) -> Self {
        ScheduleError::InvalidLoop(e)
    }
}

impl From<SolveError> for ScheduleError {
    fn from(e: SolveError) -> Self {
        ScheduleError::Solver(e)
    }
}

impl From<CertError> for ScheduleError {
    fn from(e: CertError) -> Self {
        ScheduleError::Certification(e)
    }
}
