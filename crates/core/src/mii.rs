//! Minimum initiation interval bounds (MII = max(ResMII, RecMII)).
//!
//! The MII is a lower bound on the smallest II for which a modulo schedule
//! can exist (paper Section 2). It is *not* tight: complex reservation
//! patterns or resource/dependence interference can make the MII itself
//! infeasible, which is why the optimal scheduling framework (Section 3.4)
//! retries increasing II values.

use optimod_ddg::Loop;
use optimod_machine::Machine;

/// The two components of the minimum initiation interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mii {
    /// Resource-constrained lower bound.
    pub res_mii: u32,
    /// Recurrence-constrained lower bound.
    pub rec_mii: u32,
}

impl Mii {
    /// The combined lower bound (at least 1).
    pub fn value(self) -> u32 {
        self.res_mii.max(self.rec_mii).max(1)
    }
}

/// Computes the resource-constrained MII: for every resource type, the
/// total number of usage slots demanded per iteration divided by the number
/// of instances, rounded up.
pub fn res_mii(l: &Loop, machine: &Machine) -> u32 {
    let mut demand = vec![0u64; machine.num_resources()];
    for op in l.ops() {
        for &(r, _) in machine.usages(op.class) {
            demand[r.index()] += 1;
        }
    }
    machine
        .resources()
        .map(|r| {
            let d = demand[r.index()];
            let m = machine.resource_count(r) as u64;
            d.div_ceil(m) as u32
        })
        .max()
        .unwrap_or(0)
}

/// Computes the recurrence-constrained MII: the smallest `II` such that no
/// dependence cycle has positive total `latency - II * distance`.
///
/// Implemented as a binary search over `II`, testing each candidate with a
/// Bellman-Ford positive-cycle detection on edge weights `l - II*w`.
pub fn rec_mii(l: &Loop) -> u32 {
    if !l.has_recurrence() {
        return 0;
    }
    // Upper bound: any II at least the sum of positive latencies divided by
    // one (distance >= 1 on each cycle) is feasible.
    let hi: i64 = l
        .edges()
        .iter()
        .map(|e| e.latency.max(0))
        .sum::<i64>()
        .max(1);
    let mut lo: i64 = 0; // rec_mii > lo is maintained as "lo infeasible"? see loop
    let mut hi = hi;
    // Invariant: `hi` admits no positive cycle; find the smallest such II.
    debug_assert!(!has_positive_cycle(l, hi));
    while lo < hi {
        let mid = (lo + hi) / 2;
        if has_positive_cycle(l, mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    // Saturate rather than panic: validated loops bound each edge latency,
    // but a cycle can still sum past `u32::MAX`. The scheduler rejects any
    // MII above its practical ceiling with a typed error, so the exact
    // saturated value never reaches a solver.
    u32::try_from(lo).unwrap_or(u32::MAX)
}

/// True when the dependence graph contains a cycle of positive total weight
/// under `weight(e) = latency - II * distance`.
fn has_positive_cycle(l: &Loop, ii: i64) -> bool {
    let n = l.num_ops();
    // Longest-path Bellman-Ford from a virtual source connected to all
    // vertices with weight 0.
    let mut dist = vec![0i64; n];
    for _ in 0..n {
        let mut changed = false;
        for e in l.edges() {
            let w = e.latency - ii * e.distance as i64;
            let cand = dist[e.from.index()] + w;
            if cand > dist[e.to.index()] {
                dist[e.to.index()] = cand;
                changed = true;
            }
        }
        if !changed {
            return false;
        }
    }
    // Still relaxing after n rounds => positive cycle.
    for e in l.edges() {
        let w = e.latency - ii * e.distance as i64;
        if dist[e.from.index()] + w > dist[e.to.index()] {
            return true;
        }
    }
    false
}

/// Computes both MII components.
pub fn compute_mii(l: &Loop, machine: &Machine) -> Mii {
    Mii {
        res_mii: res_mii(l, machine),
        rec_mii: rec_mii(l),
    }
}

/// Earliest start times (ASAP) for a given `II`, from longest paths over
/// `l - II*w` weights. Returns `None` if `II < RecMII` (positive cycle).
///
/// The minimum schedule length at this `II` is `max(asap) + 1`.
pub fn asap_times(l: &Loop, ii: u32) -> Option<Vec<i64>> {
    let n = l.num_ops();
    let ii = ii as i64;
    let mut dist = vec![0i64; n];
    for round in 0..=n {
        let mut changed = false;
        for e in l.edges() {
            let w = e.latency - ii * e.distance as i64;
            let cand = dist[e.from.index()] + w;
            if cand > dist[e.to.index()] {
                dist[e.to.index()] = cand;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        if round == n {
            return None;
        }
    }
    Some(dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimod_ddg::kernels;
    use optimod_machine::{cydra_like, example_3fu, risc_scalar};

    #[test]
    fn figure1_mii_is_two() {
        // 5 ops on 3 FUs: ResMII = ceil(5/3) = 2; no recurrence.
        let m = example_3fu();
        let l = kernels::figure1(&m);
        let mii = compute_mii(&l, &m);
        assert_eq!(mii.res_mii, 2);
        assert_eq!(mii.rec_mii, 0);
        assert_eq!(mii.value(), 2);
    }

    #[test]
    fn scalar_machine_res_mii_equals_n() {
        let m = risc_scalar();
        let l = kernels::lfk1_hydro(&m);
        assert_eq!(res_mii(&l, &m) as usize, l.num_ops());
    }

    #[test]
    fn dot_product_rec_mii_is_fadd_latency() {
        let m = example_3fu();
        let l = kernels::dot_product(&m);
        // acc -> acc with latency 1 (FAdd) and distance 1 -> RecMII 1.
        assert_eq!(rec_mii(&l), 1);
    }

    #[test]
    fn tridiag_rec_mii_spans_two_ops() {
        let m = example_3fu();
        let l = kernels::lfk5_tridiag(&m);
        // Cycle: sub -> mul (l=1, FAdd) -> sub (l=4, FMul, dist 1):
        // total latency 5, distance 1 -> RecMII 5.
        assert_eq!(rec_mii(&l), 5);
    }

    #[test]
    fn pointer_chase_on_cydra() {
        let m = cydra_like();
        let l = kernels::pointer_chase(&m);
        // load (lat 6) -> addr (lat 1) -> load, distance 1 -> RecMII 7.
        assert_eq!(rec_mii(&l), 7);
    }

    #[test]
    fn divider_self_conflict_raises_res_mii() {
        let m = cydra_like();
        let l = kernels::divide_recurrence(&m);
        // A single FDiv occupies the lone divider for 6 cycles.
        assert!(res_mii(&l, &m) >= 6);
    }

    #[test]
    fn asap_lengths_monotone_in_ii() {
        let m = example_3fu();
        let l = kernels::lfk5_tridiag(&m);
        let t5 = asap_times(&l, 5).expect("RecMII is 5");
        assert!(asap_times(&l, 4).is_none());
        let t6 = asap_times(&l, 6).expect("larger II feasible");
        let len5 = t5.iter().max().unwrap();
        let len6 = t6.iter().max().unwrap();
        assert!(len6 <= len5);
    }

    #[test]
    fn acyclic_loop_has_zero_rec_mii() {
        let m = example_3fu();
        let l = kernels::lfk12_first_diff(&m);
        assert_eq!(rec_mii(&l), 0);
        let asap = asap_times(&l, 1).unwrap();
        assert!(asap.iter().all(|&t| t >= 0));
    }
}
