//! Scheduler-side wiring of the infeasibility explanation engine.
//!
//! [`optimod_analyze::explain_infeasible`] works on a `(Loop, Machine, II,
//! SlotDomains)` quadruple. This module supplies the quadruple the
//! scheduler actually searched — the slot domains come off the built (and,
//! when enabled, presolved) model, so presolve fixings show up as `OM202`
//! window groups — emits the `explain` trace phase, and attaches a
//! greedily minimized replayable `.loop` repro to the explanation,
//! reusing the portfolio's disagreement-repro machinery.

use std::collections::BTreeSet;
use std::time::Duration;

use optimod_analyze::{ExplainOptions, ExplainOutcome, Explanation};
use optimod_ddg::Loop;
use optimod_machine::Machine;
use optimod_sat::{encode, solve as sat_solve, EncodeOptions, SatLimits, SatOutcome, SlotDomains};
use optimod_trace::{Phase, TraceEvent};

use crate::formulation::{build_model, FormulationConfig, Objective};
use crate::portfolio::{rebuild, render_repro, slot_domains};
use crate::scheduler::SchedulerConfig;

/// Edge-count ceiling for the greedy repro minimizer, mirroring the
/// portfolio's: each candidate drop costs a bounded SAT re-check, so huge
/// graphs ship the unminimized repro rather than stalling the report.
const REPRO_EDGE_CAP: usize = 64;

/// Derives [`ExplainOptions`] from a scheduler configuration. The
/// explanation gets its own bounded wall-clock slice — by the time an
/// infeasibility proof lands the scheduler's budget is spent — but shares
/// the cooperative stop flag and worker count, so cancelling the schedule
/// cancels the explanation too.
pub fn explain_options(cfg: &SchedulerConfig) -> ExplainOptions {
    ExplainOptions {
        time_limit: cfg.limits.time_limit.min(Duration::from_secs(60)),
        stop: cfg.limits.stop.child(),
        threads: cfg.limits.resolve_threads(),
        ..ExplainOptions::default()
    }
}

/// Explains an infeasibility at `ii` under `cfg`-derived default budgets,
/// returning the explanation only when the engine actually produced one.
/// `Satisfiable` and `Budget` outcomes yield `None`: an infeasible result
/// without an explanation is still an infeasible result.
pub(crate) fn explain_infeasibility(
    l: &Loop,
    machine: &Machine,
    ii: u32,
    cfg: &SchedulerConfig,
) -> Option<Explanation> {
    match explain_at(l, machine, ii, cfg, &explain_options(cfg)) {
        ExplainOutcome::Explained(ex) => Some(ex),
        ExplainOutcome::Satisfiable | ExplainOutcome::Budget => None,
    }
}

/// Runs the full explanation pipeline at `ii`: recover the searched slot
/// domains, extract + minimize + certify the unsat core, attach the
/// minimized repro, and emit `explain_start` / `core_found` /
/// `core_minimized` trace events under the `explain` phase span.
pub fn explain_at(
    l: &Loop,
    machine: &Machine,
    ii: u32,
    cfg: &SchedulerConfig,
    opts: &ExplainOptions,
) -> ExplainOutcome {
    let trace = cfg.limits.trace.clone();
    let _span = trace.span(Phase::Explain);
    trace.emit(|| TraceEvent::ExplainStart { ii });
    let domains = searched_domains(l, machine, ii, cfg);
    match optimod_analyze::explain_infeasible(l, machine, ii, &domains, opts) {
        ExplainOutcome::Explained(mut ex) => {
            let (raw, min, certified) =
                (ex.raw_core_size as u64, ex.core.len() as u64, ex.certified);
            trace.emit(|| TraceEvent::CoreFound { ii, size: raw });
            trace.emit(|| TraceEvent::CoreMinimized {
                ii,
                from: raw,
                to: min,
                certified,
            });
            ex.repro = Some(minimize_repro(l, machine, ii, cfg, opts, &ex));
            ExplainOutcome::Explained(ex)
        }
        other => other,
    }
}

/// The slot domains the scheduler's search used at `ii`: stage bounds and
/// MRT-row binaries read off the built (and presolved, when enabled)
/// model. Below the RecMII no model exists; the fallback is an
/// unrestricted horizon generous enough that infeasibility is never an
/// artifact of the fallback itself.
fn searched_domains(l: &Loop, machine: &Machine, ii: u32, cfg: &SchedulerConfig) -> SlotDomains {
    let fcfg = FormulationConfig {
        dep_style: cfg.dep_style,
        objective: Objective::FirstFeasible,
        sched_len_slack: cfg.sched_len_slack,
        max_live_limit: cfg.register_limit,
    };
    if let Some(mut built) = build_model(l, machine, ii, &fcfg) {
        if cfg.presolve {
            let _ = optimod_analyze::presolve(
                &mut built.model,
                l,
                &optimod_analyze::IlpContext {
                    ii: built.ii,
                    num_stages: built.num_stages,
                    a: &built.a,
                    k: &built.k,
                },
                &cfg.presolve_options,
            );
        }
        return slot_domains(&built);
    }
    // No ASAP times exist at this II (a recurrence already exceeds it), so
    // mirror the formulation's horizon arithmetic over a latency sum that
    // dominates any longest path.
    let total_latency: i64 = l.edges().iter().map(|e| e.latency.max(0)).sum();
    let max_len = total_latency + i64::from(cfg.sched_len_slack) + 1;
    let num_stages = max_len.div_euclid(i64::from(ii)) + 1;
    SlotDomains::unrestricted(l.num_ops(), ii, num_stages)
}

/// Greedy repro minimizer: drop each dependence edge *not* named by the
/// core in turn, keeping the drop while the candidate stays infeasible at
/// `ii` under a bounded SAT re-check. Core edges are certified necessary
/// and are never candidates. The survivor renders as a replayable `.loop`
/// text with the explanation's headline in its header.
fn minimize_repro(
    l: &Loop,
    machine: &Machine,
    ii: u32,
    cfg: &SchedulerConfig,
    opts: &ExplainOptions,
    ex: &Explanation,
) -> String {
    let core_edges: BTreeSet<usize> = ex.core_edges().into_iter().collect();
    let mut keep = vec![true; l.edges().len()];
    if keep.len() <= REPRO_EDGE_CAP {
        for e in 0..keep.len() {
            if core_edges.contains(&e) {
                continue;
            }
            keep[e] = false;
            let still = rebuild(l, machine, "infeasibility-repro", &keep)
                .is_some_and(|cand| still_infeasible(&cand, machine, ii, cfg, opts));
            if !still {
                keep[e] = true;
            }
        }
    }
    let header = [
        "optimod infeasibility repro (minimized)".to_string(),
        format!(
            "loop {}: no modulo schedule exists at II={ii} ({} core group(s))",
            l.name(),
            ex.core.len()
        ),
        format!("infeasible II: {ii}"),
    ];
    match rebuild(l, machine, "infeasibility-repro", &keep) {
        Some(minimized) => render_repro(&minimized, machine, &header),
        // The rebuilt form should always validate (kept edges are a subset
        // of a validated loop's); fall back to the original rather than
        // failing the failure report.
        None => render_repro(l, machine, &header),
    }
}

/// Bounded re-check: is the candidate loop still infeasible at `ii` under
/// the same domain derivation the explanation used? A candidate whose
/// recurrence alone exceeds `ii` (no model builds) is infeasible without
/// solving anything.
fn still_infeasible(
    cand: &Loop,
    machine: &Machine,
    ii: u32,
    cfg: &SchedulerConfig,
    opts: &ExplainOptions,
) -> bool {
    let fcfg = FormulationConfig {
        dep_style: cfg.dep_style,
        objective: Objective::FirstFeasible,
        sched_len_slack: cfg.sched_len_slack,
        max_live_limit: cfg.register_limit,
    };
    if build_model(cand, machine, ii, &fcfg).is_none() {
        return true;
    }
    let domains = searched_domains(cand, machine, ii, cfg);
    let enc = encode(cand, machine, ii, &domains, &EncodeOptions::default());
    let limits = SatLimits {
        time_limit: Duration::from_secs(2).min(opts.time_limit),
        conflict_limit: 50_000,
        seed: opts.seed,
        stop: opts.stop.child(),
        ..SatLimits::default()
    };
    matches!(sat_solve(&enc.cnf, &limits).0, SatOutcome::Unsat)
}
