//! Rau's Iterative Modulo Scheduler (IMS).
//!
//! The heuristic the paper evaluates with its optimal schedulers (Section 5,
//! third experiment): operations are scheduled highest-height first; each
//! operation is placed at the first resource-feasible cycle within an
//! `II`-wide window past its dependence-earliest start, *displacing*
//! previously scheduled operations on conflict; a budget of `budget_ratio ×
//! N` placements bounds the effort before `II` is incremented.
//!
//! Reference: B. R. Rau, "Iterative Modulo Scheduling: An Algorithm for
//! Software Pipelining Loops", MICRO-27, 1994 (the paper's references \[3\]
//! and \[8\]).

use optimod_ddg::Loop;
use optimod_machine::Machine;

use crate::mii::compute_mii;
use crate::schedule::Schedule;

/// Tunables for the Iterative Modulo Scheduler.
#[derive(Debug, Clone, Copy)]
pub struct ImsConfig {
    /// Scheduling operations allowed per attempt, as a multiple of the
    /// loop's operation count (Rau suggests small constants; 6 is
    /// conservative).
    pub budget_ratio: u32,
    /// How far past the MII to escalate before giving up.
    pub max_ii_span: u32,
}

impl Default for ImsConfig {
    fn default() -> Self {
        ImsConfig {
            budget_ratio: 6,
            max_ii_span: 64,
        }
    }
}

/// Result of an IMS run.
#[derive(Debug, Clone)]
pub struct ImsResult {
    /// The valid schedule found.
    pub schedule: Schedule,
    /// Attempts (one per tentative II) used.
    pub attempts: u32,
}

/// Runs the Iterative Modulo Scheduler on `l` for `machine`.
///
/// Returns `None` only if no schedule was found within
/// `MII + max_ii_span` (which, for valid loops, essentially never happens:
/// at a large enough `II` the loop schedules sequentially).
pub fn ims_schedule(l: &Loop, machine: &Machine, cfg: &ImsConfig) -> Option<ImsResult> {
    let mii = compute_mii(l, machine).value();
    let budget = (l.num_ops() as u32)
        .saturating_mul(cfg.budget_ratio)
        .max(16);
    for (attempt, ii) in (mii..=mii + cfg.max_ii_span).enumerate() {
        if let Some(schedule) = try_ii(l, machine, ii, budget) {
            debug_assert_eq!(schedule.validate(l, machine), None);
            return Some(ImsResult {
                schedule,
                attempts: attempt as u32 + 1,
            });
        }
    }
    None
}

/// Height-based priority: longest `latency - II*distance` path to any leaf.
fn heights(l: &Loop, ii: i64) -> Vec<i64> {
    let n = l.num_ops();
    let mut h = vec![0i64; n];
    // Relax backwards; cycles are non-positive at II >= RecMII so this
    // converges within n rounds.
    for _ in 0..n {
        let mut changed = false;
        for e in l.edges() {
            let w = e.latency - ii * e.distance as i64;
            let cand = h[e.to.index()] + w;
            if cand > h[e.from.index()] {
                h[e.from.index()] = cand;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    h
}

struct Mrt<'a> {
    machine: &'a Machine,
    ii: i64,
    /// occupancy[resource][row]
    occupancy: Vec<Vec<u32>>,
}

impl<'a> Mrt<'a> {
    fn new(machine: &'a Machine, ii: u32) -> Self {
        Mrt {
            machine,
            ii: ii as i64,
            occupancy: (0..machine.num_resources())
                .map(|_| vec![0; ii as usize])
                .collect(),
        }
    }

    fn fits(&self, l: &Loop, op: usize, t: i64) -> bool {
        self.machine
            .usages(l.ops()[op].class)
            .iter()
            .all(|&(r, c)| {
                let row = (t + c as i64).rem_euclid(self.ii) as usize;
                self.occupancy[r.index()][row] < self.machine.resource_count(r)
            })
    }

    fn place(&mut self, l: &Loop, op: usize, t: i64) {
        for &(r, c) in self.machine.usages(l.ops()[op].class) {
            let row = (t + c as i64).rem_euclid(self.ii) as usize;
            self.occupancy[r.index()][row] += 1;
        }
    }

    fn remove(&mut self, l: &Loop, op: usize, t: i64) {
        for &(r, c) in self.machine.usages(l.ops()[op].class) {
            let row = (t + c as i64).rem_euclid(self.ii) as usize;
            debug_assert!(self.occupancy[r.index()][row] > 0);
            self.occupancy[r.index()][row] -= 1;
        }
    }

    /// Ops among `times` that share a resource slot with `op` at `t`.
    fn conflicts(&self, l: &Loop, op: usize, t: i64, times: &[Option<i64>]) -> Vec<usize> {
        let mut out = Vec::new();
        for &(r, c) in self.machine.usages(l.ops()[op].class) {
            let row = (t + c as i64).rem_euclid(self.ii);
            if self.occupancy[r.index()][row as usize] < self.machine.resource_count(r) {
                continue; // capacity remains; nothing must move
            }
            for (j, tj) in times.iter().enumerate() {
                let Some(tj) = *tj else { continue };
                if j == op {
                    continue;
                }
                let hit = self
                    .machine
                    .usages(l.ops()[j].class)
                    .iter()
                    .any(|&(rj, cj)| rj == r && (tj + cj as i64).rem_euclid(self.ii) == row);
                if hit && !out.contains(&j) {
                    out.push(j);
                }
            }
        }
        out
    }
}

fn try_ii(l: &Loop, machine: &Machine, ii: u32, budget: u32) -> Option<Schedule> {
    let n = l.num_ops();
    let ii_i = ii as i64;
    let h = heights(l, ii_i);
    let mut times: Vec<Option<i64>> = vec![None; n];
    let mut prev_time: Vec<Option<i64>> = vec![None; n];
    let mut mrt = Mrt::new(machine, ii);
    let mut budget = budget;
    let mut unscheduled = n;

    while unscheduled > 0 {
        if budget == 0 {
            return None;
        }
        budget -= 1;
        // Highest-priority unscheduled operation (height, then low index).
        let op = (0..n)
            .filter(|&i| times[i].is_none())
            .max_by_key(|&i| (h[i], std::cmp::Reverse(i)))
            .expect("some op is unscheduled");

        // Earliest start from scheduled predecessors.
        let mut estart = 0i64;
        for e in l.edges() {
            if e.to.index() == op {
                if let Some(tp) = times[e.from.index()] {
                    estart = estart.max(tp + e.latency - ii_i * e.distance as i64);
                }
            }
        }

        // First resource-feasible slot in [estart, estart + II - 1].
        let slot = (estart..estart + ii_i).find(|&t| mrt.fits(l, op, t));
        let t = match slot {
            Some(t) => t,
            None => match prev_time[op] {
                // Forced placement: evict whatever blocks this slot.
                Some(pt) => estart.max(pt + 1),
                None => estart,
            },
        };

        // Evict resource conflicts at a forced slot.
        if slot.is_none() {
            for j in mrt.conflicts(l, op, t, &times) {
                let tj = times[j].take().expect("conflicting op was scheduled");
                mrt.remove(l, j, tj);
                unscheduled += 1;
            }
        }

        times[op] = Some(t);
        prev_time[op] = Some(t);
        mrt.place(l, op, t);
        unscheduled -= 1;

        // Displace dependence violators among scheduled neighbours.
        for e in l.edges() {
            let (violated, victim) = if e.from.index() == op {
                let j = e.to.index();
                match times[j] {
                    Some(tj) if tj + ii_i * e.distance as i64 - t < e.latency => (true, j),
                    _ => (false, 0),
                }
            } else if e.to.index() == op {
                let j = e.from.index();
                match times[j] {
                    Some(tj) if t + ii_i * e.distance as i64 - tj < e.latency => (true, j),
                    _ => (false, 0),
                }
            } else {
                (false, 0)
            };
            if violated && victim != op {
                let tj = times[victim].take().expect("victim was scheduled");
                mrt.remove(l, victim, tj);
                unscheduled += 1;
            }
        }
    }

    // Normalize so the earliest issue is cycle >= 0 (estart logic keeps
    // times non-negative already, but displacement churn can in principle
    // leave gaps; shifting by a multiple of II preserves rows).
    let concrete: Vec<i64> = times
        .into_iter()
        .map(|t| t.expect("all scheduled"))
        .collect();
    let min = *concrete.iter().min().expect("non-empty loop");
    let shift = if min < 0 {
        min.div_euclid(ii_i) * ii_i // shift up by whole IIs
    } else {
        0
    };
    let sched = Schedule::new(ii, concrete.into_iter().map(|t| t - shift).collect());
    // Paranoia: the displacement dance must end with a valid schedule.
    if sched.validate(l, machine).is_some() {
        return None;
    }
    Some(sched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{OptimalScheduler, SchedulerConfig};
    use optimod_ddg::kernels;
    use optimod_machine::{cydra_like, example_3fu, risc_scalar, vliw_4issue};

    #[test]
    fn ims_schedules_figure1_at_mii() {
        let m = example_3fu();
        let l = kernels::figure1(&m);
        let r = ims_schedule(&l, &m, &ImsConfig::default()).expect("schedules");
        assert_eq!(r.schedule.ii(), 2);
        assert_eq!(r.schedule.validate(&l, &m), None);
    }

    #[test]
    fn ims_handles_all_kernels_on_all_machines() {
        for m in [example_3fu(), cydra_like(), risc_scalar(), vliw_4issue()] {
            for l in kernels::all_kernels(&m) {
                let r = ims_schedule(&l, &m, &ImsConfig::default())
                    .unwrap_or_else(|| panic!("{} on {}", l.name(), m.name()));
                assert_eq!(r.schedule.validate(&l, &m), None, "{}", l.name());
            }
        }
    }

    #[test]
    fn ims_ii_never_below_optimal() {
        // The optimal scheduler's II is a floor for any heuristic.
        let m = cydra_like();
        let opt = OptimalScheduler::new(SchedulerConfig::default());
        for l in kernels::all_kernels(&m) {
            let o = opt.schedule(&l, &m);
            let h = ims_schedule(&l, &m, &ImsConfig::default()).expect("ims");
            if let Some(opt_ii) = o.ii {
                assert!(
                    h.schedule.ii() >= opt_ii,
                    "{}: ims {} < optimal {}",
                    l.name(),
                    h.schedule.ii(),
                    opt_ii
                );
            }
        }
    }

    #[test]
    fn budget_exhaustion_escalates_ii() {
        // A starvation-prone configuration still terminates with a valid
        // (possibly larger-II) schedule.
        let m = risc_scalar();
        let l = kernels::lfk7_eos(&m);
        let cfg = ImsConfig {
            budget_ratio: 1,
            max_ii_span: 200,
        };
        let r = ims_schedule(&l, &m, &cfg).expect("eventually schedules");
        assert_eq!(r.schedule.validate(&l, &m), None);
    }
}
