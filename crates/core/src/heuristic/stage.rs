//! Stage scheduling: reduce the register requirements of an existing
//! modulo schedule by reassigning stages while keeping MRT rows fixed.
//!
//! Because moving an operation by whole multiples of `II` does not change
//! its MRT row, resource constraints stay satisfied for free; only the
//! dependence constraints restrict stage choices. This is the insight of
//! the stage-scheduling heuristics (Eichenberger & Davidson, MICRO-28 — the
//! paper's references \[9\] and \[10\]) whose register quality Section 6 of the
//! paper measures against the optimal MinReg/MinLife/MinBuff schedulers.
//!
//! Two entry points:
//!
//! * [`stage_schedule`] — the heuristic: iterative per-operation moves
//!   within dependence slack, greedily minimizing total register lifetime.
//! * [`optimal_stages`] — the exact variant: re-solve the ILP with every
//!   row variable pinned (an ablation of how much the heuristic leaves on
//!   the table).

use optimod_ddg::{Loop, OpId};
use optimod_ilp::{SolveLimits, SolveStatus};
use optimod_machine::Machine;

use crate::formulation::{build_model, DepStyle, FormulationConfig, Objective};
use crate::schedule::Schedule;

/// `ceil(a / b)` for positive `b`.
fn ceil_div(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    -((-a).div_euclid(b))
}

/// Minimum stage separation implied by an edge once both rows are fixed:
/// `k_to - k_from >= ceil((latency - distance*II - row_to + row_from)/II)`.
fn stage_gap(latency: i64, distance: i64, row_from: i64, row_to: i64, ii: i64) -> i64 {
    ceil_div(latency - distance * ii - row_to + row_from, ii)
}

/// Improves the stages of `s` (rows unchanged) to reduce cumulative
/// register lifetime, a proxy that also lowers MaxLive in practice.
///
/// The result is always a valid schedule for `l`; when no improving move
/// exists the input stages are returned unchanged.
///
/// # Panics
///
/// Panics if `s` is not a valid schedule for `l` on `machine`.
pub fn stage_schedule(l: &Loop, machine: &Machine, s: &Schedule) -> Schedule {
    assert_eq!(
        s.validate(l, machine),
        None,
        "stage scheduling requires a valid input schedule"
    );
    let ii = s.ii() as i64;
    let n = l.num_ops();
    let rows: Vec<i64> = (0..n).map(|i| s.row(OpId::from_index(i)) as i64).collect();
    let mut stages: Vec<i64> = (0..n).map(|i| s.stage(OpId::from_index(i))).collect();

    // Evaluates the cumulative lifetime of the registers touching `op`
    // under candidate stages.
    let cost_around = |op: usize, stages: &[i64]| -> i64 {
        let time = |i: usize| stages[i] * ii + rows[i];
        let mut cost = 0i64;
        for vr in l.vregs() {
            let involved = vr.def.index() == op || vr.uses.iter().any(|u| u.op.index() == op);
            if !involved {
                continue;
            }
            let start = time(vr.def.index());
            let end = vr
                .uses
                .iter()
                .map(|u| time(u.op.index()) + ii * u.distance as i64)
                .max()
                .unwrap_or(start)
                .max(start);
            cost += end - start + 1;
        }
        cost
    };

    // Local search: move one op at a time within its dependence slack.
    let max_passes = 4 * n.max(4);
    for _ in 0..max_passes {
        let mut improved = false;
        for op in 0..n {
            let mut lo = i64::MIN;
            let mut hi = i64::MAX;
            for e in l.edges() {
                let (f, t) = (e.from.index(), e.to.index());
                let gap = stage_gap(e.latency, e.distance as i64, rows[f], rows[t], ii);
                if t == op && f != op {
                    lo = lo.max(stages[f] + gap);
                }
                if f == op && t != op {
                    hi = hi.min(stages[t] - gap);
                }
                if f == op && t == op && gap > 0 {
                    // Self-edge that cannot be satisfied at any stage; the
                    // input schedule being valid rules this out.
                    unreachable!("valid schedule violates a self-edge");
                }
            }
            // Keep stages within the input schedule's envelope: nothing is
            // gained by growing the schedule, and it bounds the search.
            let cur = stages[op];
            let lo = lo.max(0).min(cur);
            let hi = hi.min(cur.max(lo) + 2 * ii.max(4)).max(cur);
            let mut best = (cost_around(op, &stages), cur);
            for cand in lo..=hi {
                if cand == cur {
                    continue;
                }
                stages[op] = cand;
                let c = cost_around(op, &stages);
                if c < best.0 {
                    best = (c, cand);
                }
            }
            stages[op] = best.1;
            if best.1 != cur {
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }

    let out = Schedule::new(s.ii(), (0..n).map(|i| stages[i] * ii + rows[i]).collect());
    debug_assert_eq!(out.validate(l, machine), None);
    out
}

/// Optimal stage assignment: re-solves the scheduling ILP with every MRT
/// row pinned to `s`'s rows, minimizing `objective` exactly.
///
/// Returns the schedule and the proven objective value, or `None` when the
/// solver hits its limits before proving optimality.
pub fn optimal_stages(
    l: &Loop,
    machine: &Machine,
    s: &Schedule,
    objective: Objective,
    limits: SolveLimits,
) -> Option<(Schedule, f64)> {
    let cfg = FormulationConfig {
        dep_style: DepStyle::Structured,
        objective,
        sched_len_slack: 40,
        max_live_limit: None,
    };
    let mut built = build_model(l, machine, s.ii(), &cfg)?;
    built.fix_rows(s);
    let out = built.model.solve_with(limits);
    if out.status != SolveStatus::Optimal {
        return None;
    }
    Some((built.extract_schedule(&out), out.objective))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::ims::{ims_schedule, ImsConfig};
    use optimod_ddg::kernels;
    use optimod_machine::{cydra_like, example_3fu};

    #[test]
    fn ceil_div_matches_math() {
        assert_eq!(ceil_div(5, 2), 3);
        assert_eq!(ceil_div(4, 2), 2);
        assert_eq!(ceil_div(-5, 2), -2);
        assert_eq!(ceil_div(0, 3), 0);
    }

    #[test]
    fn stage_scheduling_never_hurts_lifetime() {
        for m in [example_3fu(), cydra_like()] {
            for l in kernels::all_kernels(&m) {
                let ims = ims_schedule(&l, &m, &ImsConfig::default()).expect("ims");
                let before = ims.schedule.cumulative_lifetime(&l);
                let staged = stage_schedule(&l, &m, &ims.schedule);
                let after = staged.cumulative_lifetime(&l);
                assert!(after <= before, "{} on {}", l.name(), m.name());
                assert_eq!(staged.ii(), ims.schedule.ii());
                // Rows unchanged.
                for id in l.op_ids() {
                    assert_eq!(staged.row(id), ims.schedule.row(id));
                }
            }
        }
    }

    #[test]
    fn stage_scheduling_reduces_registers_somewhere() {
        // At least one kernel must actually improve, or the heuristic is
        // a no-op.
        let m = cydra_like();
        let mut improved = 0;
        for l in kernels::all_kernels(&m) {
            let ims = ims_schedule(&l, &m, &ImsConfig::default()).expect("ims");
            let staged = stage_schedule(&l, &m, &ims.schedule);
            if staged.max_live(&l) < ims.schedule.max_live(&l) {
                improved += 1;
            }
        }
        assert!(improved > 0, "stage scheduling improved no kernel");
    }

    #[test]
    fn optimal_stages_dominate_heuristic() {
        let m = example_3fu();
        for l in [
            kernels::figure1(&m),
            kernels::saxpy(&m),
            kernels::lfk1_hydro(&m),
        ] {
            let ims = ims_schedule(&l, &m, &ImsConfig::default()).expect("ims");
            let staged = stage_schedule(&l, &m, &ims.schedule);
            let (opt, obj) = optimal_stages(
                &l,
                &m,
                &ims.schedule,
                Objective::MinMaxLive,
                SolveLimits::default(),
            )
            .expect("small models solve");
            assert!(opt.max_live(&l) <= staged.max_live(&l), "{}", l.name());
            assert_eq!(opt.max_live(&l) as f64, obj, "{}", l.name());
        }
    }
}
