//! Heuristic modulo schedulers that the paper evaluates with its optimal
//! formulations: Rau's Iterative Modulo Scheduler ([`ims`]) and the
//! register-reducing stage-scheduling pass ([`stage`]).

pub mod ims;
pub mod stage;

pub use ims::{ims_schedule, ImsConfig, ImsResult};
pub use stage::{optimal_stages, stage_schedule};
