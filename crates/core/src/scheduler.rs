//! The optimal modulo scheduling framework (paper Section 3.4).
//!
//! For a loop and machine: compute the MII, build the ILP for the tentative
//! `II`, solve (optionally minimizing a secondary objective), and increment
//! `II` on infeasibility. The first feasible `II` yields an optimal-
//! throughput schedule; with a secondary objective the returned schedule is
//! optimal for that objective among all schedules of that `II`.

use std::time::{Duration, Instant};

use optimod_ddg::Loop;
use optimod_ilp::{SolveLimits, SolveOutcome, SolveStats, SolveStatus};
use optimod_machine::Machine;

use crate::formulation::{build_model, DepStyle, FormulationConfig, Objective};
use crate::mii::{compute_mii, Mii};
use crate::schedule::Schedule;

/// Configuration of an optimal modulo scheduler run.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Dependence-constraint formulation.
    pub dep_style: DepStyle,
    /// Secondary objective.
    pub objective: Objective,
    /// Total solver budget for the loop, across all tentative `II` values
    /// (the paper allots 15 minutes per loop). `limits.threads` selects the
    /// branch-and-bound engine per solve (see
    /// [`SolveLimits::resolve_threads`]); `limits.stop` cancels the whole
    /// scheduling run cooperatively.
    pub limits: SolveLimits,
    /// Schedule-length slack beyond the dependence minimum (paper: 20).
    pub sched_len_slack: u32,
    /// How far past the MII to escalate `II` before giving up.
    pub max_ii_span: u32,
    /// Hard register-file constraint (`MaxLive <= limit`); `None` means
    /// unlimited registers, as in the paper's experiments.
    pub register_limit: Option<u32>,
    /// Race `II` and `II + 1` speculatively on separate threads (each racer
    /// gets half the worker budget). When the tentative `II` proves
    /// infeasible — the common case until the achievable `II` is reached —
    /// the `II + 1` result is already in hand; when `II` succeeds the
    /// speculative racer is cancelled through its [`optimod_ilp::StopFlag`].
    /// Off by default: speculation burns extra CPU and makes per-loop node
    /// counts nondeterministic, so experiments keep it disabled.
    pub speculate_ii: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            dep_style: DepStyle::Structured,
            objective: Objective::FirstFeasible,
            limits: SolveLimits::default(),
            sched_len_slack: 20,
            max_ii_span: 64,
            register_limit: None,
            speculate_ii: false,
        }
    }
}

impl SchedulerConfig {
    /// Convenience constructor: given style and objective, default limits.
    pub fn new(dep_style: DepStyle, objective: Objective) -> Self {
        SchedulerConfig {
            dep_style,
            objective,
            ..Default::default()
        }
    }

    /// Replaces the total per-loop time budget.
    pub fn with_time_limit(mut self, d: Duration) -> Self {
        self.limits.time_limit = d;
        self
    }

    /// Replaces the branch-and-bound node budget.
    pub fn with_node_limit(mut self, n: u64) -> Self {
        self.limits.node_limit = n;
        self
    }
}

/// How a scheduling attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopStatus {
    /// Scheduled with the secondary objective proven optimal (or no
    /// objective requested).
    Optimal,
    /// A valid schedule was found but a limit stopped the optimality proof
    /// of the secondary objective.
    FeasibleOnly,
    /// The budget ran out before any schedule was found.
    TimedOut,
    /// No schedule exists within the allowed `II` span and schedule length.
    Infeasible,
}

impl LoopStatus {
    /// Whether a schedule is available.
    pub fn scheduled(self) -> bool {
        matches!(self, LoopStatus::Optimal | LoopStatus::FeasibleOnly)
    }
}

/// Result of scheduling one loop.
#[derive(Debug, Clone)]
pub struct LoopResult {
    /// Outcome classification.
    pub status: LoopStatus,
    /// MII components for the loop.
    pub mii: Mii,
    /// Achieved initiation interval (when scheduled).
    pub ii: Option<u32>,
    /// The schedule (when scheduled).
    pub schedule: Option<Schedule>,
    /// Secondary objective value reported by the solver (when scheduled
    /// with an objective).
    pub objective_value: Option<f64>,
    /// Solver statistics accumulated over every tentative `II`
    /// (`variables`/`constraints` are those of the largest model built —
    /// i.e. the final one, since sizes grow with `II`).
    pub stats: SolveStats,
}

/// An optimal modulo scheduler (NoObj / MinReg / MinBuff / MinLife /
/// MinSchedLen depending on [`SchedulerConfig::objective`]).
///
/// ```
/// use optimod::{OptimalScheduler, SchedulerConfig, DepStyle, Objective};
/// use optimod_ddg::kernels::figure1;
/// use optimod_machine::example_3fu;
///
/// let machine = example_3fu();
/// let l = figure1(&machine);
/// let sched = OptimalScheduler::new(
///     SchedulerConfig::new(DepStyle::Structured, Objective::MinMaxLive));
/// let res = sched.schedule(&l, &machine);
/// assert_eq!(res.ii, Some(2));
/// assert_eq!(res.schedule.unwrap().max_live(&l), 7);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OptimalScheduler {
    config: SchedulerConfig,
}

impl OptimalScheduler {
    /// Creates a scheduler with the given configuration.
    pub fn new(config: SchedulerConfig) -> Self {
        OptimalScheduler { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Schedules `l` on `machine`, escalating `II` from the MII.
    ///
    /// With [`SchedulerConfig::speculate_ii`] set (and more than one worker
    /// thread available), `II` and `II + 1` are solved concurrently at each
    /// escalation step; the `II + 1` racer is cancelled cooperatively when
    /// `II` succeeds, and consulted when `II` proves infeasible.
    pub fn schedule(&self, l: &Loop, machine: &Machine) -> LoopResult {
        let start = Instant::now();
        let mii = compute_mii(l, machine);
        let mut stats = SolveStats::default();
        let cfg = FormulationConfig {
            dep_style: self.config.dep_style,
            objective: self.config.objective,
            sched_len_slack: self.config.sched_len_slack,
            max_live_limit: self.config.register_limit,
        };
        let first_only = self.config.objective == Objective::FirstFeasible;

        let give_up = |status: LoopStatus, mut stats: SolveStats| {
            stats.wall_time = start.elapsed();
            LoopResult {
                status,
                mii,
                ii: None,
                schedule: None,
                objective_value: None,
                stats,
            }
        };

        let end_ii = mii.value() + self.config.max_ii_span;
        let mut ii = mii.value();
        while ii <= end_ii {
            let elapsed = start.elapsed();
            if elapsed >= self.config.limits.time_limit
                || stats.bb_nodes >= self.config.limits.node_limit
                || self.config.limits.stop.is_stopped()
            {
                return give_up(LoopStatus::TimedOut, stats);
            }
            let Some(built) = build_model(l, machine, ii, &cfg) else {
                ii += 1;
                continue; // below RecMII (possible only via direct calls)
            };
            let limits = SolveLimits {
                time_limit: self.config.limits.time_limit - elapsed,
                node_limit: self.config.limits.node_limit - stats.bb_nodes,
                first_solution_only: first_only,
                ..self.config.limits.clone()
            };

            // Speculation: solve `ii + 1` concurrently on half the workers.
            let threads = limits.resolve_threads();
            let mut speculative = None;
            let out = if self.config.speculate_ii && threads > 1 && ii < end_ii {
                if let Some(built_next) = build_model(l, machine, ii + 1, &cfg) {
                    let half = (threads / 2).max(1) as u32;
                    let stop_next = self.config.limits.stop.child();
                    let limits_main = SolveLimits {
                        threads: half,
                        stop: self.config.limits.stop.child(),
                        ..limits.clone()
                    };
                    let limits_next = SolveLimits {
                        threads: half,
                        stop: stop_next.clone(),
                        ..limits
                    };
                    let (out, out_next) = std::thread::scope(|scope| {
                        let racer = scope.spawn(|| built_next.model.solve_with(limits_next));
                        let out = built.model.solve_with(limits_main);
                        if out.status != SolveStatus::Infeasible {
                            // Scheduled at `ii` (or giving up): the
                            // speculative result will not be consulted.
                            stop_next.stop();
                        }
                        (out, racer.join().expect("speculative solver panicked"))
                    });
                    stats.absorb(&out_next.stats);
                    speculative = Some((built_next, out_next));
                    out
                } else {
                    built.model.solve_with(limits)
                }
            } else {
                built.model.solve_with(limits)
            };
            stats.absorb(&out.stats);

            match out.status {
                SolveStatus::Optimal | SolveStatus::Feasible => {
                    return self.scheduled(l, machine, &built, &out, ii, mii, stats, start);
                }
                SolveStatus::Infeasible => {
                    if let Some((built_next, out_next)) = speculative {
                        match out_next.status {
                            SolveStatus::Optimal | SolveStatus::Feasible => {
                                return self.scheduled(
                                    l,
                                    machine,
                                    &built_next,
                                    &out_next,
                                    ii + 1,
                                    mii,
                                    stats,
                                    start,
                                );
                            }
                            SolveStatus::Infeasible => {
                                ii += 2; // both candidates refuted
                                continue;
                            }
                            SolveStatus::LimitReached => {
                                return give_up(LoopStatus::TimedOut, stats)
                            }
                        }
                    }
                    ii += 1;
                }
                SolveStatus::LimitReached => return give_up(LoopStatus::TimedOut, stats),
            }
        }
        give_up(LoopStatus::Infeasible, stats)
    }

    /// Packages a successful solve into a [`LoopResult`].
    #[allow(clippy::too_many_arguments)] // internal plumbing of loop-local state
    fn scheduled(
        &self,
        l: &Loop,
        machine: &Machine,
        built: &crate::formulation::BuiltModel,
        out: &SolveOutcome,
        ii: u32,
        mii: Mii,
        mut stats: SolveStats,
        start: Instant,
    ) -> LoopResult {
        let first_only = self.config.objective == Objective::FirstFeasible;
        let schedule = built.extract_schedule(out);
        debug_assert_eq!(schedule.validate(l, machine), None);
        stats.wall_time = start.elapsed();
        LoopResult {
            status: if out.status == SolveStatus::Optimal {
                LoopStatus::Optimal
            } else {
                LoopStatus::FeasibleOnly
            },
            mii,
            ii: Some(ii),
            schedule: Some(schedule),
            objective_value: (!first_only).then(|| {
                // Our objectives are all integral; strip float noise from
                // the simplex.
                if (out.objective - out.objective.round()).abs() < 1e-6 {
                    out.objective.round()
                } else {
                    out.objective
                }
            }),
            stats,
        }
    }

    /// Proves or refutes feasibility at one exact `II` (used to grade
    /// heuristic schedulers: "can II be decreased?").
    ///
    /// Returns `Some(true)` if a schedule exists at `ii`, `Some(false)` if
    /// proven infeasible, `None` if the budget ran out undecided.
    pub fn feasible_at(&self, l: &Loop, machine: &Machine, ii: u32) -> Option<bool> {
        let cfg = FormulationConfig {
            dep_style: self.config.dep_style,
            objective: Objective::FirstFeasible,
            sched_len_slack: self.config.sched_len_slack,
            max_live_limit: self.config.register_limit,
        };
        let Some(built) = build_model(l, machine, ii, &cfg) else {
            return Some(false); // below RecMII: no schedule of any length
        };
        let limits = SolveLimits {
            first_solution_only: true,
            ..self.config.limits.clone()
        };
        match built.model.solve_with(limits).status {
            SolveStatus::Optimal | SolveStatus::Feasible => Some(true),
            SolveStatus::Infeasible => Some(false),
            SolveStatus::LimitReached => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimod_ddg::kernels;
    use optimod_machine::{cydra_like, example_3fu};

    #[test]
    fn noobj_achieves_mii_on_figure1() {
        let m = example_3fu();
        let l = kernels::figure1(&m);
        let s = OptimalScheduler::new(SchedulerConfig::default());
        let r = s.schedule(&l, &m);
        assert_eq!(r.status, LoopStatus::Optimal);
        assert_eq!(r.ii, Some(2));
        let sched = r.schedule.unwrap();
        assert_eq!(sched.validate(&l, &m), None);
    }

    #[test]
    fn minreg_matches_paper_figure1() {
        let m = example_3fu();
        let l = kernels::figure1(&m);
        let s = OptimalScheduler::new(SchedulerConfig::new(
            DepStyle::Structured,
            Objective::MinMaxLive,
        ));
        let r = s.schedule(&l, &m);
        assert_eq!(r.status, LoopStatus::Optimal);
        assert_eq!(r.ii, Some(2));
        let sched = r.schedule.unwrap();
        // The paper's Figure 1 shows a minimum-register schedule with
        // MaxLive 7 at II 2.
        assert_eq!(sched.max_live(&l), 7);
        assert_eq!(r.objective_value, Some(7.0));
    }

    #[test]
    fn traditional_and_structured_agree_on_minreg() {
        let m = example_3fu();
        for l in [
            kernels::figure1(&m),
            kernels::saxpy(&m),
            kernels::dot_product(&m),
            kernels::lfk11_first_sum(&m),
        ] {
            let mut results = Vec::new();
            for style in [DepStyle::Traditional, DepStyle::Structured] {
                let s = OptimalScheduler::new(SchedulerConfig::new(style, Objective::MinMaxLive));
                let r = s.schedule(&l, &m);
                assert_eq!(r.status, LoopStatus::Optimal, "{} {style:?}", l.name());
                results.push((r.ii, r.objective_value));
            }
            assert_eq!(results[0], results[1], "{}", l.name());
        }
    }

    #[test]
    fn recurrence_bound_respected() {
        let m = example_3fu();
        let l = kernels::lfk5_tridiag(&m);
        let s = OptimalScheduler::new(SchedulerConfig::default());
        let r = s.schedule(&l, &m);
        assert_eq!(r.ii, Some(5)); // RecMII = 5 and it is achievable
    }

    #[test]
    fn feasibility_probe() {
        let m = example_3fu();
        let l = kernels::figure1(&m);
        let s = OptimalScheduler::new(SchedulerConfig::default());
        assert_eq!(s.feasible_at(&l, &m, 1), Some(false));
        assert_eq!(s.feasible_at(&l, &m, 2), Some(true));
        assert_eq!(s.feasible_at(&l, &m, 5), Some(true));
    }

    #[test]
    fn min_sched_length_objective() {
        let m = example_3fu();
        let l = kernels::figure1(&m);
        let s = OptimalScheduler::new(SchedulerConfig::new(
            DepStyle::Structured,
            Objective::MinSchedLength,
        ));
        let r = s.schedule(&l, &m);
        assert_eq!(r.status, LoopStatus::Optimal);
        let sched = r.schedule.unwrap();
        // Critical path: ld(1) -> mult(4) -> sub(1) -> st: length 7. The
        // solver minimizes the last issue cycle, and with k >= 0 the first
        // issue lands at cycle >= 0, so the makespan equals length - 1.
        assert_eq!(r.objective_value, Some(6.0));
        assert_eq!(sched.length(), 7);
        assert_eq!(sched.validate(&l, &m), None);
    }

    #[test]
    fn speculative_ii_race_matches_sequential_escalation() {
        let m = example_3fu();
        for l in [
            kernels::figure1(&m),
            kernels::lfk5_tridiag(&m),
            kernels::dot_product(&m),
        ] {
            let baseline = OptimalScheduler::new(SchedulerConfig::default()).schedule(&l, &m);
            let mut cfg = SchedulerConfig {
                speculate_ii: true,
                ..Default::default()
            };
            cfg.limits.threads = 2;
            let raced = OptimalScheduler::new(cfg).schedule(&l, &m);
            assert_eq!(raced.status, baseline.status, "{}", l.name());
            assert_eq!(raced.ii, baseline.ii, "{}", l.name());
            assert_eq!(
                raced.objective_value,
                baseline.objective_value,
                "{}",
                l.name()
            );
            assert_eq!(
                raced.schedule.unwrap().validate(&l, &m),
                None,
                "{}",
                l.name()
            );
        }
    }

    #[test]
    fn stopped_scheduler_reports_timeout() {
        let m = example_3fu();
        let l = kernels::figure1(&m);
        let cfg = SchedulerConfig::default();
        cfg.limits.stop.stop();
        let r = OptimalScheduler::new(cfg).schedule(&l, &m);
        assert_eq!(r.status, LoopStatus::TimedOut);
    }

    #[test]
    fn cydra_divide_recurrence_schedules() {
        let m = cydra_like();
        let l = kernels::divide_recurrence(&m);
        let s = OptimalScheduler::new(SchedulerConfig::default());
        let r = s.schedule(&l, &m);
        assert!(r.status.scheduled());
        // RecMII is 9 via the div->div self-loop (latency 9, distance 1);
        // the unpipelined divider alone would force ResMII 6.
        assert_eq!(r.mii.rec_mii, 9);
        assert!(r.ii.unwrap() >= 9);
        assert_eq!(r.schedule.unwrap().validate(&l, &m), None);
    }
}
