//! The optimal modulo scheduling framework (paper Section 3.4).
//!
//! For a loop and machine: compute the MII, build the ILP for the tentative
//! `II`, solve (optionally minimizing a secondary objective), and increment
//! `II` on infeasibility. The first feasible `II` yields an optimal-
//! throughput schedule; with a secondary objective the returned schedule is
//! optimal for that objective among all schedules of that `II`.

use std::time::{Duration, Instant};

use optimod_analyze::{Explanation, IlpContext, PresolveOptions, PresolveTotals};
use optimod_ddg::Loop;
use optimod_ilp::{
    panic_message, FaultAction, FaultSite, SolveError, SolveLimits, SolveOutcome, SolveStats,
    SolveStatus,
};
use optimod_machine::Machine;
use optimod_trace::{Phase, TraceEvent};

use crate::error::ScheduleError;
use crate::formulation::{build_model, DepStyle, FormulationConfig, Objective};
use crate::heuristic::ims::{ims_schedule, ImsConfig};
use crate::heuristic::stage::{optimal_stages, stage_schedule};
use crate::mii::{compute_mii, Mii};
use crate::schedule::Schedule;

/// Largest MII the scheduler will attempt to formulate. The ILP carries
/// `II` row binaries per operation, so a pathological recurrence (huge
/// validated latencies around a cycle) would otherwise demand an absurd
/// allocation before the solver even starts. Loops whose MII exceeds this
/// yield [`LoopStatus::Invalid`] with [`ScheduleError::MiiOverflow`].
pub const MAX_SCHEDULABLE_II: u32 = 1 << 16;

/// Our objectives are all integral; strip float noise from the simplex.
fn round_integral(v: f64) -> f64 {
    if (v - v.round()).abs() < 1e-6 {
        v.round()
    } else {
        v
    }
}

/// Saturating `total * share` for fallback-ladder budget slices.
///
/// `Duration::mul_f64` panics when the product overflows — and it can
/// overflow even for `share <= 1.0`, because `Duration::MAX.as_secs_f64()`
/// rounds *up* to 2^64 seconds, one past the largest representable
/// duration. A caller handing the daemon (or the CLI) a near-`u64::MAX`
/// budget with the ladder enabled would take that panic mid-schedule, so
/// the share is computed through the fallible conversion and saturates to
/// `total` instead. Non-finite shares degrade to zero.
fn budget_share(total: Duration, share: f64) -> Duration {
    let share = if share.is_finite() {
        share.clamp(0.0, 1.0)
    } else {
        0.0
    };
    Duration::try_from_secs_f64(total.as_secs_f64() * share)
        .map(|d| d.min(total))
        .unwrap_or(total)
}

/// Budgeted degradation ladder: when the exact solver cannot schedule a
/// loop within its slice of the budget, cheaper methods take over rather
/// than reporting nothing (the coverage-first strategy of SAT-MapIt-style
/// mappers). The rungs are: exact structured ILP → stage-scheduler ILP
/// (IMS rows, exact stages) → plain IMS heuristic. Which rung produced the
/// schedule is recorded in [`LoopResult::provenance`].
#[derive(Debug, Clone, Copy)]
pub struct FallbackConfig {
    /// Whether the ladder is active. Off by default: the paper's
    /// experiments measure the exact solvers alone, and a degraded
    /// schedule would silently contaminate their statistics.
    pub enabled: bool,
    /// Skip the exact rung entirely and enter the ladder at stage-ILP.
    /// This is the brownout mode a saturated service flips into: every
    /// schedule it produces is honestly tagged with a degraded
    /// [`Provenance`], and the exact rung's budget is never spent.
    pub skip_exact: bool,
    /// Fraction of the per-loop time budget given to the exact solver
    /// (rung 1) before degrading.
    pub exact_share: f64,
    /// Fraction of the per-loop time budget given to the stage-scheduler
    /// ILP (rung 2); the remainder is slack for the IMS rung, which is
    /// combinatorial but effectively instant.
    pub stage_share: f64,
}

impl Default for FallbackConfig {
    fn default() -> Self {
        FallbackConfig {
            enabled: false,
            skip_exact: false,
            exact_share: 0.7,
            stage_share: 0.2,
        }
    }
}

impl FallbackConfig {
    /// An enabled ladder with the default budget split.
    pub fn enabled() -> Self {
        FallbackConfig {
            enabled: true,
            ..Default::default()
        }
    }

    /// The brownout configuration: ladder on, exact rung skipped, so every
    /// solve lands on a cheap degraded rung (stage-ILP, then IMS).
    pub fn degraded_only() -> Self {
        FallbackConfig {
            enabled: true,
            skip_exact: true,
            ..Default::default()
        }
    }
}

/// Which rung of the fallback ladder produced a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Rung 1: the exact ILP over the full scheduling space.
    Exact,
    /// The portfolio's CDCL SAT backend won the race with a certified
    /// schedule. Exact for throughput (same `II` search, certified feasible
    /// witness), but carries no secondary-objective claim — the portfolio
    /// only runs for [`Objective::FirstFeasible`].
    SatExact,
    /// Rung 2: IMS rows with ILP-optimal stage assignment.
    StageIlp,
    /// Rung 3: the IMS heuristic (with greedy stage improvement).
    Ims,
}

impl Provenance {
    /// Whether the schedule came from a degraded (non-exact) rung. A
    /// SAT-portfolio win is *not* degraded: the witness is certified at the
    /// same `II` the exact search would have settled on.
    pub fn degraded(self) -> bool {
        matches!(self, Provenance::StageIlp | Provenance::Ims)
    }
}

impl std::fmt::Display for Provenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Provenance::Exact => "exact",
            Provenance::SatExact => "sat-exact",
            Provenance::StageIlp => "stage-ilp",
            Provenance::Ims => "ims",
        })
    }
}

/// Configuration of an optimal modulo scheduler run.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Dependence-constraint formulation.
    pub dep_style: DepStyle,
    /// Secondary objective.
    pub objective: Objective,
    /// Total solver budget for the loop, across all tentative `II` values
    /// (the paper allots 15 minutes per loop). `limits.threads` selects the
    /// branch-and-bound engine per solve (see
    /// [`SolveLimits::resolve_threads`]); `limits.stop` cancels the whole
    /// scheduling run cooperatively.
    pub limits: SolveLimits,
    /// Schedule-length slack beyond the dependence minimum (paper: 20).
    pub sched_len_slack: u32,
    /// How far past the MII to escalate `II` before giving up.
    pub max_ii_span: u32,
    /// Hard register-file constraint (`MaxLive <= limit`); `None` means
    /// unlimited registers, as in the paper's experiments.
    pub register_limit: Option<u32>,
    /// Race `II` and `II + 1` speculatively on separate threads (each racer
    /// gets half the worker budget). When the tentative `II` proves
    /// infeasible — the common case until the achievable `II` is reached —
    /// the `II + 1` result is already in hand; when `II` succeeds the
    /// speculative racer is cancelled through its [`optimod_ilp::StopFlag`].
    /// Off by default: speculation burns extra CPU and makes per-loop node
    /// counts nondeterministic, so experiments keep it disabled. Ignored
    /// when [`Self::portfolio`] is active — the portfolio already fills the
    /// spare workers with the SAT backend.
    pub speculate_ii: bool,
    /// Cross-backend portfolio: at each tentative `II`, ask the
    /// `optimod-sat` CDCL backend and the ILP the same feasibility
    /// question, first certified answer wins, and a differential oracle
    /// fails the run on any certified contradiction (see
    /// [`ScheduleError::BackendDisagreement`]). Only active for
    /// [`Objective::FirstFeasible`] — SAT has no objective — other
    /// objectives silently run ILP-only. With one worker thread the
    /// backends run serially (SAT first, deterministic); with more they
    /// race. Off by default.
    pub portfolio: bool,
    /// CNF encoder options for the portfolio's SAT backend. The default is
    /// the faithful encoding; the sabotaged variants exist so tests can
    /// prove the differential oracle actually fires.
    pub sat_encode: optimod_sat::EncodeOptions,
    /// Degradation ladder configuration (see [`FallbackConfig`]).
    pub fallback: FallbackConfig,
    /// Run the static analyzer's presolve over each built model before
    /// search ([`optimod_analyze::presolve`]): stage-bound tightening,
    /// binary fixing, and redundant-row elimination. Every reduction is
    /// implied by constraints already in the model, so the certified II and
    /// objective are unchanged; the certifier still checks every presolved
    /// solve. On by default.
    pub presolve: bool,
    /// Which presolve reductions run (ignored unless [`Self::presolve`] is
    /// set). Defaults to all of them; the presolve-impact bench toggles
    /// individual reductions to attribute their effect.
    pub presolve_options: PresolveOptions,
    /// When the exact search proves the whole `II` span infeasible, run the
    /// infeasibility explanation engine at the last attempted `II` and
    /// attach its certified unsat-core diagnostics to
    /// [`LoopResult::explanation`]. Off by default: explanation re-encodes
    /// the problem through the CNF encoder and runs a deletion-based MUS
    /// loop, which can cost more than the failed search itself.
    pub explain: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            dep_style: DepStyle::Structured,
            objective: Objective::FirstFeasible,
            limits: SolveLimits::default(),
            sched_len_slack: 20,
            max_ii_span: 64,
            register_limit: None,
            speculate_ii: false,
            portfolio: false,
            sat_encode: optimod_sat::EncodeOptions::default(),
            fallback: FallbackConfig::default(),
            presolve: true,
            presolve_options: PresolveOptions::default(),
            explain: false,
        }
    }
}

impl SchedulerConfig {
    /// Convenience constructor: given style and objective, default limits.
    pub fn new(dep_style: DepStyle, objective: Objective) -> Self {
        SchedulerConfig {
            dep_style,
            objective,
            ..Default::default()
        }
    }

    /// Replaces the total per-loop time budget.
    pub fn with_time_limit(mut self, d: Duration) -> Self {
        self.limits.time_limit = d;
        self
    }

    /// Replaces the branch-and-bound node budget.
    pub fn with_node_limit(mut self, n: u64) -> Self {
        self.limits.node_limit = n;
        self
    }
}

/// How a scheduling attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopStatus {
    /// Scheduled with the secondary objective proven optimal (or no
    /// objective requested).
    Optimal,
    /// A valid schedule was found but a limit stopped the optimality proof
    /// of the secondary objective.
    FeasibleOnly,
    /// The budget ran out before any schedule was found.
    TimedOut,
    /// No schedule exists within the allowed `II` span and schedule length.
    Infeasible,
    /// The input loop failed [`Loop::validate`]; nothing was attempted.
    /// The cause is in [`LoopResult::error`].
    Invalid,
    /// The pipeline failed abnormally (solver instability, a worker panic,
    /// an undecodable solution) and no rung produced a schedule. The cause
    /// is in [`LoopResult::error`].
    Failed,
}

impl LoopStatus {
    /// Whether a schedule is available.
    pub fn scheduled(self) -> bool {
        matches!(self, LoopStatus::Optimal | LoopStatus::FeasibleOnly)
    }
}

/// Result of scheduling one loop.
#[derive(Debug, Clone)]
pub struct LoopResult {
    /// Outcome classification.
    pub status: LoopStatus,
    /// MII components for the loop.
    pub mii: Mii,
    /// Achieved initiation interval (when scheduled).
    pub ii: Option<u32>,
    /// The schedule (when scheduled).
    pub schedule: Option<Schedule>,
    /// Secondary objective value reported by the solver (when scheduled
    /// with an objective).
    pub objective_value: Option<f64>,
    /// Solver statistics accumulated over every tentative `II`
    /// (`variables`/`constraints` are those of the largest model built —
    /// i.e. the final one, since sizes grow with `II`).
    pub stats: SolveStats,
    /// Which ladder rung produced the schedule (`None` when unscheduled).
    /// [`Provenance::Exact`] when the fallback ladder is disabled, except
    /// that a portfolio run reports [`Provenance::SatExact`] for the cells
    /// the SAT backend won.
    pub provenance: Option<Provenance>,
    /// What the analyzer's presolve did across every tentative `II`
    /// (all-zero when [`SchedulerConfig::presolve`] is off or no model was
    /// built).
    pub presolve: PresolveTotals,
    /// Abnormal condition encountered along the way, if any. Present even
    /// on scheduled results when a rung failed abnormally before a later
    /// rung (or the incumbent) recovered.
    pub error: Option<ScheduleError>,
    /// Certified infeasibility diagnostics (`OM200`-series findings, unsat
    /// core, replayable repro) attached to [`LoopStatus::Infeasible`]
    /// results when [`SchedulerConfig::explain`] is set; `None` otherwise.
    pub explanation: Option<Explanation>,
}

/// An optimal modulo scheduler (NoObj / MinReg / MinBuff / MinLife /
/// MinSchedLen depending on [`SchedulerConfig::objective`]).
///
/// ```
/// use optimod::{OptimalScheduler, SchedulerConfig, DepStyle, Objective};
/// use optimod_ddg::kernels::figure1;
/// use optimod_machine::example_3fu;
///
/// let machine = example_3fu();
/// let l = figure1(&machine);
/// let sched = OptimalScheduler::new(
///     SchedulerConfig::new(DepStyle::Structured, Objective::MinMaxLive));
/// let res = sched.schedule(&l, &machine);
/// assert_eq!(res.ii, Some(2));
/// assert_eq!(res.schedule.unwrap().max_live(&l), 7);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OptimalScheduler {
    config: SchedulerConfig,
}

impl OptimalScheduler {
    /// Creates a scheduler with the given configuration.
    pub fn new(config: SchedulerConfig) -> Self {
        OptimalScheduler { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Schedules `l` on `machine`, escalating `II` from the MII.
    ///
    /// The input is validated first; a malformed loop yields
    /// [`LoopStatus::Invalid`] with the cause in [`LoopResult::error`].
    ///
    /// With [`SchedulerConfig::speculate_ii`] set (and more than one worker
    /// thread available), `II` and `II + 1` are solved concurrently at each
    /// escalation step; the `II + 1` racer is cancelled cooperatively when
    /// `II` succeeds, and consulted when `II` proves infeasible.
    ///
    /// With [`SchedulerConfig::fallback`] enabled, an exact attempt that
    /// runs out of budget (or fails abnormally) degrades down the ladder —
    /// stage-scheduler ILP, then plain IMS — instead of returning without a
    /// schedule; [`LoopResult::provenance`] records the producing rung.
    pub fn schedule(&self, l: &Loop, machine: &Machine) -> LoopResult {
        let start = Instant::now();
        // Validate before anything touches the graph: even the MII
        // computation indexes operations through edges, so a dangling
        // endpoint would panic there.
        if let Err(e) = l.validate() {
            return LoopResult {
                status: LoopStatus::Invalid,
                mii: Mii {
                    res_mii: 0,
                    rec_mii: 0,
                },
                ii: None,
                schedule: None,
                objective_value: None,
                stats: SolveStats {
                    wall_time: start.elapsed(),
                    ..Default::default()
                },
                provenance: None,
                presolve: PresolveTotals::default(),
                error: Some(ScheduleError::InvalidLoop(e)),
                explanation: None,
            };
        }
        let mii = compute_mii(l, machine);
        if mii.value() > MAX_SCHEDULABLE_II {
            // A validated loop can still carry a recurrence no practical II
            // satisfies (latency sums near the validation cap). Refuse it
            // up front: neither the ILP nor the heuristics could represent
            // a schedule that long.
            return LoopResult {
                status: LoopStatus::Invalid,
                mii,
                ii: None,
                schedule: None,
                objective_value: None,
                stats: SolveStats {
                    wall_time: start.elapsed(),
                    ..Default::default()
                },
                provenance: None,
                presolve: PresolveTotals::default(),
                error: Some(ScheduleError::MiiOverflow { mii: mii.value() }),
                explanation: None,
            };
        }
        let fb = self.config.fallback;
        if !fb.enabled {
            return self.schedule_exact(l, machine, start, mii, self.config.limits.time_limit);
        }
        if fb.skip_exact {
            // Brownout: enter the ladder directly, with a base result that
            // reports the exact rung as budget-starved (which, under
            // overload, it is). If even the ladder fails, the caller sees a
            // retryable TimedOut, never a fabricated proof.
            let base = LoopResult {
                status: LoopStatus::TimedOut,
                mii,
                ii: None,
                schedule: None,
                objective_value: None,
                stats: SolveStats {
                    wall_time: start.elapsed(),
                    ..Default::default()
                },
                provenance: None,
                presolve: PresolveTotals::default(),
                error: None,
                explanation: None,
            };
            return self.degrade(l, machine, start, base);
        }

        // Rung 1: the exact solver on its slice of the budget.
        let total = self.config.limits.time_limit;
        let exact_budget = budget_share(total, fb.exact_share);
        let exact = self.schedule_exact(l, machine, start, mii, exact_budget);
        if exact.status.scheduled() || exact.status == LoopStatus::Infeasible {
            // A schedule, or a *proof* that none exists in the II span —
            // either way the ladder has nothing to add.
            return exact;
        }
        self.degrade(l, machine, start, exact)
    }

    /// Rungs 2 and 3 of the fallback ladder, entered with the exact
    /// attempt's (unscheduled) result in hand.
    fn degrade(
        &self,
        l: &Loop,
        machine: &Machine,
        start: Instant,
        exact: LoopResult,
    ) -> LoopResult {
        let trace = self.config.limits.trace.clone();
        let mut result = exact;
        let ims_cfg = ImsConfig {
            max_ii_span: self.config.max_ii_span,
            ..Default::default()
        };
        let ims = {
            let _span = trace.span(Phase::Ims);
            ims_schedule(l, machine, &ims_cfg)
        };
        let Some(ims) = ims else {
            // Not even the heuristic finds a schedule: report the exact
            // attempt's outcome unchanged.
            result.stats.wall_time = start.elapsed();
            return result;
        };

        // Rung 2: pin the IMS rows and let the ILP place stages optimally
        // for the configured objective, within the stage slice of whatever
        // budget remains.
        let total = self.config.limits.time_limit;
        let stage_budget = budget_share(total, self.config.fallback.stage_share);
        let remaining = total.saturating_sub(start.elapsed());
        let limits = SolveLimits {
            time_limit: stage_budget.min(remaining).max(Duration::from_millis(1)),
            first_solution_only: self.config.objective == Objective::FirstFeasible,
            stop: self.config.limits.stop.child(),
            ..self.config.limits.clone()
        };
        trace.emit(|| TraceEvent::Rung { rung: "stage-ilp" });
        let stage_result = {
            let _span = trace.span(Phase::StageIlp);
            optimal_stages(l, machine, &ims.schedule, self.config.objective, limits)
        };
        if let Some((schedule, obj)) = stage_result {
            return self.degraded(
                l,
                machine,
                result,
                schedule,
                Provenance::StageIlp,
                Some(obj),
                start,
            );
        }

        // Rung 3: greedy stage improvement of the raw IMS schedule. Pure
        // combinatorics — always lands, regardless of budget state.
        trace.emit(|| TraceEvent::Rung { rung: "ims" });
        let schedule = {
            let _span = trace.span(Phase::Ims);
            stage_schedule(l, machine, &ims.schedule)
        };
        self.degraded(l, machine, result, schedule, Provenance::Ims, None, start)
    }

    /// Packages a ladder-produced schedule on top of the exact attempt's
    /// result (keeping its solver statistics and recorded error).
    #[allow(clippy::too_many_arguments)] // internal plumbing of loop-local state
    fn degraded(
        &self,
        l: &Loop,
        machine: &Machine,
        mut base: LoopResult,
        schedule: Schedule,
        rung: Provenance,
        obj: Option<f64>,
        start: Instant,
    ) -> LoopResult {
        // Ladder schedules get the same exact-arithmetic certification as
        // exact ones (constraints only: the heuristics claim no optimality
        // and no objective). A refused schedule is withheld, not emitted.
        let trace = &self.config.limits.trace;
        let claim = optimod_verify::Claim {
            graph: l,
            machine,
            ii: schedule.ii(),
            times: schedule.times(),
            claimed_optimal: false,
            claimed_objective: None,
            exact_objective: None,
            claimed_bound: None,
        };
        if let Err(cert) = optimod_verify::certify(&claim) {
            let ii = schedule.ii();
            trace.emit(|| TraceEvent::Certified { ii, ok: false });
            base.status = LoopStatus::Failed;
            base.ii = None;
            base.schedule = None;
            base.objective_value = None;
            base.provenance = None;
            base.error = Some(ScheduleError::Certification(cert));
            base.stats.wall_time = start.elapsed();
            return base;
        }
        let ii = schedule.ii();
        trace.emit(|| TraceEvent::Certified { ii, ok: true });
        base.status = LoopStatus::FeasibleOnly;
        base.ii = Some(schedule.ii());
        base.objective_value = if self.config.objective == Objective::FirstFeasible {
            None
        } else {
            obj.map(round_integral)
        };
        base.schedule = Some(schedule);
        base.provenance = Some(rung);
        base.stats.wall_time = start.elapsed();
        base
    }

    /// The exact (rung-1) scheduler: MII, per-`II` solve, `II` escalation,
    /// bounded by `time_budget`.
    fn schedule_exact(
        &self,
        l: &Loop,
        machine: &Machine,
        start: Instant,
        mii: Mii,
        time_budget: Duration,
    ) -> LoopResult {
        let mut stats = SolveStats::default();
        let mut presolve_totals = PresolveTotals::default();
        let trace = self.config.limits.trace.clone();
        trace.emit(|| TraceEvent::Rung { rung: "exact" });
        // First abnormal-but-survivable condition seen (a racer panic, a
        // stalled LP); reported even when a later attempt succeeds.
        let mut sticky_error: Option<ScheduleError> = None;
        let cfg = FormulationConfig {
            dep_style: self.config.dep_style,
            objective: self.config.objective,
            sched_len_slack: self.config.sched_len_slack,
            max_live_limit: self.config.register_limit,
        };
        let first_only = self.config.objective == Objective::FirstFeasible;

        let give_up = |status: LoopStatus,
                       mut stats: SolveStats,
                       presolve: PresolveTotals,
                       error: Option<ScheduleError>| {
            stats.wall_time = start.elapsed();
            LoopResult {
                status,
                mii,
                ii: None,
                schedule: None,
                objective_value: None,
                stats,
                provenance: None,
                presolve,
                error,
                explanation: None,
            }
        };

        // Saturating: `max_ii_span` is caller-controlled, and the sum only
        // bounds the escalation loop — clamping it to `u32::MAX` merely
        // means "escalate until another limit stops us".
        let end_ii = mii.value().saturating_add(self.config.max_ii_span);
        let mut ii = mii.value();
        while ii <= end_ii {
            let elapsed = start.elapsed();
            if elapsed >= time_budget
                || stats.bb_nodes >= self.config.limits.node_limit
                || self.config.limits.stop.is_stopped()
            {
                return give_up(LoopStatus::TimedOut, stats, presolve_totals, sticky_error);
            }
            trace.emit(|| TraceEvent::IiAttempt { ii });
            let built = {
                let _span = trace.span(Phase::Formulation);
                build_model(l, machine, ii, &cfg)
            };
            let Some(mut built) = built else {
                ii += 1;
                continue; // below RecMII (possible only via direct calls)
            };
            if self.config.presolve {
                self.presolve_model(l, &mut built, &mut presolve_totals);
            }
            // Saturating: `elapsed` keeps advancing between the budget
            // check above and here, so a plain subtraction could underflow
            // under a racing clock.
            let limits = SolveLimits {
                time_limit: time_budget.saturating_sub(elapsed),
                node_limit: self.config.limits.node_limit.saturating_sub(stats.bb_nodes),
                first_solution_only: first_only,
                ..self.config.limits.clone()
            };

            // Speculation: solve `ii + 1` concurrently on half the workers.
            let threads = limits.resolve_threads();
            let mut speculative = None;
            let portfolio = self.config.portfolio && first_only;
            let search_span = trace.span(Phase::Search);
            let out = if portfolio {
                // Cross-backend portfolio: SAT and the ILP decide the same
                // II, the differential oracle arbitrating. A SAT win or a
                // disagreement returns from here; the ILP path falls
                // through to the ordinary escalation logic below.
                match self.portfolio_attempt(
                    l,
                    machine,
                    &built,
                    limits,
                    ii,
                    &mut stats,
                    &mut sticky_error,
                ) {
                    crate::portfolio::PortfolioOutcome::Ilp(out) => *out,
                    crate::portfolio::PortfolioOutcome::Sat(schedule) => {
                        drop(search_span);
                        return self.sat_scheduled(
                            mii,
                            ii,
                            schedule,
                            stats,
                            presolve_totals,
                            start,
                            sticky_error,
                        );
                    }
                    crate::portfolio::PortfolioOutcome::Disagreement(err) => {
                        drop(search_span);
                        return give_up(LoopStatus::Failed, stats, presolve_totals, Some(err));
                    }
                }
            } else if self.config.speculate_ii && threads > 1 && ii < end_ii {
                if let Some(mut built_next) = build_model(l, machine, ii + 1, &cfg) {
                    if self.config.presolve {
                        self.presolve_model(l, &mut built_next, &mut presolve_totals);
                    }
                    let half = (threads / 2).max(1) as u32;
                    let stop_next = self.config.limits.stop.child();
                    let limits_main = SolveLimits {
                        threads: half,
                        stop: self.config.limits.stop.child(),
                        ..limits.clone()
                    };
                    let limits_next = SolveLimits {
                        threads: half,
                        stop: stop_next.clone(),
                        ..limits
                    };
                    let (out, race) = std::thread::scope(|scope| {
                        let racer = scope.spawn(|| built_next.model.solve_with(limits_next));
                        let out = built.model.solve_with(limits_main);
                        if out.status != SolveStatus::Infeasible {
                            // Scheduled at `ii` (or giving up): the
                            // speculative result will not be consulted.
                            stop_next.stop();
                        }
                        let race = racer.join().map_err(|p| panic_message(p.as_ref()));
                        (out, race)
                    });
                    match race {
                        Ok(out_next) => {
                            stats.absorb(&out_next.stats);
                            speculative = Some((built_next, out_next));
                        }
                        Err(msg) => {
                            // The speculative racer died; its result was
                            // only ever advisory, so record the panic and
                            // continue with sequential escalation.
                            stats.panics_recovered += 1;
                            sticky_error
                                .get_or_insert(ScheduleError::Solver(SolveError::WorkerPanic(msg)));
                        }
                    }
                    out
                } else {
                    built.model.solve_with(limits)
                }
            } else {
                built.model.solve_with(limits)
            };
            drop(search_span);
            stats.absorb(&out.stats);
            if let Some(e) = &out.error {
                sticky_error.get_or_insert(ScheduleError::Solver(e.clone()));
            }

            match out.status {
                SolveStatus::Optimal | SolveStatus::Feasible => {
                    return self.scheduled(
                        l,
                        machine,
                        &built,
                        &out,
                        ii,
                        mii,
                        stats,
                        presolve_totals,
                        start,
                        sticky_error,
                    );
                }
                SolveStatus::Infeasible => {
                    if let Some((built_next, out_next)) = speculative {
                        if let Some(e) = &out_next.error {
                            sticky_error.get_or_insert(ScheduleError::Solver(e.clone()));
                        }
                        match out_next.status {
                            SolveStatus::Optimal | SolveStatus::Feasible => {
                                return self.scheduled(
                                    l,
                                    machine,
                                    &built_next,
                                    &out_next,
                                    ii + 1,
                                    mii,
                                    stats,
                                    presolve_totals,
                                    start,
                                    sticky_error,
                                );
                            }
                            SolveStatus::Infeasible => {
                                // Both candidates refuted. Checked: with a
                                // saturated `end_ii` the increment itself
                                // could wrap; exhausting u32 means the span
                                // is exhausted.
                                match ii.checked_add(2) {
                                    Some(next) => ii = next,
                                    None => break,
                                }
                                continue;
                            }
                            SolveStatus::LimitReached => {
                                return give_up(
                                    LoopStatus::TimedOut,
                                    stats,
                                    presolve_totals,
                                    sticky_error,
                                )
                            }
                        }
                    }
                    match ii.checked_add(1) {
                        Some(next) => ii = next,
                        None => break,
                    }
                }
                SolveStatus::LimitReached => {
                    return give_up(LoopStatus::TimedOut, stats, presolve_totals, sticky_error)
                }
            }
        }
        let mut result = give_up(LoopStatus::Infeasible, stats, presolve_totals, sticky_error);
        if self.config.explain {
            // Every II in [mii, end_ii] was refuted; explain the ceiling —
            // the largest II the caller allowed, hence the hardest one to
            // blame on a single constraint by accident.
            result.explanation =
                crate::explain::explain_infeasibility(l, machine, end_ii, &self.config);
            result.stats.wall_time = start.elapsed();
        }
        result
    }

    /// Packages a successful solve into a [`LoopResult`]. A solution that
    /// fails to decode or validate yields [`LoopStatus::Failed`] with a
    /// typed cause instead of panicking.
    #[allow(clippy::too_many_arguments)] // internal plumbing of loop-local state
    fn scheduled(
        &self,
        l: &Loop,
        machine: &Machine,
        built: &crate::formulation::BuiltModel,
        out: &SolveOutcome,
        ii: u32,
        mii: Mii,
        mut stats: SolveStats,
        presolve: PresolveTotals,
        start: Instant,
        sticky_error: Option<ScheduleError>,
    ) -> LoopResult {
        let first_only = self.config.objective == Objective::FirstFeasible;
        stats.wall_time = start.elapsed();
        let fail = |error: ScheduleError, stats: SolveStats| LoopResult {
            status: LoopStatus::Failed,
            mii,
            ii: None,
            schedule: None,
            objective_value: None,
            stats,
            provenance: None,
            presolve,
            error: Some(error),
            explanation: None,
        };
        let trace = &self.config.limits.trace;
        let schedule = {
            let _span = trace.span(Phase::Extraction);
            // Deterministic fault injection at schedule extraction. The
            // fire itself runs under `catch_unwind` so an injected panic
            // surfaces as the same typed failure a genuine extraction bug
            // would, never an unwind into the caller.
            let fired = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.config.limits.fault.fire(FaultSite::Extraction)
            }));
            match fired {
                Ok(None) => {}
                Ok(Some(action)) => {
                    trace.emit(|| TraceEvent::FaultInjected {
                        worker: 0,
                        site: FaultSite::Extraction.name(),
                        action: action.name(),
                    });
                    match action {
                        FaultAction::Stall => {
                            return fail(
                                ScheduleError::MalformedSolution {
                                    detail: "injected fault: stalled extraction".to_string(),
                                },
                                stats,
                            )
                        }
                        FaultAction::SpuriousTimeout => {
                            return LoopResult {
                                status: LoopStatus::TimedOut,
                                mii,
                                ii: None,
                                schedule: None,
                                objective_value: None,
                                stats,
                                provenance: None,
                                presolve,
                                error: sticky_error,
                                explanation: None,
                            }
                        }
                        // A tripped panic never reaches this arm (it is
                        // raised inside `fire`); a perturbation is consumed
                        // by the solver's incumbent path, not here.
                        FaultAction::Panic | FaultAction::PerturbIncumbent => {}
                    }
                }
                Err(payload) => {
                    return fail(
                        ScheduleError::Solver(SolveError::WorkerPanic(panic_message(
                            payload.as_ref(),
                        ))),
                        stats,
                    )
                }
            }
            let extracted = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                built.try_extract_schedule(out)
            }));
            match extracted {
                Ok(Ok(s)) => s,
                Ok(Err(e)) => return fail(e, stats),
                Err(payload) => {
                    return fail(
                        ScheduleError::Solver(SolveError::WorkerPanic(panic_message(
                            payload.as_ref(),
                        ))),
                        stats,
                    )
                }
            }
        };
        // Exact-arithmetic certification of the schedule and every claim
        // the solver made about it. A refused certificate withholds the
        // schedule: a wrong answer is a failure, not a result.
        let claimed_optimal = out.status == SolveStatus::Optimal;
        let claimed_objective = (!first_only).then(|| round_integral(out.objective));
        let claim = optimod_verify::Claim {
            graph: l,
            machine,
            ii,
            times: schedule.times(),
            claimed_optimal,
            claimed_objective,
            exact_objective: self.exact_objective(l, &schedule),
            claimed_bound: (!first_only && out.best_bound.is_finite()).then_some(out.best_bound),
        };
        match optimod_verify::certify(&claim) {
            Ok(_) => trace.emit(|| TraceEvent::Certified { ii, ok: true }),
            Err(cert) => {
                trace.emit(|| TraceEvent::Certified { ii, ok: false });
                return fail(ScheduleError::Certification(cert), stats);
            }
        }
        LoopResult {
            status: if out.status == SolveStatus::Optimal {
                LoopStatus::Optimal
            } else {
                LoopStatus::FeasibleOnly
            },
            mii,
            ii: Some(ii),
            schedule: Some(schedule),
            objective_value: (!first_only).then(|| round_integral(out.objective)),
            stats,
            provenance: Some(Provenance::Exact),
            presolve,
            error: sticky_error,
            explanation: None,
        }
    }

    /// Packages a certified SAT-portfolio schedule into a [`LoopResult`].
    /// The witness was certified inside the portfolio (the SAT backend is
    /// untrusted), so this only assembles the result: `Optimal` status —
    /// the portfolio runs only without a secondary objective, where the
    /// first feasible schedule at the first feasible `II` *is* the optimum.
    #[allow(clippy::too_many_arguments)] // internal plumbing of loop-local state
    fn sat_scheduled(
        &self,
        mii: Mii,
        ii: u32,
        schedule: Schedule,
        mut stats: SolveStats,
        presolve: PresolveTotals,
        start: Instant,
        sticky_error: Option<ScheduleError>,
    ) -> LoopResult {
        stats.wall_time = start.elapsed();
        LoopResult {
            status: LoopStatus::Optimal,
            mii,
            ii: Some(ii),
            schedule: Some(schedule),
            objective_value: None,
            stats,
            provenance: Some(Provenance::SatExact),
            presolve,
            error: sticky_error,
            explanation: None,
        }
    }

    /// Runs the analyzer's presolve over one built model, folding the
    /// summary into `totals` and emitting a trace event under its own phase
    /// span.
    pub(crate) fn presolve_model(
        &self,
        l: &Loop,
        built: &mut crate::formulation::BuiltModel,
        totals: &mut PresolveTotals,
    ) {
        let trace = &self.config.limits.trace;
        let _span = trace.span(Phase::Presolve);
        let summary = optimod_analyze::presolve(
            &mut built.model,
            l,
            &IlpContext {
                ii: built.ii,
                num_stages: built.num_stages,
                a: &built.a,
                k: &built.k,
            },
            &self.config.presolve_options,
        );
        totals.absorb(&summary);
        let (rows_eliminated, binaries_fixed, bounds_tightened, infeasible) = (
            summary.rows_eliminated,
            summary.binaries_fixed,
            summary.bounds_tightened,
            summary.infeasible,
        );
        trace.emit(|| TraceEvent::Presolve {
            rows_eliminated,
            binaries_fixed,
            bounds_tightened,
            infeasible,
        });
    }

    /// Ground-truth integer value of the configured secondary objective on
    /// a concrete schedule — the independent side of a certifier
    /// [`Claim`](optimod_verify::Claim), measured directly on the schedule
    /// (lifetimes, MRT rows), never read back from the ILP. `None` when no
    /// objective is configured. Public so external auditors (the CLI's
    /// `--certify`, the chaos harness) can rebuild the same claim the
    /// scheduler certifies internally.
    pub fn exact_objective(&self, l: &Loop, schedule: &Schedule) -> Option<i64> {
        match self.config.objective {
            Objective::FirstFeasible => None,
            Objective::MinMaxLive => Some(schedule.max_live(l) as i64),
            Objective::MinBuffers => Some(schedule.buffers(l) as i64),
            Objective::MinCumLifetime => {
                let total = schedule.cumulative_lifetime(l);
                Some(match self.config.dep_style {
                    DepStyle::Structured => total,
                    // The traditional form measures time(last use) −
                    // time(def): one reserved cycle per register less than
                    // the lifetime (see `install_lifetime_traditional`).
                    DepStyle::Traditional => total - l.vregs().len() as i64,
                })
            }
            Objective::MinSchedLength => schedule.times().iter().max().copied(),
        }
    }

    /// Proves or refutes feasibility at one exact `II` (used to grade
    /// heuristic schedulers: "can II be decreased?").
    ///
    /// Returns `Some(true)` if a schedule exists at `ii`, `Some(false)` if
    /// proven infeasible, `None` if the budget ran out undecided.
    pub fn feasible_at(&self, l: &Loop, machine: &Machine, ii: u32) -> Option<bool> {
        let cfg = FormulationConfig {
            dep_style: self.config.dep_style,
            objective: Objective::FirstFeasible,
            sched_len_slack: self.config.sched_len_slack,
            max_live_limit: self.config.register_limit,
        };
        let Some(mut built) = build_model(l, machine, ii, &cfg) else {
            return Some(false); // below RecMII: no schedule of any length
        };
        if self.config.presolve {
            let mut totals = PresolveTotals::default();
            self.presolve_model(l, &mut built, &mut totals);
        }
        let limits = SolveLimits {
            first_solution_only: true,
            ..self.config.limits.clone()
        };
        match built.model.solve_with(limits).status {
            SolveStatus::Optimal | SolveStatus::Feasible => Some(true),
            SolveStatus::Infeasible => Some(false),
            SolveStatus::LimitReached => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimod_ddg::kernels;
    use optimod_machine::{cydra_like, example_3fu};

    #[test]
    fn noobj_achieves_mii_on_figure1() {
        let m = example_3fu();
        let l = kernels::figure1(&m);
        let s = OptimalScheduler::new(SchedulerConfig::default());
        let r = s.schedule(&l, &m);
        assert_eq!(r.status, LoopStatus::Optimal);
        assert_eq!(r.ii, Some(2));
        let sched = r.schedule.unwrap();
        assert_eq!(sched.validate(&l, &m), None);
    }

    #[test]
    fn minreg_matches_paper_figure1() {
        let m = example_3fu();
        let l = kernels::figure1(&m);
        let s = OptimalScheduler::new(SchedulerConfig::new(
            DepStyle::Structured,
            Objective::MinMaxLive,
        ));
        let r = s.schedule(&l, &m);
        assert_eq!(r.status, LoopStatus::Optimal);
        assert_eq!(r.ii, Some(2));
        let sched = r.schedule.unwrap();
        // The paper's Figure 1 shows a minimum-register schedule with
        // MaxLive 7 at II 2.
        assert_eq!(sched.max_live(&l), 7);
        assert_eq!(r.objective_value, Some(7.0));
    }

    #[test]
    fn traditional_and_structured_agree_on_minreg() {
        let m = example_3fu();
        for l in [
            kernels::figure1(&m),
            kernels::saxpy(&m),
            kernels::dot_product(&m),
            kernels::lfk11_first_sum(&m),
        ] {
            let mut results = Vec::new();
            for style in [DepStyle::Traditional, DepStyle::Structured] {
                let s = OptimalScheduler::new(SchedulerConfig::new(style, Objective::MinMaxLive));
                let r = s.schedule(&l, &m);
                assert_eq!(r.status, LoopStatus::Optimal, "{} {style:?}", l.name());
                results.push((r.ii, r.objective_value));
            }
            assert_eq!(results[0], results[1], "{}", l.name());
        }
    }

    #[test]
    fn recurrence_bound_respected() {
        let m = example_3fu();
        let l = kernels::lfk5_tridiag(&m);
        let s = OptimalScheduler::new(SchedulerConfig::default());
        let r = s.schedule(&l, &m);
        assert_eq!(r.ii, Some(5)); // RecMII = 5 and it is achievable
    }

    #[test]
    fn feasibility_probe() {
        let m = example_3fu();
        let l = kernels::figure1(&m);
        let s = OptimalScheduler::new(SchedulerConfig::default());
        assert_eq!(s.feasible_at(&l, &m, 1), Some(false));
        assert_eq!(s.feasible_at(&l, &m, 2), Some(true));
        assert_eq!(s.feasible_at(&l, &m, 5), Some(true));
    }

    #[test]
    fn min_sched_length_objective() {
        let m = example_3fu();
        let l = kernels::figure1(&m);
        let s = OptimalScheduler::new(SchedulerConfig::new(
            DepStyle::Structured,
            Objective::MinSchedLength,
        ));
        let r = s.schedule(&l, &m);
        assert_eq!(r.status, LoopStatus::Optimal);
        let sched = r.schedule.unwrap();
        // Critical path: ld(1) -> mult(4) -> sub(1) -> st: length 7. The
        // solver minimizes the last issue cycle, and with k >= 0 the first
        // issue lands at cycle >= 0, so the makespan equals length - 1.
        assert_eq!(r.objective_value, Some(6.0));
        assert_eq!(sched.length(), 7);
        assert_eq!(sched.validate(&l, &m), None);
    }

    #[test]
    fn speculative_ii_race_matches_sequential_escalation() {
        let m = example_3fu();
        for l in [
            kernels::figure1(&m),
            kernels::lfk5_tridiag(&m),
            kernels::dot_product(&m),
        ] {
            let baseline = OptimalScheduler::new(SchedulerConfig::default()).schedule(&l, &m);
            let mut cfg = SchedulerConfig {
                speculate_ii: true,
                ..Default::default()
            };
            cfg.limits.threads = 2;
            let raced = OptimalScheduler::new(cfg).schedule(&l, &m);
            assert_eq!(raced.status, baseline.status, "{}", l.name());
            assert_eq!(raced.ii, baseline.ii, "{}", l.name());
            assert_eq!(
                raced.objective_value,
                baseline.objective_value,
                "{}",
                l.name()
            );
            assert_eq!(
                raced.schedule.unwrap().validate(&l, &m),
                None,
                "{}",
                l.name()
            );
        }
    }

    #[test]
    fn stopped_scheduler_reports_timeout() {
        let m = example_3fu();
        let l = kernels::figure1(&m);
        let cfg = SchedulerConfig::default();
        cfg.limits.stop.stop();
        let r = OptimalScheduler::new(cfg).schedule(&l, &m);
        assert_eq!(r.status, LoopStatus::TimedOut);
    }

    #[test]
    fn portfolio_matches_ilp_only_on_kernels() {
        let m = example_3fu();
        for l in [
            kernels::figure1(&m),
            kernels::lfk5_tridiag(&m),
            kernels::dot_product(&m),
        ] {
            let baseline = OptimalScheduler::new(SchedulerConfig::default()).schedule(&l, &m);
            let mut cfg = SchedulerConfig {
                portfolio: true,
                ..Default::default()
            };
            cfg.limits.threads = 1; // serial, deterministic portfolio
            let r = OptimalScheduler::new(cfg).schedule(&l, &m);
            assert_eq!(r.status, baseline.status, "{}", l.name());
            assert_eq!(r.ii, baseline.ii, "{}", l.name());
            assert_eq!(r.schedule.unwrap().validate(&l, &m), None, "{}", l.name());
            let p = r.provenance.unwrap();
            assert!(
                matches!(p, Provenance::Exact | Provenance::SatExact),
                "{}: {p}",
                l.name()
            );
            assert!(!p.degraded(), "{}", l.name());
        }
    }

    #[test]
    fn serial_portfolio_lets_sat_win_and_counts_its_effort() {
        let m = example_3fu();
        let l = kernels::figure1(&m);
        let mut cfg = SchedulerConfig {
            portfolio: true,
            ..Default::default()
        };
        cfg.limits.threads = 1;
        let r = OptimalScheduler::new(cfg).schedule(&l, &m);
        // Serial mode runs SAT first; figure1 at II 2 is easy, so the SAT
        // backend settles the cell before the ILP is even consulted.
        assert_eq!(r.status, LoopStatus::Optimal);
        assert_eq!(r.ii, Some(2));
        assert_eq!(r.provenance, Some(Provenance::SatExact));
        assert!(r.stats.sat_decisions > 0 || r.stats.sat_propagations > 0);
        assert_eq!(r.error, None);
    }

    #[test]
    fn sabotaged_encoder_is_caught_as_a_minimized_disagreement() {
        let m = example_3fu();
        let l = kernels::figure1(&m);
        let mut cfg = SchedulerConfig {
            portfolio: true,
            // Forbidding op 0 every slot makes the CNF unsatisfiable at
            // every II while the ILP schedules normally: a certified
            // contradiction the oracle must catch.
            sat_encode: optimod_sat::EncodeOptions {
                forbid_op: Some(0),
                ..Default::default()
            },
            ..Default::default()
        };
        cfg.limits.threads = 1;
        let r = OptimalScheduler::new(cfg).schedule(&l, &m);
        assert_eq!(r.status, LoopStatus::Failed);
        assert!(r.schedule.is_none());
        let Some(ScheduleError::BackendDisagreement { ii, repro, .. }) = r.error else {
            panic!("expected BackendDisagreement, got {:?}", r.error);
        };
        assert_eq!(ii, 2);
        // The repro must replay through the textual loop format.
        let parsed = optimod_ddg::textfmt::parse(&repro).expect("repro parses");
        assert_eq!(parsed.machine.name(), m.name());
        assert_eq!(parsed.l.ops().len(), l.ops().len());
        // Greedy minimization dropped at least one dependence (figure1's
        // feasibility at II 2 does not hinge on every edge).
        assert!(parsed.l.edges().len() < l.edges().len());
    }

    #[test]
    fn parallel_portfolio_merges_both_backends_counters() {
        let m = example_3fu();
        let l = kernels::lfk5_tridiag(&m);
        let baseline = OptimalScheduler::new(SchedulerConfig::default()).schedule(&l, &m);
        let mut cfg = SchedulerConfig {
            portfolio: true,
            ..Default::default()
        };
        cfg.limits.threads = 2;
        let r = OptimalScheduler::new(cfg).schedule(&l, &m);
        assert_eq!(r.status, baseline.status);
        assert_eq!(r.ii, baseline.ii);
        assert_eq!(r.schedule.unwrap().validate(&l, &m), None);
        // Whichever backend won, the loser's partial counters were merged
        // through the audited absorb path: the SAT side always at least
        // loaded the problem.
        assert!(r.stats.sat_propagations > 0 || r.stats.sat_decisions > 0);
    }

    #[test]
    fn portfolio_survives_a_sat_panic_and_counts_the_recovery() {
        use optimod_ilp::FaultPlan;
        let m = example_3fu();
        let l = kernels::figure1(&m);
        let mut cfg = SchedulerConfig {
            portfolio: true,
            ..Default::default()
        };
        cfg.limits.threads = 1;
        cfg.limits.fault = FaultPlan::single(FaultSite::SatPropagate, FaultAction::Panic, 1);
        let r = OptimalScheduler::new(cfg).schedule(&l, &m);
        // The SAT backend dies on its first propagation; the portfolio
        // recovers, the ILP schedules the loop, and the panic is recorded.
        assert_eq!(r.status, LoopStatus::Optimal);
        assert_eq!(r.ii, Some(2));
        assert_eq!(r.provenance, Some(Provenance::Exact));
        assert!(r.stats.panics_recovered >= 1);
        assert!(matches!(r.error, Some(ScheduleError::Solver(_))));
    }

    #[test]
    fn portfolio_is_inert_under_a_secondary_objective() {
        let m = example_3fu();
        let l = kernels::figure1(&m);
        let baseline = OptimalScheduler::new(SchedulerConfig::new(
            DepStyle::Structured,
            Objective::MinMaxLive,
        ))
        .schedule(&l, &m);
        let cfg = SchedulerConfig {
            portfolio: true,
            ..SchedulerConfig::new(DepStyle::Structured, Objective::MinMaxLive)
        };
        let r = OptimalScheduler::new(cfg).schedule(&l, &m);
        // MinReg falls back to ILP-only: same optimum, exact provenance,
        // and no SAT effort spent.
        assert_eq!(r.status, baseline.status);
        assert_eq!(r.ii, baseline.ii);
        assert_eq!(r.objective_value, baseline.objective_value);
        assert_eq!(r.provenance, Some(Provenance::Exact));
        assert_eq!(r.stats.sat_decisions, 0);
        assert_eq!(r.stats.sat_propagations, 0);
    }

    #[test]
    fn cydra_divide_recurrence_schedules() {
        let m = cydra_like();
        let l = kernels::divide_recurrence(&m);
        let s = OptimalScheduler::new(SchedulerConfig::default());
        let r = s.schedule(&l, &m);
        assert!(r.status.scheduled());
        // RecMII is 9 via the div->div self-loop (latency 9, distance 1);
        // the unpipelined divider alone would force ResMII 6.
        assert_eq!(r.mii.rec_mii, 9);
        assert!(r.ii.unwrap() >= 9);
        assert_eq!(r.schedule.unwrap().validate(&l, &m), None);
    }
}
