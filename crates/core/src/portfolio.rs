//! Cross-backend portfolio: the CDCL SAT core raced against the ILP, with
//! a differential bug oracle between them.
//!
//! For a tentative `II` the portfolio asks two independently implemented
//! decision procedures the same question — the branch-and-bound ILP over
//! the 0-1-structured formulation, and `optimod-sat`'s CDCL solver over a
//! CNF compiled from the very same model (honoring the presolve fixings as
//! restricted slot domains). Arbitration rules:
//!
//! * a SAT schedule counts only after it passes the same exact-arithmetic
//!   certification every ILP schedule passes — the SAT backend is
//!   untrusted by design;
//! * a SAT *infeasible* verdict alone never escalates `II`: escalation
//!   requires the ILP's own infeasibility proof;
//! * when both backends return definitive, contradictory verdicts for the
//!   same `II` — one side's witness certified, the other side proving the
//!   instance infeasible — the run fails with
//!   [`ScheduleError::BackendDisagreement`], carrying a greedily minimized
//!   reproduction in the textual loop format. A disagreement is a hard bug
//!   in a backend or the encoder, never a legitimate outcome.
//!
//! With one worker thread the two backends run *serially* (SAT first) so
//! portfolio results are deterministic and pinnable in the golden corpus;
//! with more threads they race on [`optimod_par::race2`], the first
//! certified answer cancelling the loser through its
//! [`StopFlag`](optimod_ilp::StopFlag) — whose partial statistics are
//! still merged through the audited [`SolveStats::absorb`] path.

use std::time::Duration;

use optimod_ddg::{DepKind, Loop, LoopBuilder};
use optimod_ilp::{
    panic_message, SolveError, SolveLimits, SolveOutcome, SolveStats, SolveStatus, StopFlag,
};
use optimod_machine::Machine;
use optimod_sat::{encode, solve as sat_solve, SatLimits, SatOutcome, SatStats, SlotDomains};
use optimod_trace::TraceEvent;

use crate::error::ScheduleError;
use crate::formulation::{build_model, BuiltModel, FormulationConfig, Objective};
use crate::schedule::Schedule;
use crate::scheduler::OptimalScheduler;

/// What the SAT backend established about one tentative `II`.
pub(crate) enum SatVerdict {
    /// A satisfying assignment that decoded *and certified*.
    Schedule(Schedule),
    /// The CNF was proven unsatisfiable.
    Infeasible,
    /// Budget, cancellation, an injected fault, or an uncertifiable
    /// witness: nothing trustworthy either way.
    Unknown,
}

impl SatVerdict {
    fn name(&self) -> &'static str {
        match self {
            SatVerdict::Schedule(_) => "feasible",
            SatVerdict::Infeasible => "infeasible",
            SatVerdict::Unknown => "unknown",
        }
    }
}

/// How one portfolio attempt at a tentative `II` resolved.
pub(crate) enum PortfolioOutcome {
    /// The SAT backend won with a certified schedule.
    Sat(Schedule),
    /// The ILP outcome is authoritative (schedule, infeasibility proof, or
    /// limit); the escalation loop proceeds exactly as without a portfolio.
    /// Boxed: a `SolveOutcome` carries the full variable assignment and
    /// would dominate the enum's footprint.
    Ilp(Box<SolveOutcome>),
    /// The differential oracle caught the backends contradicting each
    /// other.
    Disagreement(ScheduleError),
}

fn ilp_verdict_name(status: SolveStatus) -> &'static str {
    match status {
        SolveStatus::Optimal | SolveStatus::Feasible => "feasible",
        SolveStatus::Infeasible => "infeasible",
        SolveStatus::LimitReached => "unknown",
    }
}

/// Folds a SAT run's counters into the scheduler's [`SolveStats`] shape so
/// they travel through the audited `absorb` merge path like every other
/// backend's effort.
fn as_solve_stats(st: &SatStats) -> SolveStats {
    SolveStats {
        sat_decisions: st.decisions,
        sat_propagations: st.propagations,
        sat_conflicts: st.conflicts,
        sat_restarts: st.restarts,
        sat_learned: st.learned,
        faults_injected: st.faults_injected,
        ..Default::default()
    }
}

/// Reads the per-op slot domains off a (presolved) built model: the stage
/// variables' bounds and the MRT row binaries still free or forced. This
/// is how analyzer fixings reach the CNF as unit-clause-level restrictions.
pub(crate) fn slot_domains(built: &BuiltModel) -> SlotDomains {
    let n = built.a.len();
    let mut stage_bounds = Vec::with_capacity(n);
    let mut row_allowed = Vec::with_capacity(n);
    for op in 0..n {
        let k = built.k[op];
        stage_bounds.push((
            built.model.lb(k).ceil() as i64,
            built.model.ub(k).floor() as i64,
        ));
        let mut rows: Vec<bool> = built.a[op]
            .iter()
            .map(|&v| built.model.ub(v) > 0.5)
            .collect();
        if let Some(forced) = built.a[op].iter().position(|&v| built.model.lb(v) > 0.5) {
            for (r, b) in rows.iter_mut().enumerate() {
                *b = r == forced;
            }
        }
        row_allowed.push(rows);
    }
    SlotDomains {
        num_stages: built.num_stages,
        stage_bounds,
        row_allowed,
    }
}

/// Rebuilds `l` as `name`, keeping only the edges with `keep[i]` set. Flow
/// edges come back as memory dependences of equal latency and distance —
/// identical scheduling constraints without needing virtual registers,
/// which the feasibility-only repro never inspects.
pub(crate) fn rebuild(l: &Loop, machine: &Machine, name: &str, keep: &[bool]) -> Option<Loop> {
    let mut b = LoopBuilder::new(name);
    let ids: Vec<_> = l
        .ops()
        .iter()
        .enumerate()
        .map(|(i, op)| b.op(op.class, format!("o{i}")))
        .collect();
    for (i, e) in l.edges().iter().enumerate() {
        if !keep[i] {
            continue;
        }
        let kind = match e.kind {
            DepKind::Anti => DepKind::Anti,
            DepKind::Control => DepKind::Control,
            DepKind::Flow | DepKind::Memory => DepKind::Memory,
        };
        b.dep(
            ids[e.from.index()],
            ids[e.to.index()],
            e.latency,
            e.distance,
            kind,
        );
    }
    b.try_build(machine).ok()
}

/// Renders a loop as a replayable textual repro file, one `#` comment per
/// `header` line.
pub(crate) fn render_repro(l: &Loop, machine: &Machine, header: &[String]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for line in header {
        let _ = writeln!(s, "# {line}");
    }
    let _ = writeln!(s, "machine {}", machine.name());
    for (i, op) in l.ops().iter().enumerate() {
        let _ = writeln!(s, "op o{i} {}", op.class.mnemonic());
    }
    for e in l.edges() {
        let kind = match e.kind {
            DepKind::Anti => "anti",
            DepKind::Control => "control",
            DepKind::Flow | DepKind::Memory => "memory",
        };
        let _ = writeln!(
            s,
            "dep o{} o{} {} {} {kind}",
            e.from.index(),
            e.to.index(),
            e.latency,
            e.distance
        );
    }
    s
}

/// Edge-count ceiling for the greedy minimizer: each candidate costs a
/// bounded SAT + ILP re-solve, so enormous graphs ship unminimized rather
/// than stalling the failure report.
const MINIMIZE_EDGE_CAP: usize = 64;

impl OptimalScheduler {
    /// One portfolio attempt at `ii`: both backends under the shared
    /// budget, with trace tagging and differential arbitration. SAT-side
    /// statistics (and, on every early-return path, the ILP side's) are
    /// folded into `stats`; on the [`PortfolioOutcome::Ilp`] path the
    /// caller absorbs the ILP outcome's statistics itself, exactly as in
    /// the non-portfolio flow.
    #[allow(clippy::too_many_arguments)] // internal plumbing of loop-local state
    pub(crate) fn portfolio_attempt(
        &self,
        l: &Loop,
        machine: &Machine,
        built: &BuiltModel,
        limits: SolveLimits,
        ii: u32,
        stats: &mut SolveStats,
        sticky_error: &mut Option<ScheduleError>,
    ) -> PortfolioOutcome {
        let trace = self.config().limits.trace.clone();
        let domains = slot_domains(built);
        if limits.resolve_threads() <= 1 {
            // Serial, deterministic mode: SAT decides first. A certified
            // SAT schedule settles the cell without running the ILP at
            // all; anything weaker defers to the ILP's verdict.
            let sat_res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.sat_attempt(l, machine, ii, &domains, &limits, limits.stop.child())
            }));
            let (verdict, sat_stats, sat_err) = match sat_res {
                Ok(t) => t,
                Err(p) => {
                    stats.panics_recovered += 1;
                    sticky_error.get_or_insert(ScheduleError::Solver(SolveError::WorkerPanic(
                        panic_message(p.as_ref()),
                    )));
                    (SatVerdict::Unknown, SatStats::default(), None)
                }
            };
            stats.absorb(&as_solve_stats(&sat_stats));
            if let Some(e) = sat_err {
                sticky_error.get_or_insert(e);
            }
            let verdict_name = verdict.name();
            trace.emit(|| TraceEvent::BackendResult {
                backend: "sat",
                ii,
                verdict: verdict_name,
            });
            if let SatVerdict::Schedule(s) = verdict {
                trace.emit(|| TraceEvent::PortfolioWin { backend: "sat", ii });
                return PortfolioOutcome::Sat(s);
            }
            let out = built.model.solve_with(limits);
            let status = out.status;
            trace.emit(|| TraceEvent::BackendResult {
                backend: "ilp",
                ii,
                verdict: ilp_verdict_name(status),
            });
            if matches!(verdict, SatVerdict::Infeasible) {
                if let Some(err) = self.check_unsat_disagreement(l, machine, built, &out, ii) {
                    stats.absorb(&out.stats);
                    return PortfolioOutcome::Disagreement(err);
                }
            }
            if out.status.has_solution() {
                trace.emit(|| TraceEvent::PortfolioWin { backend: "ilp", ii });
            }
            return PortfolioOutcome::Ilp(Box::new(out));
        }

        // Parallel mode: race the backends, first useful answer cancels
        // the loser. `race2` still joins the loser, so its (partial)
        // statistics are never dropped.
        let ilp_stop = limits.stop.child();
        let sat_stop = limits.stop.child();
        let ilp_limits = SolveLimits {
            stop: ilp_stop.clone(),
            ..limits.clone()
        };
        let sat_stop_worker = sat_stop.clone();
        let outcome = optimod_par::race2(
            || built.model.solve_with(ilp_limits),
            || self.sat_attempt(l, machine, ii, &domains, &limits, sat_stop_worker),
            |first| match first {
                optimod_par::Either::A(out) => {
                    // An ILP schedule or infeasibility proof settles the
                    // cell; only a limit leaves the SAT side a chance to
                    // rescue it.
                    if out.status != SolveStatus::LimitReached {
                        sat_stop.stop();
                    }
                }
                optimod_par::Either::B((verdict, _, _)) => {
                    if matches!(verdict, SatVerdict::Schedule(_)) {
                        ilp_stop.stop();
                    }
                }
            },
        );
        let (verdict, sat_stats, sat_err) = match outcome.b {
            Ok(t) => t,
            Err(msg) => {
                stats.panics_recovered += 1;
                sticky_error.get_or_insert(ScheduleError::Solver(SolveError::WorkerPanic(msg)));
                (SatVerdict::Unknown, SatStats::default(), None)
            }
        };
        stats.absorb(&as_solve_stats(&sat_stats));
        if let Some(e) = sat_err {
            sticky_error.get_or_insert(e);
        }
        let verdict_name = verdict.name();
        trace.emit(|| TraceEvent::BackendResult {
            backend: "sat",
            ii,
            verdict: verdict_name,
        });
        let ilp_out = match outcome.a {
            Ok(out) => {
                let status = out.status;
                trace.emit(|| TraceEvent::BackendResult {
                    backend: "ilp",
                    ii,
                    verdict: ilp_verdict_name(status),
                });
                Some(out)
            }
            Err(msg) => {
                stats.panics_recovered += 1;
                sticky_error.get_or_insert(ScheduleError::Solver(SolveError::WorkerPanic(msg)));
                trace.emit(|| TraceEvent::BackendResult {
                    backend: "ilp",
                    ii,
                    verdict: "unknown",
                });
                None
            }
        };
        match verdict {
            SatVerdict::Schedule(s) => {
                if let Some(out) = &ilp_out {
                    stats.absorb(&out.stats);
                    if out.status == SolveStatus::Infeasible {
                        let detail = "sat produced a certified schedule but the ilp proved \
                                      the same II infeasible"
                            .to_string();
                        return PortfolioOutcome::Disagreement(
                            self.disagreement(l, machine, ii, detail),
                        );
                    }
                }
                trace.emit(|| TraceEvent::PortfolioWin { backend: "sat", ii });
                PortfolioOutcome::Sat(s)
            }
            SatVerdict::Infeasible | SatVerdict::Unknown => {
                let Some(out) = ilp_out else {
                    // The ILP worker died and SAT has no certified answer:
                    // report a limit so the escalation loop gives up
                    // cleanly with the recorded panic as the cause.
                    return PortfolioOutcome::Ilp(Box::new(SolveOutcome {
                        status: SolveStatus::LimitReached,
                        objective: f64::NAN,
                        values: Vec::new(),
                        best_bound: f64::NAN,
                        stats: SolveStats::default(),
                        error: None,
                    }));
                };
                if matches!(verdict, SatVerdict::Infeasible) {
                    if let Some(err) = self.check_unsat_disagreement(l, machine, built, &out, ii) {
                        stats.absorb(&out.stats);
                        return PortfolioOutcome::Disagreement(err);
                    }
                }
                if out.status.has_solution() {
                    trace.emit(|| TraceEvent::PortfolioWin { backend: "ilp", ii });
                }
                PortfolioOutcome::Ilp(Box::new(out))
            }
        }
    }

    /// Runs the SAT backend once at `ii`: encode (under the configured
    /// [`EncodeOptions`](optimod_sat::EncodeOptions)), solve, decode, and
    /// certify. The verdict is [`SatVerdict::Schedule`] only for a
    /// certified witness; an uncertifiable one degrades to
    /// [`SatVerdict::Unknown`] with the refusal recorded as a SAT-side
    /// failure — never a disagreement, so chaos-injected incumbent
    /// perturbations surface as recovered degradations, not false alarms.
    fn sat_attempt(
        &self,
        l: &Loop,
        machine: &Machine,
        ii: u32,
        domains: &SlotDomains,
        limits: &SolveLimits,
        stop: StopFlag,
    ) -> (SatVerdict, SatStats, Option<ScheduleError>) {
        let sat_limits = SatLimits {
            time_limit: limits.time_limit,
            conflict_limit: limits.node_limit,
            seed: 0x5A7 ^ u64::from(ii),
            stop,
            fault: limits.fault.clone(),
        };
        let enc = encode(l, machine, ii, domains, &self.config().sat_encode);
        let (out, st) = sat_solve(&enc.cnf, &sat_limits);
        match out {
            SatOutcome::Sat(model) => {
                let mut times = match enc.decode(&model) {
                    Ok(t) => t,
                    Err(detail) => {
                        return (
                            SatVerdict::Unknown,
                            st,
                            Some(ScheduleError::MalformedSolution {
                                detail: format!("sat model: {detail}"),
                            }),
                        )
                    }
                };
                // The SAT analogue of the ILP's incumbent corruption: a
                // latched perturbation shifts one issue time, and the
                // certifier below must catch it (or the shifted schedule
                // happens to stay legal, which is equally acceptable).
                if limits.fault.take_incumbent_perturbation() {
                    if let Some(t) = times.first_mut() {
                        *t += 1;
                    }
                }
                let trace = &self.config().limits.trace;
                let claim = optimod_verify::Claim::feasibility(l, machine, ii, &times, true);
                match optimod_verify::certify(&claim) {
                    Ok(_) => {
                        trace.emit(|| TraceEvent::Certified { ii, ok: true });
                        (SatVerdict::Schedule(Schedule::new(ii, times)), st, None)
                    }
                    Err(cert) => {
                        trace.emit(|| TraceEvent::Certified { ii, ok: false });
                        (
                            SatVerdict::Unknown,
                            st,
                            Some(ScheduleError::MalformedSolution {
                                detail: format!("sat witness refused by the certifier: {cert}"),
                            }),
                        )
                    }
                }
            }
            SatOutcome::Unsat => (SatVerdict::Infeasible, st, None),
            SatOutcome::Unknown => (SatVerdict::Unknown, st, None),
        }
    }

    /// The oracle's SAT-unsat arm: SAT proved `ii` infeasible; if the ILP
    /// found a schedule *and* that schedule certifies, the backends are in
    /// certified contradiction.
    fn check_unsat_disagreement(
        &self,
        l: &Loop,
        machine: &Machine,
        built: &BuiltModel,
        out: &SolveOutcome,
        ii: u32,
    ) -> Option<ScheduleError> {
        if !out.status.has_solution() {
            return None;
        }
        let schedule = built.try_extract_schedule(out).ok()?;
        let claim = optimod_verify::Claim::feasibility(l, machine, ii, schedule.times(), false);
        if optimod_verify::certify(&claim).is_err() {
            // The ILP's witness does not even certify: an ILP-side defect
            // the normal packaging path reports; no certified contradiction.
            return None;
        }
        let detail =
            "sat proved the II infeasible but the ilp schedule passed certification".to_string();
        Some(self.disagreement(l, machine, ii, detail))
    }

    /// Builds the [`ScheduleError::BackendDisagreement`], minimizing the
    /// instance first.
    fn disagreement(&self, l: &Loop, machine: &Machine, ii: u32, detail: String) -> ScheduleError {
        let repro = self.minimize_disagreement(l, machine, ii, &detail);
        ScheduleError::BackendDisagreement { ii, detail, repro }
    }

    /// Greedy edge-dropping minimizer: drop each dependence in turn,
    /// keeping the drop whenever the (bounded) re-check still shows a
    /// certified contradiction at `ii`. The survivor renders as a
    /// replayable `.loop` text.
    fn minimize_disagreement(&self, l: &Loop, machine: &Machine, ii: u32, detail: &str) -> String {
        let mut keep = vec![true; l.edges().len()];
        if keep.len() <= MINIMIZE_EDGE_CAP {
            for e in 0..keep.len() {
                keep[e] = false;
                let still_disagrees = rebuild(l, machine, "disagreement-repro", &keep)
                    .is_some_and(|cand| self.disagreement_persists(&cand, machine, ii));
                if !still_disagrees {
                    keep[e] = true;
                }
            }
        }
        let header = [
            "optimod cross-backend disagreement repro (minimized)".to_string(),
            detail.to_string(),
            format!("disagreeing II: {ii}"),
        ];
        match rebuild(l, machine, "disagreement-repro", &keep) {
            Some(minimized) => render_repro(&minimized, machine, &header),
            // The rebuilt form should always validate (the edges kept are a
            // subset of a validated loop's); render the original as a
            // fallback rather than failing the failure report.
            None => render_repro(l, machine, &header),
        }
    }

    /// Bounded re-check of a candidate instance: do the two backends still
    /// contradict each other with certified verdicts at `ii`?
    fn disagreement_persists(&self, l: &Loop, machine: &Machine, ii: u32) -> bool {
        let cfg = FormulationConfig {
            dep_style: self.config().dep_style,
            objective: Objective::FirstFeasible,
            sched_len_slack: self.config().sched_len_slack,
            max_live_limit: None,
        };
        let Some(mut built) = build_model(l, machine, ii, &cfg) else {
            return false;
        };
        if self.config().presolve {
            let mut totals = optimod_analyze::PresolveTotals::default();
            self.presolve_model(l, &mut built, &mut totals);
        }
        let domains = slot_domains(&built);
        let enc = encode(l, machine, ii, &domains, &self.config().sat_encode);
        let sat_limits = SatLimits {
            time_limit: Duration::from_secs(2),
            conflict_limit: 50_000,
            seed: 0x5A7 ^ u64::from(ii),
            ..Default::default()
        };
        let (sat_out, _) = sat_solve(&enc.cnf, &sat_limits);
        let ilp_limits = SolveLimits {
            time_limit: Duration::from_secs(2),
            node_limit: 20_000,
            threads: 1,
            first_solution_only: true,
            ..Default::default()
        };
        let out = built.model.solve_with(ilp_limits);
        match sat_out {
            SatOutcome::Sat(model) => {
                let Ok(times) = enc.decode(&model) else {
                    return false;
                };
                out.status == SolveStatus::Infeasible
                    && optimod_verify::certify(&optimod_verify::Claim::feasibility(
                        l, machine, ii, &times, false,
                    ))
                    .is_ok()
            }
            SatOutcome::Unsat => {
                out.status.has_solution()
                    && built.try_extract_schedule(&out).is_ok_and(|s| {
                        optimod_verify::certify(&optimod_verify::Claim::feasibility(
                            l,
                            machine,
                            ii,
                            s.times(),
                            false,
                        ))
                        .is_ok()
                    })
            }
            SatOutcome::Unknown => false,
        }
    }
}
