//! Kernel code generation: modulo variable expansion (MVE), prologue /
//! kernel / epilogue construction, and register renaming.
//!
//! A modulo schedule overlaps `S` stages of consecutive iterations, so a
//! value defined by iteration `i` may still be live while iterations
//! `i+1, i+2, …` define the *same* virtual register. On machines without
//! rotating register files the standard fix is **modulo variable
//! expansion** (Lam 1988; also Rau's MICRO-27 paper): unroll the kernel by
//!
//! ```text
//! u = max_v ceil(lifetime(v) / II)
//! ```
//!
//! and give each unrolled copy its own register names, so a register is
//! overwritten only `u·II` cycles after its definition — no earlier than
//! any use. This module computes the expansion, the renamed kernel, and the
//! prologue/epilogue that fill and drain the pipeline.

use optimod_ddg::{Loop, OpId};

use crate::schedule::Schedule;

/// One issued instruction of the emitted pipelined loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inst {
    /// Issue cycle. Prologue/epilogue cycles are absolute from pipeline
    /// start; kernel cycles are relative to the (unrolled) kernel body.
    pub cycle: i64,
    /// The loop operation this instance executes.
    pub op: OpId,
    /// Which logical iteration the instance belongs to: absolute in the
    /// prologue/epilogue, a kernel-copy index `0..unroll` in the kernel.
    pub iteration: i64,
    /// Renamed destination register, when the operation defines a value.
    pub dest: Option<String>,
    /// Renamed source registers, one per register-edge input.
    pub sources: Vec<String>,
}

/// The pipelined form of a scheduled loop.
#[derive(Debug, Clone)]
pub struct PipelinedLoop {
    /// Initiation interval.
    pub ii: u32,
    /// Kernel unroll factor chosen by modulo variable expansion.
    pub unroll: u32,
    /// Number of overlapped stages (prologue depth + 1).
    pub stages: u32,
    /// Pipeline-fill code: iterations `0..stages-1`, partially issued.
    pub prologue: Vec<Inst>,
    /// Steady-state body of `unroll * II` cycles; executing it once runs
    /// `unroll` iterations.
    pub kernel: Vec<Inst>,
    /// Pipeline-drain code for the final `stages-1` iterations.
    pub epilogue: Vec<Inst>,
}

impl PipelinedLoop {
    /// Cycles of one kernel body execution.
    pub fn kernel_cycles(&self) -> i64 {
        self.unroll as i64 * self.ii as i64
    }

    /// Renders the pipelined loop as pseudo-assembly for inspection.
    pub fn to_text(&self, l: &Loop) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let emit = |title: &str, insts: &[Inst], s: &mut String| {
            let _ = writeln!(s, "{title}:");
            for i in insts {
                let dst = i
                    .dest
                    .as_deref()
                    .map(|d| format!("{d} = "))
                    .unwrap_or_default();
                let _ = writeln!(
                    s,
                    "  [c{:>3}] {}{} ({}) it{}",
                    i.cycle,
                    dst,
                    l.op(i.op).name,
                    i.sources.join(", "),
                    i.iteration
                );
            }
        };
        emit("prologue", &self.prologue, &mut s);
        emit("kernel", &self.kernel, &mut s);
        emit("epilogue", &self.epilogue, &mut s);
        s
    }
}

/// The MVE unroll factor: the largest per-register buffer count.
pub fn unroll_factor(l: &Loop, s: &Schedule) -> u32 {
    let ii = s.ii() as i64;
    l.vregs()
        .iter()
        .map(|vr| {
            let lt = s.lifetime(vr);
            ((lt.length() + ii - 1) / ii) as u32
        })
        .max()
        .unwrap_or(1)
        .max(1)
}

/// Register name for the value of `def` produced by kernel copy `copy`.
fn reg_name(l: &Loop, def: OpId, copy: i64, unroll: u32) -> String {
    format!("{}_{}", l.op(def).name, copy.rem_euclid(unroll as i64))
}

/// Finds the defining vreg of `op`, if it produces a value.
fn defines_vreg(l: &Loop, op: OpId) -> bool {
    l.vregs().iter().any(|vr| vr.def == op)
}

/// Renamed source registers for `op` executed as (absolute or kernel-copy)
/// iteration `iter`.
fn sources_for(l: &Loop, op: OpId, iter: i64, unroll: u32) -> Vec<String> {
    let mut srcs = Vec::new();
    for vr in l.vregs() {
        for u in &vr.uses {
            if u.op == op {
                srcs.push(reg_name(l, vr.def, iter - u.distance as i64, unroll));
            }
        }
    }
    srcs
}

/// Builds one instruction: `iter` is the display iteration; `name_iter` is
/// the iteration index used for register naming. In the kernel both are
/// the copy index; in the prologue/epilogue the display iteration is
/// absolute while the naming iteration is shifted so that names line up
/// with the kernel's copy numbering at the seam (kernel copy `j` executes
/// absolute iterations `i ≡ j + stages - 1 (mod unroll)`).
fn make_inst(l: &Loop, op: OpId, cycle: i64, iter: i64, name_iter: i64, unroll: u32) -> Inst {
    Inst {
        cycle,
        op,
        iteration: iter,
        dest: defines_vreg(l, op).then(|| reg_name(l, op, name_iter, unroll)),
        sources: sources_for(l, op, name_iter, unroll),
    }
}

/// Expands a modulo schedule into prologue / unrolled kernel / epilogue
/// with modulo-variable-expansion register renaming.
///
/// The schedule is normalized so its earliest issue is in stage 0.
///
/// # Panics
///
/// Panics if `s` has a different operation count than `l`.
pub fn expand(l: &Loop, s: &Schedule) -> PipelinedLoop {
    assert_eq!(s.times().len(), l.num_ops(), "schedule does not match loop");
    let ii = s.ii() as i64;
    // Normalize times so min stage is 0.
    let min_stage = l.op_ids().map(|op| s.stage(op)).min().unwrap_or(0);
    let times: Vec<i64> = l.op_ids().map(|op| s.time(op) - min_stage * ii).collect();
    let max_time = times.iter().copied().max().unwrap_or(0);
    let stages = (max_time / ii + 1) as u32;
    let unroll = unroll_factor(l, s);

    // Prologue: cycles [0, (stages-1)*II); iteration i contributes its op
    // instances scheduled at time(op) + i*II.
    let fill_end = (stages as i64 - 1) * ii;
    // Kernel copy j runs absolute iterations i ≡ j + (stages-1) (mod u);
    // prologue/epilogue names shift accordingly so the seams line up.
    let seam = stages as i64 - 1;
    let mut prologue = Vec::new();
    for cycle in 0..fill_end {
        for op in l.op_ids() {
            let t = times[op.index()];
            if t <= cycle && (cycle - t) % ii == 0 {
                let iter = (cycle - t) / ii;
                prologue.push(make_inst(l, op, cycle, iter, iter - seam, unroll));
            }
        }
    }

    // Kernel: u copies; copy j's ops land at (time mod II) + j*II within a
    // u*II-cycle body. Copy j executes logical iteration `base + j` where
    // base advances by u per kernel execution.
    let mut kernel = Vec::new();
    for cycle in 0..unroll as i64 * ii {
        for op in l.op_ids() {
            let row = times[op.index()].rem_euclid(ii);
            if cycle % ii == row {
                // Which copy is at this point of its schedule? The op of
                // copy j issues at cycle (row + (j + stage(op)) * II) mod
                // (u * II): offset by the op's stage so that older stages
                // belong to older iterations.
                let stage = times[op.index()] / ii;
                let copy = (cycle / ii - stage).rem_euclid(unroll as i64);
                kernel.push(make_inst(l, op, cycle, copy, copy, unroll));
            }
        }
    }

    // Epilogue: drain iterations; mirror of the prologue.
    let mut epilogue = Vec::new();
    for cycle in fill_end..(fill_end + (stages as i64 - 1) * ii) {
        for op in l.op_ids() {
            let t = times[op.index()];
            if t <= cycle && (cycle - t) % ii == 0 {
                let iter = (cycle - t) / ii;
                // Only instances of iterations that the prologue/kernel
                // started but did not finish: the last stages-1 logical
                // iterations.
                if iter < stages as i64 - 1 && t + (stages as i64 - 1) * ii > fill_end {
                    epilogue.push(make_inst(l, op, cycle, iter, iter - seam, unroll));
                }
            }
        }
    }

    PipelinedLoop {
        ii: s.ii(),
        unroll,
        stages,
        prologue,
        kernel,
        epilogue,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::{ims_schedule, ImsConfig};
    use optimod_ddg::kernels;
    use optimod_machine::{cydra_like, example_3fu};

    fn fig1() -> (optimod_machine::Machine, Loop, Schedule) {
        let m = example_3fu();
        let l = kernels::figure1(&m);
        let s = Schedule::new(2, vec![0, 1, 2, 5, 6]);
        (m, l, s)
    }

    #[test]
    fn figure1_unroll_factor_matches_buffers() {
        let (_, l, s) = fig1();
        // Lifetimes: 3, 5, 4, 2 cycles at II=2 -> max ceil = 3.
        assert_eq!(unroll_factor(&l, &s), 3);
    }

    #[test]
    fn kernel_issues_every_op_unroll_times() {
        let (_, l, s) = fig1();
        let p = expand(&l, &s);
        assert_eq!(p.kernel.len(), l.num_ops() * p.unroll as usize);
        for op in l.op_ids() {
            let count = p.kernel.iter().filter(|i| i.op == op).count();
            assert_eq!(count, p.unroll as usize, "{}", l.op(op).name);
        }
    }

    #[test]
    fn prologue_fills_exactly_the_early_stages() {
        let (_, l, s) = fig1();
        let p = expand(&l, &s);
        assert_eq!(p.stages, 4); // times 0..6 at II=2
                                 // The prologue covers cycles [0, 6): iteration 0 fully up to t<6,
                                 // iteration 1 shifted by 2, iteration 2 by 4.
        for i in &p.prologue {
            assert!(i.cycle < 6);
            assert_eq!(
                (i.cycle - s.time(i.op)).rem_euclid(2),
                0,
                "prologue instance off-schedule"
            );
        }
        // First kernel-visible iteration boundary: every op instance in the
        // prologue belongs to iterations 0..stages-1.
        assert!(p.prologue.iter().all(|i| i.iteration < 3));
    }

    #[test]
    fn mve_renaming_never_overwrites_live_values() {
        // The fundamental MVE safety property: a register written by copy
        // j is rewritten u*II cycles later; every lifetime fits below that.
        for m in [example_3fu(), cydra_like()] {
            for l in kernels::all_kernels(&m) {
                let s = ims_schedule(&l, &m, &ImsConfig::default())
                    .expect("ims")
                    .schedule;
                let u = unroll_factor(&l, &s) as i64;
                let ii = s.ii() as i64;
                for vr in l.vregs() {
                    let lt = s.lifetime(vr);
                    assert!(
                        lt.length() <= u * ii,
                        "{} on {}: lifetime {} exceeds rewrite period {}",
                        l.name(),
                        m.name(),
                        lt.length(),
                        u * ii
                    );
                }
            }
        }
    }

    #[test]
    fn kernel_sources_reference_the_defining_copy() {
        let (_, l, s) = fig1();
        let p = expand(&l, &s);
        // In the kernel, an op of copy j consuming a distance-0 value must
        // read the register its producer wrote in an *issued-earlier or
        // same-body* position with matching name.
        for inst in &p.kernel {
            for src in &inst.sources {
                // Source names must use copy indices in range.
                let idx: u32 = src
                    .rsplit('_')
                    .next()
                    .and_then(|t| t.parse().ok())
                    .expect("renamed source ends in a copy index");
                assert!(idx < p.unroll);
            }
        }
    }

    /// Full-stream simulation oracle: replay prologue + several kernel
    /// executions as an absolute instruction stream and verify that every
    /// renamed source register was last written by the defining operation
    /// of exactly the right absolute iteration. This catches any naming
    /// misalignment at the prologue/kernel seam.
    #[test]
    fn renaming_simulation_across_seams() {
        use std::collections::HashMap;
        for m in [example_3fu(), cydra_like()] {
            for l in kernels::all_kernels(&m).into_iter().take(20) {
                let s = ims_schedule(&l, &m, &ImsConfig::default())
                    .expect("ims")
                    .schedule;
                let p = expand(&l, &s);
                let ii = s.ii() as i64;
                let min_stage = l.op_ids().map(|op| s.stage(op)).min().unwrap_or(0);
                let time_of = |op: optimod_ddg::OpId| s.time(op) - min_stage * ii;

                // Absolute stream: prologue, then 3 kernel executions.
                let fill_end = (p.stages as i64 - 1) * ii;
                let mut stream: Vec<(i64, &Inst)> =
                    p.prologue.iter().map(|i| (i.cycle, i)).collect();
                for run in 0..3i64 {
                    for inst in &p.kernel {
                        stream.push((fill_end + run * p.kernel_cycles() + inst.cycle, inst));
                    }
                }
                stream.sort_by_key(|&(c, _)| c);

                // Replay: register name -> (def op, absolute iteration).
                let mut file: HashMap<&str, (usize, i64)> = HashMap::new();
                for &(abs_cycle, inst) in &stream {
                    let abs_iter = (abs_cycle - time_of(inst.op)) / ii;
                    // Reads first (an op may read the register it rewrites).
                    for vr in l.vregs() {
                        for u in &vr.uses {
                            if u.op != inst.op {
                                continue;
                            }
                            let want_iter = abs_iter - u.distance as i64;
                            if want_iter < 0 {
                                continue; // live-in from before the pipeline
                            }
                            // The register currently holding the wanted
                            // value...
                            let holder = file.iter().find_map(|(name, &(d, it))| {
                                (d == vr.def.index() && it == want_iter).then_some(*name)
                            });
                            let holder = holder.unwrap_or_else(|| {
                                panic!(
                                    "{} on {}: {} of iteration {abs_iter} needs \
                                     {} from iteration {want_iter}, which is \
                                     not in any live register",
                                    l.name(),
                                    m.name(),
                                    l.op(inst.op).name,
                                    l.op(vr.def).name,
                                )
                            });
                            // ...must be exactly the renamed source the
                            // instruction was emitted with.
                            assert!(
                                inst.sources.iter().any(|s| s == holder),
                                "{} on {}: {} it{abs_iter} reads {:?} but the \
                                 value of {} it{want_iter} lives in {holder}",
                                l.name(),
                                m.name(),
                                l.op(inst.op).name,
                                inst.sources,
                                l.op(vr.def).name,
                            );
                        }
                    }
                    if let Some(dest) = &inst.dest {
                        file.insert(dest.as_str(), (inst.op.index(), abs_iter));
                    }
                }
            }
        }
    }

    #[test]
    fn rendered_text_mentions_all_sections() {
        let (_, l, s) = fig1();
        let p = expand(&l, &s);
        let text = p.to_text(&l);
        assert!(text.contains("prologue:"));
        assert!(text.contains("kernel:"));
        assert!(text.contains("epilogue:"));
        assert!(text.contains("mult"));
    }

    #[test]
    fn single_stage_loop_has_empty_fill_and_drain() {
        // A loop whose whole body fits in one stage needs no prologue.
        let m = example_3fu();
        let l = kernels::stream_copy(&m);
        // ld at 0, st at 1, II=2 -> one stage.
        let s = Schedule::new(2, vec![0, 1]);
        assert_eq!(s.validate(&l, &m), None);
        let p = expand(&l, &s);
        assert_eq!(p.stages, 1);
        assert!(p.prologue.is_empty());
        assert!(p.epilogue.is_empty());
        assert_eq!(p.kernel.len(), l.num_ops() * p.unroll as usize);
    }
}
