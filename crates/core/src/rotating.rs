//! Rotating-register-file allocation.
//!
//! The Cydra 5 (the paper's target) avoids modulo variable expansion with a
//! *rotating register file*: the physical register addressed by a name
//! shifts by one every initiation interval, so iteration `i`'s instance of
//! a virtual register automatically lands in a different physical register
//! than iteration `i+1`'s.
//!
//! Allocation assigns each virtual register an integer *offset* `o_v`;
//! iteration `i` of `v` occupies physical slot `o_v + i (mod R)` for the
//! whole lifetime `[def, kill] + i·II`. Two allocations collide exactly
//! when their offset-normalized lifetimes `[start − o·II, end − o·II]`
//! overlap on the time line, so a valid allocation is a packing of all
//! lifetimes onto one track, and the file size is the packed span rounded
//! up to whole `II`s — at least `MaxLive`, the paper's register
//! requirement.

use optimod_ddg::Loop;

use crate::schedule::Schedule;

/// A rotating-register allocation for one scheduled loop.
#[derive(Debug, Clone)]
pub struct RotatingAllocation {
    /// Offset (in registers) assigned to each virtual register, in
    /// `Loop::vregs` order.
    pub offsets: Vec<i64>,
    /// Physical rotating-file size (registers).
    pub file_size: u32,
}

impl RotatingAllocation {
    /// Physical register holding vreg `v` of logical iteration `iter`.
    pub fn physical(&self, v: usize, iter: i64) -> u32 {
        (self.offsets[v] + iter).rem_euclid(self.file_size as i64) as u32
    }
}

/// Greedily packs the lifetimes of `l` under schedule `s` into a rotating
/// register file.
///
/// The produced allocation is always valid (see
/// [`verify`]); its size is within an additive
/// fragmentation term of the `MaxLive` lower bound.
pub fn allocate(l: &Loop, s: &Schedule) -> RotatingAllocation {
    let ii = s.ii() as i64;
    let n = l.vregs().len();
    if n == 0 {
        return RotatingAllocation {
            offsets: Vec::new(),
            file_size: 1,
        };
    }
    // Sort by lifetime start for first-fit packing.
    let mut order: Vec<usize> = (0..n).collect();
    let lifetimes: Vec<(i64, i64)> = l
        .vregs()
        .iter()
        .map(|vr| {
            let lt = s.lifetime(vr);
            (lt.start, lt.end)
        })
        .collect();
    order.sort_by_key(|&v| (lifetimes[v].1 - lifetimes[v].0, lifetimes[v].0));
    order.reverse(); // longest first packs tighter

    // Pack normalized intervals [start - o*II, end - o*II] on one line:
    // first-fit over candidate offsets around the existing packing.
    let mut placed: Vec<(i64, i64)> = Vec::new(); // normalized, sorted later
    let mut offsets = vec![0i64; n];
    for &v in &order {
        let (st, en) = lifetimes[v];
        // Try offsets from small to large until the normalized interval is
        // disjoint from everything placed.
        let mut o = 0i64;
        // Moving left past the whole current packing always succeeds, so
        // first-fit terminates within the packed length plus slack.
        let packed_len: i64 = placed.iter().map(|&(a, b)| (b - a) / ii + 2).sum();
        let limit = packed_len + (en - st) / ii + 4;
        loop {
            let a = st - o * ii;
            let b = en - o * ii;
            let clash = placed.iter().any(|&(x, y)| a <= y && x <= b);
            if !clash {
                break;
            }
            o += 1;
            assert!(o <= limit, "first-fit packing failed to terminate");
        }
        offsets[v] = o;
        placed.push((st - o * ii, en - o * ii));
    }

    // File size: whole-II span of the packing, and at least the schedule's
    // MaxLive so `physical()` never aliases two live values.
    let lo = placed.iter().map(|&(a, _)| a).min().expect("non-empty");
    let hi = placed.iter().map(|&(_, b)| b).max().expect("non-empty");
    let span_regs = ((hi - lo + 1) + ii - 1) / ii + 1;
    let file_size = span_regs.max(1) as u32;
    RotatingAllocation { offsets, file_size }
}

/// Checks an allocation for collisions by brute force over a window of
/// iterations: two live vreg instances must never share a physical slot.
/// Returns a description of the first collision.
pub fn verify(l: &Loop, s: &Schedule, alloc: &RotatingAllocation) -> Option<String> {
    let ii = s.ii() as i64;
    let vregs = l.vregs();
    // A window of 4*file_size iterations covers every rotation phase.
    let window = 4 * alloc.file_size as i64 + 8;
    for i in 0..window {
        for j in 0..window {
            for (u, vu) in vregs.iter().enumerate() {
                for (w, vw) in vregs.iter().enumerate() {
                    if (u, i) >= (w, j) {
                        continue;
                    }
                    if alloc.physical(u, i) != alloc.physical(w, j) {
                        continue;
                    }
                    let lu = s.lifetime(vu);
                    let lw = s.lifetime(vw);
                    let (a1, b1) = (lu.start + i * ii, lu.end + i * ii);
                    let (a2, b2) = (lw.start + j * ii, lw.end + j * ii);
                    if a1 <= b2 && a2 <= b1 {
                        return Some(format!(
                            "vreg {u} iter {i} and vreg {w} iter {j} share \
                             physical r{}",
                            alloc.physical(u, i)
                        ));
                    }
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::{ims_schedule, ImsConfig};
    use optimod_ddg::kernels;
    use optimod_machine::{cydra_like, example_3fu};

    #[test]
    fn figure1_allocation_is_valid_and_tight() {
        let m = example_3fu();
        let l = kernels::figure1(&m);
        let s = Schedule::new(2, vec![0, 1, 2, 5, 6]);
        let alloc = allocate(&l, &s);
        assert_eq!(verify(&l, &s, &alloc), None);
        // MaxLive is 7; packing fragmentation may cost a little.
        assert!(alloc.file_size >= 7, "below the MaxLive bound");
        assert!(
            alloc.file_size <= 10,
            "excessive fragmentation: {}",
            alloc.file_size
        );
    }

    #[test]
    fn allocations_valid_on_whole_corpus() {
        for m in [example_3fu(), cydra_like()] {
            for l in kernels::all_kernels(&m) {
                let s = ims_schedule(&l, &m, &ImsConfig::default())
                    .expect("ims")
                    .schedule;
                let alloc = allocate(&l, &s);
                assert_eq!(verify(&l, &s, &alloc), None, "{} on {}", l.name(), m.name());
                assert!(
                    alloc.file_size >= s.max_live(&l),
                    "{}: file {} below MaxLive {}",
                    l.name(),
                    alloc.file_size,
                    s.max_live(&l)
                );
            }
        }
    }

    #[test]
    fn file_size_tracks_maxlive() {
        // Fragmentation should stay bounded: file <= MaxLive + stages + 2.
        let m = example_3fu();
        for l in kernels::all_kernels(&m) {
            let s = ims_schedule(&l, &m, &ImsConfig::default())
                .expect("ims")
                .schedule;
            let alloc = allocate(&l, &s);
            let bound = s.max_live(&l) as i64 + s.num_stages() + 2;
            assert!(
                (alloc.file_size as i64) <= bound,
                "{}: file {} vs bound {bound}",
                l.name(),
                alloc.file_size
            );
        }
    }

    #[test]
    fn empty_vreg_loop() {
        // A loop of only stores defines no registers.
        let m = example_3fu();
        let mut b = optimod_ddg::LoopBuilder::new("stores");
        let s1 = b.op(optimod_machine::OpClass::Store, "st1");
        let s2 = b.op(optimod_machine::OpClass::Store, "st2");
        b.dep(s1, s2, 1, 0, optimod_ddg::DepKind::Memory);
        let l = b.build(&m);
        let s = Schedule::new(1, vec![0, 1]);
        let alloc = allocate(&l, &s);
        assert_eq!(alloc.file_size, 1);
        assert_eq!(verify(&l, &s, &alloc), None);
    }
}
