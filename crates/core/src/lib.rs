//! Optimal modulo scheduling via integer linear programming — a Rust
//! reproduction of Eichenberger & Davidson, *"Efficient Formulation for
//! Optimal Modulo Schedulers"*, PLDI 1997.
//!
//! # Overview
//!
//! Modulo scheduling overlaps loop iterations at a constant initiation
//! interval (`II`). This crate provides *optimal* modulo schedulers built
//! on an ILP solver ([`optimod_ilp`]), in both the **traditional**
//! formulation (Govindarajan et al. / Eichenberger et al.) and the paper's
//! **0-1-structured** formulation of the dependence constraints, which
//! shrinks branch-and-bound effort by orders of magnitude.
//!
//! * [`compute_mii`] — ResMII / RecMII lower bounds.
//! * [`build_model`] — compile a loop + machine + `II` into an ILP.
//! * [`OptimalScheduler`] — the full framework: MII, per-II solve,
//!   II escalation; objectives: none (*NoObj*), MaxLive (*MinReg*),
//!   buffers (*MinBuff*), cumulative lifetime (*MinLife*), schedule length.
//! * [`Schedule`] — concrete schedules: validation, MRT, lifetimes,
//!   MaxLive, buffers.
//! * [`heuristic`] — Rau's Iterative Modulo Scheduler and the
//!   stage-scheduling register heuristics the paper grades against the
//!   optimal schedulers.
//!
//! # Quickstart
//!
//! ```
//! use optimod::{OptimalScheduler, SchedulerConfig, DepStyle, Objective};
//! use optimod_ddg::kernels::figure1;
//! use optimod_machine::example_3fu;
//!
//! let machine = example_3fu();
//! let l = figure1(&machine);
//! let scheduler = OptimalScheduler::new(
//!     SchedulerConfig::new(DepStyle::Structured, Objective::MinMaxLive));
//! let result = scheduler.schedule(&l, &machine);
//! let schedule = result.schedule.expect("figure1 schedules at II=2");
//! assert_eq!(schedule.ii(), 2);
//! assert_eq!(schedule.max_live(&l), 7); // the paper's Figure 1
//! ```

#![warn(missing_docs)]

pub mod codegen;
pub mod error;
pub mod explain;
pub mod formulation;
pub mod heuristic;
pub mod mii;
mod portfolio;
pub mod rotating;
pub mod schedule;
pub mod scheduler;

pub use codegen::{expand, unroll_factor, Inst, PipelinedLoop};
pub use error::ScheduleError;
pub use explain::{explain_at, explain_options};
pub use formulation::{build_model, BuiltModel, DepStyle, FormulationConfig, Objective};
pub use mii::{compute_mii, Mii};
pub use optimod_analyze::{
    ExplainOptions, ExplainOutcome, Explanation, IlpContext, PresolveOptions, PresolveSummary,
    PresolveTotals,
};
pub use optimod_sat::EncodeOptions as SatEncodeOptions;
pub use optimod_verify::{certify, CertError, Certificate, Claim};
pub use rotating::{allocate, RotatingAllocation};
pub use schedule::{Lifetime, Schedule};
pub use scheduler::{
    FallbackConfig, LoopResult, LoopStatus, OptimalScheduler, Provenance, SchedulerConfig,
    MAX_SCHEDULABLE_II,
};
