//! Modulo schedules: validation, the modulo reservation table, lifetimes,
//! and register requirements (MaxLive, buffers, cumulative lifetime).
//!
//! These are ground-truth computations performed directly on a concrete
//! schedule (no ILP involved); the optimizing formulations are verified
//! against them in tests.

use optimod_ddg::{Loop, OpId, VirtualRegister};
use optimod_machine::Machine;

/// A concrete modulo schedule: an issue cycle for every operation at a
/// fixed initiation interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    ii: u32,
    times: Vec<i64>,
}

/// Lifetime of one virtual register under a schedule: reserved from the
/// definition cycle through the issue cycle of the last use (inclusive),
/// freed the following cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lifetime {
    /// Cycle the register is defined (reserved).
    pub start: i64,
    /// Last reserved cycle (`>= start`).
    pub end: i64,
}

impl Lifetime {
    /// Number of reserved cycles.
    pub fn length(self) -> i64 {
        self.end - self.start + 1
    }
}

impl Schedule {
    /// Creates a schedule from per-operation issue times.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn new(ii: u32, times: Vec<i64>) -> Self {
        assert!(ii > 0, "II must be positive");
        Schedule { ii, times }
    }

    /// The initiation interval.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Issue cycle of `op`.
    pub fn time(&self, op: OpId) -> i64 {
        self.times[op.index()]
    }

    /// All issue times in operation order.
    pub fn times(&self) -> &[i64] {
        &self.times
    }

    /// MRT row of `op` (`time mod II`, euclidean).
    pub fn row(&self, op: OpId) -> u32 {
        self.times[op.index()].rem_euclid(self.ii as i64) as u32
    }

    /// Stage of `op` (`time div II`, euclidean).
    pub fn stage(&self, op: OpId) -> i64 {
        self.times[op.index()].div_euclid(self.ii as i64)
    }

    /// Schedule length of one iteration: last issue - first issue + 1.
    pub fn length(&self) -> i64 {
        match (self.times.iter().min(), self.times.iter().max()) {
            (Some(lo), Some(hi)) => hi - lo + 1,
            _ => 0,
        }
    }

    /// Number of stages occupied (`ceil(length / II)` from the earliest
    /// issue's stage).
    pub fn num_stages(&self) -> i64 {
        if self.times.is_empty() {
            return 0;
        }
        let min_stage = (0..self.times.len())
            .map(|i| self.stage(OpId::from_index(i)))
            .min()
            .unwrap();
        let max_stage = (0..self.times.len())
            .map(|i| self.stage(OpId::from_index(i)))
            .max()
            .unwrap();
        max_stage - min_stage + 1
    }

    /// Checks every scheduling dependence of `l`; returns the first
    /// violated edge description.
    ///
    /// Delegates to the exact-arithmetic certifier ([`optimod_verify`]),
    /// so the constraint logic lives in one audited place; the edge check
    /// there additionally cross-checks both ILP formulations against the
    /// ground truth.
    pub fn check_dependences(&self, l: &Loop) -> Option<String> {
        optimod_verify::check_dependences(l, self.ii, &self.times)
            .err()
            .map(|e| e.to_string())
    }

    /// Checks the modulo reservation table against `machine`; returns a
    /// description of the first over-subscribed `(resource, row)` slot.
    ///
    /// Delegates to the exact-arithmetic certifier ([`optimod_verify`]).
    pub fn check_resources(&self, l: &Loop, machine: &Machine) -> Option<String> {
        optimod_verify::check_resources(l, machine, self.ii, &self.times)
            .err()
            .map(|e| e.to_string())
    }

    /// Full validity check (dependences + resources).
    pub fn validate(&self, l: &Loop, machine: &Machine) -> Option<String> {
        self.check_dependences(l)
            .or_else(|| self.check_resources(l, machine))
    }

    /// Lifetime of a virtual register under this schedule.
    pub fn lifetime(&self, vr: &VirtualRegister) -> Lifetime {
        let start = self.times[vr.def.index()];
        let ii = self.ii as i64;
        let end = vr
            .uses
            .iter()
            .map(|u| self.times[u.op.index()] + ii * u.distance as i64)
            .max()
            .unwrap_or(start)
            .max(start);
        Lifetime { start, end }
    }

    /// Exact register requirement: the maximum number of simultaneously
    /// live virtual-register instances over the rows of the steady-state
    /// kernel (the paper's *MaxLive*).
    pub fn max_live(&self, l: &Loop) -> u32 {
        self.live_per_row(l).into_iter().max().unwrap_or(0)
    }

    /// Number of live register instances in each MRT row.
    pub fn live_per_row(&self, l: &Loop) -> Vec<u32> {
        let ii = self.ii as i64;
        let mut rows = vec![0u32; self.ii as usize];
        for vr in l.vregs() {
            let lt = self.lifetime(vr);
            for c in lt.start..=lt.end {
                rows[c.rem_euclid(ii) as usize] += 1;
            }
        }
        rows
    }

    /// Buffer requirement: buffers are reserved for whole multiples of II
    /// cycles, so each register needs `ceil(lifetime / II)` buffers
    /// (Govindarajan et al., the paper's MinBuff objective).
    pub fn buffers(&self, l: &Loop) -> u32 {
        let ii = self.ii as i64;
        l.vregs()
            .iter()
            .map(|vr| {
                let lt = self.lifetime(vr);
                // lengths and II are positive, so this is a ceiling divide
                ((lt.length() + ii - 1) / ii) as u32
            })
            .sum()
    }

    /// Cumulative lifetime: the sum of all register lifetimes in cycles
    /// (the paper's MinLife objective).
    pub fn cumulative_lifetime(&self, l: &Loop) -> i64 {
        l.vregs().iter().map(|vr| self.lifetime(vr).length()).sum()
    }

    /// Renders the MRT as text (one line per row), for debugging and the
    /// examples.
    pub fn mrt_to_string(&self, l: &Loop) -> String {
        use std::fmt::Write as _;
        let mut rows: Vec<Vec<&str>> = vec![Vec::new(); self.ii as usize];
        for (i, op) in l.ops().iter().enumerate() {
            rows[self.row(OpId::from_index(i)) as usize].push(&op.name);
        }
        let mut s = String::new();
        for (r, ops) in rows.iter().enumerate() {
            let _ = writeln!(s, "row {r}: {}", ops.join(", "));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimod_ddg::kernels;
    use optimod_machine::example_3fu;

    /// The paper's Figure 1 schedule: II=2; load@0, mult@1, add@2, sub@5,
    /// store@6.
    fn figure1_schedule() -> (Schedule, optimod_ddg::Loop, optimod_machine::Machine) {
        let m = example_3fu();
        let l = kernels::figure1(&m);
        let s = Schedule::new(2, vec![0, 1, 2, 5, 6]);
        (s, l, m)
    }

    #[test]
    fn figure1_schedule_is_valid() {
        let (s, l, m) = figure1_schedule();
        assert_eq!(s.validate(&l, &m), None);
    }

    #[test]
    fn figure1_rows_and_stages_match_paper() {
        let (s, l, _) = figure1_schedule();
        let ids: Vec<_> = l.op_ids().collect();
        // Paper: stages 0, 0, 1, 2, 3 for load, mult, add, sub, store.
        assert_eq!(s.stage(ids[0]), 0);
        assert_eq!(s.stage(ids[1]), 0);
        assert_eq!(s.stage(ids[2]), 1);
        assert_eq!(s.stage(ids[3]), 2);
        assert_eq!(s.stage(ids[4]), 3);
        assert_eq!(s.row(ids[0]), 0);
        assert_eq!(s.row(ids[1]), 1);
    }

    #[test]
    fn figure1_max_live_is_seven() {
        let (s, l, _) = figure1_schedule();
        // The paper reports exactly 7 live registers in both rows.
        assert_eq!(s.live_per_row(&l), vec![7, 7]);
        assert_eq!(s.max_live(&l), 7);
    }

    #[test]
    fn dependence_violation_detected() {
        let m = example_3fu();
        let l = kernels::figure1(&m);
        // mult at 0 violates load->mult latency 1 when load also at 0.
        let s = Schedule::new(2, vec![0, 0, 2, 5, 6]);
        assert!(s.check_dependences(&l).is_some());
    }

    #[test]
    fn resource_violation_detected() {
        let m = example_3fu();
        let l = kernels::figure1(&m);
        // All five ops in row 0 exceeds the 3 FUs.
        let s = Schedule::new(2, vec![0, 2, 4, 6, 8]);
        assert!(s.check_resources(&l, &m).is_some());
    }

    #[test]
    fn lifetime_covers_cross_iteration_uses() {
        let m = example_3fu();
        let l = kernels::fir4(&m);
        // ld feeds uses at distances 0..3; lifetime must span 3*II past the
        // last same-iteration use.
        let n = l.num_ops();
        let s = Schedule::new(3, (0..n as i64).collect());
        let vr = &l.vregs()[0];
        let lt = s.lifetime(vr);
        assert!(lt.length() >= 3 * 3);
    }

    #[test]
    fn buffers_round_up_lifetimes() {
        let (s, l, _) = figure1_schedule();
        // Lifetimes: ld [0,2] len 3 -> 2 buffers; mult [1,5] len 5 -> 3;
        // add [2,5] len 4 -> 2; sub [5,6] len 2 -> 1. Total 8.
        assert_eq!(s.buffers(&l), 8);
        assert_eq!(s.cumulative_lifetime(&l), 3 + 5 + 4 + 2);
    }

    #[test]
    fn dead_value_occupies_definition_cycle() {
        let m = example_3fu();
        let mut b = optimod_ddg::LoopBuilder::new("dead");
        let a = b.op(optimod_machine::OpClass::FAdd, "a");
        let c = b.op(optimod_machine::OpClass::FAdd, "c");
        b.flow(a, c, 0);
        // `c` defines no vreg: only `a` does.
        let l = b.build(&m);
        let s = Schedule::new(1, vec![0, 1]);
        assert_eq!(s.cumulative_lifetime(&l), 2); // [0,1] inclusive
    }

    #[test]
    fn mrt_rendering_contains_ops() {
        let (s, l, _) = figure1_schedule();
        let mrt = s.mrt_to_string(&l);
        assert!(mrt.contains("row 0"));
        assert!(mrt.contains("mult"));
    }
}
