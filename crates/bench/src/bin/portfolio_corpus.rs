//! Cross-backend portfolio acceptance scenario over the golden corpus.
//!
//! Every golden cell (11 kernels x both dependence formulations) is solved
//! three times: ILP-only (the reference), serial portfolio (threads = 1,
//! SAT decides first, deterministic), and racing portfolio (threads = 2).
//! Acceptance:
//!
//! * both portfolio modes certify the *exact same II* as the ILP-only
//!   reference on every cell, with zero cross-backend disagreements;
//! * the SAT backend wins at least one cell outright (provenance
//!   `sat-exact`);
//! * the differential oracle is live: a deliberately broken encoder
//!   (an op with every CNF slot forbidden) must be caught as a
//!   `BackendDisagreement` whose minimized repro replays through the
//!   textual loop format and still disagrees.

use std::sync::Arc;
use std::time::Duration;

use optimod::{
    DepStyle, LoopStatus, Objective, OptimalScheduler, Provenance, SatEncodeOptions, ScheduleError,
    SchedulerConfig,
};
use optimod_ddg::{kernels, textfmt, Loop};
use optimod_machine::{example_3fu, Machine};
use optimod_trace::{MemorySink, Trace};

fn golden_loops(machine: &Machine) -> Vec<Loop> {
    vec![
        kernels::figure1(machine),
        kernels::saxpy(machine),
        kernels::dot_product(machine),
        kernels::lfk5_tridiag(machine),
        kernels::lfk6_recurrence(machine),
        kernels::lfk11_first_sum(machine),
        kernels::lfk12_first_diff(machine),
        kernels::fir4(machine),
        kernels::horner(machine),
        kernels::divide_recurrence(machine),
        kernels::stream_copy(machine),
    ]
}

fn scheduler(style: DepStyle, portfolio: bool, threads: u32, trace: Trace) -> OptimalScheduler {
    let mut cfg = SchedulerConfig::new(style, Objective::FirstFeasible)
        .with_time_limit(Duration::from_secs(60));
    cfg.limits.threads = threads;
    cfg.limits.trace = trace;
    cfg.portfolio = portfolio;
    OptimalScheduler::new(cfg)
}

fn main() {
    let machine = example_3fu();
    let loops = golden_loops(&machine);
    let styles = [
        ("traditional", DepStyle::Traditional),
        ("structured", DepStyle::Structured),
    ];

    let mut cells = 0u64;
    let mut sat_wins = 0u64;
    let mut ilp_wins = 0u64;
    for (style_name, style) in styles {
        for l in &loops {
            cells += 1;
            let reference = scheduler(style, false, 1, Trace::disabled()).schedule(l, &machine);
            assert_eq!(
                reference.status,
                LoopStatus::Optimal,
                "{} / {style_name}: reference ILP solve must be optimal",
                l.name()
            );
            let ref_ii = reference.ii.expect("optimal result has an II");

            for (mode, threads) in [("serial", 1u32), ("raced", 2u32)] {
                let sink = Arc::new(MemorySink::default());
                let r =
                    scheduler(style, true, threads, Trace::new(sink.clone())).schedule(l, &machine);
                assert!(
                    !matches!(r.error, Some(ScheduleError::BackendDisagreement { .. })),
                    "{} / {style_name} / {mode}: cross-backend disagreement: {:?}",
                    l.name(),
                    r.error
                );
                assert_eq!(
                    r.status,
                    LoopStatus::Optimal,
                    "{} / {style_name} / {mode}: portfolio did not settle the cell ({:?})",
                    l.name(),
                    r.status
                );
                assert_eq!(
                    r.ii,
                    Some(ref_ii),
                    "{} / {style_name} / {mode}: portfolio certified a different II",
                    l.name()
                );
                let schedule = r.schedule.as_ref().expect("optimal result has a schedule");
                assert_eq!(
                    schedule.validate(l, &machine),
                    None,
                    "{} / {style_name} / {mode}: emitted schedule does not validate",
                    l.name()
                );
                // Serial mode is the deterministic accounting mode: tally
                // its winner (the raced mode's winner is timing-dependent).
                if mode == "serial" {
                    match r.provenance {
                        Some(Provenance::SatExact) => sat_wins += 1,
                        Some(Provenance::Exact) => ilp_wins += 1,
                        other => panic!(
                            "{} / {style_name}: unexpected provenance {other:?}",
                            l.name()
                        ),
                    }
                    let rep = sink.report();
                    assert_eq!(
                        rep.sat_wins + rep.ilp_wins,
                        1,
                        "{} / {style_name}: exactly one portfolio win event per cell",
                        l.name()
                    );
                }
            }
        }
    }
    println!(
        "portfolio corpus: {cells} cells x (serial + raced), all IIs identical to ILP-only; \
         serial wins: sat {sat_wins}, ilp {ilp_wins}"
    );
    assert!(
        sat_wins >= 1,
        "the SAT backend must win at least one golden cell outright"
    );

    // The differential oracle must actually fire: sabotage the encoder
    // (forbid op 0's every slot) and demand a minimized, replayable repro.
    let l = kernels::figure1(&machine);
    let mut cfg = SchedulerConfig::new(DepStyle::Structured, Objective::FirstFeasible);
    cfg.portfolio = true;
    cfg.limits.threads = 1;
    cfg.sat_encode = SatEncodeOptions {
        forbid_op: Some(0),
        ..SatEncodeOptions::default()
    };
    let sabotage_opts = cfg.sat_encode;
    let r = OptimalScheduler::new(cfg).schedule(&l, &machine);
    assert_eq!(
        r.status,
        LoopStatus::Failed,
        "a sabotaged encoder must fail the run, got {:?}",
        r.status
    );
    let Some(ScheduleError::BackendDisagreement { ii, detail, repro }) = r.error else {
        panic!("expected BackendDisagreement, got {:?}", r.error);
    };
    let parsed = textfmt::parse(&repro).expect("minimized repro parses as a loop file");
    assert_eq!(parsed.machine.name(), machine.name());
    assert!(
        parsed.l.edges().len() < l.edges().len(),
        "minimizer should drop at least one edge from figure1"
    );
    // The minimized instance still disagrees when replayed from the text:
    // the SAT side (same sabotage) refutes the II the ILP certifies.
    let mut replay_cfg = SchedulerConfig::new(DepStyle::Structured, Objective::FirstFeasible);
    replay_cfg.portfolio = true;
    replay_cfg.limits.threads = 1;
    replay_cfg.sat_encode = sabotage_opts;
    let replayed = OptimalScheduler::new(replay_cfg).schedule(&parsed.l, &parsed.machine);
    assert!(
        matches!(
            replayed.error,
            Some(ScheduleError::BackendDisagreement { .. })
        ),
        "replayed repro no longer disagrees: {:?}",
        replayed.error
    );
    println!(
        "differential oracle: sabotaged encoder caught at II {ii} ({detail}); minimized repro \
         has {} ops / {} edges and still disagrees on replay",
        parsed.l.num_ops(),
        parsed.l.edges().len()
    );
    println!("portfolio corpus acceptance criteria satisfied");
}
