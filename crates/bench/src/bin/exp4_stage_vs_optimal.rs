//! Section 6 comparison: register requirements of the stage-scheduling
//! heuristic (on IMS schedules) versus the optimal MinReg / MinLife /
//! MinBuff schedulers.
//!
//! The paper reports that MinReg finds schedules with lower register
//! requirements than the heuristic for 23.6% of loops (MinLife: 18.5%,
//! MinBuff: 4.5%), while the heuristic beats MinLife and MinBuff on 3.2%
//! and 12.3% of loops respectively (it can never beat MinReg at the same
//! II, which minimizes MaxLive exactly).
//!
//! Run: `cargo run --release -p optimod-bench --bin exp4_stage_vs_optimal`

use optimod::{DepStyle, Objective};
use optimod_bench::{run_heuristics, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::from_env();
    let machine = cfg.machine();
    let loops = cfg.corpus_loops(&machine);
    println!(
        "Experiment 4 reproduction (stage scheduling vs optimal) — {} loops\n",
        loops.len()
    );

    eprintln!("running IMS + stage scheduling ...");
    let heur = run_heuristics(&machine, &loops);

    for (name, obj) in [
        ("MinReg", Objective::MinMaxLive),
        ("MinLife", Objective::MinCumLifetime),
        ("MinBuff", Objective::MinBuffers),
    ] {
        eprintln!("running optimal {name} ...");
        let recs = cfg.run_suite(&machine, &loops, DepStyle::Structured, obj);
        let mut optimal_better = 0usize;
        let mut heuristic_better = 0usize;
        let mut equal = 0usize;
        let mut compared = 0usize;
        for ((l, h), r) in loops.iter().zip(&heur).zip(&recs) {
            let Some(opt_sched) = &r.result.schedule else {
                continue;
            };
            // Compare register requirements (MaxLive) of the actual
            // schedules, as the paper does ("we always present the actual
            // register requirements associated with these schedules").
            // Only same-II comparisons are meaningful.
            if opt_sched.ii() != h.staged.ii() {
                continue;
            }
            compared += 1;
            let opt_ml = opt_sched.max_live(l);
            let heur_ml = h.staged.max_live(l);
            use std::cmp::Ordering;
            match opt_ml.cmp(&heur_ml) {
                Ordering::Less => optimal_better += 1,
                Ordering::Greater => heuristic_better += 1,
                Ordering::Equal => equal += 1,
            }
        }
        let pct = |x: usize| 100.0 * x as f64 / loops.len() as f64;
        println!("{name:<8} vs IMS+stage-scheduling ({compared} same-II comparisons):");
        println!(
            "  optimal scheduler lower MaxLive:  {optimal_better:>4} loops ({:>5.1}%)",
            pct(optimal_better)
        );
        println!(
            "  heuristic lower MaxLive:          {heuristic_better:>4} loops ({:>5.1}%)",
            pct(heuristic_better)
        );
        println!("  equal:                            {equal:>4} loops\n");
    }
}
