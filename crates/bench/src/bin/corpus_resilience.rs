//! Resilience acceptance scenario: a corpus seeded with a malformed loop,
//! a budget-exhausting loop, and a deliberately crashing pipeline must
//! sweep end-to-end with per-loop outcomes and zero process aborts, and
//! the fallback ladder must schedule the loop the exact solver timed out
//! on.
//!
//! Respects the usual `OPTIMOD_*` knobs where sensible, but pins the
//! per-loop budget low so the budget-exhausting loop reliably exhausts it.

use std::time::Duration;

use optimod::{DepStyle, FallbackConfig, Objective, OptimalScheduler, SchedulerConfig};
use optimod_bench::{print_outcome_table, run_resilient, ExperimentConfig, OutcomeKind};
use optimod_ddg::{generate_loop, DepKind, GeneratorConfig, Loop, LoopBuilder, OpId};
use optimod_machine::OpClass;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let machine = cfg.machine();

    // Healthy corpus loops.
    let mut loops: Vec<Loop> = cfg.corpus_loops(&machine).into_iter().take(6).collect();

    // Malformed: an edge whose endpoint does not exist, built unchecked so
    // it reaches the scheduler's own validation.
    let mut bad = LoopBuilder::new("malformed-dangling");
    let a = bad.op(OpClass::IAlu, "a");
    bad.dep(a, OpId::from_index(7), 1, 0, DepKind::Memory);
    loops.push(bad.build_unchecked(&machine));

    // Budget-exhausting: a large dense loop under a register-minimizing
    // objective; the exact solver cannot even finish the root relaxation
    // in its slice of the budget below.
    let gen = GeneratorConfig {
        min_ops: 60,
        max_ops: 60,
        recurrence_prob: 1.0,
        ..Default::default()
    };
    let hard = generate_loop(&gen, &machine, 7);
    let hard_name = hard.name().to_string();
    loops.push(hard);

    // A healthy loop whose pipeline the driver closure deliberately
    // crashes, standing in for "pathological loop hits a solver bug".
    let mut pb = LoopBuilder::new("inject-panic");
    let x = pb.op(OpClass::Load, "x");
    let y = pb.op(OpClass::IAlu, "y");
    pb.flow(x, y, 0);
    loops.push(pb.build(&machine));

    let budget = Duration::from_millis(1500);
    let fallback = FallbackConfig {
        enabled: true,
        exact_share: 0.05,
        stage_share: 0.3,
        ..FallbackConfig::default()
    };

    // First, demonstrate the exact solver alone times out on the hard loop
    // within the ladder's rung-1 slice.
    let exact_slice = budget.mul_f64(fallback.exact_share);
    let mut exact_cfg = SchedulerConfig::new(DepStyle::Structured, Objective::MinMaxLive)
        .with_time_limit(exact_slice)
        .with_node_limit(cfg.node_cap);
    exact_cfg.limits.threads = 1;
    let exact_only = OptimalScheduler::new(exact_cfg.clone());
    let hard_loop = loops
        .iter()
        .find(|l| l.name() == hard_name)
        .expect("seeded");
    let exact_result = exact_only.schedule(hard_loop, &machine);
    assert!(
        !exact_result.status.scheduled(),
        "expected the exact solver to run out of budget on {hard_name}, got {:?}",
        exact_result.status
    );
    println!(
        "exact solver alone on {hard_name} within {exact_slice:?}: {:?} (no schedule)",
        exact_result.status
    );

    // Now the resilient sweep with the fallback ladder enabled.
    let mut ladder_cfg = exact_cfg;
    ladder_cfg.limits.time_limit = budget;
    ladder_cfg.fallback = fallback;
    let sched = OptimalScheduler::new(ladder_cfg);
    let rows = run_resilient(cfg.threads, &loops, |_, l| {
        if l.name() == "inject-panic" {
            panic!("injected fault: pathological loop crashed the pipeline");
        }
        sched.schedule(l, &machine)
    });

    print_outcome_table("resilient corpus sweep", &rows);

    // Acceptance criteria.
    assert_eq!(rows.len(), loops.len(), "one row per loop, crash or not");
    let kind_of = |name: &str| {
        rows.iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("missing row for {name}"))
            .kind
    };
    assert_eq!(kind_of("inject-panic"), OutcomeKind::Crashed);
    assert_eq!(kind_of("malformed-dangling"), OutcomeKind::Invalid);
    assert!(
        matches!(kind_of(&hard_name), OutcomeKind::Degraded(_)),
        "fallback ladder should schedule {hard_name}, got {}",
        kind_of(&hard_name)
    );
    assert!(
        rows.iter().any(|r| r.kind == OutcomeKind::Exact),
        "healthy loops should still schedule exactly"
    );
    println!("acceptance criteria satisfied: complete sweep, crash isolated, ladder engaged");
}
