//! Corpus characterization: verifies that the substitute benchmark
//! population matches the statistics the paper reports for its 1327 loops
//! (size distribution, recurrence share, MII make-up).
//!
//! Run: `cargo run --release -p optimod-bench --bin corpus_stats`

use optimod::compute_mii;
use optimod_bench::{summary_header, ExperimentConfig, Summary};
use optimod_machine::OpClass;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let machine = cfg.machine();
    let loops = cfg.corpus_loops(&machine);
    println!(
        "Corpus characterization — {} loops on '{}'\n",
        loops.len(),
        machine.name()
    );

    let sizes: Vec<f64> = loops.iter().map(|l| l.num_ops() as f64).collect();
    let edges: Vec<f64> = loops.iter().map(|l| l.edges().len() as f64).collect();
    let vregs: Vec<f64> = loops.iter().map(|l| l.vregs().len() as f64).collect();
    let miis: Vec<_> = loops.iter().map(|l| compute_mii(l, &machine)).collect();
    let mii_vals: Vec<f64> = miis.iter().map(|m| m.value() as f64).collect();

    println!("{}", summary_header());
    for (label, vals) in [
        ("N (operations)", &sizes),
        ("edges", &edges),
        ("virtual registers", &vregs),
        ("MII", &mii_vals),
    ] {
        println!(
            "{}",
            Summary::from_values(vals).expect("non-empty").row(label)
        );
    }

    let with_rec = loops.iter().filter(|l| l.has_recurrence()).count();
    let rec_bound = miis
        .iter()
        .filter(|m| m.rec_mii >= m.res_mii && m.rec_mii > 0)
        .count();
    println!(
        "\nloops with recurrences: {with_rec} ({:.1}%), of which \
         recurrence-bound (RecMII >= ResMII): {rec_bound}",
        100.0 * with_rec as f64 / loops.len() as f64
    );

    // Operation-class mix across the corpus.
    let mut class_counts = vec![0usize; OpClass::ALL.len()];
    let mut total_ops = 0usize;
    for l in &loops {
        for op in l.ops() {
            let idx = OpClass::ALL.iter().position(|&c| c == op.class).unwrap();
            class_counts[idx] += 1;
            total_ops += 1;
        }
    }
    println!("\noperation mix ({total_ops} ops):");
    for (c, n) in OpClass::ALL.iter().zip(&class_counts) {
        if *n > 0 {
            println!(
                "  {:<6} {:>6} ({:>5.1}%)",
                c.mnemonic(),
                n,
                100.0 * *n as f64 / total_ops as f64
            );
        }
    }

    // The paper's reference distribution (Table 1, NoObj column): min 2,
    // median 9, average 13.95, max 80.
    println!(
        "\npaper reference for N (NoObj, 1179 loops): min 2 / median 9 / \
         average 13.95 / max 80"
    );
}
