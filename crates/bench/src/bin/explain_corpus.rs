//! Explanation-engine acceptance scenario: every golden kernel whose
//! certified minimal II exceeds 1 is explained at `II* - 1` — an II the
//! exact scheduler has proven infeasible — and the engine must come back
//! with a *certified minimal* core every single time: the named
//! constraint groups alone are unsatisfiable at that II, and dropping
//! any one of them restores satisfiability. The run also gates the
//! minimizer: the shipped core may never be larger than the raw
//! assumption core the CDCL solver first returned.
//!
//! Kernels with II* = 1 are skipped: there is no smaller II to refute.
//!
//! The printed table (raw vs minimized core size per kernel) is the
//! source of the core-size table in EXPERIMENTS.md.

use std::time::Duration;

use optimod::{
    explain_at, explain_options, DepStyle, ExplainOutcome, LoopStatus, Objective, OptimalScheduler,
    SchedulerConfig,
};
use optimod_ddg::{kernels, Loop};
use optimod_machine::{example_3fu, Machine};

/// The golden kernel set of `tests/golden_corpus.rs`.
fn golden_loops(machine: &Machine) -> Vec<Loop> {
    vec![
        kernels::figure1(machine),
        kernels::saxpy(machine),
        kernels::dot_product(machine),
        kernels::lfk5_tridiag(machine),
        kernels::lfk6_recurrence(machine),
        kernels::lfk11_first_sum(machine),
        kernels::lfk12_first_diff(machine),
        kernels::fir4(machine),
        kernels::horner(machine),
        kernels::divide_recurrence(machine),
        kernels::stream_copy(machine),
    ]
}

fn main() {
    let machine = example_3fu();
    let mut cfg = SchedulerConfig::new(DepStyle::Structured, Objective::FirstFeasible)
        .with_time_limit(Duration::from_secs(120));
    cfg.limits.threads = 1;
    let sched = OptimalScheduler::new(cfg.clone());

    println!(
        "{:<22} {:>4} {:>10} {:>9} {:>10} {:>10}",
        "kernel", "II*", "explained", "raw core", "minimized", "certified"
    );
    let mut explained = 0usize;
    let mut skipped = 0usize;
    for l in golden_loops(&machine) {
        let r = sched.schedule(&l, &machine);
        assert_eq!(
            r.status,
            LoopStatus::Optimal,
            "golden kernel {} must schedule",
            l.name()
        );
        let star = r.ii.expect("feasible result has an II");
        if star == 1 {
            println!("{:<22} {star:>4} {:>10}", l.name(), "(skip)");
            skipped += 1;
            continue;
        }

        let ii = star - 1;
        let ex = match explain_at(&l, &machine, ii, &cfg, &explain_options(&cfg)) {
            ExplainOutcome::Explained(ex) => ex,
            other => panic!(
                "{} at II={ii} (one below its certified II* = {star}) must \
                 be explained, got {}",
                l.name(),
                other.name()
            ),
        };
        assert_eq!(ex.ii, ii, "{}: explanation names the wrong II", l.name());
        assert!(
            ex.minimized && ex.certified,
            "{} at II={ii}: core must be minimized and certified \
             (minimized={}, certified={})",
            l.name(),
            ex.minimized,
            ex.certified
        );
        assert!(
            ex.core.len() <= ex.raw_core_size,
            "{} at II={ii}: minimizer grew the core ({} -> {})",
            l.name(),
            ex.raw_core_size,
            ex.core.len()
        );
        assert!(
            !ex.core.is_empty(),
            "{} at II={ii}: an infeasibility must name at least one group",
            l.name()
        );
        println!(
            "{:<22} {star:>4} {ii:>10} {:>9} {:>10} {:>10}",
            l.name(),
            ex.raw_core_size,
            ex.core.len(),
            ex.certified
        );
        explained += 1;
    }
    assert!(
        explained >= 8,
        "expected at least 8 explainable golden kernels, got {explained}"
    );
    println!(
        "\nexplain_corpus: {explained} kernel(s) explained with certified \
         minimal cores, {skipped} skipped at II* = 1"
    );
}
