//! Per-node LP re-solve microbenchmark: dense vs sparse engine, warm vs
//! cold restart, on the large generated loops where the basis dimension
//! actually hurts. Writes `BENCH_simplex.json` and enforces a pinned
//! non-regression gate on the headline ratio.
//!
//! What is measured, per generated loop (N >= 40 operations, scheduling
//! ILP built at the loop's MII with the structured formulation):
//!
//! 1. the root LP relaxation, solved once per engine (cold), and
//! 2. a set of simulated branch-and-bound children — one integer variable
//!    bound-fixed per child, exactly what `branch_bound.rs` does — each
//!    re-solved three ways: dense cold, sparse cold, and sparse warm from
//!    the parent's basis snapshot.
//!
//! The headline number is the geometric mean, across loops, of
//! `dense cold / sparse warm` per-child re-solve time: the speedup a
//! branch-and-bound node actually sees from this PR. The gate (default
//! 2.0, override with `OPTIMOD_BENCH_MIN_RATIO`) fails the process when
//! the geomean drops below it, so `scripts/check.sh` pins the win.
//!
//! Run: `cargo run --release -p optimod-bench --bin bench_simplex`
//!
//! Knobs: `OPTIMOD_BENCH_LOOPS` (loop count, default 5),
//! `OPTIMOD_BENCH_CHILDREN` (children per loop, default 6),
//! `OPTIMOD_BENCH_MIN_RATIO` (gate, default 2.0).

use std::fmt::Write as _;
use std::time::Instant;

use optimod::{build_model, compute_mii, BuiltModel, FormulationConfig};
use optimod_ddg::generator::{generate_loop, GeneratorConfig};
use optimod_ilp::{LpStatus, Simplex, SimplexEngine, SimplexOptions, WarmStart};
use optimod_machine::example_3fu;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn opts_for(engine: SimplexEngine) -> SimplexOptions {
    SimplexOptions {
        engine,
        ..Default::default()
    }
}

/// Builds the scheduling ILP for `seed` at the smallest II whose root LP
/// relaxation is feasible (a capped probe solve filters infeasible IIs
/// without paying a full phase-1 infeasibility proof per candidate — the
/// real branch-and-bound would bump II on those exactly the same way).
fn build_for_seed(seed: u64, machine: &optimod_machine::Machine) -> (String, usize, BuiltModel) {
    let cfg = GeneratorConfig {
        min_ops: 40,
        max_ops: 44,
        size_log_median: 40.0_f64.ln(),
        ..Default::default()
    };
    let l = generate_loop(&cfg, machine, seed);
    let probe_opts = SimplexOptions {
        max_iterations: 6_000,
        ..opts_for(SimplexEngine::Sparse)
    };
    let mut ii = compute_mii(&l, machine).value();
    loop {
        if let Some(built) = build_model(&l, machine, ii, &FormulationConfig::default()) {
            let model = &built.model;
            let lb: Vec<f64> = model.var_ids().map(|v| model.lb(v)).collect();
            let ub: Vec<f64> = model.var_ids().map(|v| model.ub(v)).collect();
            let probe = Simplex::new(model).solve(&lb, &ub, &probe_opts);
            if probe.status == LpStatus::Optimal {
                return (format!("gen-{seed}-n{}", l.num_ops()), l.num_ops(), built);
            }
            eprintln!(
                "  [gen-{seed}] II {ii}: root relaxation {:?}, trying II {}",
                probe.status,
                ii + 1
            );
        }
        ii += 1;
    }
}

/// One loop's measurements (times in nanoseconds, per-child means).
struct Row {
    name: String,
    ops: usize,
    rows: usize,
    root_dense_ns: u64,
    root_sparse_ns: u64,
    dense_cold_ns: u64,
    sparse_cold_ns: u64,
    sparse_warm_ns: u64,
    warm_taken: usize,
    children: usize,
}

fn measure_loop(seed: u64, children_per_loop: usize) -> Row {
    let machine = example_3fu();
    let (name, ops, built) = build_for_seed(seed, &machine);
    let model = &built.model;
    let lb: Vec<f64> = model.var_ids().map(|v| model.lb(v)).collect();
    let ub: Vec<f64> = model.var_ids().map(|v| model.ub(v)).collect();

    eprintln!(
        "  [{name}] {} ops, {} vars, {} rows",
        ops,
        model.num_vars(),
        model.num_constraints()
    );
    let mut dense = Simplex::new(model);
    let mut sparse = Simplex::new(model);
    let dense_opts = opts_for(SimplexEngine::Dense);
    let sparse_opts = opts_for(SimplexEngine::Sparse);

    let t0 = Instant::now();
    let root_s = sparse.solve(&lb, &ub, &sparse_opts);
    let root_sparse_ns = t0.elapsed().as_nanos() as u64;
    eprintln!(
        "  [{name}] sparse root: {:.3}ms ({} iterations)",
        root_sparse_ns as f64 / 1e6,
        root_s.iterations
    );
    let t0 = Instant::now();
    let root_d = dense.solve(&lb, &ub, &dense_opts);
    let root_dense_ns = t0.elapsed().as_nanos() as u64;
    eprintln!("  [{name}] dense root: {:.3}ms", root_dense_ns as f64 / 1e6);
    assert_eq!(
        root_d.status,
        LpStatus::Optimal,
        "{name}: dense root not optimal"
    );
    assert_eq!(
        root_s.status,
        LpStatus::Optimal,
        "{name}: sparse root not optimal"
    );
    assert!(
        (root_d.objective - root_s.objective).abs() < 1e-6,
        "{name}: engines disagree at the root"
    );
    let snapshot = sparse.basis_snapshot().expect("optimal root basis");

    // Child nodes: fix one schedule binary per child, alternating the
    // branch direction the way the down/up children of one B&B node do.
    // Child solves run under an iteration cap several times the root's
    // count: a cold solve that blows past it (degenerate phase-1 stall —
    // exactly what the warm restart exists to avoid) is reported as an
    // indefinite status, and that child is skipped rather than letting one
    // pathological cold solve dominate the timing columns for minutes.
    let child_opts = |base: &SimplexOptions| SimplexOptions {
        max_iterations: 12_000,
        ..base.clone()
    };
    let dense_child_opts = child_opts(&dense_opts);
    let sparse_child_opts = child_opts(&sparse_opts);
    let definite = |s: LpStatus| matches!(s, LpStatus::Optimal | LpStatus::Infeasible);
    let branch_vars: Vec<_> = built.a.iter().flatten().copied().collect();
    let stride = (branch_vars.len() / children_per_loop).max(1);
    let mut dense_cold_ns = 0u64;
    let mut sparse_cold_ns = 0u64;
    let mut sparse_warm_ns = 0u64;
    let mut warm_taken = 0usize;
    let mut children = 0usize;
    for (i, &v) in branch_vars.iter().step_by(stride).enumerate() {
        if children == children_per_loop {
            break;
        }
        let j = v.index();
        let mut clb = lb.clone();
        let mut cub = ub.clone();
        if i % 2 == 0 {
            clb[j] = 1.0; // up branch: force the binary on
        } else {
            cub[j] = 0.0; // down branch: force it off
        }

        let t0 = Instant::now();
        let d = dense.solve(&clb, &cub, &dense_child_opts);
        let d_ns = t0.elapsed().as_nanos() as u64;

        let t0 = Instant::now();
        let c = sparse.solve(&clb, &cub, &sparse_child_opts);
        let c_ns = t0.elapsed().as_nanos() as u64;

        let t0 = Instant::now();
        let w = sparse.solve_warm(&clb, &cub, &sparse_child_opts, Some(&snapshot));
        let w_ns = t0.elapsed().as_nanos() as u64;

        if !(definite(d.status) && definite(c.status) && definite(w.status)) {
            eprintln!(
                "  [{name}] child {i}: skipped (dense {:?}, sparse {:?}, warm {:?} \
                 under the child iteration cap)",
                d.status, c.status, w.status
            );
            continue;
        }
        // Definite answers must agree — Optimal-vs-Infeasible between any
        // pair of (engine, restart) legs would be a soundness bug.
        assert_eq!(d.status, c.status, "{name} child {i}: engine status split");
        assert_eq!(d.status, w.status, "{name} child {i}: warm status split");
        if d.status == LpStatus::Optimal {
            assert!(
                (d.objective - w.objective).abs() < 1e-6,
                "{name} child {i}: warm objective {} vs dense {}",
                w.objective,
                d.objective
            );
        }
        dense_cold_ns += d_ns;
        sparse_cold_ns += c_ns;
        sparse_warm_ns += w_ns;
        if w.warm == WarmStart::Taken {
            warm_taken += 1;
        }
        children += 1;
    }
    let n = children.max(1) as u64;
    Row {
        name,
        ops,
        rows: model.num_constraints(),
        root_dense_ns,
        root_sparse_ns,
        dense_cold_ns: dense_cold_ns / n,
        sparse_cold_ns: sparse_cold_ns / n,
        sparse_warm_ns: sparse_warm_ns / n,
        warm_taken,
        children,
    }
}

fn geomean(ratios: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0u32);
    for r in ratios {
        sum += r.ln();
        n += 1;
    }
    (sum / n.max(1) as f64).exp()
}

fn main() {
    let loops = env_usize("OPTIMOD_BENCH_LOOPS", 5);
    let children = env_usize("OPTIMOD_BENCH_CHILDREN", 6);
    let min_ratio: f64 = std::env::var("OPTIMOD_BENCH_MIN_RATIO")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);

    println!(
        "Per-node LP re-solve benchmark — {loops} generated loops (N >= 40), \
         {children} simulated children each\n"
    );
    println!(
        "{:<14} {:>4} {:>5} {:>12} {:>12} {:>12} {:>8} {:>8}",
        "loop", "ops", "rows", "dense-cold", "sparse-cold", "sparse-warm", "node-spd", "warm-hit"
    );

    let rows: Vec<Row> = (0..loops as u64)
        .map(|seed| measure_loop(1000 + seed, children))
        .collect();
    for r in &rows {
        println!(
            "{:<14} {:>4} {:>5} {:>10.3}ms {:>10.3}ms {:>10.3}ms {:>7.2}x {:>6}/{}",
            r.name,
            r.ops,
            r.rows,
            r.dense_cold_ns as f64 / 1e6,
            r.sparse_cold_ns as f64 / 1e6,
            r.sparse_warm_ns as f64 / 1e6,
            r.dense_cold_ns as f64 / r.sparse_warm_ns.max(1) as f64,
            r.warm_taken,
            r.children
        );
    }

    let node_speedup = geomean(
        rows.iter()
            .map(|r| r.dense_cold_ns as f64 / r.sparse_warm_ns.max(1) as f64),
    );
    let engine_speedup = geomean(
        rows.iter()
            .map(|r| r.dense_cold_ns as f64 / r.sparse_cold_ns.max(1) as f64),
    );
    let warm_speedup = geomean(
        rows.iter()
            .map(|r| r.sparse_cold_ns as f64 / r.sparse_warm_ns.max(1) as f64),
    );
    let root_speedup = geomean(
        rows.iter()
            .map(|r| r.root_dense_ns as f64 / r.root_sparse_ns.max(1) as f64),
    );
    println!("\ngeomean per-node re-solve speedup (dense cold -> sparse warm): {node_speedup:.2}x");
    println!("geomean engine speedup (dense cold -> sparse cold):            {engine_speedup:.2}x");
    println!("geomean warm-start speedup (sparse cold -> sparse warm):       {warm_speedup:.2}x");
    println!("geomean root-solve speedup (dense -> sparse):                  {root_speedup:.2}x");

    let mut json = String::from("{\n  \"loops\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"ops\": {}, \"rows\": {}, \
             \"root_dense_ns\": {}, \"root_sparse_ns\": {}, \
             \"dense_cold_ns\": {}, \"sparse_cold_ns\": {}, \"sparse_warm_ns\": {}, \
             \"warm_taken\": {}, \"children\": {}}}{}",
            r.name,
            r.ops,
            r.rows,
            r.root_dense_ns,
            r.root_sparse_ns,
            r.dense_cold_ns,
            r.sparse_cold_ns,
            r.sparse_warm_ns,
            r.warm_taken,
            r.children,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"geomean_node_resolve_speedup\": {node_speedup:.4},\n  \
         \"geomean_engine_speedup\": {engine_speedup:.4},\n  \
         \"geomean_warm_speedup\": {warm_speedup:.4},\n  \
         \"geomean_root_speedup\": {root_speedup:.4},\n  \
         \"min_ratio_gate\": {min_ratio:.4}\n}}\n"
    );
    std::fs::write("BENCH_simplex.json", &json).expect("write BENCH_simplex.json");
    println!("\nwrote BENCH_simplex.json");

    if node_speedup < min_ratio {
        eprintln!(
            "FAIL: per-node re-solve speedup {node_speedup:.2}x is below the pinned \
             non-regression ratio {min_ratio:.2}x"
        );
        std::process::exit(1);
    }
    println!("gate: {node_speedup:.2}x >= {min_ratio:.2}x — ok");
}
