//! Certification acceptance scenario: every golden kernel, scheduled under
//! both dependence formulations, must come back with a schedule the
//! exact-arithmetic certifier accepts end to end — the constraint system in
//! integer arithmetic (with Ineq. 4 and Ineq. 20 cross-checked against the
//! ground truth on every edge), the claimed objective against a
//! ground-truth recomputation, and the independently recomputed MinII.
//!
//! The scheduler already certifies internally before emitting a schedule;
//! this binary re-runs the certifier *from the outside* on the returned
//! result, so a regression that silently disabled the internal check would
//! still fail here.

use std::time::Duration;

use optimod::{certify, Claim, DepStyle, LoopStatus, Objective, OptimalScheduler, SchedulerConfig};
use optimod_ddg::{kernels, Loop};
use optimod_machine::{example_3fu, Machine};

/// The golden kernel set of `tests/golden_corpus.rs`.
fn golden_loops(machine: &Machine) -> Vec<Loop> {
    vec![
        kernels::figure1(machine),
        kernels::saxpy(machine),
        kernels::dot_product(machine),
        kernels::lfk5_tridiag(machine),
        kernels::lfk6_recurrence(machine),
        kernels::lfk11_first_sum(machine),
        kernels::lfk12_first_diff(machine),
        kernels::fir4(machine),
        kernels::horner(machine),
        kernels::divide_recurrence(machine),
        kernels::stream_copy(machine),
    ]
}

fn style_name(style: DepStyle) -> &'static str {
    match style {
        DepStyle::Traditional => "traditional",
        DepStyle::Structured => "structured",
    }
}

fn main() {
    let machine = example_3fu();
    let loops = golden_loops(&machine);
    println!(
        "{:<22} {:<12} {:>4} {:>6} {:>6} {:>6} {:>9}",
        "kernel", "formulation", "II", "MinII", "edges", "slots", "objective"
    );
    let mut certified = 0usize;
    for style in [DepStyle::Traditional, DepStyle::Structured] {
        let mut cfg = SchedulerConfig::new(style, Objective::MinMaxLive)
            .with_time_limit(Duration::from_secs(120));
        cfg.limits.threads = 1;
        let sched = OptimalScheduler::new(cfg);
        for l in &loops {
            let r = sched.schedule(l, &machine);
            assert_eq!(
                r.status,
                LoopStatus::Optimal,
                "golden kernel {} must solve to optimality under {}",
                l.name(),
                style_name(style)
            );
            let s = r.schedule.as_ref().expect("optimal result has a schedule");
            let claim = Claim {
                graph: l,
                machine: &machine,
                ii: s.ii(),
                times: s.times(),
                claimed_optimal: true,
                claimed_objective: r.objective_value,
                exact_objective: Some(s.max_live(l) as i64),
                claimed_bound: None,
            };
            let cert = certify(&claim).unwrap_or_else(|e| {
                panic!(
                    "certificate refused for {} / {}: {e}",
                    l.name(),
                    style_name(style)
                )
            });
            println!(
                "{:<22} {:<12} {:>4} {:>6} {:>6} {:>6} {:>9}",
                l.name(),
                style_name(style),
                cert.ii,
                cert.min_ii,
                cert.edges_checked,
                cert.resource_rows_checked,
                cert.objective
                    .map_or_else(|| "-".to_string(), |o| o.to_string()),
            );
            certified += 1;
        }
    }
    assert_eq!(certified, 2 * loops.len());
    println!("{certified}/{certified} schedules certified (both formulations, exact arithmetic)");
}
