//! Portfolio win-rate and latency measurement over the golden corpus:
//! every golden cell (11 kernels x both formulations) is timed under
//! ILP-only, serial portfolio (SAT decides first), and the two-thread
//! cross-backend race, and `BENCH_portfolio.json` records per-cell wall
//! times plus which backend won each portfolio run.
//!
//! Run: `cargo run --release -p optimod-bench --bin bench_portfolio`

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use optimod::{DepStyle, LoopResult, Objective, OptimalScheduler, Provenance, SchedulerConfig};
use optimod_ddg::{kernels, Loop};
use optimod_machine::{example_3fu, Machine};

fn golden_loops(machine: &Machine) -> Vec<Loop> {
    vec![
        kernels::figure1(machine),
        kernels::saxpy(machine),
        kernels::dot_product(machine),
        kernels::lfk5_tridiag(machine),
        kernels::lfk6_recurrence(machine),
        kernels::lfk11_first_sum(machine),
        kernels::lfk12_first_diff(machine),
        kernels::fir4(machine),
        kernels::horner(machine),
        kernels::divide_recurrence(machine),
        kernels::stream_copy(machine),
    ]
}

fn run(
    l: &Loop,
    machine: &Machine,
    style: DepStyle,
    portfolio: bool,
    threads: u32,
) -> (LoopResult, f64) {
    let mut cfg = SchedulerConfig::new(style, Objective::FirstFeasible)
        .with_time_limit(Duration::from_secs(60));
    cfg.limits.threads = threads;
    cfg.portfolio = portfolio;
    let t0 = Instant::now();
    let r = OptimalScheduler::new(cfg).schedule(l, machine);
    (r, t0.elapsed().as_secs_f64() * 1e3)
}

fn winner(r: &LoopResult) -> &'static str {
    match r.provenance {
        Some(Provenance::SatExact) => "sat",
        Some(_) => "ilp",
        None => "none",
    }
}

fn main() {
    let machine = example_3fu();
    let loops = golden_loops(&machine);
    let styles = [
        ("traditional", DepStyle::Traditional),
        ("structured", DepStyle::Structured),
    ];

    println!(
        "Portfolio benchmark — {} kernels x {} formulations\n",
        loops.len(),
        styles.len()
    );
    println!(
        "{:<18} {:<12} {:>3} {:>10} {:>12} {:>7} {:>12} {:>7}",
        "kernel", "style", "II", "ilp_ms", "serial_ms", "winner", "raced_ms", "winner"
    );

    struct Row {
        name: String,
        style: &'static str,
        ii: u32,
        ilp_ms: f64,
        serial_ms: f64,
        serial_winner: &'static str,
        raced_ms: f64,
        raced_winner: &'static str,
    }
    let mut rows: Vec<Row> = Vec::new();
    for (style_name, style) in styles {
        for l in &loops {
            let (ilp, ilp_ms) = run(l, &machine, style, false, 1);
            let (serial, serial_ms) = run(l, &machine, style, true, 1);
            let (raced, raced_ms) = run(l, &machine, style, true, 2);
            let ii = ilp.ii.expect("golden kernels all schedule");
            assert_eq!(
                serial.ii,
                Some(ii),
                "{}: serial portfolio II drifted",
                l.name()
            );
            assert_eq!(
                raced.ii,
                Some(ii),
                "{}: raced portfolio II drifted",
                l.name()
            );
            let row = Row {
                name: l.name().to_string(),
                style: style_name,
                ii,
                ilp_ms,
                serial_ms,
                serial_winner: winner(&serial),
                raced_ms,
                raced_winner: winner(&raced),
            };
            println!(
                "{:<18} {:<12} {:>3} {:>10.3} {:>12.3} {:>7} {:>12.3} {:>7}",
                row.name,
                row.style,
                row.ii,
                row.ilp_ms,
                row.serial_ms,
                row.serial_winner,
                row.raced_ms,
                row.raced_winner
            );
            rows.push(row);
        }
    }

    let sat_serial = rows.iter().filter(|r| r.serial_winner == "sat").count();
    let sat_raced = rows.iter().filter(|r| r.raced_winner == "sat").count();
    println!(
        "\nserial portfolio: sat won {sat_serial}/{} cells; raced: sat won {sat_raced}/{}",
        rows.len(),
        rows.len()
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"cells\": {},", rows.len());
    let _ = writeln!(json, "  \"sat_wins_serial\": {sat_serial},");
    let _ = writeln!(json, "  \"sat_wins_raced\": {sat_raced},");
    json.push_str("  \"runs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"kernel\": \"{}\", \"style\": \"{}\", \"ii\": {}, \
             \"ilp_ms\": {:.4}, \"serial_ms\": {:.4}, \"serial_winner\": \"{}\", \
             \"raced_ms\": {:.4}, \"raced_winner\": \"{}\"}}",
            r.name,
            r.style,
            r.ii,
            r.ilp_ms,
            r.serial_ms,
            r.serial_winner,
            r.raced_ms,
            r.raced_winner
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_portfolio.json", &json).expect("write BENCH_portfolio.json");
    println!("wrote BENCH_portfolio.json");
}
