//! Ablation: branching-rule sensitivity of the two formulations.
//!
//! Not a paper experiment — this quantifies a solver design choice called
//! out in DESIGN.md: how much the branch-and-bound node count (and the
//! traditional/structured gap) depends on the branching rule. The paper's
//! effect must be visible under *every* rule for the reproduction to be
//! trustworthy.
//!
//! Run: `cargo run --release -p optimod-bench --bin ablation_branching`

use optimod::{DepStyle, Objective};
use optimod_bench::ExperimentConfig;
use optimod_ilp::BranchRule;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let machine = cfg.machine();
    // A slice of the corpus keeps this ablation quick.
    let loops: Vec<_> = cfg.corpus_loops(&machine).into_iter().take(48).collect();
    println!(
        "Branching-rule ablation (MinReg) — {} loops, {} ms/loop\n",
        loops.len(),
        cfg.budget.as_millis()
    );
    println!(
        "{:<18} {:>12} {:>16} {:>12} {:>16}",
        "Rule", "trad solved", "trad avg nodes", "struct solved", "struct avg nodes"
    );
    for rule in [
        BranchRule::FirstFractional,
        BranchRule::MostFractional,
        BranchRule::MostFractionalUp,
        BranchRule::HighestIndexUp,
    ] {
        let mut row = format!("{rule:<18?}");
        for style in [DepStyle::Traditional, DepStyle::Structured] {
            let mut sched_cfg = optimod::SchedulerConfig::new(style, Objective::MinMaxLive)
                .with_time_limit(cfg.budget)
                .with_node_limit(cfg.node_cap);
            sched_cfg.limits.branch_rule = rule;
            let sched = optimod::OptimalScheduler::new(sched_cfg);
            let mut solved = 0usize;
            let mut nodes = 0u64;
            for l in &loops {
                let r = sched.schedule(l, &machine);
                if r.status.scheduled() {
                    solved += 1;
                    nodes += r.stats.bb_nodes;
                }
            }
            let avg = if solved > 0 {
                nodes as f64 / solved as f64
            } else {
                f64::NAN
            };
            row += &format!(" {solved:>12} {avg:>16.1}");
        }
        println!("{row}");
    }
}
