//! Table 1: measurements with the *structured* scheduling constraints.
//!
//! For each of the four schedulers, prints the paper's
//! `min / freq / median / average / max` summary of variables, constraints,
//! branch-and-bound nodes, simplex iterations, II, and N over the
//! successfully scheduled loops.
//!
//! Run: `cargo run --release -p optimod-bench --bin table1_structured`

use optimod::DepStyle;
use optimod_bench::{print_measurement_block, ExperimentConfig, SCHEDULERS};

fn main() {
    let cfg = ExperimentConfig::from_env();
    let machine = cfg.machine();
    let loops = cfg.corpus_loops(&machine);
    println!(
        "Table 1 reproduction (structured constraints) — {} loops, {} ms/loop\n",
        loops.len(),
        cfg.budget.as_millis()
    );
    for (name, obj) in SCHEDULERS {
        eprintln!("running {name} ...");
        let recs = cfg.run_suite(&machine, &loops, DepStyle::Structured, obj);
        print_measurement_block(&format!("{name} Modulo-Sched"), &recs);
        println!();
    }
}
