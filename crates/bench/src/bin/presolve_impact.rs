//! Presolve impact over the golden corpus: for each of the 11 golden
//! kernels and both dependence formulations, solve serially with the
//! analyzer's presolve off and on, and report what presolve removed and
//! what the branch-and-bound search cost with and without it.
//!
//! Exits non-zero if presolve fails to reduce the *total* golden-corpus
//! branch-and-bound nodes or simplex iterations — the acceptance gate of
//! the analyzer work — or if any kernel's certified II or objective
//! differs between the two modes (which would mean presolve is unsound).
//!
//! Run: `cargo run --release -p optimod-bench --bin presolve_impact`
//!
//! Environment knobs (for attribution experiments):
//!
//! * `OPTIMOD_PRESOLVE_NO_TIGHTEN=1` — disable stage-bound tightening.
//! * `OPTIMOD_PRESOLVE_NO_FIX=1` — disable window binary fixing.
//! * `OPTIMOD_PRESOLVE_NO_ROWS=1` — disable redundant-row elimination.

use std::time::Duration;

use optimod::{
    DepStyle, LoopStatus, Objective, OptimalScheduler, PresolveOptions, SchedulerConfig,
};
use optimod_ddg::{kernels, Loop};
use optimod_machine::{example_3fu, Machine};

fn golden_loops(machine: &Machine) -> Vec<Loop> {
    vec![
        kernels::figure1(machine),
        kernels::saxpy(machine),
        kernels::dot_product(machine),
        kernels::lfk5_tridiag(machine),
        kernels::lfk6_recurrence(machine),
        kernels::lfk11_first_sum(machine),
        kernels::lfk12_first_diff(machine),
        kernels::fir4(machine),
        kernels::horner(machine),
        kernels::divide_recurrence(machine),
        kernels::stream_copy(machine),
    ]
}

fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| v == "1")
}

fn scheduler(style: DepStyle, presolve: bool) -> OptimalScheduler {
    let mut cfg = SchedulerConfig::new(style, Objective::MinMaxLive)
        .with_time_limit(Duration::from_secs(120));
    cfg.limits.threads = 1;
    cfg.presolve = presolve;
    cfg.presolve_options = PresolveOptions {
        tighten_stage_bounds: !env_flag("OPTIMOD_PRESOLVE_NO_TIGHTEN"),
        fix_binaries: !env_flag("OPTIMOD_PRESOLVE_NO_FIX"),
        eliminate_rows: !env_flag("OPTIMOD_PRESOLVE_NO_ROWS"),
        collect_findings: false,
    };
    OptimalScheduler::new(cfg)
}

fn style_name(style: DepStyle) -> &'static str {
    match style {
        DepStyle::Traditional => "traditional",
        DepStyle::Structured => "structured",
    }
}

fn main() {
    let machine = example_3fu();
    let loops = golden_loops(&machine);

    let mut sound = true;
    let (mut nodes_off, mut nodes_on) = (0u64, 0u64);
    let (mut iters_off, mut iters_on) = (0u64, 0u64);
    let (mut rows, mut fixed, mut tightened) = (0u64, 0u64, 0u64);

    println!(
        "{:<20} {:<12} {:>3} {:>10} {:>10} {:>10} {:>10} {:>6} {:>6} {:>6}",
        "kernel",
        "style",
        "II",
        "nodes",
        "nodes+pre",
        "iters",
        "iters+pre",
        "rows-",
        "fix",
        "tight"
    );
    for style in [DepStyle::Traditional, DepStyle::Structured] {
        let base = scheduler(style, false);
        let pre = scheduler(style, true);
        for l in &loops {
            let r = base.schedule(l, &machine);
            let p = pre.schedule(l, &machine);
            for (mode, res) in [("off", &r), ("on", &p)] {
                assert_eq!(
                    res.status,
                    LoopStatus::Optimal,
                    "{} / {} must reach optimality (presolve {mode})",
                    l.name(),
                    style_name(style)
                );
            }
            let ii = r.schedule.as_ref().map(|s| s.ii());
            if p.schedule.as_ref().map(|s| s.ii()) != ii || p.objective_value != r.objective_value {
                eprintln!(
                    "UNSOUND: {} / {}: presolve changed II {:?}->{:?} or objective {:?}->{:?}",
                    l.name(),
                    style_name(style),
                    ii,
                    p.schedule.as_ref().map(|s| s.ii()),
                    r.objective_value,
                    p.objective_value
                );
                sound = false;
            }
            nodes_off += r.stats.bb_nodes;
            nodes_on += p.stats.bb_nodes;
            iters_off += r.stats.simplex_iterations;
            iters_on += p.stats.simplex_iterations;
            rows += p.presolve.rows_eliminated;
            fixed += p.presolve.binaries_fixed;
            tightened += p.presolve.bounds_tightened;
            println!(
                "{:<20} {:<12} {:>3} {:>10} {:>10} {:>10} {:>10} {:>6} {:>6} {:>6}",
                l.name(),
                style_name(style),
                ii.unwrap_or(0),
                r.stats.bb_nodes,
                p.stats.bb_nodes,
                r.stats.simplex_iterations,
                p.stats.simplex_iterations,
                p.presolve.rows_eliminated,
                p.presolve.binaries_fixed,
                p.presolve.bounds_tightened
            );
        }
    }

    println!(
        "\ntotals: nodes {nodes_off} -> {nodes_on} ({:+}), simplex iterations {iters_off} -> \
         {iters_on} ({:+})",
        nodes_on as i64 - nodes_off as i64,
        iters_on as i64 - iters_off as i64
    );
    println!("presolve work: {rows} rows eliminated, {fixed} binaries fixed, {tightened} bounds tightened");

    if !sound {
        eprintln!("FAIL: presolve changed a certified result");
        std::process::exit(1);
    }
    if nodes_on > nodes_off && iters_on > iters_off {
        eprintln!("FAIL: presolve reduced neither total nodes nor total simplex iterations");
        std::process::exit(1);
    }
    println!("PASS: presolve sound and reduces total search effort");
}
