//! Boundedness and brownout acceptance gate for the daemon, in two phases
//! against in-process daemons:
//!
//! **Phase 1 — cache caps hold through a 10x overflow.** A daemon with a
//! 4-entry / 2 KiB cache is fed 40 distinct kernels (each optimal, each
//! cached). After every store the cache must be inside both caps; by the
//! end the LRU evictor must have dropped the overflow, and a reopened
//! store must see the same bounded population.
//!
//! **Phase 2 — brownout degrades instead of shedding.** The same burst of
//! overloading traffic is thrown at a one-worker, depth-2 daemon twice:
//! once with brownout off (every overflow is an `Overloaded` shed) and
//! once with brownout on (pressure routes new solves through the fallback
//! ladder). The brownout run must shed strictly less, serve at least one
//! honestly-tagged degraded schedule, and return to exact solves once the
//! load drops.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use optimod::Provenance;
use optimod_daemon::client;
use optimod_daemon::server::{Daemon, DaemonConfig, DaemonHandle};
use optimod_daemon::{CacheLimits, ClientConfig, Request};

static SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "omd-bound-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A distinct trivially-schedulable kernel per `i`: the loop-carried
/// distance lands in the canonical cache key, so each value is its own
/// cache entry.
fn distinct_kernel(i: u64) -> String {
    format!(
        "machine example-3fu\n\
         op ld-x load\nop mult fmul\nop add fadd\nop sub fadd\nop st-y store\n\
         flow ld-x mult {i}\nflow ld-x add 0\nflow mult sub 0\nflow add sub 0\n\
         flow sub st-y 0\n"
    )
}

/// A slightly deeper kernel for the overload phase: slow enough under the
/// exact formulation that a one-worker daemon falls behind a burst.
fn overload_kernel(i: u64) -> String {
    format!(
        "machine example-3fu\n\
         op ld-x load\nop m0 fmul\nop m1 fmul\nop m2 fmul\nop m3 fmul\n\
         op a0 fadd\nop a1 fadd\nop a2 fadd\nop st-y store\n\
         flow ld-x m0 {}\nflow ld-x m1 1\nflow ld-x m2 2\nflow ld-x m3 3\n\
         flow m0 a0 0\nflow m1 a0 0\nflow m2 a1 0\nflow m3 a1 0\n\
         flow a0 a2 0\nflow a1 a2 0\nflow a2 st-y 0\n",
        i % 7
    )
}

const OVERFLOW_KERNELS: u64 = 40;
const CACHE_CAP_ENTRIES: u64 = 4;
const CACHE_CAP_BYTES: u64 = 2048;

fn phase1_cache_caps() {
    let cache_dir = fresh_path("cache");
    let mut cfg = DaemonConfig::new(fresh_path("sock").with_extension("sock"));
    cfg.cache_dir = Some(cache_dir.clone());
    cfg.cache_limits = CacheLimits {
        max_bytes: CACHE_CAP_BYTES,
        max_entries: CACHE_CAP_ENTRIES,
        quarantine_max_bytes: CACHE_CAP_BYTES,
    };
    cfg.workers = 2;
    let handle = Daemon::start(cfg).expect("daemon start");
    let ccfg = ClientConfig::new(handle.socket_path());

    for i in 0..OVERFLOW_KERNELS {
        let mut req = Request::new(distinct_kernel(i));
        req.deadline_ms = 10_000;
        let reply = client::solve(&ccfg, req).expect("overflow kernel must schedule");
        assert!(reply.optimal, "kernel {i} should solve to optimality");
        let stats = handle.cache_stats().expect("cache configured");
        assert!(
            stats.entries <= CACHE_CAP_ENTRIES,
            "entry cap violated mid-workload: {} > {CACHE_CAP_ENTRIES}",
            stats.entries
        );
        assert!(
            stats.bytes <= CACHE_CAP_BYTES,
            "byte cap violated mid-workload: {} > {CACHE_CAP_BYTES}",
            stats.bytes
        );
    }
    let stats = handle.cache_stats().expect("cache configured");
    assert_eq!(stats.stores, OVERFLOW_KERNELS, "every solve should store");
    assert!(
        stats.evicted >= OVERFLOW_KERNELS - CACHE_CAP_ENTRIES,
        "a 10x overflow must evict the overflow ({} evicted)",
        stats.evicted
    );
    handle.shutdown().expect("drain");

    // A reopened bounded store sees the same bounded population.
    let reopened = optimod_daemon::CacheStore::open_bounded(
        &cache_dir,
        CacheLimits {
            max_bytes: CACHE_CAP_BYTES,
            max_entries: CACHE_CAP_ENTRIES,
            quarantine_max_bytes: CACHE_CAP_BYTES,
        },
    )
    .expect("reopen");
    let st = reopened.stats();
    assert!(
        st.entries <= CACHE_CAP_ENTRIES && st.bytes <= CACHE_CAP_BYTES,
        "caps must hold across a reopen ({} entries / {} bytes)",
        st.entries,
        st.bytes
    );
    let _ = std::fs::remove_dir_all(&cache_dir);
    println!(
        "phase 1: {OVERFLOW_KERNELS} kernels through a {CACHE_CAP_ENTRIES}-entry / \
         {CACHE_CAP_BYTES}-byte cache: {} evicted, caps held throughout",
        stats.evicted
    );
}

/// One overload burst: `clients` retrying clients, arrivals staggered a
/// millisecond apart, against `handle`. Returns (scheduled, degraded,
/// failed) reply counts; sheds are read off the daemon's own counter.
fn burst(handle: &DaemonHandle, clients: u64) -> (usize, usize, usize) {
    let threads: Vec<_> = (0..clients)
        .map(|i| {
            let cfg = ClientConfig {
                retries: 3,
                backoff_base: Duration::from_millis(3),
                backoff_cap: Duration::from_millis(30),
                jitter_seed: i,
                ..ClientConfig::new(handle.socket_path())
            };
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(i));
                let mut req = Request::new(overload_kernel(i));
                req.deadline_ms = 10_000;
                req.use_cache = false; // every request must actually solve
                client::solve(&cfg, req)
            })
        })
        .collect();
    let mut scheduled = 0;
    let mut degraded = 0;
    let mut failed = 0;
    for t in threads {
        match t.join().expect("client thread") {
            Ok(reply) => {
                scheduled += 1;
                if reply.provenance.degraded() {
                    degraded += 1;
                }
            }
            Err(_) => failed += 1,
        }
    }
    (scheduled, degraded, failed)
}

const BURST_CLIENTS: u64 = 32;

fn overload_daemon(brownout: bool) -> DaemonHandle {
    let mut cfg = DaemonConfig::new(fresh_path("sock").with_extension("sock"));
    cfg.workers = 1;
    cfg.queue_depth = 2;
    if brownout {
        cfg.brownout_pressure = Some(Duration::from_millis(1));
        cfg.brownout_recover = Duration::from_millis(100);
    }
    Daemon::start(cfg).expect("daemon start")
}

fn phase2_brownout() {
    // Brownout off: overflow is shed.
    let off = overload_daemon(false);
    let (sched_off, degraded_off, _failed_off) = burst(&off, BURST_CLIENTS);
    let sheds_off = off.status().sheds;
    off.shutdown().expect("drain");
    assert_eq!(degraded_off, 0, "no degradation without brownout");
    assert!(
        sheds_off > 0,
        "the burst must overload a one-worker depth-2 daemon"
    );

    // Brownout on: same burst, pressure degrades instead.
    let on = overload_daemon(true);
    let (sched_on, degraded_on, _failed_on) = burst(&on, BURST_CLIENTS);
    let status = on.status();
    let sheds_on = status.sheds;
    assert!(
        sheds_on < sheds_off,
        "brownout must shed strictly less than shedding-only \
         ({sheds_on} vs {sheds_off})"
    );
    assert!(
        degraded_on > 0,
        "brownout must serve honestly-tagged degraded schedules"
    );
    assert!(
        status.brownout_served as usize >= degraded_on,
        "daemon's own degraded counter should cover the degraded replies"
    );

    // Load dropped: a trickle of probes must observe the brownout lift and
    // end on an exact, optimal solve.
    let ccfg = ClientConfig::new(on.socket_path());
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut recovered = false;
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(60));
        let mut req = Request::new(overload_kernel(0));
        req.deadline_ms = 10_000;
        req.use_cache = false;
        match client::solve(&ccfg, req) {
            Ok(reply)
                if !on.status().brownout
                    && reply.provenance == Provenance::Exact
                    && reply.optimal =>
            {
                recovered = true;
                break;
            }
            _ => {}
        }
    }
    on.shutdown().expect("drain");
    assert!(
        recovered,
        "the daemon must return to exact solves after the load drops"
    );
    println!(
        "phase 2: burst of {BURST_CLIENTS} vs one worker: \
         off = {sched_off} scheduled / {sheds_off} sheds, \
         on = {sched_on} scheduled ({degraded_on} degraded) / {sheds_on} sheds, \
         recovered to exact"
    );
}

fn main() {
    phase1_cache_caps();
    phase2_brownout();
    println!("acceptance criteria satisfied: caps held, brownout shed less and recovered");
}
