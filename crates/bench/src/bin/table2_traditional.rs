//! Table 2: measurements with the *traditional* scheduling constraints —
//! same layout as Table 1, demonstrating the higher node counts and lower
//! coverage of the traditional formulation.
//!
//! Run: `cargo run --release -p optimod-bench --bin table2_traditional`

use optimod::DepStyle;
use optimod_bench::{print_measurement_block, ExperimentConfig, SCHEDULERS};

fn main() {
    let cfg = ExperimentConfig::from_env();
    let machine = cfg.machine();
    let loops = cfg.corpus_loops(&machine);
    println!(
        "Table 2 reproduction (traditional constraints) — {} loops, {} ms/loop\n",
        loops.len(),
        cfg.budget.as_millis()
    );
    for (name, obj) in SCHEDULERS {
        eprintln!("running {name} ...");
        let recs = cfg.run_suite(&machine, &loops, DepStyle::Traditional, obj);
        print_measurement_block(&format!("{name} Modulo-Sched"), &recs);
        println!();
    }
}
