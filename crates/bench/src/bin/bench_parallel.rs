//! Parallel-throughput measurement: runs the NoObj/structured suite over a
//! corpus slice at 1, 2, 4, and 8 worker threads and writes
//! `BENCH_parallel.json` with loops/sec and speedup versus one thread.
//!
//! The corpus driver parallelizes *across* loops with each solve pinned to
//! one thread, so every configuration performs identical work and the
//! reported node counts match bit-for-bit.
//!
//! Run: `cargo run --release -p optimod-bench --bin bench_parallel`
//!
//! Knobs: `OPTIMOD_CORPUS`, `OPTIMOD_BUDGET_MS`, `OPTIMOD_NODE_CAP`, and
//! `OPTIMOD_BENCH_LOOPS` (slice size, default 64).

use std::fmt::Write as _;
use std::time::Instant;

use optimod::{DepStyle, Objective};
use optimod_bench::{total_time, ExperimentConfig};

fn main() {
    let base = ExperimentConfig::from_env();
    let machine = base.machine();
    let slice: usize = std::env::var("OPTIMOD_BENCH_LOOPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let loops: Vec<_> = base
        .corpus_loops(&machine)
        .into_iter()
        .take(slice)
        .collect();
    let cores = optimod_par::default_threads();
    println!(
        "Parallel corpus driver — {} loops, host reports {} core(s)\n",
        loops.len(),
        cores
    );

    let mut rows = Vec::new();
    let mut baseline_secs = None;
    for threads in [1usize, 2, 4, 8] {
        let cfg = ExperimentConfig {
            threads,
            ..base.clone()
        };
        let t0 = Instant::now();
        let recs = cfg.run_suite(
            &machine,
            &loops,
            DepStyle::Structured,
            Objective::FirstFeasible,
        );
        let secs = t0.elapsed().as_secs_f64();
        let solver = total_time(&recs).as_secs_f64();
        let scheduled = recs.iter().filter(|r| r.result.status.scheduled()).count();
        let nodes: u64 = recs.iter().map(|r| r.result.stats.bb_nodes).sum();
        let baseline = *baseline_secs.get_or_insert(secs);
        let speedup = baseline / secs;
        println!(
            "threads={threads:<2} wall={secs:>8.3}s solver-cpu={solver:>8.3}s \
             loops/sec={:>8.2} speedup={speedup:>5.2}x \
             ({scheduled}/{} scheduled, {nodes} nodes)",
            loops.len() as f64 / secs,
            loops.len(),
        );
        rows.push((threads, secs, loops.len() as f64 / secs, speedup, nodes));
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"host_cores\": {cores},");
    let _ = writeln!(json, "  \"loops\": {},", loops.len());
    json.push_str("  \"runs\": [\n");
    for (i, (threads, secs, lps, speedup, nodes)) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"threads\": {threads}, \"seconds\": {secs:.4}, \
             \"loops_per_sec\": {lps:.3}, \"speedup_vs_1\": {speedup:.3}, \
             \"bb_nodes\": {nodes}}}"
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("\nwrote BENCH_parallel.json");
    if cores == 1 {
        println!(
            "note: single-core host — speedup is bounded at ~1x here; the \
             across-loop driver scales with available cores."
        );
    }
}
