//! Chaos-sweep acceptance scenario for the `optimodd` service stack: for
//! each of 64 fixed seeds, a real in-process daemon (Unix socket, worker
//! pool, certified-schedule cache) runs under a seeded fault plan spanning
//! the *whole* stack — torn wire frames, dropped replies, corrupted cache
//! writes, worker panics, plus the solver's own mid-solve fault sites —
//! while a retrying client solves the golden kernels twice each. The
//! sweep asserts, for every one of the 64 x 3 x 2 requests:
//!
//! * the outcome is a schedule the exact-arithmetic certifier accepts or
//!   a **typed** error (daemon reply or transport error) — never a panic
//!   escaping the client call, never a silent drop;
//! * every reply served from the cache certifies, and — when the plan
//!   cannot have corrupted a stored payload — is byte-identical to the
//!   previously certified optimal schedule;
//! * every daemon drains and joins cleanly after the traffic, faults and
//!   all.
//!
//! Seeds are fixed (0..64), so any failure replays from its printed seed:
//! `optimodd --socket S --fault-seed SEED`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use optimod::{certify, Claim, OptimalScheduler, Provenance, Schedule, SchedulerConfig};
use optimod_daemon::client;
use optimod_daemon::server::{Daemon, DaemonConfig};
use optimod_daemon::{ClientConfig, ClientError, Request, Scheduled};
use optimod_ddg::textfmt;
use optimod_ilp::{FaultAction, FaultPlan, FaultSite};

const SEEDS: u64 = 64;
const ROUNDS: usize = 2;

/// The same varied golden slice as `chaos_sweep`, in wire text form:
/// acyclic (figure1), recurrence-bound (lfk5), and deep-lifetime (fir4).
const KERNELS: [(&str, &str); 3] = [
    (
        "figure1",
        "machine example-3fu\n\
         op ld-x load\nop mult fmul\nop add fadd\nop sub fadd\nop st-y store\n\
         flow ld-x mult 0\nflow ld-x add 0\nflow mult sub 0\nflow add sub 0\nflow sub st-y 0\n",
    ),
    (
        "lfk5-tridiag",
        "machine example-3fu\n\
         op ld-y load\nop ld-z load\nop y-x fadd\nop z* fmul\nop st-x store\n\
         flow ld-y y-x 0\nflow z* y-x 1\nflow ld-z z* 0\nflow y-x z* 0\nflow z* st-x 0\n",
    ),
    (
        "fir4",
        "machine example-3fu\n\
         op ld-x load\nop m0 fmul\nop m1 fmul\nop m2 fmul\nop m3 fmul\n\
         op a0 fadd\nop a1 fadd\nop a2 fadd\nop st-y store\n\
         flow ld-x m0 0\nflow ld-x m1 1\nflow ld-x m2 2\nflow ld-x m3 3\n\
         flow m0 a0 0\nflow m1 a0 0\nflow m2 a1 0\nflow m3 a1 0\n\
         flow a0 a2 0\nflow a1 a2 0\nflow a2 st-y 0\n",
    ),
];

static SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "omd-chaos-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Re-certifies a reply against the freshly parsed kernel (the outside
/// auditor — the daemon already certified cache hits internally).
fn recertify(text: &str, reply: &Scheduled) -> bool {
    let Ok(parsed) = textfmt::parse(text) else {
        return false;
    };
    if reply.times.len() != parsed.l.num_ops() {
        return false;
    }
    let schedule = Schedule::new(reply.ii, reply.times.clone());
    let exact = reply.provenance == Provenance::Exact;
    let probe = Request::new(text);
    let sched = OptimalScheduler::new(SchedulerConfig::new(probe.dep_style, probe.objective));
    let claim = Claim {
        graph: &parsed.l,
        machine: &parsed.machine,
        ii: reply.ii,
        times: &reply.times,
        claimed_optimal: exact && reply.optimal,
        claimed_objective: if exact {
            reply.objective.map(|o| o as f64)
        } else {
            None
        },
        exact_objective: if exact {
            sched.exact_objective(&parsed.l, &schedule)
        } else {
            None
        },
        claimed_bound: None,
    };
    certify(&claim).is_ok()
}

#[derive(Default)]
struct CellOutcome {
    scheduled: usize,
    cache_hits: usize,
    daemon_errors: usize,
    transport_errors: usize,
    faults_fired: u64,
    violations: Vec<String>,
}

fn run_seed(seed: u64) -> CellOutcome {
    let plan = FaultPlan::daemon_from_seed(seed);
    // A corrupted-at-rest payload can decode cleanly yet describe a
    // *different* valid optimal schedule; byte-identity with the original
    // is only promised when the plan cannot have perturbed a cache write.
    let cache_can_differ = plan
        .injections()
        .iter()
        .any(|i| i.site == FaultSite::CacheWrite && i.action == FaultAction::PerturbIncumbent);

    let mut out = CellOutcome::default();
    let cache_dir = fresh_path("cache");
    let mut cfg = DaemonConfig::new(fresh_path("sock").with_extension("sock"));
    cfg.cache_dir = Some(cache_dir.clone());
    cfg.workers = 2;
    cfg.queue_depth = 8;
    cfg.drain_timeout = Duration::from_secs(2);
    cfg.fault = plan;
    let handle = match Daemon::start(cfg) {
        Ok(h) => h,
        Err(e) => {
            out.violations
                .push(format!("seed {seed}: daemon failed to start: {e}"));
            return out;
        }
    };

    let client_cfg = ClientConfig {
        retries: 4,
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(50),
        jitter_seed: seed,
        ..ClientConfig::new(handle.socket_path())
    };

    for (name, text) in KERNELS {
        let mut last_optimal: Option<Scheduled> = None;
        for round in 0..ROUNDS {
            let mut req = Request::new(text);
            req.deadline_ms = 10_000;
            let solved = catch_unwind(AssertUnwindSafe(|| client::solve(&client_cfg, req)));
            match solved {
                Ok(Ok(reply)) => {
                    out.scheduled += 1;
                    if !recertify(text, &reply) {
                        out.violations.push(format!(
                            "seed {seed} / {name} round {round}: reply failed certification \
                             (cache_hit={})",
                            reply.cache_hit
                        ));
                    }
                    if reply.cache_hit {
                        out.cache_hits += 1;
                        if !cache_can_differ {
                            if let Some(prior) = &last_optimal {
                                if reply.ii != prior.ii || reply.times != prior.times {
                                    out.violations.push(format!(
                                        "seed {seed} / {name} round {round}: cache hit differs \
                                         from the originally certified schedule"
                                    ));
                                }
                            }
                        }
                    } else if reply.optimal && reply.provenance == Provenance::Exact {
                        last_optimal = Some(reply);
                    }
                }
                Ok(Err(ClientError::Daemon { reply: e, .. })) => {
                    out.daemon_errors += 1;
                    if e.message.is_empty() {
                        out.violations.push(format!(
                            "seed {seed} / {name} round {round}: daemon error [{}] without a \
                             diagnostic message",
                            e.code
                        ));
                    }
                }
                Ok(Err(ClientError::Transport { .. })) => out.transport_errors += 1,
                Err(payload) => out.violations.push(format!(
                    "seed {seed} / {name} round {round}: panic escaped the client: {}",
                    optimod_ilp::panic_message(payload.as_ref())
                )),
            }
        }
    }

    out.faults_fired = handle.faults_fired();
    if let Err(e) = handle.shutdown() {
        out.violations
            .push(format!("seed {seed}: daemon failed to drain: {e}"));
    }
    let _ = std::fs::remove_dir_all(&cache_dir);
    out
}

fn main() {
    // Injected worker panics are *supposed* to fire and be recovered; the
    // default hook would spray backtraces over the sweep output. The hook
    // is restored before the acceptance assertions below.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let seeds: Vec<u64> = (0..SEEDS).collect();
    let outcomes: Vec<CellOutcome> = optimod_par::par_map(0, &seeds, |_, &seed| run_seed(seed));
    std::panic::set_hook(default_hook);

    let total_requests = SEEDS as usize * KERNELS.len() * ROUNDS;
    let scheduled: usize = outcomes.iter().map(|o| o.scheduled).sum();
    let cache_hits: usize = outcomes.iter().map(|o| o.cache_hits).sum();
    let daemon_errors: usize = outcomes.iter().map(|o| o.daemon_errors).sum();
    let transport_errors: usize = outcomes.iter().map(|o| o.transport_errors).sum();
    let faults_fired: u64 = outcomes.iter().map(|o| o.faults_fired).sum();
    let violations: Vec<&String> = outcomes.iter().flat_map(|o| &o.violations).collect();

    println!(
        "chaos daemon sweep: {SEEDS} fault plans x {} kernels x {ROUNDS} rounds = \
         {total_requests} requests",
        KERNELS.len()
    );
    println!("injected faults fired: {faults_fired}");
    println!(
        "  scheduled            {scheduled} ({cache_hits} served from cache)\n  \
         daemon errors        {daemon_errors}\n  transport errors     {transport_errors}"
    );

    for v in &violations {
        eprintln!("VIOLATION: {v}");
    }
    assert!(
        violations.is_empty(),
        "{} acceptance violations (listed above)",
        violations.len()
    );
    assert_eq!(
        scheduled + daemon_errors + transport_errors,
        total_requests,
        "every request must resolve to a reply or a typed error"
    );
    assert!(
        faults_fired > 0,
        "the seeded matrix should trip at least one injection"
    );
    assert!(
        scheduled > total_requests / 2,
        "the retrying client should ride out most fault plans \
         ({scheduled}/{total_requests} scheduled)"
    );
    println!(
        "acceptance criteria satisfied: zero aborts, {scheduled}/{total_requests} certified \
         schedules ({cache_hits} cache hits), {} typed degradations under {faults_fired} \
         injected faults",
        daemon_errors + transport_errors
    );
}
