//! Ablation: the stage-scheduling heuristic versus ILP-optimal stage
//! assignment (rows fixed, stages free).
//!
//! Quantifies how much register pressure the local-search stage scheduler
//! leaves on the table relative to an exact stage assignment on the *same*
//! MRT — the gap the MICRO-28 heuristics paper closes with smarter stage
//! placement.
//!
//! Run: `cargo run --release -p optimod-bench --bin ablation_stage_ilp`

use optimod::heuristic::optimal_stages;
use optimod::Objective;
use optimod_bench::{run_heuristics, ExperimentConfig};
use optimod_ilp::SolveLimits;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let machine = cfg.machine();
    let loops: Vec<_> = cfg.corpus_loops(&machine).into_iter().take(48).collect();
    println!(
        "Stage-assignment ablation — {} loops, {} ms/loop\n",
        loops.len(),
        cfg.budget.as_millis()
    );
    let heur = run_heuristics(&machine, &loops);
    let mut total_heur = 0u64;
    let mut total_opt = 0u64;
    let mut gap_loops = 0usize;
    let mut compared = 0usize;
    for (l, h) in loops.iter().zip(&heur) {
        let limits = SolveLimits {
            time_limit: cfg.budget,
            node_limit: cfg.node_cap,
            ..Default::default()
        };
        let Some((opt, _)) = optimal_stages(l, &machine, &h.ims, Objective::MinMaxLive, limits)
        else {
            continue;
        };
        compared += 1;
        let hm = h.staged.max_live(l) as u64;
        let om = opt.max_live(l) as u64;
        total_heur += hm;
        total_opt += om;
        if om < hm {
            gap_loops += 1;
            println!(
                "  {}: heuristic stages MaxLive {hm}, optimal stages {om}",
                l.name()
            );
        }
    }
    println!("\ncompared {compared} loops (optimal stage ILP solved)");
    println!("total MaxLive: heuristic stages {total_heur}, optimal stages {total_opt}");
    println!("loops where exact stage assignment wins: {gap_loops}");
}
