//! Figure 2: average number of branch-and-bound nodes visited by the
//! solver, for the four schedulers under the traditional and the
//! 0-1-structured formulations, restricted (as in the paper) to the loops
//! successfully scheduled by *all* configurations.
//!
//! Also prints the paper's headline totals: MinReg total solver time under
//! both formulations (the 870.2 s → 101.0 s / 8.6× claim) and per-scheduler
//! coverage (782 → 917 etc.).
//!
//! Run: `cargo run --release -p optimod-bench --bin fig2_bb_nodes`
//! (set `OPTIMOD_CORPUS=medium|full` and `OPTIMOD_BUDGET_MS` to scale up).

use optimod::DepStyle;
use optimod_bench::{ExperimentConfig, LoopRecord, SCHEDULERS};

fn main() {
    let cfg = ExperimentConfig::from_env();
    let machine = cfg.machine();
    let loops = cfg.corpus_loops(&machine);
    println!(
        "Figure 2 reproduction — {} loops on '{}' machine, {} ms/loop budget\n",
        loops.len(),
        machine.name(),
        cfg.budget.as_millis()
    );

    // Run all 8 configurations.
    let mut runs: Vec<(&'static str, DepStyle, Vec<LoopRecord>)> = Vec::new();
    for style in [DepStyle::Traditional, DepStyle::Structured] {
        for (name, obj) in SCHEDULERS {
            eprintln!("running {name} / {style:?} ...");
            runs.push((name, style, cfg.run_suite(&machine, &loops, style, obj)));
        }
    }

    // Loops scheduled by every configuration (the paper's 653-loop set).
    let solved_by_all: Vec<usize> = (0..loops.len())
        .filter(|&i| runs.iter().all(|(_, _, r)| r[i].result.status.scheduled()))
        .collect();
    println!(
        "loops successfully scheduled by all 8 configurations: {}\n",
        solved_by_all.len()
    );

    println!(
        "{:<10} {:>24} {:>24} {:>10}",
        "Scheduler", "avg nodes (traditional)", "avg nodes (structured)", "ratio"
    );
    for (name, _) in SCHEDULERS {
        let avg = |style: DepStyle| -> f64 {
            let (_, _, recs) = runs
                .iter()
                .find(|(n, s, _)| *n == name && *s == style)
                .expect("configuration was run");
            if solved_by_all.is_empty() {
                return f64::NAN;
            }
            solved_by_all
                .iter()
                .map(|&i| recs[i].result.stats.bb_nodes as f64)
                .sum::<f64>()
                / solved_by_all.len() as f64
        };
        let t = avg(DepStyle::Traditional);
        let s = avg(DepStyle::Structured);
        println!(
            "{name:<10} {t:>24.2} {s:>24.2} {:>9.1}x",
            if s > 0.0 { t / s } else { f64::INFINITY }
        );
    }

    println!("\n--- headline totals (all corpus loops) ---");
    for (name, _) in SCHEDULERS {
        let pick = |style: DepStyle| {
            runs.iter()
                .find(|(n, s, _)| *n == name && *s == style)
                .map(|(_, _, r)| r)
                .expect("configuration was run")
        };
        let trad = pick(DepStyle::Traditional);
        let strc = pick(DepStyle::Structured);
        let cov = |r: &[LoopRecord]| r.iter().filter(|x| x.result.status.scheduled()).count();
        let t_time = optimod_bench::total_time(trad).as_secs_f64();
        let s_time = optimod_bench::total_time(strc).as_secs_f64();
        println!(
            "{name:<10} coverage {:>4} -> {:>4} loops | total time {:>8.1}s -> {:>7.1}s ({:.1}x)",
            cov(trad),
            cov(strc),
            t_time,
            s_time,
            if s_time > 0.0 {
                t_time / s_time
            } else {
                f64::NAN
            }
        );
    }
}
