//! Chaos-sweep acceptance scenario: golden kernels are scheduled under a
//! seeded matrix of deterministic fault plans — injected panics, forced
//! stalls, spurious timeouts, and incumbent corruptions at the solver's
//! named sites — and every single outcome must be either a schedule the
//! exact-arithmetic certifier accepts or a clean typed degradation. The
//! sweep itself asserts:
//!
//! * zero process aborts and zero panics escaping `schedule()`;
//! * every produced schedule certifies (constraints in exact integer
//!   arithmetic; objective claims re-checked for exact-rung results);
//! * every per-run trace stream stays balanced (opens == closes) no matter
//!   where the fault landed;
//! * unscheduled outcomes are typed (timed out / infeasible / failed with
//!   a cause), never silent.
//!
//! Seeds are fixed (0..64), so any failure replays from its printed seed
//! alone: `optimod --chaos SEED <loop>`.
//!
//! Each seed runs twice per loop: once through the plain exact-plus-ladder
//! path (solver-site fault pool), and once through the cross-backend
//! portfolio (`--portfolio`; SAT-site-leading fault pool). Portfolio cells
//! additionally assert that no injected fault ever manufactures a
//! cross-backend disagreement — faults degrade a backend, they never make
//! a *certified* contradiction.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use optimod::{
    certify, Claim, DepStyle, FallbackConfig, LoopResult, Objective, OptimalScheduler,
    SchedulerConfig,
};
use optimod_bench::{CorpusRow, OutcomeKind};
use optimod_ddg::{kernels, Loop};
use optimod_ilp::FaultPlan;
use optimod_machine::{example_3fu, Machine};
use optimod_trace::{MemorySink, Trace};

const SEEDS: u64 = 64;

/// A varied slice of the golden kernels: acyclic, recurrence-bound, and
/// deep-lifetime graphs, kept small so the full matrix stays fast.
fn chaos_loops(machine: &Machine) -> Vec<Loop> {
    vec![
        kernels::figure1(machine),
        kernels::lfk5_tridiag(machine),
        kernels::fir4(machine),
    ]
}

/// One cell of the sweep matrix.
struct Cell {
    seed: u64,
    portfolio: bool,
    row: CorpusRow,
    faults_fired: u64,
    balanced: bool,
    certified: Option<bool>,
    disagreed: bool,
}

fn run_cell(machine: &Machine, l: &Loop, seed: u64, portfolio: bool) -> Cell {
    // Portfolio cells draw from the SAT-site-leading fault pool and run
    // objective-free (the portfolio only covers NoObj); plain cells replay
    // the historical solver-only pool under MinReg.
    let plan = if portfolio {
        FaultPlan::portfolio_from_seed(seed)
    } else {
        FaultPlan::from_seed(seed)
    };
    let objective = if portfolio {
        Objective::FirstFeasible
    } else {
        Objective::MinMaxLive
    };
    let sink = Arc::new(MemorySink::default());
    let mut cfg = SchedulerConfig::new(DepStyle::Structured, objective)
        .with_time_limit(Duration::from_millis(1500));
    // Odd seeds exercise the parallel engine (worker-start faults can only
    // fire there); even seeds pin the deterministic serial engine.
    cfg.limits.threads = if seed.is_multiple_of(2) { 1 } else { 2 };
    cfg.limits.trace = Trace::new(sink.clone());
    cfg.limits.fault = plan.clone();
    cfg.fallback = FallbackConfig::enabled();
    cfg.portfolio = portfolio;
    let sched = OptimalScheduler::new(cfg);

    let row = match catch_unwind(AssertUnwindSafe(|| sched.schedule(l, machine))) {
        Ok(r) => {
            let row = CorpusRow::classify(l.name(), l.num_ops(), &r);
            (row, Some(r))
        }
        Err(payload) => (
            CorpusRow {
                name: l.name().to_string(),
                n_ops: l.num_ops(),
                kind: OutcomeKind::Crashed,
                ii: None,
                wall_time: Duration::ZERO,
                detail: Some(optimod_ilp::panic_message(payload.as_ref())),
            },
            None,
        ),
    };
    let (row, result) = row;
    let certified = result.as_ref().and_then(|r| recertify(machine, l, r));
    let disagreed = result.as_ref().is_some_and(|r| {
        matches!(
            r.error,
            Some(optimod::ScheduleError::BackendDisagreement { .. })
        )
    });
    Cell {
        seed,
        portfolio,
        row,
        faults_fired: plan.fired_count(),
        balanced: sink.report().balanced(),
        certified,
        disagreed,
    }
}

/// Independently re-certifies a scheduled result (the scheduler already
/// certified internally; this is the outside auditor). Objective claims are
/// only re-checked for exact-rung results — ladder rungs claim none.
fn recertify(machine: &Machine, l: &Loop, r: &LoopResult) -> Option<bool> {
    let s = r.schedule.as_ref()?;
    let exact_rung = r.provenance.is_some_and(|p| !p.degraded());
    // Objective-free results (portfolio cells, including SAT wins) carry no
    // objective claims; MinReg cells re-check the exact objective too.
    let objective_free = r.objective_value.is_none();
    let claim = Claim {
        graph: l,
        machine,
        ii: s.ii(),
        times: s.times(),
        claimed_optimal: exact_rung && r.status == optimod::LoopStatus::Optimal,
        claimed_objective: if exact_rung && !objective_free {
            r.objective_value
        } else {
            None
        },
        exact_objective: (exact_rung && !objective_free).then(|| s.max_live(l) as i64),
        claimed_bound: None,
    };
    Some(certify(&claim).is_ok())
}

fn main() {
    // Injected panics are *supposed* to fire and be recovered; the default
    // hook would spray backtraces over the sweep output. Their messages
    // still reach the outcome rows through the typed recovery paths. The
    // hook is restored before the acceptance assertions below.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let machine = example_3fu();
    let loops = chaos_loops(&machine);
    let seeds: Vec<u64> = (0..SEEDS).collect();

    let cells: Vec<Cell> = optimod_par::par_map(0, &seeds, |_, &seed| {
        loops
            .iter()
            .flat_map(|l| {
                [
                    run_cell(&machine, l, seed, false),
                    run_cell(&machine, l, seed, true),
                ]
            })
            .collect::<Vec<Cell>>()
    })
    .into_iter()
    .flatten()
    .collect();
    std::panic::set_hook(default_hook);

    let total = cells.len();
    let mut by_kind: Vec<(String, usize)> = Vec::new();
    for c in &cells {
        let k = c.row.kind.to_string();
        match by_kind.iter_mut().find(|(name, _)| *name == k) {
            Some((_, n)) => *n += 1,
            None => by_kind.push((k, 1)),
        }
    }
    by_kind.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    let faults_fired: u64 = cells.iter().map(|c| c.faults_fired).sum();
    let scheduled = cells.iter().filter(|c| c.row.kind.scheduled()).count();
    let certified_ok = cells.iter().filter(|c| c.certified == Some(true)).count();

    let portfolio_cells = cells.iter().filter(|c| c.portfolio).count();
    println!(
        "chaos sweep: {SEEDS} fault plans x {} loops x (plain + portfolio) = {total} runs \
         ({portfolio_cells} portfolio)",
        loops.len()
    );
    println!("injected faults fired: {faults_fired}");
    for (kind, n) in &by_kind {
        println!("  {kind:<20} {n}");
    }
    println!("scheduled: {scheduled}/{total}, certified: {certified_ok}/{scheduled}");

    // Acceptance criteria. Every violation names its seed for replay.
    for c in &cells {
        assert!(
            c.row.kind != OutcomeKind::Crashed,
            "seed {} / {}: panic escaped schedule(): {:?}",
            c.seed,
            c.row.name,
            c.row.detail
        );
        assert!(
            c.balanced,
            "seed {} / {}: unbalanced trace stream (outcome {})",
            c.seed, c.row.name, c.row.kind
        );
        if let Some(ok) = c.certified {
            assert!(
                ok,
                "seed {} / {}: emitted schedule failed certification",
                c.seed, c.row.name
            );
        }
        if c.row.kind == OutcomeKind::Failed {
            assert!(
                c.row.detail.is_some(),
                "seed {} / {}: failed outcome without a typed cause",
                c.seed,
                c.row.name
            );
        }
        assert!(
            !c.disagreed,
            "seed {} / {}: an injected fault manufactured a cross-backend disagreement",
            c.seed, c.row.name
        );
    }
    assert_eq!(
        scheduled, certified_ok,
        "every emitted schedule must certify"
    );
    assert!(
        faults_fired > 0,
        "the seeded matrix should trip at least one injection"
    );
    println!(
        "acceptance criteria satisfied: zero aborts, balanced traces, \
         {certified_ok} certified schedules under {faults_fired} injected faults"
    );
}
