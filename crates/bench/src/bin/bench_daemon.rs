//! Daemon cache-hit latency benchmark and non-regression gate.
//!
//! Spins up a real `optimodd` (in process: Unix socket, worker pool,
//! certified-schedule cache) and measures, per golden kernel, the
//! round-trip latency of **cold solves** (cache bypassed, full B&B) vs
//! **cache hits** (content-addressed lookup + load-path re-certification).
//! Writes `BENCH_daemon.json` with p50/p99 for both paths and fails the
//! build unless the best-case speedup stays above the pinned ratio: the
//! cache must make at least one genuinely expensive kernel >= 100x faster
//! to serve than to re-solve, or it is not earning its complexity.
//!
//! Tuning: `OPTIMOD_DAEMON_GATE` overrides the required ratio (`0`
//! disables the gate — CI on wildly loaded machines only).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use optimod::Objective;
use optimod_daemon::client;
use optimod_daemon::server::{Daemon, DaemonConfig};
use optimod_daemon::{ClientConfig, Request};

const COLD_SAMPLES: usize = 5;
const HIT_SAMPLES: usize = 50;
const DEFAULT_GATE: f64 = 100.0;

/// Golden kernels with their wire objective. `fir4` runs the cumulative
/// lifetime objective — the most expensive exact solve of the set, i.e.
/// the workload the cache exists for.
const KERNELS: [(&str, &str, Objective); 3] = [
    (
        "figure1",
        "machine example-3fu\n\
         op ld-x load\nop mult fmul\nop add fadd\nop sub fadd\nop st-y store\n\
         flow ld-x mult 0\nflow ld-x add 0\nflow mult sub 0\nflow add sub 0\nflow sub st-y 0\n",
        Objective::MinMaxLive,
    ),
    (
        "lfk5-tridiag",
        "machine example-3fu\n\
         op ld-y load\nop ld-z load\nop y-x fadd\nop z* fmul\nop st-x store\n\
         flow ld-y y-x 0\nflow z* y-x 1\nflow ld-z z* 0\nflow y-x z* 0\nflow z* st-x 0\n",
        Objective::MinMaxLive,
    ),
    (
        "fir4-minlife",
        "machine example-3fu\n\
         op ld-x load\nop m0 fmul\nop m1 fmul\nop m2 fmul\nop m3 fmul\n\
         op a0 fadd\nop a1 fadd\nop a2 fadd\nop st-y store\n\
         flow ld-x m0 0\nflow ld-x m1 1\nflow ld-x m2 2\nflow ld-x m3 3\n\
         flow m0 a0 0\nflow m1 a0 0\nflow m2 a1 0\nflow m3 a1 0\n\
         flow a0 a2 0\nflow a1 a2 0\nflow a2 st-y 0\n",
        Objective::MinCumLifetime,
    ),
];

static SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "omd-bench-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx]
}

struct KernelStats {
    name: &'static str,
    cold_p50_us: u64,
    cold_p99_us: u64,
    hit_p50_us: u64,
    hit_p99_us: u64,
    ratio: f64,
}

fn request(text: &str, objective: Objective, use_cache: bool) -> Request {
    let mut r = Request::new(text);
    r.objective = objective;
    r.use_cache = use_cache;
    r.deadline_ms = 120_000;
    r
}

fn main() {
    let gate: f64 = std::env::var("OPTIMOD_DAEMON_GATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_GATE);

    let cache_dir = fresh_path("cache");
    let mut cfg = DaemonConfig::new(fresh_path("sock").with_extension("sock"));
    cfg.cache_dir = Some(cache_dir.clone());
    cfg.workers = 2;
    cfg.default_deadline = Duration::from_secs(120);
    let handle = Daemon::start(cfg).expect("daemon starts");
    let client_cfg = ClientConfig::new(handle.socket_path());

    let mut stats: Vec<KernelStats> = Vec::new();
    for (name, text, objective) in KERNELS {
        // Cold path: cache bypassed, every request is a full solve.
        let mut cold_us: Vec<u64> = Vec::with_capacity(COLD_SAMPLES);
        for _ in 0..COLD_SAMPLES {
            let t0 = Instant::now();
            let reply = client::solve(&client_cfg, request(text, objective, false))
                .unwrap_or_else(|e| panic!("{name}: cold solve failed: {e}"));
            cold_us.push(t0.elapsed().as_micros() as u64);
            assert!(!reply.cache_hit, "{name}: cache bypass served a hit");
        }

        // Populate, then measure the hit path end to end (connect, frame,
        // content-addressed load, re-certification, reply).
        let populate = client::solve(&client_cfg, request(text, objective, true))
            .unwrap_or_else(|e| panic!("{name}: populating solve failed: {e}"));
        assert!(!populate.cache_hit, "{name}: cache already warm");
        let mut hit_us: Vec<u64> = Vec::with_capacity(HIT_SAMPLES);
        for i in 0..HIT_SAMPLES {
            let t0 = Instant::now();
            let reply = client::solve(&client_cfg, request(text, objective, true))
                .unwrap_or_else(|e| panic!("{name}: hit solve {i} failed: {e}"));
            hit_us.push(t0.elapsed().as_micros() as u64);
            assert!(reply.cache_hit, "{name}: warm request {i} missed the cache");
            assert_eq!(
                reply.times, populate.times,
                "{name}: cache hit differs from the certified original"
            );
        }

        cold_us.sort_unstable();
        hit_us.sort_unstable();
        let cold_p50 = percentile(&cold_us, 0.50);
        let hit_p50 = percentile(&hit_us, 0.50);
        stats.push(KernelStats {
            name,
            cold_p50_us: cold_p50,
            cold_p99_us: percentile(&cold_us, 0.99),
            hit_p50_us: hit_p50,
            hit_p99_us: percentile(&hit_us, 0.99),
            ratio: cold_p50 as f64 / (hit_p50.max(1)) as f64,
        });
    }
    handle.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&cache_dir);

    println!(
        "{:<14} {:>12} {:>12} {:>11} {:>11} {:>9}",
        "kernel", "cold p50", "cold p99", "hit p50", "hit p99", "speedup"
    );
    for s in &stats {
        println!(
            "{:<14} {:>10}us {:>10}us {:>9}us {:>9}us {:>8.1}x",
            s.name, s.cold_p50_us, s.cold_p99_us, s.hit_p50_us, s.hit_p99_us, s.ratio
        );
    }

    let max_ratio = stats.iter().map(|s| s.ratio).fold(0.0f64, f64::max);
    let mut json = String::from("{\n  \"kernels\": [\n");
    for (i, s) in stats.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"cold_p50_us\": {}, \"cold_p99_us\": {}, \
             \"hit_p50_us\": {}, \"hit_p99_us\": {}, \"speedup\": {:.2}}}{}\n",
            s.name,
            s.cold_p50_us,
            s.cold_p99_us,
            s.hit_p50_us,
            s.hit_p99_us,
            s.ratio,
            if i + 1 < stats.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"cold_samples\": {COLD_SAMPLES},\n  \"hit_samples\": {HIT_SAMPLES},\n  \
         \"max_speedup\": {max_ratio:.2},\n  \"gate\": {gate}\n}}\n"
    ));
    std::fs::write("BENCH_daemon.json", &json).expect("write BENCH_daemon.json");
    println!("\nwrote BENCH_daemon.json");

    if gate > 0.0 {
        assert!(
            max_ratio >= gate,
            "cache-hit gate failed: best cold/hit p50 speedup {max_ratio:.1}x < {gate}x \
             (override with OPTIMOD_DAEMON_GATE)"
        );
        println!("gate satisfied: best speedup {max_ratio:.1}x >= {gate}x");
    } else {
        println!("gate disabled (OPTIMOD_DAEMON_GATE=0)");
    }
}
