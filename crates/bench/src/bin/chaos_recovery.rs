//! Kill-restart acceptance sweep for the crash-recoverable daemon: for
//! each of 64 fixed seeds, a REAL `optimodd` process (separate binary,
//! own address space — not an in-process handle) is started with a
//! write-ahead intent journal and a cache, fed the golden kernels, and
//! killed at a seeded point:
//!
//! * timing seeds — `SIGKILL` from outside after a seed-derived delay
//!   (mid-solve, mid-reply, or idle, depending on the draw);
//! * `journal-append` seeds — the daemon `abort()`s itself right after an
//!   intent is durably journaled, before the solve starts;
//! * `before-done` seeds — abort after the solve, before the done-mark;
//! * `cache-write` seeds — abort between the cache temp-file write and
//!   the rename.
//!
//! A second daemon is then started on the *same* journal and cache, and
//! the sweep asserts the crash-recovery contract:
//!
//! * **zero lost admitted requests** — every request id eventually gets a
//!   reply (journaled intents are replayed; the idempotent retry picks
//!   the result up), and the replay count matches the journal's pending
//!   count at restart;
//! * **zero uncertified replies** — every schedule re-certifies under
//!   exact arithmetic in this process, daemon not trusted;
//! * **zero corruption** — `Journal::fsck` and `CacheStore::fsck` pass on
//!   the survivor state after the final graceful drain, with no pending
//!   intents left.
//!
//! Any failure replays from its printed seed.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use optimod::{certify, Claim, OptimalScheduler, Schedule, SchedulerConfig};
use optimod_daemon::client;
use optimod_daemon::{CacheStore, ClientConfig, Journal, Request, Scheduled};
use optimod_ddg::textfmt;

const SEEDS: u64 = 64;

/// The golden slice, in wire text: acyclic, recurrence-bound, and
/// deep-lifetime kernels (same as `chaos_daemon`).
const KERNELS: [(&str, &str); 3] = [
    (
        "figure1",
        "machine example-3fu\n\
         op ld-x load\nop mult fmul\nop add fadd\nop sub fadd\nop st-y store\n\
         flow ld-x mult 0\nflow ld-x add 0\nflow mult sub 0\nflow add sub 0\nflow sub st-y 0\n",
    ),
    (
        "lfk5-tridiag",
        "machine example-3fu\n\
         op ld-y load\nop ld-z load\nop y-x fadd\nop z* fmul\nop st-x store\n\
         flow ld-y y-x 0\nflow z* y-x 1\nflow ld-z z* 0\nflow y-x z* 0\nflow z* st-x 0\n",
    ),
    (
        "fir4",
        "machine example-3fu\n\
         op ld-x load\nop m0 fmul\nop m1 fmul\nop m2 fmul\nop m3 fmul\n\
         op a0 fadd\nop a1 fadd\nop a2 fadd\nop st-y store\n\
         flow ld-x m0 0\nflow ld-x m1 1\nflow ld-x m2 2\nflow ld-x m3 3\n\
         flow m0 a0 0\nflow m1 a0 0\nflow m2 a1 0\nflow m3 a1 0\n\
         flow a0 a2 0\nflow a1 a2 0\nflow a2 st-y 0\n",
    ),
];

static SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "omd-recover-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// The sibling `optimodd` binary next to this one.
fn daemon_binary() -> PathBuf {
    let me = std::env::current_exe().expect("current_exe");
    let bin = me
        .parent()
        .expect("binary directory")
        .join(format!("optimodd{}", std::env::consts::EXE_SUFFIX));
    assert!(
        bin.exists(),
        "optimodd binary not found at {} (build -p optimod-daemon first)",
        bin.display()
    );
    bin
}

/// Independent exact-arithmetic audit of a reply, daemon not trusted.
fn recertify(text: &str, reply: &Scheduled) -> bool {
    let Ok(parsed) = textfmt::parse(text) else {
        return false;
    };
    if reply.times.len() != parsed.l.num_ops() {
        return false;
    }
    let schedule = Schedule::new(reply.ii, reply.times.clone());
    let exact = !reply.provenance.degraded();
    let probe = Request::new(text);
    let sched = OptimalScheduler::new(SchedulerConfig::new(probe.dep_style, probe.objective));
    let claim = Claim {
        graph: &parsed.l,
        machine: &parsed.machine,
        ii: reply.ii,
        times: &reply.times,
        claimed_optimal: exact && reply.optimal,
        claimed_objective: if exact {
            reply.objective.map(|o| o as f64)
        } else {
            None
        },
        exact_objective: if exact {
            sched.exact_objective(&parsed.l, &schedule)
        } else {
            None
        },
        claimed_bound: None,
    };
    certify(&claim).is_ok()
}

/// How this seed's daemon dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KillMode {
    /// External `SIGKILL` after a seed-derived delay.
    Sigkill { delay_ms: u64 },
    /// Self-abort at an armed `--crash-at` site.
    CrashAt(&'static str),
}

impl KillMode {
    fn from_seed(seed: u64) -> KillMode {
        match seed % 4 {
            0 => KillMode::Sigkill {
                delay_ms: 1 + (seed / 4) % 30,
            },
            1 => KillMode::CrashAt("journal-append"),
            2 => KillMode::CrashAt("before-done"),
            _ => KillMode::CrashAt("cache-write"),
        }
    }
}

struct DaemonProc {
    child: Child,
    socket: PathBuf,
}

fn start_daemon(
    bin: &Path,
    journal: &Path,
    cache: &Path,
    crash_at: Option<&str>,
) -> Result<DaemonProc, String> {
    let socket = fresh_path("sock").with_extension("sock");
    let mut cmd = Command::new(bin);
    cmd.arg("--socket")
        .arg(&socket)
        .arg("--journal")
        .arg(journal)
        .arg("--cache-dir")
        .arg(cache)
        .args(["--workers", "2", "--drain-timeout-ms", "2000"])
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(site) = crash_at {
        cmd.args(["--crash-at", &format!("{site}:1")]);
    }
    let child = cmd.spawn().map_err(|e| format!("spawn optimodd: {e}"))?;
    Ok(DaemonProc { child, socket })
}

/// Polls the socket until the daemon answers a ping (or gives up).
fn wait_ready(proc_: &mut DaemonProc) -> bool {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if client::ping(&proc_.socket).is_ok() {
            return true;
        }
        if let Ok(Some(_)) = proc_.child.try_wait() {
            return false; // died before ever listening
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

/// Waits for the child to exit, killing it if it outlives the bound.
fn reap(proc_: &mut DaemonProc, bound: Duration) {
    let deadline = Instant::now() + bound;
    loop {
        match proc_.child.try_wait() {
            Ok(Some(_)) => return,
            Ok(None) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(10)),
            _ => {
                let _ = proc_.child.kill();
                let _ = proc_.child.wait();
                return;
            }
        }
    }
}

#[derive(Default)]
struct CellOutcome {
    answered: usize,
    replayed: u64,
    violations: Vec<String>,
}

fn run_seed(bin: &Path, seed: u64) -> CellOutcome {
    let mut out = CellOutcome::default();
    let mode = KillMode::from_seed(seed);
    let journal = fresh_path("journal").with_extension("omj");
    let cache = fresh_path("cache");

    // --- Phase 1: daemon under a death sentence. -------------------------
    let crash_site = match mode {
        KillMode::CrashAt(site) => Some(site),
        KillMode::Sigkill { .. } => None,
    };
    let mut victim = match start_daemon(bin, &journal, &cache, crash_site) {
        Ok(p) => p,
        Err(e) => {
            out.violations.push(format!("seed {seed}: {e}"));
            return out;
        }
    };
    if !wait_ready(&mut victim) {
        out.violations
            .push(format!("seed {seed}: victim daemon never became ready"));
        reap(&mut victim, Duration::ZERO);
        return out;
    }

    // Fire the kernels from one thread each; under a crash they resolve to
    // transport errors, which is fine — the retry phase below settles them.
    let threads: Vec<_> = KERNELS
        .iter()
        .enumerate()
        .map(|(k, (_, text))| {
            let cfg = ClientConfig {
                retries: 1,
                backoff_base: Duration::from_millis(2),
                backoff_cap: Duration::from_millis(20),
                jitter_seed: seed,
                ..ClientConfig::new(&victim.socket)
            };
            let mut req = Request::new(*text);
            req.request_id = seed * 100 + k as u64 + 1;
            req.deadline_ms = 10_000;
            std::thread::spawn(move || {
                let _ = client::solve(&cfg, req);
            })
        })
        .collect();
    if let KillMode::Sigkill { delay_ms } = mode {
        std::thread::sleep(Duration::from_millis(delay_ms));
        let _ = victim.child.kill(); // SIGKILL on unix
    }
    for t in threads {
        let _ = t.join();
    }
    reap(&mut victim, Duration::from_secs(15));

    // --- Between lives: the journal must already be honest. --------------
    let pre = match Journal::fsck(&journal) {
        Ok(f) => f,
        Err(e) => {
            out.violations.push(format!(
                "seed {seed} ({mode:?}): journal corrupt after kill: {e}"
            ));
            return out;
        }
    };
    if mode == KillMode::CrashAt("journal-append") && pre.pending == 0 {
        out.violations.push(format!(
            "seed {seed}: crashed after a durable intent append, \
             but the journal shows no pending intent"
        ));
    }
    if let Err(e) = CacheStore::fsck(&cache) {
        out.violations.push(format!(
            "seed {seed} ({mode:?}): cache corrupt after kill: {e}"
        ));
        return out;
    }

    // --- Phase 2: survivor on the same journal + cache. ------------------
    let mut survivor = match start_daemon(bin, &journal, &cache, None) {
        Ok(p) => p,
        Err(e) => {
            out.violations.push(format!("seed {seed}: restart: {e}"));
            return out;
        }
    };
    if !wait_ready(&mut survivor) {
        out.violations
            .push(format!("seed {seed}: survivor daemon never became ready"));
        reap(&mut survivor, Duration::ZERO);
        return out;
    }
    match client::stats(&survivor.socket) {
        Ok(st) => {
            out.replayed = st.recovered_intents;
            if st.recovered_intents != pre.pending {
                out.violations.push(format!(
                    "seed {seed} ({mode:?}): journal had {} pending intents but the \
                     survivor replayed {}",
                    pre.pending, st.recovered_intents
                ));
            }
        }
        Err(e) => out
            .violations
            .push(format!("seed {seed}: stats after restart failed: {e}")),
    }

    // Retry every request id against the survivor: each must now resolve
    // to a certified schedule (replayed result or fresh idempotent solve).
    for (k, (name, text)) in KERNELS.iter().enumerate() {
        let cfg = ClientConfig {
            retries: 4,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(50),
            jitter_seed: seed,
            ..ClientConfig::new(&survivor.socket)
        };
        let mut req = Request::new(*text);
        req.request_id = seed * 100 + k as u64 + 1;
        req.deadline_ms = 10_000;
        match client::solve(&cfg, req) {
            Ok(reply) => {
                if recertify(text, &reply) {
                    out.answered += 1;
                } else {
                    out.violations.push(format!(
                        "seed {seed} ({mode:?}) / {name}: post-restart reply failed \
                         certification (cache_hit={})",
                        reply.cache_hit
                    ));
                }
            }
            Err(e) => out.violations.push(format!(
                "seed {seed} ({mode:?}) / {name}: request lost across the crash: {e}"
            )),
        }
    }

    // --- Graceful drain, then the survivor state must fsck clean. --------
    if client::shutdown(&survivor.socket).is_err() {
        out.violations
            .push(format!("seed {seed}: survivor refused shutdown"));
    }
    reap(&mut survivor, Duration::from_secs(15));
    match Journal::fsck(&journal) {
        Ok(f) => {
            if f.pending != 0 {
                out.violations.push(format!(
                    "seed {seed} ({mode:?}): {} intents still pending after every \
                     request was answered and the daemon drained",
                    f.pending
                ));
            }
        }
        Err(e) => out.violations.push(format!(
            "seed {seed} ({mode:?}): journal corrupt after drain: {e}"
        )),
    }
    if let Err(e) = CacheStore::fsck(&cache) {
        out.violations.push(format!(
            "seed {seed} ({mode:?}): cache corrupt after drain: {e}"
        ));
    }

    let _ = std::fs::remove_file(&journal);
    let _ = std::fs::remove_dir_all(&cache);
    out
}

fn main() {
    let bin = daemon_binary();
    let seeds: Vec<u64> = (0..SEEDS).collect();
    let outcomes: Vec<CellOutcome> =
        optimod_par::par_map(0, &seeds, |_, &seed| run_seed(&bin, seed));

    let total = SEEDS as usize * KERNELS.len();
    let answered: usize = outcomes.iter().map(|o| o.answered).sum();
    let replayed: u64 = outcomes.iter().map(|o| o.replayed).sum();
    let violations: Vec<&String> = outcomes.iter().flat_map(|o| &o.violations).collect();

    println!(
        "chaos recovery sweep: {SEEDS} kill points (SIGKILL + journal-append + \
         before-done + cache-write) x {} kernels = {total} requests",
        KERNELS.len()
    );
    println!(
        "  answered after restart   {answered}/{total}\n  \
         intents replayed         {replayed}"
    );

    for v in &violations {
        eprintln!("VIOLATION: {v}");
    }
    assert!(
        violations.is_empty(),
        "{} recovery violations (listed above)",
        violations.len()
    );
    assert_eq!(
        answered, total,
        "every admitted request must be answered after the crash"
    );
    assert!(
        replayed > 0,
        "the sweep should exercise journal replay at least once"
    );
    println!(
        "acceptance criteria satisfied: {answered}/{total} certified replies across \
         {SEEDS} kill-restart cycles, {replayed} journal intents replayed, \
         zero corruption"
    );
}
