//! Trace-derived observability report: runs the MinReg scheduler over the
//! corpus under both formulations with a per-loop [`MemorySink`] attached,
//! prints percentile tables (per-phase wall clock, branch-and-bound and LP
//! counters), and writes `BENCH_trace.json` with the aggregate totals.
//!
//! The per-loop solves are single-threaded, so the traced counters are the
//! same ones `fig2_bb_nodes` and the tables report — the trace layer adds
//! the *distribution* (p50/p90 skew) that flat totals cannot show.
//!
//! Run: `cargo run --release -p optimod-bench --bin trace_report`
//! (set `OPTIMOD_CORPUS=medium|full` and `OPTIMOD_BUDGET_MS` to scale up).

use std::fmt::Write as _;

use optimod::{DepStyle, Objective};
use optimod_bench::{print_trace_percentiles, ExperimentConfig, LoopRecord};
use optimod_trace::SolveReport;

fn style_name(style: DepStyle) -> &'static str {
    match style {
        DepStyle::Traditional => "traditional",
        DepStyle::Structured => "structured",
    }
}

fn main() {
    let cfg = ExperimentConfig::from_env();
    let machine = cfg.machine();
    let loops = cfg.corpus_loops(&machine);
    println!(
        "Trace report — MinReg over {} loops on '{}', {} ms/loop budget\n",
        loops.len(),
        machine.name(),
        cfg.budget.as_millis()
    );

    let mut json = String::from("{\n  \"runs\": [\n");
    let styles = [DepStyle::Traditional, DepStyle::Structured];
    for (si, style) in styles.into_iter().enumerate() {
        eprintln!("running MinReg / {style:?} ...");
        let traced = cfg.run_suite_traced(&machine, &loops, style, Objective::MinMaxLive);
        let (records, reports): (Vec<LoopRecord>, Vec<SolveReport>) = traced.into_iter().unzip();

        // Every loop's trace must be internally consistent, whatever the
        // outcome — a mismatch here is an instrumentation bug.
        for (r, rep) in records.iter().zip(&reports) {
            assert!(rep.balanced(), "{}: unbalanced node stream", r.name);
            assert_eq!(
                rep.nodes_opened, r.result.stats.bb_nodes,
                "{}: trace/stats node disagreement",
                r.name
            );
        }

        print_trace_percentiles(
            &format!("MinReg / {} formulation:", style_name(style)),
            &reports,
        );
        println!();

        let scheduled = records
            .iter()
            .filter(|r| r.result.status.scheduled())
            .count();
        let nodes: u64 = reports.iter().map(|r| r.nodes_opened).sum();
        let lp_solves: u64 = reports.iter().map(|r| r.lp_solves).sum();
        let iterations: u64 = reports.iter().map(|r| r.simplex_iterations).sum();
        let refactors: u64 = reports.iter().map(|r| r.refactors).sum();
        let _ = write!(
            json,
            "    {{\"style\": \"{}\", \"loops\": {}, \"scheduled\": {scheduled}, \
             \"bb_nodes\": {nodes}, \"lp_solves\": {lp_solves}, \
             \"simplex_iterations\": {iterations}, \"refactors\": {refactors}}}",
            style_name(style),
            loops.len(),
        );
        json.push_str(if si + 1 < styles.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_trace.json", &json).expect("write BENCH_trace.json");
    println!("wrote BENCH_trace.json");
}
