//! Null-sink overhead smoke check: schedules a fig2-style corpus slice with
//! the trace disabled and again with an active [`NullSink`], and compares
//! total solver CPU. The event layer is designed so the disabled handle is
//! one pointer check and the null sink one dynamic dispatch to a no-op;
//! this binary verifies that promise stays true on the real solve path.
//!
//! Exits nonzero when the null-sink run is more than `OPTIMOD_OVERHEAD_MAX`
//! (a ratio, default 1.05 = 5%) slower than the best untraced run, so
//! `scripts/check.sh` can gate on it.
//!
//! Run: `cargo run --release -p optimod-bench --bin trace_overhead`
//!
//! Knobs: `OPTIMOD_BENCH_LOOPS` (slice size, default 24),
//! `OPTIMOD_OVERHEAD_MAX` (failure threshold), plus the usual
//! `OPTIMOD_CORPUS` / `OPTIMOD_BUDGET_MS` / `OPTIMOD_NODE_CAP`.

use std::process::ExitCode;
use std::sync::Arc;

use optimod::{DepStyle, Objective};
use optimod_bench::{total_time, ExperimentConfig};
use optimod_trace::{NullSink, Trace};

fn main() -> ExitCode {
    let cfg = ExperimentConfig::from_env();
    let machine = cfg.machine();
    let slice: usize = std::env::var("OPTIMOD_BENCH_LOOPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24);
    let max_ratio: f64 = std::env::var("OPTIMOD_OVERHEAD_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.05);
    let loops: Vec<_> = cfg.corpus_loops(&machine).into_iter().take(slice).collect();
    println!(
        "Null-sink trace overhead — MinReg/structured over {} loops, \
         threshold {max_ratio:.2}x\n",
        loops.len()
    );

    let run = |trace: Trace| -> f64 {
        let sched = cfg.scheduler_with_trace(DepStyle::Structured, Objective::MinMaxLive, trace);
        let recs = cfg.run_suite_with(&machine, &loops, &sched);
        total_time(&recs).as_secs_f64()
    };

    // Warm up (page cache, allocator, frequency scaling), then alternate
    // disabled/null runs and compare the best of each so a scheduler blip
    // in one round cannot fail the gate on its own.
    let _ = run(Trace::disabled());
    let mut best_off = f64::INFINITY;
    let mut best_null = f64::INFINITY;
    for round in 0..3 {
        let off = run(Trace::disabled());
        let null = run(Trace::new(Arc::new(NullSink)));
        println!("round {round}: disabled {off:.3}s, null-sink {null:.3}s");
        best_off = best_off.min(off);
        best_null = best_null.min(null);
    }

    let ratio = best_null / best_off;
    println!(
        "\nbest disabled {best_off:.3}s, best null-sink {best_null:.3}s => {ratio:.3}x \
         (limit {max_ratio:.2}x)"
    );
    if ratio > max_ratio {
        eprintln!("FAIL: null-sink tracing exceeds the overhead budget");
        return ExitCode::FAILURE;
    }
    println!("OK: null-sink tracing within the overhead budget");
    ExitCode::SUCCESS
}
