//! Section 5, third experiment: grading the Iterative Modulo Scheduler
//! with the NoObj optimal scheduler.
//!
//! The paper reports that IMS achieves the MII on 96.0% of loops; for the
//! remainder, the NoObj scheduler shows that some IIs can be reduced by 1
//! or 2 cycles, proves others already optimal (II not decreasable), and
//! leaves a few undecided within the time limit — lifting the *known*
//! optimal-throughput fraction to 98.3%.
//!
//! Run: `cargo run --release -p optimod-bench --bin exp3_ims_optimality`

use optimod::heuristic::{ims_schedule, ImsConfig};
use optimod::{compute_mii, DepStyle, Objective};
use optimod_bench::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let machine = cfg.machine();
    let loops = cfg.corpus_loops(&machine);
    // Our substitute corpus is easier than the Cydra compiler's output, so
    // a generous IMS budget reaches the MII everywhere; OPTIMOD_IMS_BUDGET
    // (placements per operation, Rau's "budget ratio") tightens the
    // heuristic to surface the paper's interesting set.
    let ims_cfg = ImsConfig {
        budget_ratio: std::env::var("OPTIMOD_IMS_BUDGET")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2),
        ..Default::default()
    };
    println!(
        "Experiment 3 reproduction (IMS optimality) — {} loops, {} ms/probe, \
         IMS budget ratio {}\n",
        loops.len(),
        cfg.budget.as_millis(),
        ims_cfg.budget_ratio
    );

    let prober = cfg.scheduler(DepStyle::Structured, Objective::FirstFeasible);

    let mut at_mii = 0usize;
    let mut interesting = Vec::new();
    let mut ims_iis = Vec::new();
    for l in &loops {
        let ims = ims_schedule(l, &machine, &ims_cfg)
            .unwrap_or_else(|| panic!("IMS failed on {}", l.name()));
        let mii = compute_mii(l, &machine).value();
        let ii = ims.schedule.ii();
        ims_iis.push((l.name().to_string(), ii));
        if ii == mii {
            at_mii += 1;
        } else {
            interesting.push((l, ii));
        }
    }
    println!(
        "IMS achieves the MII on {at_mii}/{} loops ({:.1}%)",
        loops.len(),
        100.0 * at_mii as f64 / loops.len() as f64
    );
    println!(
        "interesting loops (IMS II above MII): {}\n",
        interesting.len()
    );

    // Probe each interesting loop: can II be decreased by 1? by 2?
    let mut improved_by = [0usize; 3]; // [not-decreasable, by 1, by >=2]
    let mut proven_optimal = 0usize;
    let mut undecided = 0usize;
    let mut known_optimal_total = at_mii;
    for (l, ims_ii) in &interesting {
        // Find the smallest feasible II <= ims_ii by probing downwards.
        let mut best_known = *ims_ii;
        let mut decided_floor = false;
        while best_known > 1 {
            match prober.feasible_at(l, &machine, best_known - 1) {
                Some(true) => best_known -= 1,
                Some(false) => {
                    decided_floor = true;
                    break;
                }
                None => break, // undecided below this point
            }
        }
        if best_known == 1 {
            decided_floor = true; // nothing below II=1 exists
        }
        let gain = ims_ii - best_known;
        match (gain, decided_floor) {
            (0, true) => {
                improved_by[0] += 1;
                proven_optimal += 1;
                known_optimal_total += 1;
            }
            (0, false) => undecided += 1,
            (1, _) => improved_by[1] += 1,
            (_, _) => improved_by[2] += 1,
        }
        if gain > 0 && decided_floor {
            known_optimal_total += 1; // the improved schedule is proven best
        }
        if gain > 0 {
            println!(
                "  {}: IMS II {} -> optimal scheduler found II {}{}",
                l.name(),
                ims_ii,
                best_known,
                if decided_floor {
                    " (proven minimal)"
                } else {
                    ""
                }
            );
        }
    }

    println!("\namong the interesting loops:");
    println!("  II proven not decreasable:        {:>4}", improved_by[0]);
    println!("  II decreased by exactly 1 cycle:  {:>4}", improved_by[1]);
    println!("  II decreased by 2 or more cycles: {:>4}", improved_by[2]);
    println!("  undecided within the budget:      {undecided:>4}");
    let _ = proven_optimal;
    println!(
        "\nloops with schedules of known-maximum throughput: {known_optimal_total}/{} ({:.1}%)",
        loops.len(),
        100.0 * known_optimal_total as f64 / loops.len() as f64
    );
}
