//! Experiment harness for the PLDI'97 reproduction.
//!
//! Provides the shared machinery the per-table/per-figure binaries use:
//! corpus selection, per-loop budgeting, the four schedulers in both
//! formulations, and the paper's `min / freq / median / average / max`
//! summary statistics (Tables 1 and 2).
//!
//! Environment knobs (all binaries):
//!
//! * `OPTIMOD_CORPUS` — `small` (default), `medium`, or `full` (1327
//!   loops, like the paper; slow).
//! * `OPTIMOD_BUDGET_MS` — per-loop solver budget in milliseconds
//!   (default 2000; the paper used 15 minutes on an HP-9000/715).
//! * `OPTIMOD_NODE_CAP` — per-loop branch-and-bound node cap
//!   (default 200000).
//! * `OPTIMOD_THREADS` — worker threads for the corpus driver (default:
//!   all cores). The corpus is parallelized *across* loops while each
//!   per-loop solve stays single-threaded, so node and iteration counts
//!   are identical at any thread count.

#![warn(missing_docs)]

use std::time::Duration;

use optimod::heuristic::{ims_schedule, stage_schedule, ImsConfig};
use optimod::{DepStyle, LoopResult, Objective, OptimalScheduler, Schedule, SchedulerConfig};
use optimod_ddg::{benchmark_corpus, CorpusSize, Loop};
use optimod_machine::{cydra_like, Machine};

/// One benchmark loop together with the optimal scheduler's outcome.
#[derive(Debug, Clone)]
pub struct LoopRecord {
    /// Loop name.
    pub name: String,
    /// Operation count (the paper's `N`).
    pub n_ops: usize,
    /// Scheduling outcome.
    pub result: LoopResult,
}

/// The four schedulers of the paper's Section 5.
pub const SCHEDULERS: [(&str, Objective); 4] = [
    ("NoObj", Objective::FirstFeasible),
    ("MinBuff", Objective::MinBuffers),
    ("MinLife", Objective::MinCumLifetime),
    ("MinReg", Objective::MinMaxLive),
];

/// Experiment-wide configuration, resolved from the environment.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Corpus size.
    pub corpus: CorpusSize,
    /// Per-loop solver budget.
    pub budget: Duration,
    /// Per-loop branch-and-bound node cap.
    pub node_cap: u64,
    /// Worker threads for the corpus driver (`0` = all cores, honoring
    /// `OPTIMOD_THREADS`). Parallelism is across loops; each per-loop
    /// solve runs single-threaded so statistics stay deterministic.
    pub threads: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            corpus: CorpusSize::Small,
            budget: Duration::from_millis(2000),
            node_cap: 200_000,
            threads: 0,
        }
    }
}

impl ExperimentConfig {
    /// Reads `OPTIMOD_CORPUS`, `OPTIMOD_BUDGET_MS`, and `OPTIMOD_NODE_CAP`.
    /// (`OPTIMOD_THREADS` is resolved lazily by the parallel driver.)
    pub fn from_env() -> Self {
        let mut cfg = ExperimentConfig::default();
        match std::env::var("OPTIMOD_CORPUS").as_deref() {
            Ok("medium") => cfg.corpus = CorpusSize::Medium,
            Ok("full") => cfg.corpus = CorpusSize::Full,
            Ok("small") | Err(_) => {}
            Ok(other) => eprintln!("ignoring unknown OPTIMOD_CORPUS={other}"),
        }
        if let Ok(ms) = std::env::var("OPTIMOD_BUDGET_MS") {
            if let Ok(ms) = ms.parse::<u64>() {
                cfg.budget = Duration::from_millis(ms);
            }
        }
        if let Ok(cap) = std::env::var("OPTIMOD_NODE_CAP") {
            if let Ok(cap) = cap.parse::<u64>() {
                cfg.node_cap = cap;
            }
        }
        cfg
    }

    /// The experiment machine (Cydra-5-like, as in the paper).
    pub fn machine(&self) -> Machine {
        cydra_like()
    }

    /// The benchmark corpus for this configuration.
    pub fn corpus_loops(&self, machine: &Machine) -> Vec<Loop> {
        benchmark_corpus(machine, self.corpus)
    }

    /// A scheduler with this experiment's budgets.
    ///
    /// The solver is pinned to one thread: the harness parallelizes across
    /// loops instead, which keeps per-loop node and iteration counts
    /// bit-identical to a fully sequential run.
    pub fn scheduler(&self, style: DepStyle, objective: Objective) -> OptimalScheduler {
        let mut cfg = SchedulerConfig::new(style, objective)
            .with_time_limit(self.budget)
            .with_node_limit(self.node_cap);
        cfg.limits.threads = 1;
        OptimalScheduler::new(cfg)
    }

    /// Runs one scheduler over the whole corpus, one loop per worker task.
    ///
    /// Results come back in corpus order regardless of thread count.
    pub fn run_suite(
        &self,
        machine: &Machine,
        loops: &[Loop],
        style: DepStyle,
        objective: Objective,
    ) -> Vec<LoopRecord> {
        let sched = self.scheduler(style, objective);
        optimod_par::par_map(self.threads, loops, |_, l| LoopRecord {
            name: l.name().to_string(),
            n_ops: l.num_ops(),
            result: sched.schedule(l, machine),
        })
    }
}

/// IMS (+ stage scheduling) outcomes for the heuristic experiments.
#[derive(Debug, Clone)]
pub struct HeuristicRecord {
    /// Loop name.
    pub name: String,
    /// IMS schedule.
    pub ims: Schedule,
    /// IMS schedule after the stage-scheduling register pass.
    pub staged: Schedule,
}

/// Runs IMS + stage scheduling over the corpus.
///
/// # Panics
///
/// Panics if IMS cannot schedule a loop at any `II` within its span, which
/// would indicate a corpus or heuristic bug.
pub fn run_heuristics(machine: &Machine, loops: &[Loop]) -> Vec<HeuristicRecord> {
    optimod_par::par_map(0, loops, |_, l| {
        let ims = ims_schedule(l, machine, &ImsConfig::default())
            .unwrap_or_else(|| panic!("IMS failed on {}", l.name()))
            .schedule;
        let staged = stage_schedule(l, machine, &ims);
        HeuristicRecord {
            name: l.name().to_string(),
            ims,
            staged,
        }
    })
}

/// The paper's per-measurement summary: min, frequency of the min, median,
/// average, max (Tables 1 and 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Smallest observation.
    pub min: f64,
    /// Fraction of observations equal to the minimum.
    pub freq_at_min: f64,
    /// Median observation.
    pub median: f64,
    /// Mean observation.
    pub average: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample; returns `None` for an empty sample.
    pub fn from_values(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in summaries"));
        let min = v[0];
        let at_min = v.iter().filter(|&&x| x == min).count();
        Some(Summary {
            min,
            freq_at_min: at_min as f64 / v.len() as f64,
            median: v[v.len() / 2],
            average: v.iter().sum::<f64>() / v.len() as f64,
            max: *v.last().expect("non-empty"),
        })
    }

    /// One formatted table row in the paper's layout.
    pub fn row(&self, label: &str) -> String {
        format!(
            "{label:<24} {:>10.2} {:>7.1}% {:>10.2} {:>12.2} {:>12.2}",
            self.min,
            self.freq_at_min * 100.0,
            self.median,
            self.average,
            self.max
        )
    }
}

/// Header matching [`Summary::row`].
pub fn summary_header() -> String {
    format!(
        "{:<24} {:>10} {:>8} {:>10} {:>12} {:>12}",
        "Measurement", "min", "freq", "median", "average", "max"
    )
}

/// Prints the full Table-1/2-style block for one scheduler's records
/// (successfully scheduled loops only).
pub fn print_measurement_block(title: &str, records: &[LoopRecord]) {
    let ok: Vec<&LoopRecord> = records
        .iter()
        .filter(|r| r.result.status.scheduled())
        .collect();
    println!(
        "{title}: ({} loops scheduled of {})",
        ok.len(),
        records.len()
    );
    if ok.is_empty() {
        println!("  (nothing scheduled — raise OPTIMOD_BUDGET_MS)");
        return;
    }
    println!("{}", summary_header());
    type Extract = fn(&LoopRecord) -> f64;
    let series: [(&str, Extract); 6] = [
        ("Variables", |r| r.result.stats.variables as f64),
        ("Constraints", |r| r.result.stats.constraints as f64),
        ("Branch-and-bound nodes", |r| r.result.stats.bb_nodes as f64),
        ("Simplex iterations", |r| {
            r.result.stats.simplex_iterations as f64
        }),
        ("II", |r| r.result.ii.unwrap_or(0) as f64),
        ("N", |r| r.n_ops as f64),
    ];
    for (label, f) in series {
        let vals: Vec<f64> = ok.iter().map(|r| f(r)).collect();
        let s = Summary::from_values(&vals).expect("non-empty");
        println!("{}", s.row(label));
    }
}

/// Total solver wall time across records.
pub fn total_time(records: &[LoopRecord]) -> Duration {
    records.iter().map(|r| r.result.stats.wall_time).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics() {
        let s = Summary::from_values(&[1.0, 1.0, 2.0, 10.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.freq_at_min, 0.5);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.average, 3.5);
        assert_eq!(s.max, 10.0);
        assert!(Summary::from_values(&[]).is_none());
    }

    #[test]
    fn env_defaults() {
        let cfg = ExperimentConfig::default();
        assert_eq!(cfg.corpus, CorpusSize::Small);
        assert_eq!(cfg.budget, Duration::from_millis(2000));
    }

    #[test]
    fn tiny_suite_runs_end_to_end() {
        let cfg = ExperimentConfig {
            corpus: CorpusSize::Small,
            budget: Duration::from_millis(300),
            node_cap: 5_000,
            threads: 2,
        };
        let machine = cfg.machine();
        let loops: Vec<_> = cfg.corpus_loops(&machine).into_iter().take(8).collect();
        let recs = cfg.run_suite(
            &machine,
            &loops,
            DepStyle::Structured,
            Objective::FirstFeasible,
        );
        assert_eq!(recs.len(), 8);
        assert!(recs.iter().any(|r| r.result.status.scheduled()));
        let heur = run_heuristics(&machine, &loops);
        assert_eq!(heur.len(), 8);
    }
}
