//! Experiment harness for the PLDI'97 reproduction.
//!
//! Provides the shared machinery the per-table/per-figure binaries use:
//! corpus selection, per-loop budgeting, the four schedulers in both
//! formulations, and the paper's `min / freq / median / average / max`
//! summary statistics (Tables 1 and 2).
//!
//! Environment knobs (all binaries):
//!
//! * `OPTIMOD_CORPUS` — `small` (default), `medium`, or `full` (1327
//!   loops, like the paper; slow).
//! * `OPTIMOD_BUDGET_MS` — per-loop solver budget in milliseconds
//!   (default 2000; the paper used 15 minutes on an HP-9000/715).
//! * `OPTIMOD_NODE_CAP` — per-loop branch-and-bound node cap
//!   (default 200000).
//! * `OPTIMOD_THREADS` — worker threads for the corpus driver (default:
//!   all cores). The corpus is parallelized *across* loops while each
//!   per-loop solve stays single-threaded, so node and iteration counts
//!   are identical at any thread count.

#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use optimod::heuristic::{ims_schedule, stage_schedule, ImsConfig};
use optimod::{
    DepStyle, LoopResult, LoopStatus, Objective, OptimalScheduler, Provenance, Schedule,
    SchedulerConfig,
};
use optimod_ddg::{benchmark_corpus, CorpusSize, Loop};
use optimod_ilp::panic_message;
use optimod_machine::{cydra_like, Machine};
use optimod_trace::{HistSummary, MemorySink, Phase, SolveReport, Trace};

/// One benchmark loop together with the optimal scheduler's outcome.
#[derive(Debug, Clone)]
pub struct LoopRecord {
    /// Loop name.
    pub name: String,
    /// Operation count (the paper's `N`).
    pub n_ops: usize,
    /// Scheduling outcome.
    pub result: LoopResult,
}

/// The four schedulers of the paper's Section 5.
pub const SCHEDULERS: [(&str, Objective); 4] = [
    ("NoObj", Objective::FirstFeasible),
    ("MinBuff", Objective::MinBuffers),
    ("MinLife", Objective::MinCumLifetime),
    ("MinReg", Objective::MinMaxLive),
];

/// Experiment-wide configuration, resolved from the environment.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Corpus size.
    pub corpus: CorpusSize,
    /// Per-loop solver budget.
    pub budget: Duration,
    /// Per-loop branch-and-bound node cap.
    pub node_cap: u64,
    /// Worker threads for the corpus driver (`0` = all cores, honoring
    /// `OPTIMOD_THREADS`). Parallelism is across loops; each per-loop
    /// solve runs single-threaded so statistics stay deterministic.
    pub threads: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            corpus: CorpusSize::Small,
            budget: Duration::from_millis(2000),
            node_cap: 200_000,
            threads: 0,
        }
    }
}

impl ExperimentConfig {
    /// Reads `OPTIMOD_CORPUS`, `OPTIMOD_BUDGET_MS`, and `OPTIMOD_NODE_CAP`.
    /// (`OPTIMOD_THREADS` is resolved lazily by the parallel driver.)
    pub fn from_env() -> Self {
        let mut cfg = ExperimentConfig::default();
        match std::env::var("OPTIMOD_CORPUS").as_deref() {
            Ok("medium") => cfg.corpus = CorpusSize::Medium,
            Ok("full") => cfg.corpus = CorpusSize::Full,
            Ok("small") | Err(_) => {}
            Ok(other) => eprintln!("ignoring unknown OPTIMOD_CORPUS={other}"),
        }
        if let Ok(ms) = std::env::var("OPTIMOD_BUDGET_MS") {
            if let Ok(ms) = ms.parse::<u64>() {
                cfg.budget = Duration::from_millis(ms);
            }
        }
        if let Ok(cap) = std::env::var("OPTIMOD_NODE_CAP") {
            if let Ok(cap) = cap.parse::<u64>() {
                cfg.node_cap = cap;
            }
        }
        cfg
    }

    /// The experiment machine (Cydra-5-like, as in the paper).
    pub fn machine(&self) -> Machine {
        cydra_like()
    }

    /// The benchmark corpus for this configuration.
    pub fn corpus_loops(&self, machine: &Machine) -> Vec<Loop> {
        benchmark_corpus(machine, self.corpus)
    }

    /// A scheduler with this experiment's budgets.
    ///
    /// The solver is pinned to one thread: the harness parallelizes across
    /// loops instead, which keeps per-loop node and iteration counts
    /// bit-identical to a fully sequential run.
    pub fn scheduler(&self, style: DepStyle, objective: Objective) -> OptimalScheduler {
        self.scheduler_with_trace(style, objective, Trace::disabled())
    }

    /// Like [`ExperimentConfig::scheduler`], with a trace handle attached
    /// to the solver limits (e.g. a shared `NullSink` for overhead
    /// measurement).
    pub fn scheduler_with_trace(
        &self,
        style: DepStyle,
        objective: Objective,
        trace: Trace,
    ) -> OptimalScheduler {
        let mut cfg = SchedulerConfig::new(style, objective)
            .with_time_limit(self.budget)
            .with_node_limit(self.node_cap);
        cfg.limits.threads = 1;
        cfg.limits.trace = trace;
        OptimalScheduler::new(cfg)
    }

    /// Runs a prepared scheduler over the whole corpus, one loop per worker
    /// task. Results come back in corpus order regardless of thread count.
    pub fn run_suite_with(
        &self,
        machine: &Machine,
        loops: &[Loop],
        sched: &OptimalScheduler,
    ) -> Vec<LoopRecord> {
        optimod_par::par_map(self.threads, loops, |_, l| LoopRecord {
            name: l.name().to_string(),
            n_ops: l.num_ops(),
            result: sched.schedule(l, machine),
        })
    }

    /// Runs one scheduler over the whole corpus, one loop per worker task.
    ///
    /// Results come back in corpus order regardless of thread count.
    pub fn run_suite(
        &self,
        machine: &Machine,
        loops: &[Loop],
        style: DepStyle,
        objective: Objective,
    ) -> Vec<LoopRecord> {
        self.run_suite_with(machine, loops, &self.scheduler(style, objective))
    }

    /// Traced variant of [`ExperimentConfig::run_suite`]: each loop gets a
    /// private [`MemorySink`], and its aggregated [`SolveReport`] comes back
    /// alongside the record. Per-loop solves stay single-threaded, so the
    /// per-loop event streams are deterministic.
    pub fn run_suite_traced(
        &self,
        machine: &Machine,
        loops: &[Loop],
        style: DepStyle,
        objective: Objective,
    ) -> Vec<(LoopRecord, SolveReport)> {
        optimod_par::par_map(self.threads, loops, |_, l| {
            let sink = Arc::new(MemorySink::default());
            let sched = self.scheduler_with_trace(style, objective, Trace::new(sink.clone()));
            let record = LoopRecord {
                name: l.name().to_string(),
                n_ops: l.num_ops(),
                result: sched.schedule(l, machine),
            };
            (record, sink.report())
        })
    }
}

/// Prints a trace-derived percentile table (min/p50/p90/max across loops)
/// for one formulation's traced run: per-phase wall clock plus the
/// branch-and-bound and LP counters.
pub fn print_trace_percentiles(title: &str, reports: &[SolveReport]) {
    println!("{title}");
    println!(
        "  {:<24} {:>7} {:>12} {:>12} {:>12} {:>12}",
        "measure", "loops", "min", "p50", "p90", "max"
    );
    for phase in Phase::ALL {
        let micros: Vec<u64> = reports
            .iter()
            .filter_map(|r| r.phase(phase))
            .map(|p| u64::try_from(p.total.as_micros()).unwrap_or(u64::MAX))
            .collect();
        if micros.is_empty() {
            continue;
        }
        let h = HistSummary::from_values(&micros);
        println!(
            "  {:<24} {:>7} {:>10}us {:>10}us {:>10}us {:>10}us",
            format!("{} wall", phase.name()),
            h.count,
            h.min,
            h.p50,
            h.p90,
            h.max
        );
    }
    type Extract = fn(&SolveReport) -> u64;
    let counters: [(&str, Extract); 5] = [
        ("bb nodes", |r| r.nodes_opened),
        ("lp solves", |r| r.lp_solves),
        ("simplex iterations", |r| r.simplex_iterations),
        ("refactorizations", |r| r.refactors),
        ("incumbent updates", |r| r.incumbents),
    ];
    for (label, f) in counters {
        let vals: Vec<u64> = reports.iter().map(f).collect();
        let h = HistSummary::from_values(&vals);
        println!(
            "  {label:<24} {:>7} {:>12} {:>12} {:>12} {:>12}",
            h.count, h.min, h.p50, h.p90, h.max
        );
    }
}

/// Classification of one loop's outcome in a resilient corpus run: what
/// the coverage experiments count (exact vs. degraded vs. the various ways
/// of coming up empty).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeKind {
    /// Scheduled by the exact solver (rung 1).
    Exact,
    /// Scheduled by a fallback rung; the payload says which.
    Degraded(Provenance),
    /// The budget ran out with no schedule from any rung.
    TimedOut,
    /// Proven infeasible within the `II` span.
    Infeasible,
    /// The input loop failed validation.
    Invalid,
    /// The pipeline reported a typed failure (solver instability, worker
    /// panic, undecodable solution) with no schedule.
    Failed,
    /// `schedule()` itself panicked; the driver caught the unwind and the
    /// sweep continued.
    Crashed,
}

impl OutcomeKind {
    /// Whether a schedule was produced (by any rung).
    pub fn scheduled(self) -> bool {
        matches!(self, OutcomeKind::Exact | OutcomeKind::Degraded(_))
    }
}

impl std::fmt::Display for OutcomeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OutcomeKind::Exact => f.write_str("exact"),
            OutcomeKind::Degraded(p) => write!(f, "degraded({p})"),
            OutcomeKind::TimedOut => f.write_str("timed-out"),
            OutcomeKind::Infeasible => f.write_str("infeasible"),
            OutcomeKind::Invalid => f.write_str("invalid"),
            OutcomeKind::Failed => f.write_str("failed"),
            OutcomeKind::Crashed => f.write_str("CRASHED"),
        }
    }
}

/// One row of the resilient corpus driver's outcome table.
#[derive(Debug, Clone)]
pub struct CorpusRow {
    /// Loop name.
    pub name: String,
    /// Operation count.
    pub n_ops: usize,
    /// Outcome classification.
    pub kind: OutcomeKind,
    /// Achieved `II` (when scheduled).
    pub ii: Option<u32>,
    /// Wall time spent on the loop.
    pub wall_time: Duration,
    /// Error or panic message, when the outcome carries one.
    pub detail: Option<String>,
}

impl CorpusRow {
    /// Classifies a scheduling result into an outcome row.
    pub fn classify(name: &str, n_ops: usize, r: &LoopResult) -> CorpusRow {
        let kind = match r.status {
            LoopStatus::Optimal | LoopStatus::FeasibleOnly => match r.provenance {
                Some(p) if p.degraded() => OutcomeKind::Degraded(p),
                _ => OutcomeKind::Exact,
            },
            LoopStatus::TimedOut => OutcomeKind::TimedOut,
            LoopStatus::Infeasible => OutcomeKind::Infeasible,
            LoopStatus::Invalid => OutcomeKind::Invalid,
            LoopStatus::Failed => OutcomeKind::Failed,
        };
        CorpusRow {
            name: name.to_string(),
            n_ops,
            kind,
            ii: r.ii,
            wall_time: r.stats.wall_time,
            detail: r.error.as_ref().map(|e| e.to_string()),
        }
    }
}

/// Runs `schedule` over every loop with per-loop fault isolation: a panic
/// inside one loop's pipeline becomes a [`OutcomeKind::Crashed`] row while
/// the rest of the sweep proceeds. Results come back in corpus order.
///
/// This is the driver the coverage experiments use on untrusted or
/// adversarial corpora; `schedule` is a closure (rather than a fixed
/// [`OptimalScheduler`]) so tests can inject faults for specific loops.
pub fn run_resilient<F>(threads: usize, loops: &[Loop], schedule: F) -> Vec<CorpusRow>
where
    F: Fn(usize, &Loop) -> LoopResult + Sync,
{
    optimod_par::par_map(threads, loops, |i, l| {
        let start = Instant::now();
        match catch_unwind(AssertUnwindSafe(|| schedule(i, l))) {
            Ok(r) => CorpusRow::classify(l.name(), l.num_ops(), &r),
            Err(payload) => CorpusRow {
                name: l.name().to_string(),
                n_ops: l.num_ops(),
                kind: OutcomeKind::Crashed,
                ii: None,
                wall_time: start.elapsed(),
                detail: Some(panic_message(payload.as_ref())),
            },
        }
    })
}

/// Prints the per-loop outcome table plus the degraded-coverage summary
/// (scheduled = exact + degraded, per rung) that EXPERIMENTS.md records.
pub fn print_outcome_table(title: &str, rows: &[CorpusRow]) {
    println!("{title}");
    println!(
        "{:<28} {:>5} {:>18} {:>6} {:>9}  detail",
        "loop", "ops", "outcome", "II", "time"
    );
    for r in rows {
        println!(
            "{:<28} {:>5} {:>18} {:>6} {:>8.2}s  {}",
            r.name,
            r.n_ops,
            r.kind.to_string(),
            r.ii.map_or_else(|| "-".to_string(), |ii| ii.to_string()),
            r.wall_time.as_secs_f64(),
            r.detail.as_deref().unwrap_or("-"),
        );
    }
    let count = |pred: fn(OutcomeKind) -> bool| rows.iter().filter(|r| pred(r.kind)).count();
    let exact = count(|k| k == OutcomeKind::Exact);
    let stage = count(|k| k == OutcomeKind::Degraded(Provenance::StageIlp));
    let ims = count(|k| k == OutcomeKind::Degraded(Provenance::Ims));
    println!(
        "coverage: {}/{} scheduled ({exact} exact, {stage} stage-ilp, {ims} ims); \
         {} timed out, {} infeasible, {} invalid, {} failed, {} crashed",
        exact + stage + ims,
        rows.len(),
        count(|k| k == OutcomeKind::TimedOut),
        count(|k| k == OutcomeKind::Infeasible),
        count(|k| k == OutcomeKind::Invalid),
        count(|k| k == OutcomeKind::Failed),
        count(|k| k == OutcomeKind::Crashed),
    );
}

/// IMS (+ stage scheduling) outcomes for the heuristic experiments.
#[derive(Debug, Clone)]
pub struct HeuristicRecord {
    /// Loop name.
    pub name: String,
    /// IMS schedule.
    pub ims: Schedule,
    /// IMS schedule after the stage-scheduling register pass.
    pub staged: Schedule,
}

/// Runs IMS + stage scheduling over the corpus.
///
/// # Panics
///
/// Panics if IMS cannot schedule a loop at any `II` within its span, which
/// would indicate a corpus or heuristic bug.
pub fn run_heuristics(machine: &Machine, loops: &[Loop]) -> Vec<HeuristicRecord> {
    optimod_par::par_map(0, loops, |_, l| {
        let ims = ims_schedule(l, machine, &ImsConfig::default())
            .unwrap_or_else(|| panic!("IMS failed on {}", l.name()))
            .schedule;
        let staged = stage_schedule(l, machine, &ims);
        HeuristicRecord {
            name: l.name().to_string(),
            ims,
            staged,
        }
    })
}

/// The paper's per-measurement summary: min, frequency of the min, median,
/// average, max (Tables 1 and 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Smallest observation.
    pub min: f64,
    /// Fraction of observations equal to the minimum.
    pub freq_at_min: f64,
    /// Median observation.
    pub median: f64,
    /// Mean observation.
    pub average: f64,
    /// Largest observation.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample; returns `None` for an empty sample.
    pub fn from_values(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in summaries"));
        let min = v[0];
        let at_min = v.iter().filter(|&&x| x == min).count();
        Some(Summary {
            min,
            freq_at_min: at_min as f64 / v.len() as f64,
            median: v[v.len() / 2],
            average: v.iter().sum::<f64>() / v.len() as f64,
            max: *v.last().expect("non-empty"),
        })
    }

    /// One formatted table row in the paper's layout.
    pub fn row(&self, label: &str) -> String {
        format!(
            "{label:<24} {:>10.2} {:>7.1}% {:>10.2} {:>12.2} {:>12.2}",
            self.min,
            self.freq_at_min * 100.0,
            self.median,
            self.average,
            self.max
        )
    }
}

/// Header matching [`Summary::row`].
pub fn summary_header() -> String {
    format!(
        "{:<24} {:>10} {:>8} {:>10} {:>12} {:>12}",
        "Measurement", "min", "freq", "median", "average", "max"
    )
}

/// Prints the full Table-1/2-style block for one scheduler's records
/// (successfully scheduled loops only).
pub fn print_measurement_block(title: &str, records: &[LoopRecord]) {
    let ok: Vec<&LoopRecord> = records
        .iter()
        .filter(|r| r.result.status.scheduled())
        .collect();
    println!(
        "{title}: ({} loops scheduled of {})",
        ok.len(),
        records.len()
    );
    if ok.is_empty() {
        println!("  (nothing scheduled — raise OPTIMOD_BUDGET_MS)");
        return;
    }
    println!("{}", summary_header());
    type Extract = fn(&LoopRecord) -> f64;
    let series: [(&str, Extract); 6] = [
        ("Variables", |r| r.result.stats.variables as f64),
        ("Constraints", |r| r.result.stats.constraints as f64),
        ("Branch-and-bound nodes", |r| r.result.stats.bb_nodes as f64),
        ("Simplex iterations", |r| {
            r.result.stats.simplex_iterations as f64
        }),
        ("II", |r| r.result.ii.unwrap_or(0) as f64),
        ("N", |r| r.n_ops as f64),
    ];
    for (label, f) in series {
        let vals: Vec<f64> = ok.iter().map(|r| f(r)).collect();
        let s = Summary::from_values(&vals).expect("non-empty");
        println!("{}", s.row(label));
    }
}

/// Total solver wall time across records.
pub fn total_time(records: &[LoopRecord]) -> Duration {
    records.iter().map(|r| r.result.stats.wall_time).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics() {
        let s = Summary::from_values(&[1.0, 1.0, 2.0, 10.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.freq_at_min, 0.5);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.average, 3.5);
        assert_eq!(s.max, 10.0);
        assert!(Summary::from_values(&[]).is_none());
    }

    #[test]
    fn env_defaults() {
        let cfg = ExperimentConfig::default();
        assert_eq!(cfg.corpus, CorpusSize::Small);
        assert_eq!(cfg.budget, Duration::from_millis(2000));
    }

    #[test]
    fn tiny_suite_runs_end_to_end() {
        let cfg = ExperimentConfig {
            corpus: CorpusSize::Small,
            budget: Duration::from_millis(300),
            node_cap: 5_000,
            threads: 2,
        };
        let machine = cfg.machine();
        let loops: Vec<_> = cfg.corpus_loops(&machine).into_iter().take(8).collect();
        let recs = cfg.run_suite(
            &machine,
            &loops,
            DepStyle::Structured,
            Objective::FirstFeasible,
        );
        assert_eq!(recs.len(), 8);
        assert!(recs.iter().any(|r| r.result.status.scheduled()));
        let heur = run_heuristics(&machine, &loops);
        assert_eq!(heur.len(), 8);
    }
}
