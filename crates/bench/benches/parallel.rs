//! Criterion micro-benchmarks for the parallel infrastructure: the corpus
//! driver at 1/2/4 worker threads and the work-stealing branch-and-bound
//! solver against its serial twin.
//!
//! On a single-core host the parallel configurations measure scheduling
//! overhead rather than speedup; see `BENCH_parallel.json` (produced by the
//! `bench_parallel` binary) for the honest throughput numbers.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use optimod::{DepStyle, Objective};
use optimod_bench::ExperimentConfig;
use optimod_ddg::{benchmark_corpus, kernels, CorpusSize};
use optimod_machine::cydra_like;

fn bench_corpus_driver(c: &mut Criterion) {
    let machine = cydra_like();
    let loops: Vec<_> = benchmark_corpus(&machine, CorpusSize::Small)
        .into_iter()
        .take(24)
        .collect();
    let mut group = c.benchmark_group("corpus-driver");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let cfg = ExperimentConfig {
            corpus: CorpusSize::Small,
            budget: Duration::from_millis(200),
            node_cap: 2_000,
            threads,
        };
        group.bench_with_input(BenchmarkId::from_parameter(threads), &cfg, |b, cfg| {
            b.iter(|| {
                cfg.run_suite(
                    &machine,
                    &loops,
                    DepStyle::Structured,
                    Objective::FirstFeasible,
                )
                .len()
            })
        });
    }
    group.finish();
}

fn bench_solver_threads(c: &mut Criterion) {
    let machine = cydra_like();
    let l = kernels::lfk5_tridiag(&machine);
    let mut group = c.benchmark_group("solver-threads");
    group.sample_size(10);
    for threads in [1u32, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let cfg = ExperimentConfig {
                    corpus: CorpusSize::Small,
                    budget: Duration::from_millis(1000),
                    node_cap: 20_000,
                    threads: 1,
                };
                let mut sched_cfg =
                    optimod::SchedulerConfig::new(DepStyle::Structured, Objective::MinMaxLive)
                        .with_time_limit(cfg.budget)
                        .with_node_limit(cfg.node_cap);
                sched_cfg.limits.threads = threads;
                let sched = optimod::OptimalScheduler::new(sched_cfg);
                b.iter(|| sched.schedule(&l, &machine).stats.bb_nodes)
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_corpus_driver, bench_solver_threads);
criterion_main!(benches);
