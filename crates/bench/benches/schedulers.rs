//! Criterion micro-benchmarks for the non-ILP components: MII computation,
//! the IMS heuristic, stage scheduling, and schedule measurement — the
//! fast paths a production compiler would run per loop.

use criterion::{criterion_group, criterion_main, Criterion};
use optimod::heuristic::{ims_schedule, stage_schedule, ImsConfig};
use optimod::{compute_mii, Schedule};
use optimod_ddg::{benchmark_corpus, CorpusSize};
use optimod_machine::cydra_like;

fn bench_mii(c: &mut Criterion) {
    let machine = cydra_like();
    let loops = benchmark_corpus(&machine, CorpusSize::Small);
    c.bench_function("mii/small-corpus", |b| {
        b.iter(|| {
            loops
                .iter()
                .map(|l| compute_mii(l, &machine).value())
                .sum::<u32>()
        })
    });
}

fn bench_ims(c: &mut Criterion) {
    let machine = cydra_like();
    let loops = benchmark_corpus(&machine, CorpusSize::Small);
    let mut group = c.benchmark_group("ims");
    group.sample_size(10);
    group.bench_function("small-corpus", |b| {
        b.iter(|| {
            loops
                .iter()
                .map(|l| {
                    ims_schedule(l, &machine, &ImsConfig::default())
                        .expect("ims schedules")
                        .schedule
                        .ii()
                })
                .sum::<u32>()
        })
    });
    group.finish();
}

fn bench_stage_scheduling(c: &mut Criterion) {
    let machine = cydra_like();
    let loops = benchmark_corpus(&machine, CorpusSize::Small);
    let schedules: Vec<Schedule> = loops
        .iter()
        .map(|l| {
            ims_schedule(l, &machine, &ImsConfig::default())
                .expect("ims schedules")
                .schedule
        })
        .collect();
    let mut group = c.benchmark_group("stage-scheduling");
    group.sample_size(10);
    group.bench_function("small-corpus", |b| {
        b.iter(|| {
            loops
                .iter()
                .zip(&schedules)
                .map(|(l, s)| stage_schedule(l, &machine, s).max_live(l))
                .sum::<u32>()
        })
    });
    group.finish();
}

fn bench_max_live(c: &mut Criterion) {
    let machine = cydra_like();
    let loops = benchmark_corpus(&machine, CorpusSize::Small);
    let schedules: Vec<Schedule> = loops
        .iter()
        .map(|l| {
            ims_schedule(l, &machine, &ImsConfig::default())
                .expect("ims schedules")
                .schedule
        })
        .collect();
    c.bench_function("measure/maxlive-small-corpus", |b| {
        b.iter(|| {
            loops
                .iter()
                .zip(&schedules)
                .map(|(l, s)| s.max_live(l) + s.buffers(l))
                .sum::<u32>()
        })
    });
}

criterion_group!(
    benches,
    bench_mii,
    bench_ims,
    bench_stage_scheduling,
    bench_max_live
);
criterion_main!(benches);
