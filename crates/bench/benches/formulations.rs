//! Criterion micro-benchmarks: per-loop solve time of the traditional vs
//! structured formulations (the paper's headline effect, at single-loop
//! granularity so `cargo bench` shows it without a corpus sweep).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use optimod::{DepStyle, Objective, OptimalScheduler, SchedulerConfig};
use optimod_ddg::{kernels, Loop};
use optimod_machine::{cydra_like, example_3fu, Machine};

fn bench_cases() -> Vec<(&'static str, Machine, Loop)> {
    let m3 = example_3fu();
    let mc = cydra_like();
    vec![
        ("figure1/3fu", m3.clone(), kernels::figure1(&m3)),
        ("saxpy/cydra", mc.clone(), kernels::saxpy(&mc)),
        ("lfk1/3fu", m3.clone(), kernels::lfk1_hydro(&m3)),
        ("fir4/3fu", m3.clone(), kernels::fir4(&m3)),
        ("lfk12/3fu", m3.clone(), kernels::lfk12_first_diff(&m3)),
    ]
}

fn scheduler(style: DepStyle, objective: Objective) -> OptimalScheduler {
    OptimalScheduler::new(
        SchedulerConfig::new(style, objective).with_time_limit(Duration::from_secs(20)),
    )
}

fn bench_minreg(c: &mut Criterion) {
    let mut group = c.benchmark_group("minreg");
    group.sample_size(10);
    for (name, machine, l) in bench_cases() {
        for (style_name, style) in [
            ("traditional", DepStyle::Traditional),
            ("structured", DepStyle::Structured),
        ] {
            group.bench_with_input(
                BenchmarkId::new(style_name, name),
                &(&machine, &l),
                |b, (machine, l)| {
                    let s = scheduler(style, Objective::MinMaxLive);
                    b.iter(|| {
                        let r = s.schedule(l, machine);
                        assert!(r.status.scheduled(), "{name}");
                        r.ii
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_noobj(c: &mut Criterion) {
    let mut group = c.benchmark_group("noobj");
    group.sample_size(10);
    for (name, machine, l) in bench_cases() {
        for (style_name, style) in [
            ("traditional", DepStyle::Traditional),
            ("structured", DepStyle::Structured),
        ] {
            group.bench_with_input(
                BenchmarkId::new(style_name, name),
                &(&machine, &l),
                |b, (machine, l)| {
                    let s = scheduler(style, Objective::FirstFeasible);
                    b.iter(|| {
                        let r = s.schedule(l, machine);
                        assert!(r.status.scheduled(), "{name}");
                        r.ii
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_minreg, bench_noobj);
criterion_main!(benches);
