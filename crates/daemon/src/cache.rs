//! Crash-safe content-addressed store of certified schedules.
//!
//! Layout: one file per key, `<dir>/<hex key>.omc`, containing
//!
//! ```text
//! magic "OMC1" | version u8 | key (32 bytes) | payload_len u32 LE | payload | sha256(payload)
//! ```
//!
//! Durability protocol:
//!
//! * **Writes are atomic.** The record is written to a temp file *in the
//!   same directory* (rename across filesystems is not atomic), `fsync`ed,
//!   then `rename`d over the final name. A crash mid-write leaves a stale
//!   temp file, never a torn record under the real name.
//! * **Reads are paranoid.** Magic, version, key echo, and the SHA-256 of
//!   the payload are all verified; any mismatch quarantines the file (moved
//!   into `quarantine/`, preserved for postmortem) and reports a miss, so
//!   the scheduler re-solves instead of serving bad bytes.
//!
//! The store holds *schedules*, not certificates: the daemon re-certifies
//! every cache hit against the freshly parsed request before serving it, so
//! even a record that passes the checksum cannot smuggle an uncertified
//! schedule to a client.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::hash::{hex, Sha256};
use crate::wire::{Dec, Enc, WireError};

const MAGIC: [u8; 4] = *b"OMC1";
const VERSION: u8 = 1;

/// The cached value: everything needed to reconstruct a `Scheduled` reply
/// (modulo per-request statistics, which are meaningless for a hit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedSchedule {
    /// Initiation interval.
    pub ii: u32,
    /// Exact secondary-objective value, if one was certified.
    pub objective: Option<i64>,
    /// Issue cycle per operation, in *canonical* op order (the sorted order
    /// of [`crate::hash::canonical_perm`]). Declaration order is not stable
    /// across the textual reorderings the key deliberately erases, so the
    /// server remaps on store and on load.
    pub times: Vec<i64>,
}

/// Counters for observability and tests.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Successful loads.
    pub hits: u64,
    /// Absent keys.
    pub misses: u64,
    /// Records persisted.
    pub stores: u64,
    /// Corrupt records moved aside.
    pub quarantined: u64,
}

/// A content-addressed, crash-safe schedule store rooted at a directory.
#[derive(Debug)]
pub struct CacheStore {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    quarantined: AtomicU64,
}

impl CacheStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<CacheStore> {
        let dir = dir.into();
        fs::create_dir_all(dir.join("quarantine"))?;
        Ok(CacheStore {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: &[u8; 32]) -> PathBuf {
        self.dir.join(format!("{}.omc", hex(key)))
    }

    /// Loads the record for `key`. Any structural defect — bad magic,
    /// version skew, key mismatch, checksum failure, short file — moves the
    /// record into quarantine and returns `None`.
    pub fn load(&self, key: &[u8; 32]) -> Option<CachedSchedule> {
        let path = self.entry_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode_record(&bytes, key) {
            Ok(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            Err(_) => {
                self.quarantine(key);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Atomically persists the record for `key`: temp file in the same
    /// directory, fsync, rename.
    pub fn store(&self, key: &[u8; 32], value: &CachedSchedule) -> io::Result<()> {
        let tmp = self.write_temp(key, value)?;
        fs::rename(&tmp, self.entry_path(key))?;
        self.stores.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// First half of [`CacheStore::store`]: writes and fsyncs the temp file
    /// but does *not* rename it into place. Exposed so fault injection can
    /// simulate a crash between write and rename; the stale temp file must
    /// never be visible to [`CacheStore::load`].
    pub fn write_temp(&self, key: &[u8; 32], value: &CachedSchedule) -> io::Result<PathBuf> {
        let record = encode_record(key, value);
        let tmp = self
            .dir
            .join(format!(".{}.tmp.{}", hex(key), std::process::id()));
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&record)?;
        f.sync_all()?;
        Ok(tmp)
    }

    /// Moves the record for `key` (if any) into `quarantine/`, preserving
    /// the bytes for postmortem. Used both for checksum failures and for
    /// records that pass the checksum but fail exact re-certification.
    pub fn quarantine(&self, key: &[u8; 32]) {
        let path = self.entry_path(key);
        let dest = self
            .dir
            .join("quarantine")
            .join(format!("{}.omc", hex(key)));
        if fs::rename(&path, &dest).is_ok() {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
        } else {
            // Rename can race another quarantiner; removing is still safe —
            // the key must stop resolving either way.
            let _ = fs::remove_file(&path);
        }
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }
}

fn encode_payload(value: &CachedSchedule) -> Vec<u8> {
    let mut e = Enc::default();
    e.u32(value.ii);
    match value.objective {
        None => e.u8(0),
        Some(v) => {
            e.u8(1);
            e.i64(v);
        }
    }
    e.u32(value.times.len() as u32);
    for &t in &value.times {
        e.i64(t);
    }
    e.0
}

fn decode_payload(payload: &[u8]) -> Result<CachedSchedule, WireError> {
    let mut d = Dec(payload);
    let ii = d.u32()?;
    if ii == 0 {
        return Err(WireError::Malformed("zero II"));
    }
    let objective = match d.u8()? {
        0 => None,
        1 => Some(d.i64()?),
        v => {
            return Err(WireError::BadTag {
                what: "objective option",
                value: v as u64,
            })
        }
    };
    let n = d.u32()? as usize;
    if n > payload.len() {
        return Err(WireError::Malformed("times length"));
    }
    let mut times = Vec::with_capacity(n);
    for _ in 0..n {
        times.push(d.i64()?);
    }
    d.finish()?;
    Ok(CachedSchedule {
        ii,
        objective,
        times,
    })
}

fn encode_record(key: &[u8; 32], value: &CachedSchedule) -> Vec<u8> {
    let payload = encode_payload(value);
    let mut out = Vec::with_capacity(4 + 1 + 32 + 4 + payload.len() + 32);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.extend_from_slice(key);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&Sha256::digest(&payload));
    out
}

fn decode_record(bytes: &[u8], key: &[u8; 32]) -> Result<CachedSchedule, ()> {
    if bytes.len() < 4 + 1 + 32 + 4 + 32 || bytes[..4] != MAGIC || bytes[4] != VERSION {
        return Err(());
    }
    if &bytes[5..37] != key {
        return Err(());
    }
    let len = u32::from_le_bytes(bytes[37..41].try_into().unwrap()) as usize;
    let payload_end = 41usize.checked_add(len).ok_or(())?;
    if bytes.len() != payload_end + 32 {
        return Err(());
    }
    let payload = &bytes[41..payload_end];
    let digest = Sha256::digest(payload);
    if digest[..] != bytes[payload_end..] {
        return Err(());
    }
    decode_payload(payload).map_err(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> CacheStore {
        let dir = std::env::temp_dir().join(format!(
            "omc-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        CacheStore::open(dir).unwrap()
    }

    fn sample() -> CachedSchedule {
        CachedSchedule {
            ii: 3,
            objective: Some(7),
            times: vec![0, 2, 5, -1],
        }
    }

    #[test]
    fn store_then_load_round_trips() {
        let s = temp_store("roundtrip");
        let key = [7u8; 32];
        s.store(&key, &sample()).unwrap();
        assert_eq!(s.load(&key), Some(sample()));
        assert_eq!(s.stats().hits, 1);
        assert_eq!(s.stats().stores, 1);
    }

    #[test]
    fn absent_key_is_a_miss() {
        let s = temp_store("miss");
        assert_eq!(s.load(&[1u8; 32]), None);
        assert_eq!(s.stats().misses, 1);
        assert_eq!(s.stats().quarantined, 0);
    }

    #[test]
    fn unrenamed_temp_file_is_invisible() {
        // A crash between write and rename leaves only the temp file; the
        // key must read as a miss, not as a torn record.
        let s = temp_store("torn");
        let key = [9u8; 32];
        s.write_temp(&key, &sample()).unwrap();
        assert_eq!(s.load(&key), None);
        assert_eq!(s.stats().quarantined, 0, "nothing to quarantine");
    }

    #[test]
    fn bit_flip_quarantines_and_misses() {
        let s = temp_store("flip");
        let key = [3u8; 32];
        s.store(&key, &sample()).unwrap();
        let path = s.entry_path(&key);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(s.load(&key), None, "corrupt record must miss");
        assert_eq!(s.stats().quarantined, 1);
        assert!(!path.exists(), "corrupt record left in place");
        assert!(
            s.dir()
                .join("quarantine")
                .join(format!("{}.omc", hex(&key)))
                .exists(),
            "corrupt record not preserved"
        );
        // Re-store over the quarantined key works.
        s.store(&key, &sample()).unwrap();
        assert_eq!(s.load(&key), Some(sample()));
    }

    #[test]
    fn key_echo_mismatch_is_corruption() {
        let s = temp_store("echo");
        let a = [1u8; 32];
        let b = [2u8; 32];
        s.store(&a, &sample()).unwrap();
        // Simulate a misplaced record: copy a's bytes under b's name.
        fs::copy(s.entry_path(&a), s.entry_path(&b)).unwrap();
        assert_eq!(s.load(&b), None);
        assert_eq!(s.stats().quarantined, 1);
    }
}
