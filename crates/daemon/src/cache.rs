//! Crash-safe, *bounded* content-addressed store of certified schedules.
//!
//! Layout: one file per key, `<dir>/<hex key>.omc`, containing
//!
//! ```text
//! magic "OMC1" | version u8 | key (32 bytes) | payload_len u32 LE | payload | sha256(payload)
//! ```
//!
//! Durability protocol:
//!
//! * **Writes are atomic.** The record is written to a temp file *in the
//!   same directory* (rename across filesystems is not atomic), `fsync`ed,
//!   then `rename`d over the final name. A crash mid-write leaves a stale
//!   temp file, never a torn record under the real name.
//! * **Reads are paranoid.** Magic, version, key echo, and the SHA-256 of
//!   the payload are all verified; any mismatch quarantines the file (moved
//!   into `quarantine/`, preserved for postmortem) and reports a miss, so
//!   the scheduler re-solves instead of serving bad bytes.
//! * **Opens sweep.** Stale temp files from crashed writers are deleted at
//!   open — a crash between write and rename can no longer leak disk
//!   forever.
//!
//! Boundedness protocol (new in the crash-recovery PR):
//!
//! * **The store is capped.** [`CacheLimits`] bounds total record bytes
//!   and entry count; exceeding either evicts least-recently-used records
//!   (access order is tracked on the same path that maintains
//!   [`CacheStats`]). A long-lived daemon can no longer fill its disk.
//! * **Quarantine rotates.** The postmortem directory is itself capped;
//!   when it overflows, the *oldest* quarantined records are deleted first.
//!
//! The store holds *schedules*, not certificates: the daemon re-certifies
//! every cache hit against the freshly parsed request before serving it, so
//! even a record that passes the checksum cannot smuggle an uncertified
//! schedule to a client.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use optimod_trace::{Trace, TraceEvent};

use crate::hash::{hex, Sha256};
use crate::wire::{Dec, Enc, WireError};

const MAGIC: [u8; 4] = *b"OMC1";
const VERSION: u8 = 1;

/// The cached value: everything needed to reconstruct a `Scheduled` reply
/// (modulo per-request statistics, which are meaningless for a hit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedSchedule {
    /// Initiation interval.
    pub ii: u32,
    /// Exact secondary-objective value, if one was certified.
    pub objective: Option<i64>,
    /// Issue cycle per operation, in *canonical* op order (the sorted order
    /// of [`crate::hash::canonical_perm`]). Declaration order is not stable
    /// across the textual reorderings the key deliberately erases, so the
    /// server remaps on store and on load.
    pub times: Vec<i64>,
}

/// Size/entry caps for a [`CacheStore`]. A zero cap means "unbounded" for
/// that axis (the PR 7 behavior).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheLimits {
    /// Max total bytes of live `.omc` records; LRU-evicted past this.
    pub max_bytes: u64,
    /// Max number of live records; LRU-evicted past this.
    pub max_entries: u64,
    /// Max total bytes in `quarantine/`; oldest-first rotated past this.
    pub quarantine_max_bytes: u64,
}

/// Counters for observability and tests.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Successful loads.
    pub hits: u64,
    /// Absent keys.
    pub misses: u64,
    /// Records persisted.
    pub stores: u64,
    /// Corrupt records moved aside.
    pub quarantined: u64,
    /// Records deleted by LRU eviction.
    pub evicted: u64,
    /// Orphaned temp files deleted by the startup sweep.
    pub swept_tmp: u64,
    /// Quarantined records deleted by oldest-first rotation.
    pub quarantine_rotated: u64,
    /// Live record bytes right now.
    pub bytes: u64,
    /// Live records right now.
    pub entries: u64,
}

/// What [`CacheStore::fsck`] found in a cache directory.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheFsck {
    /// Records that decoded and checksummed clean.
    pub clean: u64,
    /// Total live record bytes.
    pub bytes: u64,
    /// Stale temp files present (crash artifacts; the next open sweeps
    /// them).
    pub stale_tmp: u64,
    /// Records preserved in `quarantine/`.
    pub quarantined: u64,
}

/// LRU bookkeeping for one live record.
#[derive(Debug)]
struct IndexEntry {
    bytes: u64,
    tick: u64,
}

#[derive(Debug, Default)]
struct Index {
    entries: HashMap<[u8; 32], IndexEntry>,
    total_bytes: u64,
    quarantine_bytes: u64,
    tick: u64,
}

impl Index {
    fn touch(&mut self, key: &[u8; 32]) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.entries.get_mut(key) {
            e.tick = tick;
        }
    }

    fn insert(&mut self, key: [u8; 32], bytes: u64) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(old) = self.entries.insert(key, IndexEntry { bytes, tick }) {
            self.total_bytes -= old.bytes;
        }
        self.total_bytes += bytes;
    }

    fn remove(&mut self, key: &[u8; 32]) -> Option<u64> {
        self.entries.remove(key).map(|e| {
            self.total_bytes -= e.bytes;
            e.bytes
        })
    }

    fn lru(&self) -> Option<[u8; 32]> {
        self.entries
            .iter()
            .min_by_key(|(_, e)| e.tick)
            .map(|(k, _)| *k)
    }
}

/// A content-addressed, crash-safe, bounded schedule store rooted at a
/// directory.
#[derive(Debug)]
pub struct CacheStore {
    dir: PathBuf,
    limits: CacheLimits,
    trace: Trace,
    index: Mutex<Index>,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    quarantined: AtomicU64,
    evicted: AtomicU64,
    swept_tmp: AtomicU64,
    quarantine_rotated: AtomicU64,
}

/// Decodes `<64 hex chars>.omc` back into the record's key.
fn key_from_file_name(name: &str) -> Option<[u8; 32]> {
    let stem = name.strip_suffix(".omc")?;
    if stem.len() != 64 {
        return None;
    }
    let mut key = [0u8; 32];
    for (i, chunk) in stem.as_bytes().chunks(2).enumerate() {
        let hi = (chunk[0] as char).to_digit(16)?;
        let lo = (chunk[1] as char).to_digit(16)?;
        key[i] = ((hi << 4) | lo) as u8;
    }
    Some(key)
}

fn is_stale_tmp(name: &str) -> bool {
    name.starts_with('.') && name.contains(".tmp.")
}

impl CacheStore {
    /// Opens (creating if needed) an *unbounded* store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<CacheStore> {
        CacheStore::open_bounded(dir, CacheLimits::default())
    }

    /// Opens (creating if needed) a store rooted at `dir` with size caps.
    /// The open sweeps stale temp files from crashed writes, rebuilds the
    /// LRU index from the records on disk (oldest-modified = least
    /// recent), and enforces both caps immediately.
    pub fn open_bounded(dir: impl Into<PathBuf>, limits: CacheLimits) -> io::Result<CacheStore> {
        let dir = dir.into();
        fs::create_dir_all(dir.join("quarantine"))?;
        let store = CacheStore {
            dir,
            limits,
            trace: Trace::disabled(),
            index: Mutex::new(Index::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            swept_tmp: AtomicU64::new(0),
            quarantine_rotated: AtomicU64::new(0),
        };
        store.sweep_and_rebuild()?;
        Ok(store)
    }

    /// Attaches a trace handle; eviction batches emit
    /// [`TraceEvent::CacheEvicted`] through it.
    pub fn with_trace(mut self, trace: Trace) -> CacheStore {
        self.trace = trace;
        self
    }

    /// Startup sweep: delete orphaned `.tmp` files (a crash between write
    /// and rename leaves exactly one), rebuild the LRU index from the
    /// records on disk in modification order, measure the quarantine, and
    /// bring both within their caps.
    fn sweep_and_rebuild(&self) -> io::Result<()> {
        let mut found: Vec<([u8; 32], u64, std::time::SystemTime)> = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if is_stale_tmp(name) {
                if fs::remove_file(entry.path()).is_ok() {
                    self.swept_tmp.fetch_add(1, Ordering::Relaxed);
                }
                continue;
            }
            let Some(key) = key_from_file_name(name) else {
                continue;
            };
            let meta = entry.metadata()?;
            let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
            found.push((key, meta.len(), mtime));
        }
        found.sort_by_key(|&(_, _, mtime)| mtime);
        {
            let mut index = self.index.lock().unwrap_or_else(|e| e.into_inner());
            for (key, bytes, _) in found {
                index.insert(key, bytes);
            }
            let mut qbytes = 0u64;
            for entry in fs::read_dir(self.dir.join("quarantine"))? {
                qbytes += entry?.metadata()?.len();
            }
            index.quarantine_bytes = qbytes;
        }
        self.enforce_caps();
        self.rotate_quarantine();
        Ok(())
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The store's caps.
    pub fn limits(&self) -> CacheLimits {
        self.limits
    }

    fn entry_path(&self, key: &[u8; 32]) -> PathBuf {
        self.dir.join(format!("{}.omc", hex(key)))
    }

    /// Loads the record for `key`. Any structural defect — bad magic,
    /// version skew, key mismatch, checksum failure, short file — moves the
    /// record into quarantine and returns `None`. A hit refreshes the
    /// key's LRU position.
    pub fn load(&self, key: &[u8; 32]) -> Option<CachedSchedule> {
        let path = self.entry_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode_record(&bytes, key) {
            Ok(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.index
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .touch(key);
                Some(v)
            }
            Err(_) => {
                self.quarantine(key);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Atomically persists the record for `key`: temp file in the same
    /// directory, fsync, rename — then evicts LRU records if the store
    /// went over its caps.
    pub fn store(&self, key: &[u8; 32], value: &CachedSchedule) -> io::Result<()> {
        let tmp = self.write_temp(key, value)?;
        let bytes = fs::metadata(&tmp).map(|m| m.len()).unwrap_or(0);
        fs::rename(&tmp, self.entry_path(key))?;
        self.stores.fetch_add(1, Ordering::Relaxed);
        self.index
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(*key, bytes);
        self.enforce_caps();
        Ok(())
    }

    /// Deletes least-recently-used records until the store is back within
    /// both caps.
    fn enforce_caps(&self) {
        let mut dropped_entries = 0u64;
        let mut dropped_bytes = 0u64;
        loop {
            let victim = {
                let mut index = self.index.lock().unwrap_or_else(|e| e.into_inner());
                let over_bytes =
                    self.limits.max_bytes > 0 && index.total_bytes > self.limits.max_bytes;
                let over_entries = self.limits.max_entries > 0
                    && index.entries.len() as u64 > self.limits.max_entries;
                if !over_bytes && !over_entries {
                    break;
                }
                let Some(key) = index.lru() else { break };
                let bytes = index.remove(&key).unwrap_or(0);
                (key, bytes)
            };
            let _ = fs::remove_file(self.entry_path(&victim.0));
            self.evicted.fetch_add(1, Ordering::Relaxed);
            dropped_entries += 1;
            dropped_bytes += victim.1;
        }
        if dropped_entries > 0 {
            self.trace.emit(|| TraceEvent::CacheEvicted {
                entries: dropped_entries,
                bytes: dropped_bytes,
            });
        }
    }

    /// First half of [`CacheStore::store`]: writes and fsyncs the temp file
    /// but does *not* rename it into place. Exposed so fault injection can
    /// simulate a crash between write and rename; the stale temp file must
    /// never be visible to [`CacheStore::load`] (and the next open sweeps
    /// it).
    pub fn write_temp(&self, key: &[u8; 32], value: &CachedSchedule) -> io::Result<PathBuf> {
        let record = encode_record(key, value);
        let tmp = self
            .dir
            .join(format!(".{}.tmp.{}", hex(key), std::process::id()));
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&record)?;
        f.sync_all()?;
        Ok(tmp)
    }

    /// Moves the record for `key` (if any) into `quarantine/`, preserving
    /// the bytes for postmortem. Used both for checksum failures and for
    /// records that pass the checksum but fail exact re-certification.
    /// Rotates the oldest quarantined records out if the quarantine cap is
    /// exceeded.
    pub fn quarantine(&self, key: &[u8; 32]) {
        let path = self.entry_path(key);
        let dest = self
            .dir
            .join("quarantine")
            .join(format!("{}.omc", hex(key)));
        let moved_bytes = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        if fs::rename(&path, &dest).is_ok() {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
            let mut index = self.index.lock().unwrap_or_else(|e| e.into_inner());
            index.remove(key);
            index.quarantine_bytes += moved_bytes;
        } else {
            // Rename can race another quarantiner; removing is still safe —
            // the key must stop resolving either way.
            let _ = fs::remove_file(&path);
            self.index
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(key);
        }
        self.rotate_quarantine();
    }

    /// Deletes the oldest quarantined records until the quarantine is back
    /// under its byte cap.
    fn rotate_quarantine(&self) {
        if self.limits.quarantine_max_bytes == 0 {
            return;
        }
        let over = {
            let index = self.index.lock().unwrap_or_else(|e| e.into_inner());
            index.quarantine_bytes > self.limits.quarantine_max_bytes
        };
        if !over {
            return;
        }
        let qdir = self.dir.join("quarantine");
        let Ok(read) = fs::read_dir(&qdir) else {
            return;
        };
        let mut files: Vec<(PathBuf, u64, std::time::SystemTime)> = read
            .flatten()
            .filter_map(|e| {
                let meta = e.metadata().ok()?;
                Some((
                    e.path(),
                    meta.len(),
                    meta.modified().unwrap_or(std::time::UNIX_EPOCH),
                ))
            })
            .collect();
        files.sort_by_key(|&(_, _, mtime)| mtime);
        let mut total: u64 = files.iter().map(|&(_, b, _)| b).sum();
        for (path, bytes, _) in files {
            if total <= self.limits.quarantine_max_bytes {
                break;
            }
            if fs::remove_file(&path).is_ok() {
                total -= bytes;
                self.quarantine_rotated.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.index
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .quarantine_bytes = total;
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        let (bytes, entries) = {
            let index = self.index.lock().unwrap_or_else(|e| e.into_inner());
            (index.total_bytes, index.entries.len() as u64)
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            swept_tmp: self.swept_tmp.load(Ordering::Relaxed),
            quarantine_rotated: self.quarantine_rotated.load(Ordering::Relaxed),
            bytes,
            entries,
        }
    }

    /// Offline structural check of a cache directory: every `.omc` record
    /// must decode clean against the key its file name claims. Stale temp
    /// files and quarantined records are counted, not errors (they are the
    /// expected artifacts of crashes and poison, respectively).
    pub fn fsck(dir: &Path) -> Result<CacheFsck, String> {
        let mut out = CacheFsck::default();
        let read = fs::read_dir(dir).map_err(|e| format!("cannot read cache dir: {e}"))?;
        for entry in read.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if is_stale_tmp(name) {
                out.stale_tmp += 1;
                continue;
            }
            let Some(key) = key_from_file_name(name) else {
                continue;
            };
            let bytes = fs::read(entry.path()).map_err(|e| format!("cannot read {name}: {e}"))?;
            decode_record(&bytes, &key).map_err(|()| format!("corrupt cache record {name}"))?;
            out.clean += 1;
            out.bytes += bytes.len() as u64;
        }
        if let Ok(read) = fs::read_dir(dir.join("quarantine")) {
            out.quarantined = read.flatten().count() as u64;
        }
        Ok(out)
    }
}

fn encode_payload(value: &CachedSchedule) -> Vec<u8> {
    let mut e = Enc::default();
    e.u32(value.ii);
    match value.objective {
        None => e.u8(0),
        Some(v) => {
            e.u8(1);
            e.i64(v);
        }
    }
    e.u32(value.times.len() as u32);
    for &t in &value.times {
        e.i64(t);
    }
    e.0
}

fn decode_payload(payload: &[u8]) -> Result<CachedSchedule, WireError> {
    let mut d = Dec(payload);
    let ii = d.u32()?;
    if ii == 0 {
        return Err(WireError::Malformed("zero II"));
    }
    let objective = match d.u8()? {
        0 => None,
        1 => Some(d.i64()?),
        v => {
            return Err(WireError::BadTag {
                what: "objective option",
                value: v as u64,
            })
        }
    };
    let n = d.u32()? as usize;
    if n > payload.len() {
        return Err(WireError::Malformed("times length"));
    }
    let mut times = Vec::with_capacity(n);
    for _ in 0..n {
        times.push(d.i64()?);
    }
    d.finish()?;
    Ok(CachedSchedule {
        ii,
        objective,
        times,
    })
}

fn encode_record(key: &[u8; 32], value: &CachedSchedule) -> Vec<u8> {
    let payload = encode_payload(value);
    let mut out = Vec::with_capacity(4 + 1 + 32 + 4 + payload.len() + 32);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.extend_from_slice(key);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&Sha256::digest(&payload));
    out
}

fn decode_record(bytes: &[u8], key: &[u8; 32]) -> Result<CachedSchedule, ()> {
    if bytes.len() < 4 + 1 + 32 + 4 + 32 || bytes[..4] != MAGIC || bytes[4] != VERSION {
        return Err(());
    }
    if &bytes[5..37] != key {
        return Err(());
    }
    let len = u32::from_le_bytes(bytes[37..41].try_into().unwrap()) as usize;
    let payload_end = 41usize.checked_add(len).ok_or(())?;
    if bytes.len() != payload_end + 32 {
        return Err(());
    }
    let payload = &bytes[41..payload_end];
    let digest = Sha256::digest(payload);
    if digest[..] != bytes[payload_end..] {
        return Err(());
    }
    decode_payload(payload).map_err(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "omc-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn temp_store(tag: &str) -> CacheStore {
        CacheStore::open(temp_dir(tag)).unwrap()
    }

    fn sample() -> CachedSchedule {
        CachedSchedule {
            ii: 3,
            objective: Some(7),
            times: vec![0, 2, 5, -1],
        }
    }

    fn keyed(i: u8) -> [u8; 32] {
        [i; 32]
    }

    #[test]
    fn store_then_load_round_trips() {
        let s = temp_store("roundtrip");
        let key = [7u8; 32];
        s.store(&key, &sample()).unwrap();
        assert_eq!(s.load(&key), Some(sample()));
        assert_eq!(s.stats().hits, 1);
        assert_eq!(s.stats().stores, 1);
        assert_eq!(s.stats().entries, 1);
        assert!(s.stats().bytes > 0);
    }

    #[test]
    fn absent_key_is_a_miss() {
        let s = temp_store("miss");
        assert_eq!(s.load(&[1u8; 32]), None);
        assert_eq!(s.stats().misses, 1);
        assert_eq!(s.stats().quarantined, 0);
    }

    #[test]
    fn unrenamed_temp_file_is_invisible_and_swept_on_open() {
        // A crash between write and rename leaves only the temp file; the
        // key must read as a miss, not as a torn record — and the *next*
        // open must delete the orphan instead of leaking it forever.
        let dir = temp_dir("torn");
        let key = [9u8; 32];
        {
            let s = CacheStore::open(&dir).unwrap();
            s.write_temp(&key, &sample()).unwrap();
            assert_eq!(s.load(&key), None);
            assert_eq!(s.stats().quarantined, 0, "nothing to quarantine");
        }
        let s = CacheStore::open(&dir).unwrap();
        assert_eq!(s.stats().swept_tmp, 1, "orphaned temp file swept");
        let leftovers = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .count();
        assert_eq!(leftovers, 0);
    }

    #[test]
    fn bit_flip_quarantines_and_misses() {
        let s = temp_store("flip");
        let key = [3u8; 32];
        s.store(&key, &sample()).unwrap();
        let path = s.entry_path(&key);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(s.load(&key), None, "corrupt record must miss");
        assert_eq!(s.stats().quarantined, 1);
        assert!(!path.exists(), "corrupt record left in place");
        assert!(
            s.dir()
                .join("quarantine")
                .join(format!("{}.omc", hex(&key)))
                .exists(),
            "corrupt record not preserved"
        );
        // Re-store over the quarantined key works.
        s.store(&key, &sample()).unwrap();
        assert_eq!(s.load(&key), Some(sample()));
    }

    #[test]
    fn key_echo_mismatch_is_corruption() {
        let s = temp_store("echo");
        let a = [1u8; 32];
        let b = [2u8; 32];
        s.store(&a, &sample()).unwrap();
        // Simulate a misplaced record: copy a's bytes under b's name.
        fs::copy(s.entry_path(&a), s.entry_path(&b)).unwrap();
        assert_eq!(s.load(&b), None);
        assert_eq!(s.stats().quarantined, 1);
    }

    #[test]
    fn entry_cap_evicts_least_recently_used() {
        let dir = temp_dir("lru");
        let s = CacheStore::open_bounded(
            &dir,
            CacheLimits {
                max_entries: 2,
                ..CacheLimits::default()
            },
        )
        .unwrap();
        s.store(&keyed(1), &sample()).unwrap();
        s.store(&keyed(2), &sample()).unwrap();
        // Touch key 1 so key 2 is the LRU victim.
        assert!(s.load(&keyed(1)).is_some());
        s.store(&keyed(3), &sample()).unwrap();
        assert_eq!(s.stats().evicted, 1);
        assert_eq!(s.stats().entries, 2);
        assert!(s.load(&keyed(1)).is_some(), "recently used survives");
        assert!(s.load(&keyed(3)).is_some(), "newest survives");
        assert!(s.load(&keyed(2)).is_none(), "LRU victim evicted");
    }

    #[test]
    fn byte_cap_is_enforced_through_overflow() {
        let dir = temp_dir("bytes");
        let one_record = encode_record(&keyed(0), &sample()).len() as u64;
        let cap = one_record * 3;
        let s = CacheStore::open_bounded(
            &dir,
            CacheLimits {
                max_bytes: cap,
                ..CacheLimits::default()
            },
        )
        .unwrap();
        // 10x overflow: thirty records against a three-record cap.
        for i in 0..30u8 {
            s.store(&keyed(i), &sample()).unwrap();
            assert!(
                s.stats().bytes <= cap,
                "cache exceeded its byte cap mid-workload"
            );
        }
        assert_eq!(s.stats().entries, 3);
        assert_eq!(s.stats().evicted, 27);
        // Reopen rebuilds the index at the same size.
        drop(s);
        let s = CacheStore::open_bounded(
            &dir,
            CacheLimits {
                max_bytes: cap,
                ..CacheLimits::default()
            },
        )
        .unwrap();
        assert_eq!(s.stats().entries, 3);
    }

    #[test]
    fn quarantine_rotates_oldest_first() {
        let dir = temp_dir("qrot");
        let one_record = encode_record(&keyed(0), &sample()).len() as u64;
        let s = CacheStore::open_bounded(
            &dir,
            CacheLimits {
                quarantine_max_bytes: one_record * 2,
                ..CacheLimits::default()
            },
        )
        .unwrap();
        for i in 0..5u8 {
            s.store(&keyed(i), &sample()).unwrap();
            // Corrupt it so the next load quarantines it.
            let path = s.entry_path(&keyed(i));
            let mut bytes = fs::read(&path).unwrap();
            let last = bytes.len() - 1;
            bytes[last] ^= 0xff;
            fs::write(&path, &bytes).unwrap();
            assert_eq!(s.load(&keyed(i)), None);
            // Quarantine mtimes must be distinguishable for oldest-first.
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(s.stats().quarantined, 5);
        assert!(s.stats().quarantine_rotated >= 3, "rotation engaged");
        let qcount = fs::read_dir(dir.join("quarantine")).unwrap().count();
        assert!(qcount <= 2, "quarantine stayed within its cap");
    }

    #[test]
    fn fsck_accepts_clean_and_rejects_corrupt() {
        let dir = temp_dir("fsck");
        let s = CacheStore::open(&dir).unwrap();
        s.store(&keyed(1), &sample()).unwrap();
        s.store(&keyed(2), &sample()).unwrap();
        let ok = CacheStore::fsck(&dir).unwrap();
        assert_eq!(ok.clean, 2);
        let path = s.entry_path(&keyed(2));
        let mut bytes = fs::read(&path).unwrap();
        bytes[10] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(CacheStore::fsck(&dir).is_err());
    }
}
