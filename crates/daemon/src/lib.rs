//! `optimodd`: the optimal modulo scheduler as a fault-tolerant service.
//!
//! The daemon wraps [`optimod`]'s scheduler behind a Unix-socket wire
//! protocol and adds the operational layer a long-lived service needs:
//!
//! * [`wire`] — hand-rolled length-prefixed frames with checksums; every
//!   decode failure is a typed [`wire::WireError`], never a panic.
//! * [`server`] — admission control with a bounded queue and explicit
//!   load shedding, per-request deadlines propagated into the solver,
//!   idempotent request ids, worker-panic containment, and graceful drain.
//! * [`cache`] — a crash-safe, *bounded* content-addressed store of
//!   certified schedules (atomic writes, checksummed records, LRU
//!   eviction under byte/entry caps, corrupt-entry quarantine with
//!   oldest-first rotation, startup sweep of crash-orphaned temp files).
//! * [`journal`] — a write-ahead intent journal: every admitted request
//!   is durably recorded *before* solving and marked done when its reply
//!   is recorded, so a crash loses no admitted work — the restarted
//!   daemon replays unfinished intents and serves their results to
//!   idempotent retries.
//! * [`hash`] — SHA-256 content addressing over a *canonicalized*
//!   `(loop, machine, config)` triple, so textual reorderings of the same
//!   problem share a cache entry.
//! * [`client`] — retries with capped exponential backoff and jitter,
//!   riding the idempotency registry so a retry never double-solves.
//!
//! The correctness invariant threaded through all of it: **no schedule is
//! ever served from the cache without first passing the exact-arithmetic
//! certifier against the freshly parsed request.** A cache record can be
//! torn, bit-flipped, or maliciously self-consistent; the worst it can do
//! is cost one quarantine and a re-solve.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod hash;
pub mod journal;
pub mod server;
pub mod wire;

pub use cache::{CacheFsck, CacheLimits, CacheStats, CacheStore, CachedSchedule};
pub use client::{solve, ClientConfig, ClientError};
pub use journal::{Journal, JournalEntry, JournalFsck, JournalStats};
pub use server::{CrashPoint, Daemon, DaemonConfig, DaemonHandle};
pub use wire::{DaemonStatus, ErrorCode, ErrorReply, Reply, Request, Scheduled, WireError};
