//! The `optimodd` daemon: accept loop, admission control, worker pool,
//! write-ahead intent journal, brownout degradation, and the
//! certified-schedule cache.
//!
//! Robustness contract (enforced by the `chaos_daemon` and
//! `chaos_recovery` sweeps):
//!
//! * Every request gets exactly one reply: a schedule or a typed
//!   [`ErrorReply`] with an honest `retryable` flag. Load shedding is an
//!   explicit [`ErrorCode::Overloaded`] reply, never a silent drop.
//! * Per-request deadlines are honored mid-solve: the remaining budget
//!   becomes the solver's `time_limit` and the daemon's root [`StopFlag`]
//!   can cut every in-flight solve off during drain.
//! * Idempotent request ids never double-solve: concurrent duplicates wait
//!   on the in-flight solve; completed terminal replies are replayed.
//!   Retryable failures are deliberately *not* replayed — a retry must
//!   re-execute, not re-fetch the failure.
//! * Cache hits are re-certified against the freshly parsed request before
//!   being served; a record that decodes but does not certify is
//!   quarantined and the request falls through to a fresh solve.
//! * Worker panics (including injected ones) become
//!   [`ErrorCode::Internal`] replies; no panic crosses a thread boundary
//!   uncaught.
//! * **No admitted request is lost to a crash.** With a journal
//!   configured, every admitted request is durably appended *before*
//!   solving and marked done only after its reply is recorded; a
//!   restarted daemon replays every unfinished intent through the normal
//!   worker path, so its result lands in the cache and the idempotency
//!   registry, where a client retry of the same `request_id` picks it up.
//! * **Overload degrades before it sheds.** When admitted work waits
//!   longer than the brownout pressure threshold (or the queue runs near
//!   its depth), new solves are routed through the fallback ladder —
//!   stage-ILP, then IMS — with an honest degraded [`Provenance`] instead
//!   of being shed with `Overloaded`. The daemon returns to exact solves
//!   after a sustained calm window.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use optimod::{
    FallbackConfig, LoopStatus, OptimalScheduler, Provenance, Schedule, SchedulerConfig,
};
use optimod_ddg::textfmt;
use optimod_ilp::{FaultAction, FaultPlan, FaultSite, StopFlag};
use optimod_trace::{Trace, TraceEvent};
use optimod_verify::{certify, Claim};

use crate::cache::{CacheLimits, CacheStats, CacheStore, CachedSchedule};
use crate::hash::{canonical_key, canonical_perm, KeyConfig};
use crate::journal::{Journal, JournalStats};
use crate::wire::{
    dep_style_tag, objective_tag, read_frame, DaemonStatus, ErrorCode, ErrorReply, FrameKind,
    Reply, Request, Scheduled, WireError,
};

/// How many terminal replies the idempotency registry remembers.
const DONE_CAP: usize = 1024;

/// Per-connection socket read timeout; bounds how long an idle connection
/// can delay a drain.
const CONN_READ_TIMEOUT: Duration = Duration::from_secs(1);

/// Explicit crash points for chaos testing. When [`DaemonConfig::crash_at`]
/// arms one, the daemon calls `std::process::abort()` — no unwinding, no
/// destructors, as close to an external `SIGKILL` as a process can do to
/// itself — the Nth time execution reaches the site. The `chaos_recovery`
/// sweep uses these to park crashes on the exact durability edges that
/// timing-based kills only hit by luck.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Right after the intent record is durably appended, before the job is
    /// enqueued — the request is journaled but never solved. Recovery must
    /// replay it.
    AfterJournalAppend,
    /// After the solve completes, before the done-mark and the reply — the
    /// work is done but not recorded. Recovery must re-solve and answer the
    /// retry.
    BeforeDone,
    /// Mid cache write: after the temp file lands, before the rename — the
    /// cache must stay invisible-or-whole and the next open must sweep the
    /// orphan.
    MidCacheWrite,
}

impl std::str::FromStr for CrashPoint {
    type Err = String;

    fn from_str(s: &str) -> Result<CrashPoint, String> {
        Ok(match s {
            "journal-append" => CrashPoint::AfterJournalAppend,
            "before-done" => CrashPoint::BeforeDone,
            "cache-write" => CrashPoint::MidCacheWrite,
            other => {
                return Err(format!(
                    "unknown crash point '{other}' (expected journal-append, before-done, \
                     or cache-write)"
                ))
            }
        })
    }
}

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Unix socket to listen on (must not already exist).
    pub socket_path: PathBuf,
    /// Certified-schedule cache root; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Solver worker threads.
    pub workers: usize,
    /// Admission-control queue depth; requests beyond it are shed with an
    /// explicit `Overloaded` reply.
    pub queue_depth: usize,
    /// Deadline applied when a request carries none.
    pub default_deadline: Duration,
    /// How long a graceful shutdown lets in-flight solves finish before
    /// stopping them via the root [`StopFlag`].
    pub drain_timeout: Duration,
    /// Solver threads per job when the request does not specify.
    pub solver_threads: u32,
    /// Fault-injection plan (daemon and solver sites); defaults to inert.
    pub fault: FaultPlan,
    /// Write-ahead intent journal; `None` disables crash recovery.
    pub journal_path: Option<PathBuf>,
    /// Byte/entry caps for the schedule cache (zero caps = unbounded).
    pub cache_limits: CacheLimits,
    /// Brownout pressure threshold: when a dequeued job waited longer than
    /// this (or the queue runs at three quarters of its depth), new solves
    /// are routed through the degraded fallback ladder. `None` disables
    /// brownout.
    pub brownout_pressure: Option<Duration>,
    /// Sustained calm (every dequeued job under the pressure threshold)
    /// required before a brownout lifts.
    pub brownout_recover: Duration,
    /// Trace sink for operational events (journal recovery, cache
    /// eviction, brownout transitions).
    pub trace: Trace,
    /// Armed crash point for chaos testing: abort on the Nth (1-based) hit
    /// of the site. `None` in production.
    pub crash_at: Option<(CrashPoint, u64)>,
}

impl DaemonConfig {
    /// Defaults for a daemon at `socket_path`.
    pub fn new(socket_path: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            socket_path: socket_path.into(),
            cache_dir: None,
            workers: 2,
            queue_depth: 64,
            default_deadline: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(5),
            solver_threads: 1,
            fault: FaultPlan::default(),
            journal_path: None,
            cache_limits: CacheLimits::default(),
            brownout_pressure: None,
            brownout_recover: Duration::from_millis(500),
            trace: Trace::disabled(),
            crash_at: None,
        }
    }
}

struct Job {
    request: Request,
    enqueued: Instant,
    deadline: Duration,
    responder: mpsc::Sender<Reply>,
    /// Intent sequence in the write-ahead journal, when one is configured;
    /// marked done once the reply is recorded.
    journal_seq: Option<u64>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    open: bool,
    in_flight: usize,
}

struct Waiter {
    slot: Mutex<Option<Reply>>,
    cv: Condvar,
}

enum ReqState {
    InFlight(Arc<Waiter>),
    Done(Reply),
}

#[derive(Default)]
struct Registry {
    map: HashMap<u64, ReqState>,
    done_order: VecDeque<u64>,
}

#[derive(Default)]
struct ConnTracker {
    count: Mutex<usize>,
    cv: Condvar,
}

struct Shared {
    cfg: DaemonConfig,
    cache: Option<CacheStore>,
    journal: Option<Journal>,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    registry: Mutex<Registry>,
    root_stop: StopFlag,
    shutdown: AtomicBool,
    shutdown_mx: Mutex<bool>,
    shutdown_cv: Condvar,
    conns: ConnTracker,
    /// Whether overload degradation is currently engaged.
    brownout: AtomicBool,
    /// Under brownout: when the queue last turned calm (dequeued jobs back
    /// under the pressure threshold). Sustained calm lifts the brownout.
    calm_since: Mutex<Option<Instant>>,
    /// Requests shed with `Overloaded`.
    sheds: AtomicU64,
    /// Degraded schedules served because a brownout was active.
    brownout_served: AtomicU64,
    /// Unfinished intents replayed from the journal at startup.
    recovered_intents: AtomicU64,
    /// Hits on the armed [`CrashPoint`], if any.
    crash_hits: AtomicU64,
}

/// Aborts the process — no unwinding, no destructors — if `point` is the
/// armed crash site and this is its Nth hit.
fn maybe_crash(shared: &Shared, point: CrashPoint) {
    if let Some((armed, n)) = shared.cfg.crash_at {
        if armed == point && shared.crash_hits.fetch_add(1, Ordering::SeqCst) + 1 == n {
            std::process::abort();
        }
    }
}

/// Constructor namespace for the daemon.
pub struct Daemon;

/// A running daemon; dropping it (or calling [`DaemonHandle::shutdown`])
/// drains and stops it.
pub struct DaemonHandle {
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Daemon {
    /// Binds the socket, spawns the worker pool and accept loop, and
    /// returns a handle.
    pub fn start(cfg: DaemonConfig) -> io::Result<DaemonHandle> {
        let cache = match &cfg.cache_dir {
            Some(dir) => {
                Some(CacheStore::open_bounded(dir, cfg.cache_limits)?.with_trace(cfg.trace.clone()))
            }
            None => None,
        };
        let (journal, recovered) = match &cfg.journal_path {
            Some(path) => {
                let (j, pending) = Journal::open(path)?;
                (Some(j), pending)
            }
            None => (None, Vec::new()),
        };
        let listener = UnixListener::bind(&cfg.socket_path)?;
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            cache,
            journal,
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                open: true,
                in_flight: 0,
            }),
            queue_cv: Condvar::new(),
            registry: Mutex::new(Registry::default()),
            root_stop: StopFlag::new(),
            shutdown: AtomicBool::new(false),
            shutdown_mx: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            conns: ConnTracker::default(),
            brownout: AtomicBool::new(false),
            calm_since: Mutex::new(None),
            sheds: AtomicU64::new(0),
            brownout_served: AtomicU64::new(0),
            recovered_intents: AtomicU64::new(0),
            crash_hits: AtomicU64::new(0),
            cfg,
        });
        replay_recovered_intents(&shared, recovered);
        let worker_handles = (0..workers)
            .map(|i| {
                let s = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("optimodd-worker-{i}"))
                    .spawn(move || worker_loop(&s))
                    .expect("spawn worker")
            })
            .collect();
        let accept = {
            let s = Arc::clone(&shared);
            thread::Builder::new()
                .name("optimodd-accept".to_string())
                .spawn(move || accept_loop(&s, listener))
                .expect("spawn accept loop")
        };
        Ok(DaemonHandle {
            shared,
            accept_thread: Some(accept),
            workers: worker_handles,
        })
    }
}

/// Pushes every unfinished journal intent back into the work queue, as if
/// the original clients were still waiting: each gets an [`ReqState::InFlight`]
/// registry entry (so a retry of the same `request_id` piggybacks on the
/// replayed solve or replays its terminal reply) and runs through the
/// normal worker path, journaling included — the intent's existing
/// sequence number is marked done when its reply is recorded.
fn replay_recovered_intents(shared: &Arc<Shared>, recovered: Vec<crate::journal::JournalEntry>) {
    if recovered.is_empty() {
        return;
    }
    let mut seen_ids = std::collections::HashSet::new();
    let mut replayed = 0u64;
    for entry in recovered {
        let request = entry.request;
        // Two crashes in a row can journal the same logical request twice
        // (the retry re-admits); replay each id once.
        if request.request_id != 0 && !seen_ids.insert(request.request_id) {
            if let Some(j) = &shared.journal {
                let _ = j.mark_done(entry.seq);
            }
            continue;
        }
        if request.request_id != 0 {
            let mut reg = shared.registry.lock().unwrap_or_else(|e| e.into_inner());
            reg.map.entry(request.request_id).or_insert_with(|| {
                ReqState::InFlight(Arc::new(Waiter {
                    slot: Mutex::new(None),
                    cv: Condvar::new(),
                }))
            });
        }
        let deadline = if request.deadline_ms == 0 {
            shared.cfg.default_deadline
        } else {
            Duration::from_millis(request.deadline_ms)
        };
        // The original responder is gone with the crashed process; the
        // reply lands in the registry and the cache, where a client retry
        // finds it. The dead channel makes `send` a no-op.
        let (tx, _rx) = mpsc::channel();
        let job = Job {
            request,
            enqueued: Instant::now(),
            deadline,
            responder: tx,
            journal_seq: Some(entry.seq),
        };
        // Recovered intents were already admitted once; they bypass the
        // admission depth check.
        let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.jobs.push_back(job);
        drop(q);
        replayed += 1;
    }
    shared
        .recovered_intents
        .fetch_add(replayed, Ordering::SeqCst);
    shared.queue_cv.notify_all();
    shared.cfg.trace.emit(|| TraceEvent::JournalRecovered {
        intents: replayed,
        completed: 0,
    });
}

/// Point-in-time operational snapshot, served over the wire as a
/// [`FrameKind::Stats`] reply and locally via [`DaemonHandle::status`].
fn snapshot_status(shared: &Shared) -> DaemonStatus {
    let (queue_len, in_flight) = {
        let q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        (q.jobs.len() as u64, q.in_flight as u64)
    };
    DaemonStatus {
        brownout: shared.brownout.load(Ordering::SeqCst),
        queue_len,
        in_flight,
        sheds: shared.sheds.load(Ordering::SeqCst),
        brownout_served: shared.brownout_served.load(Ordering::SeqCst),
        recovered_intents: shared.recovered_intents.load(Ordering::SeqCst),
        journal_pending: shared.journal.as_ref().map_or(0, |j| j.pending() as u64),
        cache: shared.cache.as_ref().map(|c| c.stats()),
    }
}

impl DaemonHandle {
    /// The socket the daemon listens on.
    pub fn socket_path(&self) -> &Path {
        &self.shared.cfg.socket_path
    }

    /// Point-in-time operational snapshot (brownout state, queue, shed and
    /// recovery counters, cache stats).
    pub fn status(&self) -> DaemonStatus {
        snapshot_status(&self.shared)
    }

    /// Journal counters, when a journal is configured.
    pub fn journal_stats(&self) -> Option<JournalStats> {
        self.shared.journal.as_ref().map(|j| j.stats())
    }

    /// Cache counters, when a cache is configured.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.shared.cache.as_ref().map(|c| c.stats())
    }

    /// How many injected faults have fired so far.
    pub fn faults_fired(&self) -> u64 {
        self.shared.cfg.fault.fired_count()
    }

    /// Whether a shutdown has been requested (via wire or locally).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until a shutdown is requested (e.g. by a wire `Shutdown`
    /// frame). Used by the `optimodd` binary's main thread.
    pub fn wait_shutdown_requested(&self) {
        let mut requested = self
            .shared
            .shutdown_mx
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        while !*requested {
            requested = self
                .shared
                .shutdown_cv
                .wait(requested)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Graceful shutdown: stop admitting, shed the queue with
    /// `ShuttingDown` replies, let in-flight solves finish within the drain
    /// timeout, then stop them cooperatively and join every thread.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.shutdown_in_place();
        Ok(())
    }

    fn shutdown_in_place(&mut self) {
        initiate_shutdown(&self.shared);

        // Give in-flight solves the drain budget, then cut them off.
        let deadline = Instant::now() + self.shared.cfg.drain_timeout;
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            while q.in_flight > 0 {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _) = self
                    .shared
                    .queue_cv
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }
        self.shared.root_stop.stop();
        self.shared.queue_cv.notify_all();

        // Unblock the accept loop with a throwaway connection.
        let _ = UnixStream::connect(&self.shared.cfg.socket_path);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }

        // Connection handlers exit on their own (read timeouts, replies
        // already delivered); bound the wait so shutdown terminates.
        let conn_deadline = Instant::now() + CONN_READ_TIMEOUT + Duration::from_secs(2);
        let mut count = self
            .shared
            .conns
            .count
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        while *count > 0 {
            let now = Instant::now();
            if now >= conn_deadline {
                break;
            }
            let (guard, _) = self
                .shared
                .conns
                .cv
                .wait_timeout(count, conn_deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            count = guard;
        }
        drop(count);

        let _ = std::fs::remove_file(&self.shared.cfg.socket_path);
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown_in_place();
        }
    }
}

/// Flips the daemon into shutdown mode: closes admission and sheds every
/// queued (not yet started) job with a `ShuttingDown` reply.
fn initiate_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    let shed: Vec<Job> = {
        let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.open = false;
        q.jobs.drain(..).collect()
    };
    shared.queue_cv.notify_all();
    for job in shed {
        let reply = Reply::Error(ErrorReply {
            request_id: job.request.request_id,
            code: ErrorCode::ShuttingDown,
            retryable: true,
            message: "daemon is draining; request was shed before starting".to_string(),
        });
        finish_request(shared, job.request.request_id, &reply);
        // The shed is this request's reply; its intent is complete (the
        // client was told to retry, and a retry re-journals).
        if let (Some(j), Some(seq)) = (&shared.journal, job.journal_seq) {
            let _ = j.mark_done(seq);
        }
        let _ = job.responder.send(reply);
    }
    let mut requested = shared.shutdown_mx.lock().unwrap_or_else(|e| e.into_inner());
    *requested = true;
    shared.shutdown_cv.notify_all();
}

fn accept_loop(shared: &Arc<Shared>, listener: UnixListener) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        {
            let mut c = shared.conns.count.lock().unwrap_or_else(|e| e.into_inner());
            *c += 1;
        }
        let s = Arc::clone(shared);
        let spawned = thread::Builder::new()
            .name("optimodd-conn".to_string())
            .spawn(move || {
                // An injected WireFrame panic must kill at most this
                // connection, never the daemon.
                let _ = catch_unwind(AssertUnwindSafe(|| handle_connection(&s, stream)));
                let mut c = s.conns.count.lock().unwrap_or_else(|e| e.into_inner());
                *c -= 1;
                s.conns.cv.notify_all();
            });
        if spawned.is_err() {
            let mut c = shared.conns.count.lock().unwrap_or_else(|e| e.into_inner());
            *c -= 1;
            shared.conns.cv.notify_all();
        }
    }
}

fn handle_connection(shared: &Arc<Shared>, mut stream: UnixStream) {
    let _ = stream.set_read_timeout(Some(CONN_READ_TIMEOUT));
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some(f)) => f,
            Ok(None) => return,
            Err(WireError::Io(e))
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Idle poll tick: drop the connection if draining,
                // otherwise keep listening.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        match frame {
            (FrameKind::Ping, payload) => {
                // The pong echoes the payload plus one trailing status
                // byte: 1 when a brownout is active, 0 otherwise.
                let mut pong = payload;
                pong.push(shared.brownout.load(Ordering::SeqCst) as u8);
                if write_reply_frame(shared, &mut stream, FrameKind::Pong, &pong).is_err() {
                    return;
                }
            }
            (FrameKind::Stats, _) => {
                let status = snapshot_status(shared).encode();
                if write_reply_frame(shared, &mut stream, FrameKind::Stats, &status).is_err() {
                    return;
                }
            }
            (FrameKind::Shutdown, _) => {
                initiate_shutdown(shared);
                let _ = write_reply_frame(shared, &mut stream, FrameKind::Pong, b"");
                return;
            }
            (FrameKind::Request, payload) => {
                let reply = match Request::decode(&payload) {
                    Ok(req) => dispatch_request(shared, req),
                    Err(e) => Reply::Error(ErrorReply {
                        request_id: 0,
                        code: ErrorCode::Parse,
                        retryable: false,
                        message: format!("request decode: {e}"),
                    }),
                };
                if write_reply_frame(shared, &mut stream, FrameKind::Reply, &reply.encode())
                    .is_err()
                {
                    return;
                }
            }
            (FrameKind::Reply, _) | (FrameKind::Pong, _) => return, // nonsensical from a client
        }
    }
}

/// Writes a frame, letting the `WireFrame` fault site tear, drop, or
/// corrupt it (the client's checksum/framing layer must catch all three).
fn write_reply_frame(
    shared: &Shared,
    stream: &mut UnixStream,
    kind: FrameKind,
    payload: &[u8],
) -> io::Result<()> {
    use std::io::Write;
    let frame = crate::wire::encode_frame(kind, payload);
    match shared.cfg.fault.fire(FaultSite::WireFrame) {
        None => {
            stream.write_all(&frame)?;
            stream.flush()
        }
        Some(FaultAction::Stall) => {
            // Torn frame: half the bytes, then a hard close.
            let half = frame.len() / 2;
            stream.write_all(&frame[..half])?;
            stream.flush()?;
            let _ = stream.shutdown(std::net::Shutdown::Both);
            Err(io::Error::other("injected torn frame"))
        }
        Some(FaultAction::SpuriousTimeout) => {
            // Dropped reply: close without writing anything.
            let _ = stream.shutdown(std::net::Shutdown::Both);
            Err(io::Error::other("injected dropped reply"))
        }
        Some(FaultAction::PerturbIncumbent) => {
            // Flip a payload byte *after* the checksum was computed so the
            // client sees a checksum mismatch, not silent corruption.
            let mut corrupt = frame;
            if payload.len() > 1 {
                let at = 9 + payload.len() / 2;
                corrupt[at] ^= 0x20;
            }
            stream.write_all(&corrupt)?;
            stream.flush()
        }
        // `FaultAction::Panic` is raised inside `fire` and caught by the
        // connection thread's `catch_unwind`.
        Some(FaultAction::Panic) => unreachable!("fire raises Panic"),
    }
}

/// Admission control + idempotency, then hands the job to the worker pool
/// and waits for its reply.
fn dispatch_request(shared: &Arc<Shared>, request: Request) -> Reply {
    let request_id = request.request_id;

    // Idempotency: replay terminal replies, piggyback on in-flight solves.
    if request_id != 0 {
        let waiter = {
            let mut reg = shared.registry.lock().unwrap_or_else(|e| e.into_inner());
            match reg.map.get(&request_id) {
                Some(ReqState::Done(reply)) => return reply.clone(),
                Some(ReqState::InFlight(w)) => Some(Arc::clone(w)),
                None => {
                    reg.map.insert(
                        request_id,
                        ReqState::InFlight(Arc::new(Waiter {
                            slot: Mutex::new(None),
                            cv: Condvar::new(),
                        })),
                    );
                    None
                }
            }
        };
        if let Some(w) = waiter {
            return wait_for_duplicate(shared, &w, &request);
        }
    }

    let deadline = if request.deadline_ms == 0 {
        shared.cfg.default_deadline
    } else {
        Duration::from_millis(request.deadline_ms)
    };

    // Admission.
    let (tx, rx) = mpsc::channel();
    {
        let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if !q.open {
            let reply = Reply::Error(ErrorReply {
                request_id,
                code: ErrorCode::ShuttingDown,
                retryable: true,
                message: "daemon is draining".to_string(),
            });
            drop(q);
            finish_request(shared, request_id, &reply);
            return reply;
        }
        if q.jobs.len() >= shared.cfg.queue_depth {
            let reply = Reply::Error(ErrorReply {
                request_id,
                code: ErrorCode::Overloaded,
                retryable: true,
                message: format!("admission queue full (depth {})", shared.cfg.queue_depth),
            });
            drop(q);
            shared.sheds.fetch_add(1, Ordering::SeqCst);
            finish_request(shared, request_id, &reply);
            return reply;
        }
        // Early brownout: a queue running at three quarters of its depth
        // is headed for sheds; start degrading before the first one.
        if shared.cfg.brownout_pressure.is_some()
            && q.jobs.len() * 4 >= shared.cfg.queue_depth * 3
            && !shared.brownout.swap(true, Ordering::SeqCst)
        {
            let wait_us = q
                .jobs
                .front()
                .map_or(0, |j| j.enqueued.elapsed().as_micros() as u64);
            shared.cfg.trace.emit(|| TraceEvent::Brownout {
                on: true,
                queue_wait_us: wait_us,
            });
        }
        // Write-ahead: the intent must be durable before the job exists.
        // (The fsync serializes admissions; at daemon request rates that is
        // noise next to a solve.) A journal write failure is an honest
        // retryable Internal error, not a silent loss of the durability
        // contract.
        let journal_seq = match &shared.journal {
            Some(j) => match j.append_intent(&request) {
                Ok(seq) => {
                    maybe_crash(shared, CrashPoint::AfterJournalAppend);
                    Some(seq)
                }
                Err(e) => {
                    let reply = Reply::Error(ErrorReply {
                        request_id,
                        code: ErrorCode::Internal,
                        retryable: true,
                        message: format!("intent journal append failed: {e}"),
                    });
                    drop(q);
                    finish_request(shared, request_id, &reply);
                    return reply;
                }
            },
            None => None,
        };
        q.jobs.push_back(Job {
            request,
            enqueued: Instant::now(),
            deadline,
            responder: tx,
            journal_seq,
        });
    }
    shared.queue_cv.notify_one();

    // The worker always sends exactly one reply (worker panics included);
    // the generous timeout is a belt-and-braces bound, not the contract.
    let wait = deadline + shared.cfg.drain_timeout + Duration::from_secs(30);
    match rx.recv_timeout(wait) {
        Ok(reply) => reply,
        Err(_) => Reply::Error(ErrorReply {
            request_id,
            code: ErrorCode::Internal,
            retryable: true,
            message: "worker reply channel stalled".to_string(),
        }),
    }
}

/// A duplicate of an in-flight request waits for the original's reply.
fn wait_for_duplicate(shared: &Shared, waiter: &Waiter, request: &Request) -> Reply {
    let deadline = if request.deadline_ms == 0 {
        shared.cfg.default_deadline
    } else {
        Duration::from_millis(request.deadline_ms)
    };
    let bound = Instant::now() + deadline + shared.cfg.drain_timeout + Duration::from_secs(30);
    let mut slot = waiter.slot.lock().unwrap_or_else(|e| e.into_inner());
    while slot.is_none() {
        let now = Instant::now();
        if now >= bound {
            return Reply::Error(ErrorReply {
                request_id: request.request_id,
                code: ErrorCode::Internal,
                retryable: true,
                message: "in-flight duplicate wait stalled".to_string(),
            });
        }
        let (guard, _) = waiter
            .cv
            .wait_timeout(slot, bound - now)
            .unwrap_or_else(|e| e.into_inner());
        slot = guard;
    }
    slot.clone().expect("loop exits only when filled")
}

/// Records the outcome of `request_id` and wakes duplicate waiters.
///
/// Terminal replies (schedules, non-retryable errors) are remembered so a
/// retry replays them without re-solving; retryable failures clear the
/// entry so a retry re-executes.
fn finish_request(shared: &Shared, request_id: u64, reply: &Reply) {
    if request_id == 0 {
        return;
    }
    let terminal = match reply {
        Reply::Scheduled(_) => true,
        Reply::Error(e) => !e.retryable,
    };
    let mut reg = shared.registry.lock().unwrap_or_else(|e| e.into_inner());
    let prior = if terminal {
        reg.done_order.push_back(request_id);
        if reg.done_order.len() > DONE_CAP {
            if let Some(old) = reg.done_order.pop_front() {
                reg.map.remove(&old);
            }
        }
        reg.map.insert(request_id, ReqState::Done(reply.clone()))
    } else {
        reg.map.remove(&request_id)
    };
    drop(reg);
    if let Some(ReqState::InFlight(w)) = prior {
        let mut slot = w.slot.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(reply.clone());
        w.cv.notify_all();
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    q.in_flight += 1;
                    break job;
                }
                if !q.open {
                    return;
                }
                q = shared.queue_cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        let request_id = job.request.request_id;
        update_pressure(shared, job.enqueued.elapsed());
        let reply =
            catch_unwind(AssertUnwindSafe(|| process_job(shared, &job))).unwrap_or_else(|_| {
                Reply::Error(ErrorReply {
                    request_id,
                    code: ErrorCode::Internal,
                    retryable: true,
                    message: "worker panicked mid-solve (fault injection or bug); safe to retry"
                        .to_string(),
                })
            });
        finish_request(shared, request_id, &reply);
        // The reply is recorded (registry + duplicate waiters); the intent
        // is complete. A crash before this line replays the job.
        maybe_crash(shared, CrashPoint::BeforeDone);
        if let (Some(j), Some(seq)) = (&shared.journal, job.journal_seq) {
            let _ = j.mark_done(seq);
        }
        let _ = job.responder.send(reply);
        let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.in_flight -= 1;
        drop(q);
        shared.queue_cv.notify_all();
    }
}

/// The brownout state machine, driven by how long each dequeued job waited
/// in the admission queue.
///
/// * Wait above the pressure threshold → brownout ON (immediately).
/// * Wait back under the threshold → start (or continue) a calm window;
///   once every dequeue has been calm for `brownout_recover`, brownout
///   lifts and solves return to exact.
fn update_pressure(shared: &Shared, queue_wait: Duration) {
    let Some(pressure) = shared.cfg.brownout_pressure else {
        return;
    };
    let wait_us = queue_wait.as_micros() as u64;
    if queue_wait > pressure {
        let mut calm = shared.calm_since.lock().unwrap_or_else(|e| e.into_inner());
        *calm = None;
        drop(calm);
        if !shared.brownout.swap(true, Ordering::SeqCst) {
            shared.cfg.trace.emit(|| TraceEvent::Brownout {
                on: true,
                queue_wait_us: wait_us,
            });
        }
    } else if shared.brownout.load(Ordering::SeqCst) {
        let mut calm = shared.calm_since.lock().unwrap_or_else(|e| e.into_inner());
        match *calm {
            None => *calm = Some(Instant::now()),
            Some(since) if since.elapsed() >= shared.cfg.brownout_recover => {
                *calm = None;
                drop(calm);
                if shared.brownout.swap(false, Ordering::SeqCst) {
                    shared.cfg.trace.emit(|| TraceEvent::Brownout {
                        on: false,
                        queue_wait_us: wait_us,
                    });
                }
            }
            Some(_) => {}
        }
    }
}

fn error_reply(request_id: u64, code: ErrorCode, message: String) -> Reply {
    Reply::Error(ErrorReply {
        request_id,
        code,
        retryable: code.default_retryable(),
        message,
    })
}

/// The whole life of one admitted request: deadline check, parse, cache
/// probe (with re-certification), solve, cache fill.
fn process_job(shared: &Shared, job: &Job) -> Reply {
    let started = Instant::now();
    let request = &job.request;
    let id = request.request_id;

    match shared.cfg.fault.fire(FaultSite::JobWorker) {
        None => {}
        Some(FaultAction::Stall) => thread::sleep(Duration::from_millis(25)),
        Some(FaultAction::SpuriousTimeout) | Some(FaultAction::PerturbIncumbent) => {
            return error_reply(
                id,
                ErrorCode::Internal,
                "injected worker fault; safe to retry".to_string(),
            );
        }
        Some(FaultAction::Panic) => unreachable!("fire raises Panic"),
    }

    // Deadline already spent in the queue?
    let queued = job.enqueued.elapsed();
    let Some(remaining) = job.deadline.checked_sub(queued) else {
        return error_reply(
            id,
            ErrorCode::Timeout,
            format!(
                "deadline of {:?} expired after {:?} in the admission queue",
                job.deadline, queued
            ),
        );
    };

    let parsed = match textfmt::parse(&request.loop_text) {
        Ok(p) => p,
        Err(e) => return error_reply(id, ErrorCode::Parse, e),
    };
    let (l, machine) = (parsed.l, parsed.machine);

    let mut cfg = SchedulerConfig::new(request.dep_style, request.objective);
    cfg.limits.time_limit = remaining;
    cfg.limits.threads = if request.threads == 0 {
        shared.cfg.solver_threads.max(1)
    } else {
        request.threads
    };
    cfg.limits.stop = shared.root_stop.child();
    cfg.limits.fault = shared.cfg.fault.clone();
    cfg.register_limit = request.register_limit;
    // Under brownout every new solve rides the degraded ladder (stage-ILP,
    // then IMS) regardless of the request's own fallback preference: the
    // alternative at this load is a shed, and a certified degraded
    // schedule with honest provenance beats an `Overloaded` reply. Cache
    // probes below still serve exact hits.
    let brownout = shared.brownout.load(Ordering::SeqCst);
    cfg.fallback = if brownout {
        FallbackConfig::degraded_only()
    } else {
        FallbackConfig {
            enabled: request.use_fallback,
            ..FallbackConfig::default()
        }
    };
    let sched = OptimalScheduler::new(cfg);

    let key = canonical_key(
        &l,
        &machine,
        &KeyConfig {
            dep_style: dep_style_tag(request.dep_style),
            objective: objective_tag(request.objective),
            register_limit: request.register_limit,
        },
    );
    let perm = canonical_perm(&l);

    // Cache probe: decode, remap to declaration order, re-certify. Nothing
    // leaves the cache without passing the exact-arithmetic certifier
    // against *this* request's graph and machine.
    if request.use_cache {
        if let Some(cache) = &shared.cache {
            if let Some(cached) = cache.load(&key) {
                if cached.times.len() == l.num_ops() {
                    let times: Vec<i64> = (0..l.num_ops())
                        .map(|i| cached.times[perm[i] as usize])
                        .collect();
                    let schedule = Schedule::new(cached.ii, times.clone());
                    let claim = Claim {
                        graph: &l,
                        machine: &machine,
                        ii: cached.ii,
                        times: &times,
                        claimed_optimal: true,
                        claimed_objective: cached.objective.map(|o| o as f64),
                        exact_objective: sched.exact_objective(&l, &schedule),
                        claimed_bound: None,
                    };
                    if certify(&claim).is_ok() {
                        return Reply::Scheduled(Scheduled {
                            request_id: id,
                            cache_hit: true,
                            optimal: true,
                            provenance: Provenance::Exact,
                            ii: cached.ii,
                            objective: cached.objective,
                            times,
                            bb_nodes: 0,
                            simplex_iterations: 0,
                            wall_us: started.elapsed().as_micros() as u64,
                        });
                    }
                }
                // Decoded but would not certify (wrong length, stale
                // semantics, injected corruption): poison — quarantine and
                // fall through to a fresh solve.
                cache.quarantine(&key);
            }
        }
    }

    let result = sched.schedule(&l, &machine);
    let draining = shared.shutdown.load(Ordering::SeqCst);
    match result.status {
        LoopStatus::Optimal | LoopStatus::FeasibleOnly => {
            let schedule = match &result.schedule {
                Some(s) => s,
                None => {
                    return error_reply(
                        id,
                        ErrorCode::Failed,
                        "scheduled status without a schedule (solver bug)".to_string(),
                    )
                }
            };
            let provenance = result.provenance.unwrap_or(Provenance::Exact);
            // SAT-portfolio wins count as exact: certified feasible at the
            // same II the exact search settles on (and objective-free, so
            // `exact_objective` below reports None for them anyway).
            let exact = !provenance.degraded();
            let objective = if exact {
                sched.exact_objective(&l, schedule)
            } else {
                None
            };
            let optimal = exact && result.status == LoopStatus::Optimal;
            if !exact && brownout {
                shared.brownout_served.fetch_add(1, Ordering::SeqCst);
            }
            if optimal {
                if let (true, Some(cache)) = (request.use_cache, &shared.cache) {
                    store_with_faults(shared, cache, &key, &perm, schedule, objective);
                }
            }
            Reply::Scheduled(Scheduled {
                request_id: id,
                cache_hit: false,
                optimal,
                provenance,
                ii: schedule.ii(),
                objective,
                times: schedule.times().to_vec(),
                bb_nodes: result.stats.bb_nodes,
                simplex_iterations: result.stats.simplex_iterations,
                wall_us: started.elapsed().as_micros() as u64,
            })
        }
        LoopStatus::TimedOut => Reply::Error(ErrorReply {
            request_id: id,
            code: ErrorCode::Timeout,
            // A drain-induced stop is worth retrying elsewhere; a genuinely
            // exhausted budget is not.
            retryable: draining,
            message: if draining {
                "solve stopped by daemon drain".to_string()
            } else {
                format!("deadline of {:?} exhausted mid-solve", job.deadline)
            },
        }),
        LoopStatus::Infeasible => error_reply(
            id,
            ErrorCode::Infeasible,
            "proven infeasible over the II span".to_string(),
        ),
        LoopStatus::Invalid => error_reply(
            id,
            ErrorCode::InvalidLoop,
            result
                .error
                .map(|e| e.to_string())
                .unwrap_or_else(|| "invalid loop".to_string()),
        ),
        LoopStatus::Failed => error_reply(
            id,
            ErrorCode::Failed,
            result
                .error
                .map(|e| e.to_string())
                .unwrap_or_else(|| "solver failed".to_string()),
        ),
    }
}

/// Cache fill with the `CacheWrite` fault site: a fired fault can simulate
/// a crash between write and rename (stale temp file), skip the write, or
/// store a subtly wrong schedule — which the load-path re-certification
/// must then catch and quarantine.
fn store_with_faults(
    shared: &Shared,
    cache: &CacheStore,
    key: &[u8; 32],
    perm: &[u32],
    schedule: &Schedule,
    objective: Option<i64>,
) {
    let times = schedule.times();
    let mut canonical = vec![0i64; times.len()];
    for (i, &t) in times.iter().enumerate() {
        canonical[perm[i] as usize] = t;
    }
    let mut value = CachedSchedule {
        ii: schedule.ii(),
        objective,
        times: canonical,
    };
    // Armed crash between the temp-file write and the rename: the record
    // must never become visible, and the next open must sweep the orphan.
    if let Some((CrashPoint::MidCacheWrite, n)) = shared.cfg.crash_at {
        if shared.crash_hits.fetch_add(1, Ordering::SeqCst) + 1 == n {
            let _ = cache.write_temp(key, &value);
            std::process::abort();
        }
    }
    match shared.cfg.fault.fire(FaultSite::CacheWrite) {
        None => {
            let _ = cache.store(key, &value);
        }
        Some(FaultAction::Stall) => {
            // Crash between write and rename: only the temp file lands.
            let _ = cache.write_temp(key, &value);
        }
        Some(FaultAction::SpuriousTimeout) => {} // write skipped entirely
        Some(FaultAction::PerturbIncumbent) => {
            // Checksummed-but-wrong record: self-consistent bytes carrying
            // a schedule that will fail re-certification on load.
            if let Some(t) = value.times.first_mut() {
                *t += 1;
            }
            let _ = cache.store(key, &value);
        }
        Some(FaultAction::Panic) => unreachable!("fire raises Panic"),
    }
}
