//! Content addressing for certified schedules: a hand-rolled SHA-256 and a
//! canonical solve key.
//!
//! The cache key must be *semantic*: two requests that describe the same
//! scheduling problem must hash identically even if the textual loop file
//! lists operations or dependences in a different order. [`canonical_key`]
//! therefore canonicalizes the graph first — operations are sorted by
//! `(name, class)` (names are unique within a loop by construction, so the
//! order is total), edge endpoints are remapped through that permutation,
//! and edges and register uses are themselves sorted — before feeding the
//! hasher.
//!
//! What is *excluded* from the key matters as much as what is included:
//! time budgets, thread counts, and fallback-ladder shares do not change
//! the value of an exact optimum, and only exact `Optimal` results are ever
//! cached, so they stay out. Anything that changes the feasible set or the
//! objective (machine model, dependence style, objective, register limit)
//! is in.

use optimod_ddg::{DepKind, Loop};
use optimod_machine::{Machine, OpClass};

/// Dense tag of an op class: its position in [`OpClass::ALL`].
fn class_tag(c: OpClass) -> u8 {
    OpClass::ALL
        .iter()
        .position(|&x| x == c)
        .expect("ALL is exhaustive") as u8
}

/// SHA-256, FIPS 180-4. Hand-rolled because the build environment is
/// offline; tested against the standard vectors below.
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hasher with the FIPS initial state.
    pub fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
            // Either the input was fully absorbed into the partial block,
            // or the block just got compressed; falling through with a
            // still-partial buffer would clobber it below.
            if rest.is_empty() {
                return;
            }
            debug_assert_eq!(self.buf_len, 0);
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        self.buf[..rest.len()].copy_from_slice(rest);
        self.buf_len = rest.len();
    }

    /// Finishes and returns the digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    /// One-shot convenience.
    pub fn digest(data: &[u8]) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// Renders a digest as lowercase hex (cache file names).
pub fn hex(digest: &[u8; 32]) -> String {
    let mut s = String::with_capacity(64);
    for b in digest {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// The solver-configuration slice of the cache key: everything that changes
/// the feasible set or the objective, and nothing that merely changes how
/// hard the solver tries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyConfig {
    /// Dependence-constraint style tag (see [`crate::wire`]).
    pub dep_style: u8,
    /// Secondary-objective tag (see [`crate::wire`]).
    pub objective: u8,
    /// Hard MaxLive cap, if any.
    pub register_limit: Option<u32>,
}

/// Format version of the canonical serialization; bump when the layout
/// below changes so stale caches miss instead of mis-hit.
const KEY_VERSION: u8 = 1;

fn put_str(h: &mut Sha256, s: &str) {
    h.update(&(s.len() as u32).to_le_bytes());
    h.update(s.as_bytes());
}

/// The canonical permutation of a loop's operations: `perm[i]` is the
/// canonical rank of declaration-order op `i`, where ops are ranked by
/// `(name, class)`. Names are unique (enforced by the builder and the text
/// format), so the sort key is total and any declaration order maps to the
/// same canonical form. Cached schedules store times in canonical order;
/// the server remaps through this permutation on store and on load.
pub fn canonical_perm(l: &Loop) -> Vec<u32> {
    let n = l.num_ops();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let (oa, ob) = (
            l.op(optimod_ddg::OpId::from_index(a)),
            l.op(optimod_ddg::OpId::from_index(b)),
        );
        (oa.name.as_str(), class_tag(oa.class)).cmp(&(ob.name.as_str(), class_tag(ob.class)))
    });
    let mut perm = vec![0u32; n];
    for (rank, &old) in order.iter().enumerate() {
        perm[old] = rank as u32;
    }
    perm
}

/// Hashes the canonicalized `(loop, machine, config)` triple.
pub fn canonical_key(l: &Loop, machine: &Machine, cfg: &KeyConfig) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"OMDKEY");
    h.update(&[KEY_VERSION]);

    // --- Loop, canonicalized (see `canonical_perm` for the ordering
    // contract).
    let n = l.num_ops();
    let perm = canonical_perm(l);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| perm[i]);
    h.update(&(n as u32).to_le_bytes());
    for &old in &order {
        let op = l.op(optimod_ddg::OpId::from_index(old));
        put_str(&mut h, &op.name);
        h.update(&[class_tag(op.class)]);
    }

    let kind_tag = |k: DepKind| -> u8 {
        match k {
            DepKind::Flow => 0,
            DepKind::Anti => 1,
            DepKind::Memory => 2,
            DepKind::Control => 3,
        }
    };
    let mut edges: Vec<(u32, u32, u8, i64, u32)> = l
        .edges()
        .iter()
        .map(|e| {
            (
                perm[e.from.index()],
                perm[e.to.index()],
                kind_tag(e.kind),
                e.latency,
                e.distance,
            )
        })
        .collect();
    edges.sort_unstable();
    h.update(&(edges.len() as u32).to_le_bytes());
    for (from, to, kind, lat, dist) in edges {
        h.update(&from.to_le_bytes());
        h.update(&to.to_le_bytes());
        h.update(&[kind]);
        h.update(&lat.to_le_bytes());
        h.update(&dist.to_le_bytes());
    }

    let mut vregs: Vec<(u32, Vec<(u32, u32)>)> = l
        .vregs()
        .iter()
        .map(|v| {
            let mut uses: Vec<(u32, u32)> = v
                .uses
                .iter()
                .map(|u| (perm[u.op.index()], u.distance))
                .collect();
            uses.sort_unstable();
            (perm[v.def.index()], uses)
        })
        .collect();
    vregs.sort_unstable();
    h.update(&(vregs.len() as u32).to_le_bytes());
    for (def, uses) in vregs {
        h.update(&def.to_le_bytes());
        h.update(&(uses.len() as u32).to_le_bytes());
        for (op, dist) in uses {
            h.update(&op.to_le_bytes());
            h.update(&dist.to_le_bytes());
        }
    }

    // --- Machine: structural identity, not just the name, so a renamed or
    // retuned model cannot alias a cached result.
    put_str(&mut h, machine.name());
    h.update(&(machine.num_resources() as u32).to_le_bytes());
    for r in machine.resources() {
        put_str(&mut h, machine.resource_name(r));
        h.update(&machine.resource_count(r).to_le_bytes());
    }
    for class in OpClass::ALL {
        h.update(&[class_tag(class)]);
        h.update(&machine.latency(class).to_le_bytes());
        let mut usages: Vec<(u32, u32)> = machine
            .usages(class)
            .iter()
            .map(|&(r, c)| (r.index() as u32, c))
            .collect();
        usages.sort_unstable();
        h.update(&(usages.len() as u32).to_le_bytes());
        for (r, c) in usages {
            h.update(&r.to_le_bytes());
            h.update(&c.to_le_bytes());
        }
    }

    // --- Config.
    h.update(&[cfg.dep_style, cfg.objective]);
    match cfg.register_limit {
        None => h.update(&[0]),
        Some(lim) => {
            h.update(&[1]);
            h.update(&lim.to_le_bytes());
        }
    }

    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimod_ddg::textfmt;

    #[test]
    fn sha256_standard_vectors() {
        assert_eq!(
            hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn sha256_incremental_equals_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let mut h = Sha256::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    const CFG: KeyConfig = KeyConfig {
        dep_style: 1,
        objective: 1,
        register_limit: None,
    };

    #[test]
    fn key_ignores_declaration_order() {
        let a = textfmt::parse(
            "machine example-3fu\nop x load\nop y fmul\nop z store\n\
             flow x y 0\nflow y z 0\ndep z x 0 1 memory\n",
        )
        .unwrap();
        let b = textfmt::parse(
            "machine example-3fu\nop z store\nop y fmul\nop x load\n\
             dep z x 0 1 memory\nflow y z 0\nflow x y 0\n",
        )
        .unwrap();
        assert_eq!(
            canonical_key(&a.l, &a.machine, &CFG),
            canonical_key(&b.l, &b.machine, &CFG)
        );
    }

    #[test]
    fn key_distinguishes_semantics() {
        let base =
            textfmt::parse("machine example-3fu\nop x load\nop y fadd\nflow x y 0\n").unwrap();
        let lat =
            textfmt::parse("machine example-3fu\nop x load\nop y fadd\nflow x y 1\n").unwrap();
        let cls =
            textfmt::parse("machine example-3fu\nop x load\nop y fmul\nflow x y 0\n").unwrap();
        let mach =
            textfmt::parse("machine cydra-like\nop x load\nop y fadd\nflow x y 0\n").unwrap();
        let k = canonical_key(&base.l, &base.machine, &CFG);
        assert_ne!(k, canonical_key(&lat.l, &lat.machine, &CFG));
        assert_ne!(k, canonical_key(&cls.l, &cls.machine, &CFG));
        assert_ne!(k, canonical_key(&mach.l, &mach.machine, &CFG));
        assert_ne!(
            k,
            canonical_key(
                &base.l,
                &base.machine,
                &KeyConfig {
                    objective: 2,
                    ..CFG
                }
            )
        );
        assert_ne!(
            k,
            canonical_key(
                &base.l,
                &base.machine,
                &KeyConfig {
                    register_limit: Some(8),
                    ..CFG
                }
            )
        );
    }
}
