//! The length-prefixed wire protocol between `optimod client` and
//! `optimodd`.
//!
//! A frame is:
//!
//! ```text
//! magic "OMD1" | kind u8 | len u32 LE | payload (len bytes) | fnv1a64(kind ‖ payload) u64 LE
//! ```
//!
//! The checksum is not cryptographic — it exists to turn torn or corrupted
//! frames into a typed [`WireError`] instead of a misparse. Every decode
//! path returns `Result`; nothing in this module panics on untrusted bytes,
//! and payloads above [`MAX_FRAME`] are rejected before allocation so a
//! hostile length prefix cannot OOM the daemon.

use std::io::{self, Read, Write};

use optimod::{DepStyle, Objective, Provenance};

/// Frame magic: protocol name + version.
pub const MAGIC: [u8; 4] = *b"OMD1";

/// Hard ceiling on payload size (16 MiB) — larger prefixes are rejected
/// without allocating.
pub const MAX_FRAME: usize = 16 << 20;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A solve request (client → daemon).
    Request,
    /// A solve reply (daemon → client).
    Reply,
    /// Liveness probe; payload echoed back in the [`FrameKind::Pong`].
    Ping,
    /// Probe answer.
    Pong,
    /// Ask the daemon to drain and exit; answered with a `Pong` once the
    /// shutdown is underway.
    Shutdown,
    /// Ask for (client → daemon, empty payload) or carry (daemon → client,
    /// a [`DaemonStatus`] payload) an operational snapshot.
    Stats,
}

impl FrameKind {
    /// The wire tag for this frame kind.
    pub fn tag(self) -> u8 {
        match self {
            FrameKind::Request => 1,
            FrameKind::Reply => 2,
            FrameKind::Ping => 3,
            FrameKind::Pong => 4,
            FrameKind::Shutdown => 5,
            FrameKind::Stats => 6,
        }
    }

    fn from_tag(t: u8) -> Option<FrameKind> {
        Some(match t {
            1 => FrameKind::Request,
            2 => FrameKind::Reply,
            3 => FrameKind::Ping,
            4 => FrameKind::Pong,
            5 => FrameKind::Shutdown,
            6 => FrameKind::Stats,
            _ => return None,
        })
    }
}

/// Typed decode/transport failure. Every variant is safe to retry against
/// an idempotent request id: either the frame never arrived intact or it
/// was never accepted.
#[derive(Debug)]
pub enum WireError {
    /// The stream ended inside a frame.
    Truncated,
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The length prefix exceeded [`MAX_FRAME`].
    Oversized(u64),
    /// The checksum did not match the received bytes.
    BadChecksum {
        /// Checksum computed over the received bytes.
        computed: u64,
        /// Checksum carried by the frame.
        carried: u64,
    },
    /// An enum tag (frame kind, reply tag, status…) was out of range.
    BadTag {
        /// Which field was malformed.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
    /// A payload field did not decode (short payload, bad UTF-8…).
    Malformed(&'static str),
    /// The underlying socket failed.
    Io(io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "stream ended inside a frame"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::Oversized(n) => write!(f, "frame payload of {n} bytes exceeds {MAX_FRAME}"),
            WireError::BadChecksum { computed, carried } => write!(
                f,
                "frame checksum mismatch (computed {computed:016x}, carried {carried:016x})"
            ),
            WireError::BadTag { what, value } => write!(f, "bad {what} tag {value}"),
            WireError::Malformed(what) => write!(f, "malformed {what}"),
            WireError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    }
}

/// FNV-1a 64-bit over `data` (seeded with the frame kind by the framing
/// layer).
pub fn fnv1a64(seed: u64, data: &[u8]) -> u64 {
    let mut h = if seed == 0 {
        0xcbf2_9ce4_8422_2325
    } else {
        seed
    };
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serializes one frame.
pub fn encode_frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 1 + 4 + payload.len() + 8);
    out.extend_from_slice(&MAGIC);
    out.push(kind.tag());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = fnv1a64(fnv1a64(0, &[kind.tag()]), payload);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Writes one frame to `w`.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> Result<(), WireError> {
    w.write_all(&encode_frame(kind, payload))?;
    w.flush()?;
    Ok(())
}

/// Reads one frame from `r`. `Ok(None)` means the peer closed the stream
/// cleanly *before* the first byte of a frame; an EOF anywhere later is
/// [`WireError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<(FrameKind, Vec<u8>)>, WireError> {
    let mut magic = [0u8; 4];
    match r.read(&mut magic)? {
        0 => return Ok(None),
        n => r.read_exact(&mut magic[n..])?,
    }
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let mut head = [0u8; 5];
    r.read_exact(&mut head)?;
    let kind = FrameKind::from_tag(head[0]).ok_or(WireError::BadTag {
        what: "frame kind",
        value: head[0] as u64,
    })?;
    let len = u32::from_le_bytes([head[1], head[2], head[3], head[4]]) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversized(len as u64));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let mut sum = [0u8; 8];
    r.read_exact(&mut sum)?;
    let carried = u64::from_le_bytes(sum);
    let computed = fnv1a64(fnv1a64(0, &[head[0]]), &payload);
    if carried != computed {
        return Err(WireError::BadChecksum { computed, carried });
    }
    Ok(Some((kind, payload)))
}

// ---------------------------------------------------------------------------
// Payload buffer primitives.

#[derive(Default)]
pub(crate) struct Enc(pub Vec<u8>);

impl Enc {
    pub fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn i64(&mut self, v: i64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
}

pub(crate) struct Dec<'a>(pub &'a [u8]);

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.0.len() < n {
            return Err(WireError::Malformed("payload too short"));
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Ok(head)
    }
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        if len > MAX_FRAME {
            return Err(WireError::Malformed("string length"));
        }
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| WireError::Malformed("string utf-8"))
    }
    pub fn finish(self) -> Result<(), WireError> {
        if self.0.is_empty() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes"))
        }
    }
}

// ---------------------------------------------------------------------------
// Enum tags shared with the cache key.

/// Stable tag for [`DepStyle`] (also hashed into the cache key).
pub fn dep_style_tag(s: DepStyle) -> u8 {
    match s {
        DepStyle::Traditional => 0,
        DepStyle::Structured => 1,
    }
}

/// Inverse of [`dep_style_tag`].
pub fn dep_style_from_tag(t: u8) -> Option<DepStyle> {
    Some(match t {
        0 => DepStyle::Traditional,
        1 => DepStyle::Structured,
        _ => return None,
    })
}

/// Stable tag for [`Objective`] (also hashed into the cache key).
pub fn objective_tag(o: Objective) -> u8 {
    match o {
        Objective::FirstFeasible => 0,
        Objective::MinMaxLive => 1,
        Objective::MinBuffers => 2,
        Objective::MinCumLifetime => 3,
        Objective::MinSchedLength => 4,
    }
}

/// Inverse of [`objective_tag`].
pub fn objective_from_tag(t: u8) -> Option<Objective> {
    Some(match t {
        0 => Objective::FirstFeasible,
        1 => Objective::MinMaxLive,
        2 => Objective::MinBuffers,
        3 => Objective::MinCumLifetime,
        4 => Objective::MinSchedLength,
        _ => return None,
    })
}

fn provenance_tag(p: Provenance) -> u8 {
    match p {
        Provenance::Exact => 0,
        Provenance::StageIlp => 1,
        Provenance::Ims => 2,
        Provenance::SatExact => 3,
    }
}

fn provenance_from_tag(t: u8) -> Option<Provenance> {
    Some(match t {
        0 => Provenance::Exact,
        1 => Provenance::StageIlp,
        2 => Provenance::Ims,
        3 => Provenance::SatExact,
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Request.

/// A solve request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Idempotency token. Retries of the same logical request must carry
    /// the same non-zero id so the daemon never double-solves; `0` opts out.
    pub request_id: u64,
    /// Wall-clock budget in milliseconds; `0` means the daemon default.
    pub deadline_ms: u64,
    /// Engage the fallback ladder when the exact rung runs out of budget.
    pub use_fallback: bool,
    /// Consult/populate the certified-schedule cache.
    pub use_cache: bool,
    /// Secondary objective.
    pub objective: Objective,
    /// Dependence-constraint style.
    pub dep_style: DepStyle,
    /// Hard MaxLive cap, if any.
    pub register_limit: Option<u32>,
    /// Solver threads; `0` means the daemon default.
    pub threads: u32,
    /// The loop description, in the [`optimod_ddg::textfmt`] grammar.
    pub loop_text: String,
}

impl Request {
    /// A request with daemon-default knobs for `loop_text`.
    pub fn new(loop_text: impl Into<String>) -> Request {
        Request {
            request_id: 0,
            deadline_ms: 0,
            use_fallback: true,
            use_cache: true,
            objective: Objective::MinMaxLive,
            dep_style: DepStyle::Structured,
            register_limit: None,
            threads: 0,
            loop_text: loop_text.into(),
        }
    }

    /// Serializes the request payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::default();
        e.u64(self.request_id);
        e.u64(self.deadline_ms);
        let mut flags = 0u8;
        if self.use_fallback {
            flags |= 1;
        }
        if self.use_cache {
            flags |= 2;
        }
        e.u8(flags);
        e.u8(objective_tag(self.objective));
        e.u8(dep_style_tag(self.dep_style));
        e.u32(self.register_limit.unwrap_or(u32::MAX));
        e.u32(self.threads);
        e.str(&self.loop_text);
        e.0
    }

    /// Deserializes a request payload.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut d = Dec(payload);
        let request_id = d.u64()?;
        let deadline_ms = d.u64()?;
        let flags = d.u8()?;
        let objective = d.u8()?;
        let objective = objective_from_tag(objective).ok_or(WireError::BadTag {
            what: "objective",
            value: objective as u64,
        })?;
        let style = d.u8()?;
        let dep_style = dep_style_from_tag(style).ok_or(WireError::BadTag {
            what: "dep style",
            value: style as u64,
        })?;
        let register_limit = match d.u32()? {
            u32::MAX => None,
            v => Some(v),
        };
        let threads = d.u32()?;
        let loop_text = d.str()?;
        d.finish()?;
        Ok(Request {
            request_id,
            deadline_ms,
            use_fallback: flags & 1 != 0,
            use_cache: flags & 2 != 0,
            objective,
            dep_style,
            register_limit,
            threads,
            loop_text,
        })
    }
}

// ---------------------------------------------------------------------------
// Reply.

/// Typed failure category carried by an [`ErrorReply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The loop text did not parse.
    Parse,
    /// The loop parsed but failed semantic validation.
    InvalidLoop,
    /// The deadline expired before a schedule was found.
    Timeout,
    /// The scheduler proved the request infeasible over its `II` span.
    Infeasible,
    /// The solver failed abnormally (numerics, malformed solution…).
    Failed,
    /// Admission control shed the request: the queue is full.
    Overloaded,
    /// The daemon is draining and no longer accepts work.
    ShuttingDown,
    /// A worker crashed or an injected fault fired; safe to retry.
    Internal,
    /// A cached or computed schedule failed exact certification.
    Certification,
}

impl ErrorCode {
    /// Whether a client should retry this failure (possibly against a
    /// different daemon instance). Deterministic failures — parse errors,
    /// proven infeasibility, expired deadlines — are not retryable.
    pub fn default_retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::Overloaded | ErrorCode::ShuttingDown | ErrorCode::Internal
        )
    }

    fn tag(self) -> u8 {
        match self {
            ErrorCode::Parse => 0,
            ErrorCode::InvalidLoop => 1,
            ErrorCode::Timeout => 2,
            ErrorCode::Infeasible => 3,
            ErrorCode::Failed => 4,
            ErrorCode::Overloaded => 5,
            ErrorCode::ShuttingDown => 6,
            ErrorCode::Internal => 7,
            ErrorCode::Certification => 8,
        }
    }

    fn from_tag(t: u8) -> Option<ErrorCode> {
        Some(match t {
            0 => ErrorCode::Parse,
            1 => ErrorCode::InvalidLoop,
            2 => ErrorCode::Timeout,
            3 => ErrorCode::Infeasible,
            4 => ErrorCode::Failed,
            5 => ErrorCode::Overloaded,
            6 => ErrorCode::ShuttingDown,
            7 => ErrorCode::Internal,
            8 => ErrorCode::Certification,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::Parse => "parse",
            ErrorCode::InvalidLoop => "invalid-loop",
            ErrorCode::Timeout => "timeout",
            ErrorCode::Infeasible => "infeasible",
            ErrorCode::Failed => "failed",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Internal => "internal",
            ErrorCode::Certification => "certification",
        };
        f.write_str(s)
    }
}

/// A successful solve (or cache hit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled {
    /// Echo of the request id.
    pub request_id: u64,
    /// Whether the schedule was served from the certified cache.
    pub cache_hit: bool,
    /// Whether the secondary objective was proven optimal.
    pub optimal: bool,
    /// Which ladder rung produced the schedule.
    pub provenance: Provenance,
    /// Achieved initiation interval.
    pub ii: u32,
    /// Exact secondary-objective value, when one was certified/reported.
    pub objective: Option<i64>,
    /// Issue cycle per operation, in the loop's declaration order.
    pub times: Vec<i64>,
    /// Branch-and-bound nodes expanded (0 for cache hits).
    pub bb_nodes: u64,
    /// Simplex iterations (0 for cache hits).
    pub simplex_iterations: u64,
    /// Server-side wall time in microseconds.
    pub wall_us: u64,
}

/// A typed failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorReply {
    /// Echo of the request id.
    pub request_id: u64,
    /// Failure category.
    pub code: ErrorCode,
    /// Whether the daemon advises retrying.
    pub retryable: bool,
    /// Human-readable detail.
    pub message: String,
}

/// What a [`FrameKind::Reply`] payload decodes to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// A schedule.
    Scheduled(Scheduled),
    /// A typed failure.
    Error(ErrorReply),
}

impl Reply {
    /// Echo of the request id.
    pub fn request_id(&self) -> u64 {
        match self {
            Reply::Scheduled(s) => s.request_id,
            Reply::Error(e) => e.request_id,
        }
    }

    /// Serializes the reply payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::default();
        match self {
            Reply::Scheduled(s) => {
                e.u8(0);
                e.u64(s.request_id);
                let mut flags = 0u8;
                if s.cache_hit {
                    flags |= 1;
                }
                if s.optimal {
                    flags |= 2;
                }
                e.u8(flags);
                e.u8(provenance_tag(s.provenance));
                e.u32(s.ii);
                match s.objective {
                    None => e.u8(0),
                    Some(v) => {
                        e.u8(1);
                        e.i64(v);
                    }
                }
                e.u32(s.times.len() as u32);
                for &t in &s.times {
                    e.i64(t);
                }
                e.u64(s.bb_nodes);
                e.u64(s.simplex_iterations);
                e.u64(s.wall_us);
            }
            Reply::Error(err) => {
                e.u8(1);
                e.u64(err.request_id);
                e.u8(err.code.tag());
                e.u8(err.retryable as u8);
                e.str(&err.message);
            }
        }
        e.0
    }

    /// Deserializes a reply payload.
    pub fn decode(payload: &[u8]) -> Result<Reply, WireError> {
        let mut d = Dec(payload);
        let tag = d.u8()?;
        let reply = match tag {
            0 => {
                let request_id = d.u64()?;
                let flags = d.u8()?;
                let prov = d.u8()?;
                let provenance = provenance_from_tag(prov).ok_or(WireError::BadTag {
                    what: "provenance",
                    value: prov as u64,
                })?;
                let ii = d.u32()?;
                if ii == 0 {
                    return Err(WireError::Malformed("zero II"));
                }
                let objective = match d.u8()? {
                    0 => None,
                    1 => Some(d.i64()?),
                    v => {
                        return Err(WireError::BadTag {
                            what: "objective option",
                            value: v as u64,
                        })
                    }
                };
                let n = d.u32()? as usize;
                if n > MAX_FRAME / 8 {
                    return Err(WireError::Malformed("times length"));
                }
                let mut times = Vec::with_capacity(n);
                for _ in 0..n {
                    times.push(d.i64()?);
                }
                Reply::Scheduled(Scheduled {
                    request_id,
                    cache_hit: flags & 1 != 0,
                    optimal: flags & 2 != 0,
                    provenance,
                    ii,
                    objective,
                    times,
                    bb_nodes: d.u64()?,
                    simplex_iterations: d.u64()?,
                    wall_us: d.u64()?,
                })
            }
            1 => {
                let request_id = d.u64()?;
                let code = d.u8()?;
                let code = ErrorCode::from_tag(code).ok_or(WireError::BadTag {
                    what: "error code",
                    value: code as u64,
                })?;
                let retryable = d.u8()? != 0;
                let message = d.str()?;
                Reply::Error(ErrorReply {
                    request_id,
                    code,
                    retryable,
                    message,
                })
            }
            v => {
                return Err(WireError::BadTag {
                    what: "reply",
                    value: v as u64,
                })
            }
        };
        d.finish()?;
        Ok(reply)
    }
}

// ---------------------------------------------------------------------------
// Daemon status.

/// Operational snapshot carried by a [`FrameKind::Stats`] reply: brownout
/// state, queue occupancy, shed/recovery counters, and cache stats when a
/// cache is configured.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DaemonStatus {
    /// Whether overload degradation is currently engaged.
    pub brownout: bool,
    /// Jobs waiting in the admission queue.
    pub queue_len: u64,
    /// Jobs currently being solved.
    pub in_flight: u64,
    /// Requests shed with `Overloaded` since start.
    pub sheds: u64,
    /// Degraded schedules served under brownout since start.
    pub brownout_served: u64,
    /// Unfinished journal intents replayed at the last startup.
    pub recovered_intents: u64,
    /// Journal intents currently awaiting a done-mark.
    pub journal_pending: u64,
    /// Cache counters, when a cache is configured.
    pub cache: Option<crate::cache::CacheStats>,
}

impl DaemonStatus {
    /// Serializes the status payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::default();
        e.u8(self.brownout as u8);
        e.u64(self.queue_len);
        e.u64(self.in_flight);
        e.u64(self.sheds);
        e.u64(self.brownout_served);
        e.u64(self.recovered_intents);
        e.u64(self.journal_pending);
        match &self.cache {
            None => e.u8(0),
            Some(c) => {
                e.u8(1);
                e.u64(c.hits);
                e.u64(c.misses);
                e.u64(c.stores);
                e.u64(c.quarantined);
                e.u64(c.evicted);
                e.u64(c.swept_tmp);
                e.u64(c.quarantine_rotated);
                e.u64(c.bytes);
                e.u64(c.entries);
            }
        }
        e.0
    }

    /// Deserializes a status payload.
    pub fn decode(payload: &[u8]) -> Result<DaemonStatus, WireError> {
        let mut d = Dec(payload);
        let brownout = match d.u8()? {
            0 => false,
            1 => true,
            v => {
                return Err(WireError::BadTag {
                    what: "brownout flag",
                    value: v as u64,
                })
            }
        };
        let queue_len = d.u64()?;
        let in_flight = d.u64()?;
        let sheds = d.u64()?;
        let brownout_served = d.u64()?;
        let recovered_intents = d.u64()?;
        let journal_pending = d.u64()?;
        let cache = match d.u8()? {
            0 => None,
            1 => Some(crate::cache::CacheStats {
                hits: d.u64()?,
                misses: d.u64()?,
                stores: d.u64()?,
                quarantined: d.u64()?,
                evicted: d.u64()?,
                swept_tmp: d.u64()?,
                quarantine_rotated: d.u64()?,
                bytes: d.u64()?,
                entries: d.u64()?,
            }),
            v => {
                return Err(WireError::BadTag {
                    what: "cache option",
                    value: v as u64,
                })
            }
        };
        d.finish()?;
        Ok(DaemonStatus {
            brownout,
            queue_len,
            in_flight,
            sheds,
            brownout_served,
            recovered_intents,
            journal_pending,
            cache,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> Request {
        Request {
            request_id: 42,
            deadline_ms: 1500,
            use_fallback: true,
            use_cache: false,
            objective: Objective::MinBuffers,
            dep_style: DepStyle::Traditional,
            register_limit: Some(12),
            threads: 3,
            loop_text: "machine example-3fu\nop a load\n".to_string(),
        }
    }

    #[test]
    fn request_round_trips() {
        let r = sample_request();
        assert_eq!(Request::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn replies_round_trip() {
        let s = Reply::Scheduled(Scheduled {
            request_id: 7,
            cache_hit: true,
            optimal: true,
            provenance: Provenance::Exact,
            ii: 4,
            objective: Some(-3),
            times: vec![0, 1, -2, 9],
            bb_nodes: 11,
            simplex_iterations: 222,
            wall_us: 3333,
        });
        assert_eq!(Reply::decode(&s.encode()).unwrap(), s);
        let e = Reply::Error(ErrorReply {
            request_id: 9,
            code: ErrorCode::Overloaded,
            retryable: true,
            message: "queue full (depth 64)".to_string(),
        });
        assert_eq!(Reply::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn daemon_status_round_trips() {
        let bare = DaemonStatus {
            brownout: true,
            queue_len: 3,
            in_flight: 2,
            sheds: 11,
            brownout_served: 4,
            recovered_intents: 1,
            journal_pending: 5,
            cache: None,
        };
        assert_eq!(DaemonStatus::decode(&bare.encode()).unwrap(), bare);
        let with_cache = DaemonStatus {
            cache: Some(crate::cache::CacheStats {
                hits: 1,
                misses: 2,
                stores: 3,
                quarantined: 4,
                evicted: 5,
                swept_tmp: 6,
                quarantine_rotated: 7,
                bytes: 8,
                entries: 9,
            }),
            ..bare
        };
        assert_eq!(
            DaemonStatus::decode(&with_cache.encode()).unwrap(),
            with_cache
        );
    }

    #[test]
    fn frame_round_trips_through_a_stream() {
        let payload = sample_request().encode();
        let bytes = encode_frame(FrameKind::Request, &payload);
        let mut cursor = &bytes[..];
        let (kind, got) = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(kind, FrameKind::Request);
        assert_eq!(got, payload);
        // Clean EOF after a whole frame.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn torn_frame_is_truncated_not_a_panic() {
        let bytes = encode_frame(FrameKind::Ping, b"abc");
        for cut in 1..bytes.len() {
            let mut cursor = &bytes[..cut];
            match read_frame(&mut cursor) {
                Err(WireError::Truncated) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrupted_byte_is_detected() {
        let bytes = encode_frame(FrameKind::Reply, b"payload-bytes");
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            let mut cursor = &corrupt[..];
            assert!(
                read_frame(&mut cursor).is_err(),
                "flip at {i} slipped through"
            );
        }
    }

    #[test]
    fn oversized_prefix_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(FrameKind::Request.tag());
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = &bytes[..];
        match read_frame(&mut cursor) {
            Err(WireError::Oversized(n)) => assert_eq!(n, u32::MAX as u64),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }
}
