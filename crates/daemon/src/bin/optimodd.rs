//! The `optimodd` binary: bind a socket, serve solve requests until a
//! `Shutdown` frame arrives, then drain and exit.

use std::process::ExitCode;
use std::time::Duration;

use optimod_daemon::server::{CrashPoint, Daemon, DaemonConfig};
use optimod_ilp::FaultPlan;

const USAGE: &str = "\
usage: optimodd --socket PATH [options]\n\
\n\
options:\n\
  --socket PATH          unix socket to listen on (required)\n\
  --cache-dir PATH       enable the certified-schedule cache at PATH\n\
  --workers N            solver worker threads (default 2)\n\
  --queue-depth N        admission queue depth (default 64)\n\
  --default-deadline-ms N  deadline for requests that carry none (default 30000)\n\
  --drain-timeout-ms N   graceful-drain budget on shutdown (default 5000)\n\
  --threads N            solver threads per job (default 1)\n\
  --fault-seed N         inject a seeded daemon fault plan (testing)\n\
  --journal PATH         write-ahead intent journal: admitted requests are\n\
                         durable before solving and replayed after a crash\n\
  --cache-max-bytes N    LRU-evict cache records past N total bytes\n\
  --cache-max-entries N  LRU-evict cache records past N entries\n\
  --quarantine-max-bytes N  rotate oldest quarantined records past N bytes\n\
  --brownout MS          degrade (fallback ladder) instead of shedding when\n\
                         queued work waits longer than MS milliseconds\n\
  --brownout-recover-ms MS  sustained calm before brownout lifts (default 500)\n\
  --crash-at SITE:N      abort() at the Nth hit of SITE (journal-append,\n\
                         before-done, cache-write) — chaos testing only\n\
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("optimodd: {msg}");
    eprint!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg: Option<DaemonConfig> = None;
    let mut pending: Vec<(String, String)> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--socket" => match it.next() {
                Some(path) => cfg = Some(DaemonConfig::new(path)),
                None => return fail("--socket needs a path"),
            },
            opt @ ("--cache-dir"
            | "--workers"
            | "--queue-depth"
            | "--default-deadline-ms"
            | "--drain-timeout-ms"
            | "--threads"
            | "--fault-seed"
            | "--journal"
            | "--cache-max-bytes"
            | "--cache-max-entries"
            | "--quarantine-max-bytes"
            | "--brownout"
            | "--brownout-recover-ms"
            | "--crash-at") => match it.next() {
                Some(v) => pending.push((opt.to_string(), v.clone())),
                None => return fail(&format!("{opt} needs a value")),
            },
            other => return fail(&format!("unknown option '{other}'")),
        }
    }
    let Some(mut cfg) = cfg else {
        return fail("--socket is required");
    };
    for (opt, v) in pending {
        let num = || v.parse::<u64>();
        match opt.as_str() {
            "--cache-dir" => cfg.cache_dir = Some(v.clone().into()),
            "--workers" => match num() {
                Ok(n) if n > 0 => cfg.workers = n as usize,
                _ => return fail("--workers needs a positive integer"),
            },
            "--queue-depth" => match num() {
                Ok(n) if n > 0 => cfg.queue_depth = n as usize,
                _ => return fail("--queue-depth needs a positive integer"),
            },
            "--default-deadline-ms" => match num() {
                Ok(n) if n > 0 => cfg.default_deadline = Duration::from_millis(n),
                _ => return fail("--default-deadline-ms needs a positive integer"),
            },
            "--drain-timeout-ms" => match num() {
                Ok(n) => cfg.drain_timeout = Duration::from_millis(n),
                _ => return fail("--drain-timeout-ms needs an integer"),
            },
            "--threads" => match num() {
                Ok(n) if n > 0 && n <= u32::MAX as u64 => cfg.solver_threads = n as u32,
                _ => return fail("--threads needs a positive integer"),
            },
            "--fault-seed" => match num() {
                Ok(seed) => cfg.fault = FaultPlan::daemon_from_seed(seed),
                _ => return fail("--fault-seed needs an integer"),
            },
            "--journal" => cfg.journal_path = Some(v.clone().into()),
            "--cache-max-bytes" => match num() {
                Ok(n) => cfg.cache_limits.max_bytes = n,
                _ => return fail("--cache-max-bytes needs an integer"),
            },
            "--cache-max-entries" => match num() {
                Ok(n) => cfg.cache_limits.max_entries = n,
                _ => return fail("--cache-max-entries needs an integer"),
            },
            "--quarantine-max-bytes" => match num() {
                Ok(n) => cfg.cache_limits.quarantine_max_bytes = n,
                _ => return fail("--quarantine-max-bytes needs an integer"),
            },
            "--brownout" => match num() {
                Ok(n) if n > 0 => cfg.brownout_pressure = Some(Duration::from_millis(n)),
                _ => return fail("--brownout needs a positive integer (milliseconds)"),
            },
            "--brownout-recover-ms" => match num() {
                Ok(n) => cfg.brownout_recover = Duration::from_millis(n),
                _ => return fail("--brownout-recover-ms needs an integer"),
            },
            "--crash-at" => match v.split_once(':') {
                Some((site, nth)) => {
                    let point: CrashPoint = match site.parse() {
                        Ok(p) => p,
                        Err(e) => return fail(&e),
                    };
                    match nth.parse::<u64>() {
                        Ok(n) if n > 0 => cfg.crash_at = Some((point, n)),
                        _ => return fail("--crash-at needs SITE:N with N >= 1"),
                    }
                }
                None => return fail("--crash-at needs SITE:N"),
            },
            _ => unreachable!("filtered above"),
        }
    }

    let socket = cfg.socket_path.clone();
    let handle = match Daemon::start(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("optimodd: failed to start on {}: {e}", socket.display());
            return ExitCode::from(5);
        }
    };
    eprintln!("optimodd: listening on {}", socket.display());
    handle.wait_shutdown_requested();
    eprintln!("optimodd: shutdown requested, draining");
    match handle.shutdown() {
        Ok(()) => {
            eprintln!("optimodd: drained, exiting");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("optimodd: drain failed: {e}");
            ExitCode::from(5)
        }
    }
}
