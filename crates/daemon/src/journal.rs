//! Write-ahead intent journal: the daemon's crash-*recovery* layer.
//!
//! The certified-schedule cache (PR 7) makes a crash *safe* — no torn
//! bytes are ever served — but an accepted-and-unanswered request used to
//! die with the process. The journal closes that gap: every admitted
//! request is appended here (checksummed, `fsync`ed) **before** the solve
//! starts, and marked done once its reply is recorded. On startup the
//! daemon replays every intent without a done-mark back into its queue, so
//! a SIGKILL loses at most the in-flight reply bytes — never the work.
//!
//! Layout (one file, append-only):
//!
//! ```text
//! magic "OMJ1" | version u8
//! record*: kind u8 | seq u64 LE | len u32 LE | payload | fnv1a64(kind ‖ seq ‖ payload) u64 LE
//! ```
//!
//! `kind 1` is an intent (payload = the encoded [`Request`]); `kind 2` is
//! a done-mark (empty payload) for the `seq` of an earlier intent.
//!
//! Durability protocol:
//!
//! * **Appends are checksummed and synced.** Each record is followed by an
//!   `fdatasync`-class flush, so at most the final record can be torn.
//! * **Replay truncates the torn tail.** A record that fails its checksum
//!   (or runs past end-of-file) ends replay; the file is truncated back to
//!   the last whole record so the next append starts clean. A torn *tail*
//!   is a crash artifact; a bad record *followed by good ones* would be
//!   real corruption, which the sync-per-record discipline rules out.
//! * **Compaction is atomic.** When enough done-marks accumulate, the live
//!   (pending) intents are rewritten to a temp file in the same directory,
//!   `fsync`ed, and `rename`d over the journal — the same discipline as
//!   the cache, so a crash mid-compaction leaves either the old journal or
//!   the new one, never a hybrid.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::wire::{fnv1a64, Request, MAX_FRAME};

const MAGIC: [u8; 4] = *b"OMJ1";
const VERSION: u8 = 1;
const KIND_INTENT: u8 = 1;
const KIND_DONE: u8 = 2;
/// Fixed bytes around a record's payload: kind + seq + len + checksum.
const RECORD_OVERHEAD: usize = 1 + 8 + 4 + 8;
/// Done-marks absorbed before the journal rewrites itself.
const COMPACT_EVERY: u64 = 512;

/// One replayed (unfinished) intent.
#[derive(Debug, Clone)]
pub struct JournalEntry {
    /// The intent's journal sequence number; pass it back to
    /// [`Journal::mark_done`] once the request has a recorded reply.
    pub seq: u64,
    /// The admitted request, exactly as it arrived on the wire.
    pub request: Request,
}

/// Counters for observability and tests.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct JournalStats {
    /// Intents appended this process lifetime.
    pub appended: u64,
    /// Done-marks appended this process lifetime.
    pub marked_done: u64,
    /// Unfinished intents recovered at open.
    pub recovered: u64,
    /// Bytes truncated off a torn tail at open.
    pub torn_bytes_truncated: u64,
    /// Compactions performed.
    pub compactions: u64,
}

/// What [`Journal::fsck`] found in a journal file.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct JournalFsck {
    /// Whole intent records.
    pub intents: u64,
    /// Whole done-marks.
    pub done: u64,
    /// Intents without a done-mark.
    pub pending: u64,
    /// Bytes of torn tail after the last whole record (crash mid-append).
    pub torn_tail_bytes: u64,
}

struct Inner {
    file: File,
    path: PathBuf,
    /// Pending intents by seq, with their encoded payload (kept so
    /// compaction can rewrite them without re-reading the file).
    pending: BTreeMap<u64, Vec<u8>>,
    next_seq: u64,
    done_since_compact: u64,
}

/// The write-ahead intent journal. All methods are `&self`; the file
/// handle is serialized behind a mutex (appends are small and rare
/// relative to solves).
pub struct Journal {
    inner: Mutex<Inner>,
    appended: AtomicU64,
    marked_done: AtomicU64,
    recovered: AtomicU64,
    torn_truncated: AtomicU64,
    compactions: AtomicU64,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal").finish_non_exhaustive()
    }
}

fn record_bytes(kind: u8, seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_OVERHEAD + payload.len());
    out.push(kind);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = fnv1a64(fnv1a64(fnv1a64(0, &[kind]), &seq.to_le_bytes()), payload);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// One whole record parsed out of `bytes[at..]`, or `None` for a torn /
/// corrupt suffix (which, under sync-per-record, can only be the tail).
fn parse_record(bytes: &[u8], at: usize) -> Option<(u8, u64, &[u8], usize)> {
    let rest = &bytes[at..];
    if rest.len() < RECORD_OVERHEAD {
        return None;
    }
    let kind = rest[0];
    if kind != KIND_INTENT && kind != KIND_DONE {
        return None;
    }
    let seq = u64::from_le_bytes(rest[1..9].try_into().unwrap());
    let len = u32::from_le_bytes(rest[9..13].try_into().unwrap()) as usize;
    if len > MAX_FRAME || rest.len() < RECORD_OVERHEAD + len {
        return None;
    }
    let payload = &rest[13..13 + len];
    let carried = u64::from_le_bytes(rest[13 + len..13 + len + 8].try_into().unwrap());
    let computed = fnv1a64(fnv1a64(fnv1a64(0, &[kind]), &seq.to_le_bytes()), payload);
    if carried != computed {
        return None;
    }
    Some((kind, seq, payload, at + RECORD_OVERHEAD + len))
}

/// What [`scan`] extracts from a journal image: the pending intents by
/// seq, the highest seq seen, the done-mark count, and the offset of the
/// first torn byte (== `bytes.len()` when the file is whole).
type ScanResult = (BTreeMap<u64, Vec<u8>>, u64, u64, usize);

/// Scans a journal image: whole records, pending set, and the offset of
/// the first torn byte (== `bytes.len()` when the file is whole).
fn scan(bytes: &[u8]) -> Result<ScanResult, String> {
    if bytes.len() < 5 || bytes[..4] != MAGIC {
        return Err("bad journal magic".to_string());
    }
    if bytes[4] != VERSION {
        return Err(format!("unsupported journal version {}", bytes[4]));
    }
    let mut pending: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut max_seq = 0u64;
    let mut done = 0u64;
    let mut at = 5usize;
    while at < bytes.len() {
        let Some((kind, seq, payload, next)) = parse_record(bytes, at) else {
            break; // torn tail
        };
        max_seq = max_seq.max(seq);
        match kind {
            KIND_INTENT => {
                pending.insert(seq, payload.to_vec());
            }
            _ => {
                pending.remove(&seq);
                done += 1;
            }
        }
        at = next;
    }
    Ok((pending, max_seq, done, at))
}

impl Journal {
    /// Opens (creating if needed) the journal at `path` and returns it
    /// together with every unfinished intent, in append order, for replay.
    /// A torn tail from a crash mid-append is truncated away; intents whose
    /// payload no longer decodes as a [`Request`] (version skew) are
    /// dropped rather than replayed.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<(Journal, Vec<JournalEntry>)> {
        let path = path.into();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        let mut torn = 0u64;
        let (pending, max_seq) = match fs::read(&path) {
            Ok(bytes) => {
                let (pending, max_seq, _done, good_end) =
                    scan(&bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                if good_end < bytes.len() {
                    torn = (bytes.len() - good_end) as u64;
                    let f = OpenOptions::new().write(true).open(&path)?;
                    f.set_len(good_end as u64)?;
                    f.sync_all()?;
                }
                (pending, max_seq)
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                let mut f = File::create(&path)?;
                f.write_all(&MAGIC)?;
                f.write_all(&[VERSION])?;
                f.sync_all()?;
                (BTreeMap::new(), 0)
            }
            Err(e) => return Err(e),
        };

        let mut recovered = Vec::new();
        let mut live: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for (seq, payload) in pending {
            match Request::decode(&payload) {
                Ok(request) => {
                    recovered.push(JournalEntry { seq, request });
                    live.insert(seq, payload);
                }
                Err(_) => {
                    // Checksummed but undecodable: a request from a future
                    // (or past) wire version. It cannot be replayed; leave
                    // it out of the live set so compaction drops it.
                }
            }
        }

        let file = OpenOptions::new().append(true).open(&path)?;
        let journal = Journal {
            inner: Mutex::new(Inner {
                file,
                path,
                pending: live,
                next_seq: max_seq + 1,
                done_since_compact: 0,
            }),
            appended: AtomicU64::new(0),
            marked_done: AtomicU64::new(0),
            recovered: AtomicU64::new(recovered.len() as u64),
            torn_truncated: AtomicU64::new(torn),
            compactions: AtomicU64::new(0),
        };
        Ok((journal, recovered))
    }

    /// Appends (and syncs) an intent record for `request`; the returned
    /// sequence number must be passed to [`Journal::mark_done`] once the
    /// request has a recorded reply. Until then, a crash replays it.
    pub fn append_intent(&self, request: &Request) -> io::Result<u64> {
        let payload = request.encode();
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let record = record_bytes(KIND_INTENT, seq, &payload);
        inner.file.write_all(&record)?;
        inner.file.sync_data()?;
        inner.pending.insert(seq, payload);
        self.appended.fetch_add(1, Ordering::Relaxed);
        Ok(seq)
    }

    /// Appends (and syncs) a done-mark for `seq`. Idempotent: marking an
    /// unknown or already-done seq is a no-op append. Triggers a compaction
    /// once enough done-marks have accumulated.
    pub fn mark_done(&self, seq: u64) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let record = record_bytes(KIND_DONE, seq, &[]);
        inner.file.write_all(&record)?;
        inner.file.sync_data()?;
        inner.pending.remove(&seq);
        inner.done_since_compact += 1;
        self.marked_done.fetch_add(1, Ordering::Relaxed);
        if inner.done_since_compact >= COMPACT_EVERY {
            self.compact_locked(&mut inner)?;
        }
        Ok(())
    }

    /// Unfinished intents right now.
    pub fn pending(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pending
            .len()
    }

    /// Rewrites the journal down to its pending intents (atomic
    /// temp+rename, like the cache), reclaiming done-mark space.
    pub fn compact(&self) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        self.compact_locked(&mut inner)
    }

    fn compact_locked(&self, inner: &mut Inner) -> io::Result<()> {
        let tmp = inner.path.with_extension("omj.tmp");
        {
            let mut out = Vec::with_capacity(5 + inner.pending.len() * 64);
            out.extend_from_slice(&MAGIC);
            out.push(VERSION);
            for (&seq, payload) in &inner.pending {
                out.extend_from_slice(&record_bytes(KIND_INTENT, seq, payload));
            }
            let mut f = File::create(&tmp)?;
            f.write_all(&out)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &inner.path)?;
        inner.file = OpenOptions::new().append(true).open(&inner.path)?;
        inner.done_since_compact = 0;
        self.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> JournalStats {
        JournalStats {
            appended: self.appended.load(Ordering::Relaxed),
            marked_done: self.marked_done.load(Ordering::Relaxed),
            recovered: self.recovered.load(Ordering::Relaxed),
            torn_bytes_truncated: self.torn_truncated.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
        }
    }

    /// Offline structural check of a journal file: header, per-record
    /// checksums, decodable intents. A torn tail is reported, not an error
    /// (it is the expected artifact of a crash mid-append); anything else
    /// that fails to parse is.
    pub fn fsck(path: &Path) -> Result<JournalFsck, String> {
        let bytes = fs::read(path).map_err(|e| format!("cannot read journal: {e}"))?;
        let (pending, _max_seq, done, good_end) = scan(&bytes)?;
        let mut intents = 0u64;
        let mut at = 5usize;
        while at < bytes.len() {
            let Some((kind, _seq, payload, next)) = parse_record(&bytes, at) else {
                break;
            };
            if kind == KIND_INTENT {
                intents += 1;
                if Request::decode(payload).is_err() {
                    return Err(format!(
                        "intent at offset {at} passes its checksum but does not decode"
                    ));
                }
            }
            at = next;
        }
        Ok(JournalFsck {
            intents,
            done,
            pending: pending.len() as u64,
            torn_tail_bytes: (bytes.len() - good_end) as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as Seq;

    static SEQ: Seq = Seq::new(0);

    fn temp_journal(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "omj-test-{tag}-{}-{}.omj",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn req(id: u64) -> Request {
        let mut r = Request::new(format!("machine m\nop a{id} load\n"));
        r.request_id = id;
        r
    }

    #[test]
    fn unfinished_intents_replay_after_reopen() {
        let path = temp_journal("replay");
        {
            let (j, recovered) = Journal::open(&path).unwrap();
            assert!(recovered.is_empty());
            let s1 = j.append_intent(&req(1)).unwrap();
            let _s2 = j.append_intent(&req(2)).unwrap();
            j.mark_done(s1).unwrap();
            // Drop without marking 2 done: simulated crash.
        }
        let (j, recovered) = Journal::open(&path).unwrap();
        assert_eq!(recovered.len(), 1, "only the unfinished intent replays");
        assert_eq!(recovered[0].request.request_id, 2);
        assert_eq!(j.pending(), 1);
        j.mark_done(recovered[0].seq).unwrap();
        assert_eq!(j.pending(), 0);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_replay_survives() {
        let path = temp_journal("torn");
        {
            let (j, _) = Journal::open(&path).unwrap();
            j.append_intent(&req(7)).unwrap();
        }
        // Crash mid-append: half a record of garbage at the tail.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[KIND_INTENT, 9, 9, 9]).unwrap();
        }
        let (j, recovered) = Journal::open(&path).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].request.request_id, 7);
        assert_eq!(j.stats().torn_bytes_truncated, 4);
        // The truncated journal appends cleanly and fscks whole.
        j.append_intent(&req(8)).unwrap();
        drop(j);
        let fsck = Journal::fsck(&path).unwrap();
        assert_eq!(fsck.torn_tail_bytes, 0);
        assert_eq!(fsck.pending, 2);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn compaction_drops_done_marks_and_keeps_pending() {
        let path = temp_journal("compact");
        let (j, _) = Journal::open(&path).unwrap();
        let mut keep = 0;
        for i in 0..10 {
            let s = j.append_intent(&req(i)).unwrap();
            if i == 5 {
                keep = s;
            } else {
                j.mark_done(s).unwrap();
            }
        }
        let before = fs::metadata(&path).unwrap().len();
        j.compact().unwrap();
        let after = fs::metadata(&path).unwrap().len();
        assert!(after < before, "compaction must shrink the file");
        assert_eq!(j.pending(), 1);
        // Appends still work after the handle swap, and a reopen sees
        // exactly the surviving intent.
        let s2 = j.append_intent(&req(99)).unwrap();
        assert!(s2 > keep, "sequence numbers stay monotonic");
        drop(j);
        let (_j, recovered) = Journal::open(&path).unwrap();
        let ids: Vec<u64> = recovered.iter().map(|e| e.request.request_id).collect();
        assert_eq!(ids, vec![5, 99]);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn fsck_reports_counts_and_rejects_corruption() {
        let path = temp_journal("fsck");
        {
            let (j, _) = Journal::open(&path).unwrap();
            let s = j.append_intent(&req(1)).unwrap();
            j.append_intent(&req(2)).unwrap();
            j.mark_done(s).unwrap();
        }
        let fsck = Journal::fsck(&path).unwrap();
        assert_eq!(fsck.intents, 2);
        assert_eq!(fsck.done, 1);
        assert_eq!(fsck.pending, 1);
        assert_eq!(fsck.torn_tail_bytes, 0);

        // A flipped byte in the header is an error, not a torn tail.
        let mut bytes = fs::read(&path).unwrap();
        bytes[0] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(Journal::fsck(&path).is_err());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn done_marks_are_idempotent() {
        let path = temp_journal("idem");
        let (j, _) = Journal::open(&path).unwrap();
        let s = j.append_intent(&req(3)).unwrap();
        j.mark_done(s).unwrap();
        j.mark_done(s).unwrap();
        j.mark_done(s + 100).unwrap(); // unknown seq: harmless
        assert_eq!(j.pending(), 0);
        drop(j);
        let (_j, recovered) = Journal::open(&path).unwrap();
        assert!(recovered.is_empty());
        let _ = fs::remove_file(&path);
    }
}
