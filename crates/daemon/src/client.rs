//! Client for `optimodd`: one request per connection, with capped
//! exponential backoff, jitter, and idempotent retries.
//!
//! Retry policy: transport failures (connect refused, torn/corrupt frames,
//! timeouts) and replies the daemon marks `retryable` are retried up to the
//! configured cap; deterministic failures (parse errors, proven
//! infeasibility) are returned immediately. The same non-zero `request_id`
//! is used across every attempt, so the daemon's idempotency registry
//! guarantees a retried request is never solved twice concurrently and a
//! retry of a delivered result replays it instead of re-solving.

use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::wire::{
    read_frame, write_frame, DaemonStatus, ErrorReply, FrameKind, Reply, Request, Scheduled,
    WireError,
};

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Daemon socket.
    pub socket: PathBuf,
    /// Retries after the first attempt (so `retries + 1` attempts total).
    pub retries: u32,
    /// First backoff delay; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Seed for the backoff jitter (deterministic for tests).
    pub jitter_seed: u64,
}

impl ClientConfig {
    /// Defaults for a daemon at `socket`.
    pub fn new(socket: impl Into<PathBuf>) -> ClientConfig {
        ClientConfig {
            socket: socket.into(),
            retries: 4,
            backoff_base: Duration::from_millis(25),
            backoff_cap: Duration::from_secs(1),
            jitter_seed: 0,
        }
    }
}

/// Why a solve ultimately failed. Both variants carry how hard the client
/// tried — attempt count and total backoff slept — so an exit-8 failure in
/// a log is diagnosable without reproducing it.
#[derive(Debug)]
pub enum ClientError {
    /// The daemon replied with a typed error (non-retryable, or retries
    /// exhausted).
    Daemon {
        /// The daemon's final reply.
        reply: ErrorReply,
        /// Attempts made (1 = no retries).
        attempts: u32,
        /// Total time slept in backoff across the retries.
        backoff: Duration,
    },
    /// The transport kept failing until retries were exhausted.
    Transport {
        /// The last transport failure.
        error: WireError,
        /// Attempts made (1 = no retries).
        attempts: u32,
        /// Total time slept in backoff across the retries.
        backoff: Duration,
    },
}

impl ClientError {
    /// Attempts made before giving up (1 = no retries).
    pub fn attempts(&self) -> u32 {
        match self {
            ClientError::Daemon { attempts, .. } | ClientError::Transport { attempts, .. } => {
                *attempts
            }
        }
    }

    /// Total time slept in backoff across the retries.
    pub fn backoff(&self) -> Duration {
        match self {
            ClientError::Daemon { backoff, .. } | ClientError::Transport { backoff, .. } => {
                *backoff
            }
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Daemon {
                reply,
                attempts,
                backoff,
            } => write!(
                f,
                "daemon error [{}{}] after {attempts} attempt{} ({:?} total backoff): {}",
                reply.code,
                if reply.retryable { ", retryable" } else { "" },
                if *attempts == 1 { "" } else { "s" },
                backoff,
                reply.message
            ),
            ClientError::Transport {
                error,
                attempts,
                backoff,
            } => write!(
                f,
                "transport error after {attempts} attempt{} ({:?} total backoff): {error}",
                if *attempts == 1 { "" } else { "s" },
                backoff
            ),
        }
    }
}

impl std::error::Error for ClientError {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A process-unique nonzero id for idempotent retries.
pub fn fresh_request_id() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut state = nanos ^ ((std::process::id() as u64) << 32);
    splitmix64(&mut state).max(1)
}

fn one_attempt(socket: &Path, request: &Request) -> Result<Reply, WireError> {
    let mut stream = UnixStream::connect(socket).map_err(WireError::Io)?;
    // Read timeout: the request deadline plus slack for queueing and
    // framing; a daemon default deadline is unknown here, so allow a
    // generous floor.
    let deadline = if request.deadline_ms == 0 {
        Duration::from_secs(120)
    } else {
        Duration::from_millis(request.deadline_ms) + Duration::from_secs(60)
    };
    let _ = stream.set_read_timeout(Some(deadline));
    write_frame(&mut stream, FrameKind::Request, &request.encode())?;
    match read_frame(&mut stream)? {
        Some((FrameKind::Reply, payload)) => Reply::decode(&payload),
        Some((kind, _)) => Err(WireError::BadTag {
            what: "reply frame kind",
            value: kind.tag() as u64,
        }),
        None => Err(WireError::Truncated),
    }
}

/// Solves `request` with retries. A zero `request_id` is replaced by a
/// fresh one before the first attempt so every retry is idempotent.
pub fn solve(cfg: &ClientConfig, mut request: Request) -> Result<Scheduled, ClientError> {
    if request.request_id == 0 {
        request.request_id = fresh_request_id();
    }
    let mut jitter = cfg.jitter_seed ^ request.request_id;
    let mut last_transport: Option<WireError> = None;
    let mut last_daemon: Option<ErrorReply> = None;
    let mut slept = Duration::ZERO;
    let mut attempts = 0u32;
    for attempt in 0..=cfg.retries {
        if attempt > 0 {
            let exp = cfg
                .backoff_base
                .saturating_mul(1u32 << (attempt - 1).min(16));
            let capped = exp.min(cfg.backoff_cap);
            let jitter_ms = if cfg.backoff_base.as_millis() > 0 {
                splitmix64(&mut jitter) % (cfg.backoff_base.as_millis() as u64 + 1)
            } else {
                0
            };
            let pause = capped + Duration::from_millis(jitter_ms);
            std::thread::sleep(pause);
            slept += pause;
        }
        attempts = attempt + 1;
        match one_attempt(&cfg.socket, &request) {
            Ok(Reply::Scheduled(s)) => return Ok(s),
            Ok(Reply::Error(e)) => {
                if !e.retryable {
                    return Err(ClientError::Daemon {
                        reply: e,
                        attempts,
                        backoff: slept,
                    });
                }
                last_daemon = Some(e);
                last_transport = None;
            }
            Err(e) => {
                last_transport = Some(e);
            }
        }
    }
    match (last_transport, last_daemon) {
        (Some(t), _) => Err(ClientError::Transport {
            error: t,
            attempts,
            backoff: slept,
        }),
        (None, Some(d)) => Err(ClientError::Daemon {
            reply: d,
            attempts,
            backoff: slept,
        }),
        (None, None) => unreachable!("at least one attempt ran"),
    }
}

/// Pings the daemon; checks the round-tripped payload and returns whether
/// the daemon reports an active brownout (`true` = degraded mode).
///
/// Accepts both the echo-plus-status-byte pong of current daemons and the
/// bare echo of pre-journal ones (reported as not-browned-out).
pub fn ping(socket: &Path) -> Result<bool, WireError> {
    const PROBE: &[u8] = b"optimod-ping";
    let mut stream = UnixStream::connect(socket).map_err(WireError::Io)?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    write_frame(&mut stream, FrameKind::Ping, PROBE)?;
    match read_frame(&mut stream)? {
        Some((FrameKind::Pong, payload)) if payload == PROBE => Ok(false),
        Some((FrameKind::Pong, payload))
            if payload.len() == PROBE.len() + 1
                && &payload[..PROBE.len()] == PROBE
                && payload[PROBE.len()] <= 1 =>
        {
            Ok(payload[PROBE.len()] == 1)
        }
        Some((FrameKind::Pong, _)) => Err(WireError::Malformed("pong echo")),
        Some((kind, _)) => Err(WireError::BadTag {
            what: "pong frame kind",
            value: kind.tag() as u64,
        }),
        None => Err(WireError::Truncated),
    }
}

/// Fetches the daemon's operational snapshot (brownout state, queue
/// occupancy, shed/recovery counters, cache stats).
pub fn stats(socket: &Path) -> Result<DaemonStatus, WireError> {
    let mut stream = UnixStream::connect(socket).map_err(WireError::Io)?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    write_frame(&mut stream, FrameKind::Stats, b"")?;
    match read_frame(&mut stream)? {
        Some((FrameKind::Stats, payload)) => DaemonStatus::decode(&payload),
        Some((kind, _)) => Err(WireError::BadTag {
            what: "stats frame kind",
            value: kind.tag() as u64,
        }),
        None => Err(WireError::Truncated),
    }
}

/// Asks the daemon to drain and exit; resolves once the shutdown is
/// acknowledged.
pub fn shutdown(socket: &Path) -> Result<(), WireError> {
    let mut stream = UnixStream::connect(socket).map_err(WireError::Io)?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    write_frame(&mut stream, FrameKind::Shutdown, b"")?;
    match read_frame(&mut stream)? {
        Some((FrameKind::Pong, _)) => Ok(()),
        Some(_) => Err(WireError::Malformed("shutdown ack")),
        None => Err(WireError::Truncated),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ids_are_nonzero_and_distinct() {
        let a = fresh_request_id();
        let b = fresh_request_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        // Nanosecond clock + splitmix: collisions would need identical
        // nanos within one process.
        assert_ne!(a, b);
    }

    #[test]
    fn connect_refused_is_a_transport_error() {
        let cfg = ClientConfig {
            retries: 1,
            backoff_base: Duration::from_millis(1),
            ..ClientConfig::new("/nonexistent/optimodd.sock")
        };
        match solve(&cfg, Request::new("machine example-3fu\nop a load\n")) {
            Err(ClientError::Transport {
                error: WireError::Io(_),
                attempts: 2,
                backoff,
            }) => assert!(backoff >= Duration::from_millis(1)),
            other => panic!("expected transport error, got {other:?}"),
        }
    }

    #[test]
    fn display_reports_attempts_and_backoff() {
        let e = ClientError::Daemon {
            reply: ErrorReply {
                request_id: 1,
                code: crate::wire::ErrorCode::Overloaded,
                retryable: true,
                message: "queue full".to_string(),
            },
            attempts: 5,
            backoff: Duration::from_millis(350),
        };
        let s = e.to_string();
        assert!(s.contains("5 attempts"), "{s}");
        assert!(s.contains("350ms"), "{s}");
        assert!(s.contains("overloaded"), "{s}");
    }
}
