//! Property tests for the certified-schedule cache (ISSUE satellite 4).
//!
//! Two invariants:
//! * **Hash stability** — the canonical cache key is a function of the
//!   *semantic* `(loop, machine, config)` triple, not of the order in
//!   which a loop file happens to declare its operations and dependences.
//!   Randomly generated loops hashed under randomly shuffled declaration
//!   orders must collide exactly, and the canonical permutation must map
//!   per-op data from either order onto the same canonical vector.
//! * **Corruption containment** — any byte flip anywhere in a stored
//!   entry is detected on load: the entry is quarantined (never served),
//!   the lookup degrades to a miss, and a subsequent re-store over the
//!   same key works.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use optimod_daemon::hash::{canonical_key, canonical_perm, KeyConfig};
use optimod_daemon::{CacheStore, CachedSchedule};
use optimod_ddg::textfmt;

const CFG: KeyConfig = KeyConfig {
    dep_style: 1,
    objective: 1,
    register_limit: None,
};

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = mix(seed);
        items.swap(i, (seed % (i as u64 + 1)) as usize);
    }
}

/// A randomly generated loop as textfmt directive lines, structured so the
/// result always parses: ops `v0..vN` with classes drawn from the machine,
/// a forward flow tree (each op reads an earlier one), an optional
/// loop-carried back-edge, and an optional memory dependence.
#[derive(Debug, Clone)]
struct LoopSpec {
    ops: Vec<String>,
    edges: Vec<String>,
}

fn arb_loop() -> impl Strategy<Value = LoopSpec> {
    (
        3usize..=8,
        0u64..=u64::MAX,
        proptest::bool::ANY,
        proptest::bool::ANY,
    )
        .prop_map(|(n, mut seed, back_edge, mem_dep)| {
            const CLASSES: [&str; 5] = ["load", "ialu", "fadd", "fmul", "store"];
            let mut ops = Vec::new();
            for i in 0..n {
                seed = mix(seed);
                ops.push(format!("op v{i} {}", CLASSES[(seed % 5) as usize]));
            }
            let mut edges = Vec::new();
            for j in 1..n {
                seed = mix(seed);
                edges.push(format!("flow v{} v{j} 0", seed % j as u64));
            }
            if back_edge {
                seed = mix(seed);
                edges.push(format!("flow v{} v{} 1", n - 1, seed % n as u64));
            }
            if mem_dep {
                seed = mix(seed);
                let a = seed % n as u64;
                seed = mix(seed);
                let b = seed % n as u64;
                if a != b {
                    edges.push(format!("dep v{a} v{b} 1 1 memory"));
                }
            }
            LoopSpec { ops, edges }
        })
}

fn render(spec: &LoopSpec, shuffle_seed: Option<u64>) -> String {
    let mut ops = spec.ops.clone();
    let mut edges = spec.edges.clone();
    if let Some(seed) = shuffle_seed {
        shuffle(&mut ops, seed);
        shuffle(&mut edges, mix(seed));
    }
    let mut text = String::from("machine example-3fu\n");
    for line in ops.iter().chain(edges.iter()) {
        text.push_str(line);
        text.push('\n');
    }
    text
}

/// Per-op data keyed by name, laid out in declaration order then remapped
/// through the canonical permutation.
fn canonical_vector(file: &textfmt::LoopFile) -> Vec<u64> {
    let perm = canonical_perm(&file.l);
    let mut out = vec![0u64; file.l.num_ops()];
    for i in 0..file.l.num_ops() {
        let name = &file.l.op(optimod_ddg::OpId::from_index(i)).name;
        let mut tag = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            tag = (tag ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        out[perm[i] as usize] = tag;
    }
    out
}

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "optimod-cachetest-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn key_is_stable_under_declaration_reordering(
        spec in arb_loop(),
        seed in 0u64..=u64::MAX,
    ) {
        let a = textfmt::parse(&render(&spec, None)).expect("generated loop parses");
        let b = textfmt::parse(&render(&spec, Some(seed))).expect("shuffled loop parses");
        prop_assert_eq!(
            canonical_key(&a.l, &a.machine, &CFG),
            canonical_key(&b.l, &b.machine, &CFG),
            "same semantic loop, different keys"
        );
        // The canonical permutation maps declaration-order data from
        // either file onto the same canonical vector — the contract the
        // server relies on when remapping schedule times on store/load.
        prop_assert_eq!(canonical_vector(&a), canonical_vector(&b));
    }

    #[test]
    fn key_distinguishes_distinct_loops(
        spec in arb_loop(),
        seed in 0u64..=u64::MAX,
    ) {
        let a = textfmt::parse(&render(&spec, None)).expect("generated loop parses");
        // Mutate one op's class to a different one: a semantic change.
        let mut changed = spec.clone();
        let i = (mix(seed) % changed.ops.len() as u64) as usize;
        let line = changed.ops[i].clone();
        let mut toks: Vec<&str> = line.split_whitespace().collect();
        let new_class = if toks[2] == "fmul" { "fadd" } else { "fmul" };
        toks[2] = new_class;
        changed.ops[i] = toks.join(" ");
        let b = textfmt::parse(&render(&changed, None)).expect("mutated loop parses");
        prop_assert_ne!(
            canonical_key(&a.l, &a.machine, &CFG),
            canonical_key(&b.l, &b.machine, &CFG)
        );
    }

    #[test]
    fn any_byte_flip_quarantines_and_allows_restore(
        ii in 1u32..50,
        times in proptest::collection::vec(-1000i64..1000, 1..16),
        objective in prop_oneof![Just(None), (-10_000i64..10_000).prop_map(Some)],
        key_seed in 0u64..=u64::MAX,
        flip_seed in 0u64..=u64::MAX,
        bit in 0u8..8,
    ) {
        let dir = fresh_dir("flip");
        let store = CacheStore::open(&dir).expect("open cache dir");
        let mut key = [0u8; 32];
        let mut s = key_seed;
        for chunk in key.chunks_mut(8) {
            s = mix(s);
            chunk.copy_from_slice(&s.to_le_bytes());
        }
        let value = CachedSchedule { ii, objective, times };
        store.store(&key, &value).expect("store");
        prop_assert_eq!(store.load(&key), Some(value.clone()));

        // Flip one bit anywhere in the record.
        let path = dir.join(format!("{}.omc", optimod_daemon::hash::hex(&key)));
        let mut bytes = std::fs::read(&path).expect("entry exists");
        let pos = (mix(flip_seed) % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        std::fs::write(&path, &bytes).expect("rewrite");

        // Corruption is detected: miss + quarantine, never a wrong value.
        prop_assert_eq!(store.load(&key), None);
        let stats = store.stats();
        prop_assert!(stats.quarantined >= 1, "flip at byte {pos} not quarantined");
        prop_assert!(!path.exists(), "corrupt entry left in place");

        // The key is usable again: re-store and serve.
        store.store(&key, &value).expect("re-store");
        prop_assert_eq!(store.load(&key), Some(value));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn quarantined_entries_are_preserved_for_inspection() {
    let dir = fresh_dir("inspect");
    let store = CacheStore::open(&dir).expect("open cache dir");
    let key = [7u8; 32];
    let value = CachedSchedule {
        ii: 3,
        objective: Some(5),
        times: vec![0, 1, 2],
    };
    store.store(&key, &value).expect("store");
    let path = dir.join(format!("{}.omc", optimod_daemon::hash::hex(&key)));
    let mut bytes = std::fs::read(&path).expect("entry exists");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x40;
    std::fs::write(&path, &bytes).expect("rewrite");
    assert_eq!(store.load(&key), None);
    // The damaged record survives under quarantine/ for post-mortems.
    let quarantined = dir
        .join("quarantine")
        .join(format!("{}.omc", optimod_daemon::hash::hex(&key)));
    assert!(quarantined.exists(), "quarantine copy missing");
    let _ = std::fs::remove_dir_all(&dir);
}
