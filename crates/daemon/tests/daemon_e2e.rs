//! End-to-end tests for the `optimodd` daemon: a real Unix socket, real
//! worker threads, and the real solver — exercising the tentpole
//! robustness guarantees from the service side:
//!
//! * a solve round-trip whose second request is served from the
//!   certified-schedule cache, byte-identical to the first;
//! * every reply served from the cache passes the exact-arithmetic
//!   certifier (a deliberately poisoned cache entry is quarantined and
//!   re-solved, never served);
//! * admission control sheds load with a typed `Overloaded` reply;
//! * duplicate request ids are solved once and replayed verbatim;
//! * expired deadlines surface as typed `Timeout` errors;
//! * shutdown rejects new work with `ShuttingDown` and drains cleanly,
//!   both in-process and through the real binary.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use optimod::{certify, Claim, OptimalScheduler, Provenance, Schedule, SchedulerConfig};
use optimod_daemon::client;
use optimod_daemon::hash::{canonical_key, KeyConfig};
use optimod_daemon::server::{Daemon, DaemonConfig, DaemonHandle};
use optimod_daemon::{
    CacheStore, CachedSchedule, ClientConfig, ClientError, ErrorCode, Request, Scheduled,
};
use optimod_ddg::textfmt;
use optimod_ilp::{FaultAction, FaultPlan, FaultSite};

/// The paper's Figure 1 kernel in wire text form.
const FIGURE1: &str = "\
machine example-3fu
op ld-x load
op mult fmul
op add fadd
op sub fadd
op st-y store
flow ld-x mult 0
flow ld-x add 0
flow mult sub 0
flow add sub 0
flow sub st-y 0
";

static SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_path(tag: &str, ext: &str) -> PathBuf {
    // Unix socket paths are length-limited (~108 bytes); keep them short.
    std::env::temp_dir().join(format!(
        "omd-{tag}-{}-{}.{ext}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn start_daemon(mut mutate: impl FnMut(&mut DaemonConfig)) -> DaemonHandle {
    let mut cfg = DaemonConfig::new(fresh_path("sock", "sock"));
    cfg.workers = 2;
    mutate(&mut cfg);
    Daemon::start(cfg).expect("daemon starts")
}

fn client_cfg(handle: &DaemonHandle) -> ClientConfig {
    ClientConfig::new(handle.socket_path())
}

fn request(deadline_ms: u64) -> Request {
    let mut r = Request::new(FIGURE1);
    r.deadline_ms = deadline_ms;
    r
}

/// Re-certifies a daemon reply locally, trusting nothing but the loop
/// text: the reply must describe a valid (and, when claimed, optimal)
/// schedule for the freshly parsed kernel.
fn assert_certified(text: &str, reply: &Scheduled) {
    let parsed = textfmt::parse(text).expect("kernel parses");
    assert_eq!(reply.times.len(), parsed.l.num_ops(), "times length");
    let schedule = Schedule::new(reply.ii, reply.times.clone());
    let exact = reply.provenance == Provenance::Exact;
    let req = Request::new(text);
    let sched = OptimalScheduler::new(SchedulerConfig::new(req.dep_style, req.objective));
    let claim = Claim {
        graph: &parsed.l,
        machine: &parsed.machine,
        ii: reply.ii,
        times: &reply.times,
        claimed_optimal: exact && reply.optimal,
        claimed_objective: if exact {
            reply.objective.map(|o| o as f64)
        } else {
            None
        },
        exact_objective: if exact {
            sched.exact_objective(&parsed.l, &schedule)
        } else {
            None
        },
        claimed_bound: None,
    };
    certify(&claim).expect("reply fails certification");
}

#[test]
fn smoke_solve_twice_second_is_certified_cache_hit() {
    let cache_dir = fresh_path("cache", "d");
    let handle = start_daemon(|cfg| cfg.cache_dir = Some(cache_dir.clone()));
    let cfg = client_cfg(&handle);

    let first = client::solve(&cfg, request(10_000)).expect("cold solve");
    assert!(!first.cache_hit, "first solve must be cold");
    assert!(first.optimal, "figure1 solves to optimality");
    assert_certified(FIGURE1, &first);

    let second = client::solve(&cfg, request(10_000)).expect("warm solve");
    assert!(second.cache_hit, "second solve must hit the cache");
    assert_eq!(second.ii, first.ii);
    assert_eq!(
        second.times, first.times,
        "cache hit must be byte-identical to the certified original"
    );
    assert_eq!(second.objective, first.objective);
    assert_certified(FIGURE1, &second);

    let stats = handle.cache_stats().expect("cache enabled");
    assert_eq!(stats.stores, 1);
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.quarantined, 0);

    handle.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn poisoned_cache_entry_is_quarantined_not_served() {
    let cache_dir = fresh_path("poison", "d");

    // Round 1: a clean daemon populates the cache and reports the key
    // coordinates (II and op count) we need to forge a poisoned entry.
    let handle = start_daemon(|cfg| cfg.cache_dir = Some(cache_dir.clone()));
    let first = client::solve(&client_cfg(&handle), request(10_000)).expect("cold solve");
    handle.shutdown().expect("clean shutdown");

    // Overwrite the entry with a checksum-valid record whose schedule is
    // garbage: all-zero times violate every latency-1 dependence, and the
    // claimed objective is absurd. The record *decodes* fine — only the
    // exact-arithmetic certifier can tell it is poison.
    let parsed = textfmt::parse(FIGURE1).expect("kernel parses");
    let req = Request::new(FIGURE1);
    let key = canonical_key(
        &parsed.l,
        &parsed.machine,
        &KeyConfig {
            dep_style: optimod_daemon::wire::dep_style_tag(req.dep_style),
            objective: optimod_daemon::wire::objective_tag(req.objective),
            register_limit: None,
        },
    );
    {
        let store = CacheStore::open(&cache_dir).expect("open cache");
        assert!(store.load(&key).is_some(), "round 1 populated this key");
        store
            .store(
                &key,
                &CachedSchedule {
                    ii: first.ii,
                    objective: Some(0),
                    times: vec![0; first.times.len()],
                },
            )
            .expect("poison store");
    }

    // Round 2: a fresh daemon on the poisoned cache must refuse to serve
    // the entry (certification fails), quarantine it, and re-solve.
    let handle = start_daemon(|cfg| cfg.cache_dir = Some(cache_dir.clone()));
    let cfg = client_cfg(&handle);
    let reply = client::solve(&cfg, request(10_000)).expect("re-solve");
    assert!(
        !reply.cache_hit,
        "poisoned entry must not be served as a cache hit"
    );
    assert_eq!(reply.times, first.times, "re-solve matches the original");
    assert_certified(FIGURE1, &reply);
    let stats = handle.cache_stats().expect("cache enabled");
    assert_eq!(stats.quarantined, 1, "poisoned entry quarantined");

    // The re-solve repopulated the cache; the next request hits clean.
    let third = client::solve(&cfg, request(10_000)).expect("warm solve");
    assert!(third.cache_hit);
    assert_eq!(third.times, first.times);
    assert_certified(FIGURE1, &third);

    handle.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn overload_sheds_with_typed_replies_never_silent_drops() {
    // One worker, queue depth 1, and a 25 ms stall on the first job: a
    // concurrent burst must see typed `Overloaded` replies for whatever
    // does not fit — never a dropped connection.
    let handle = start_daemon(|cfg| {
        cfg.workers = 1;
        cfg.queue_depth = 1;
        cfg.fault = FaultPlan::single(FaultSite::JobWorker, FaultAction::Stall, 1);
    });
    let socket = handle.socket_path().to_path_buf();

    let blocker = {
        let socket = socket.clone();
        std::thread::spawn(move || client::solve(&ClientConfig::new(&socket), request(10_000)))
    };
    // Let the blocker reach the stalled worker before the burst.
    std::thread::sleep(Duration::from_millis(10));

    let burst: Vec<_> = (0..6)
        .map(|_| {
            let socket = socket.clone();
            std::thread::spawn(move || {
                let cfg = ClientConfig {
                    retries: 0,
                    ..ClientConfig::new(&socket)
                };
                client::solve(&cfg, request(10_000))
            })
        })
        .collect();

    let mut scheduled = 0usize;
    let mut overloaded = 0usize;
    for t in burst {
        match t.join().expect("burst thread") {
            Ok(reply) => {
                assert_certified(FIGURE1, &reply);
                scheduled += 1;
            }
            Err(ClientError::Daemon { reply: e, .. }) => {
                assert_eq!(e.code, ErrorCode::Overloaded, "unexpected error: {e:?}");
                assert!(e.retryable, "Overloaded must be retryable");
                overloaded += 1;
            }
            Err(other) => panic!("transport failure under overload: {other}"),
        }
    }
    assert!(
        overloaded >= 1,
        "burst of 6 against queue depth 1 must shed"
    );
    assert_eq!(scheduled + overloaded, 6, "every request got a typed reply");

    let blocked = blocker
        .join()
        .expect("blocker thread")
        .expect("blocker solve");
    assert_certified(FIGURE1, &blocked);
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn duplicate_request_ids_are_solved_once_and_replayed() {
    let handle = start_daemon(|_| {});
    let cfg = client_cfg(&handle);
    let mut req = request(10_000);
    req.request_id = 0xfeed_beef;

    let first = client::solve(&cfg, req.clone()).expect("first");
    let replay = client::solve(&cfg, req).expect("replay");
    // The replay is the remembered reply, bit for bit — including the
    // original wall-clock measurement, which a re-solve could never
    // reproduce exactly.
    assert_eq!(first, replay, "idempotent replay must be verbatim");

    handle.shutdown().expect("clean shutdown");
}

#[test]
fn expired_deadline_is_a_typed_timeout() {
    // A 1 ms deadline and a 25 ms worker stall: the deadline is provably
    // spent before the solve starts, so the reply is a typed Timeout.
    let handle = start_daemon(|cfg| {
        cfg.fault = FaultPlan::single(FaultSite::JobWorker, FaultAction::Stall, 1);
    });
    let cfg = ClientConfig {
        retries: 0,
        ..client_cfg(&handle)
    };
    match client::solve(&cfg, request(1)) {
        Err(ClientError::Daemon { reply: e, .. }) => {
            assert_eq!(e.code, ErrorCode::Timeout);
            assert!(!e.retryable, "a spent deadline does not retry");
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn parse_errors_are_nonretryable() {
    let handle = start_daemon(|_| {});
    let cfg = client_cfg(&handle);
    let mut req = Request::new("machine example-3fu\nop a load\nflow a b 0\n");
    req.deadline_ms = 5_000;
    match client::solve(&cfg, req) {
        Err(ClientError::Daemon { reply: e, .. }) => {
            assert_eq!(e.code, ErrorCode::Parse);
            assert!(!e.retryable);
            assert!(e.message.contains("b"), "diagnostic names the bad op");
        }
        other => panic!("expected Parse error, got {other:?}"),
    }
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn shutdown_rejects_new_requests_with_typed_reply() {
    let handle = start_daemon(|_| {});
    let socket = handle.socket_path().to_path_buf();

    client::shutdown(&socket).expect("shutdown acknowledged");
    assert!(handle.shutdown_requested());

    let cfg = ClientConfig {
        retries: 0,
        ..ClientConfig::new(&socket)
    };
    match client::solve(&cfg, request(5_000)) {
        Err(ClientError::Daemon { reply: e, .. }) => {
            assert_eq!(e.code, ErrorCode::ShuttingDown);
            assert!(e.retryable, "clients may retry against a replacement");
        }
        // The accept loop may already have wound down; a refused connect
        // is an equally honest outcome.
        Err(ClientError::Transport { .. }) => {}
        Ok(r) => panic!("accepted work after shutdown: {r:?}"),
    }
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn real_binary_serves_and_drains_cleanly() {
    let socket = fresh_path("bin", "sock");
    let cache_dir = fresh_path("bincache", "d");
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_optimodd"))
        .args([
            "--socket",
            socket.to_str().expect("utf8 path"),
            "--cache-dir",
            cache_dir.to_str().expect("utf8 path"),
            "--workers",
            "1",
        ])
        .spawn()
        .expect("spawn optimodd");

    // Wait for the socket to come up.
    let mut ready = false;
    for _ in 0..500 {
        if client::ping(&socket).is_ok() {
            ready = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(ready, "daemon binary never became ready");

    let cfg = ClientConfig::new(&socket);
    let first = client::solve(&cfg, request(10_000)).expect("cold solve");
    assert_certified(FIGURE1, &first);
    let second = client::solve(&cfg, request(10_000)).expect("warm solve");
    assert!(second.cache_hit, "binary serves from its cache");
    assert_eq!(second.times, first.times);

    client::shutdown(&socket).expect("shutdown acknowledged");
    let status = child.wait().expect("child reaped");
    assert!(status.success(), "optimodd exited {status:?}");
    assert!(!socket.exists(), "socket removed on clean exit");
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn journal_recovery_replays_unfinished_intents_for_retries() {
    let journal_path = fresh_path("jrnl", "omj");
    let cache_dir = fresh_path("jcache", "d");
    const REQUEST_ID: u64 = 0xdead_0001;

    // Simulate a crash mid-solve: the intent was journaled at admission
    // but the daemon died before its done-mark.
    {
        let (journal, recovered) =
            optimod_daemon::Journal::open(&journal_path).expect("fresh journal");
        assert!(recovered.is_empty(), "fresh journal has nothing pending");
        let mut req = request(10_000);
        req.request_id = REQUEST_ID;
        journal.append_intent(&req).expect("journal intent");
        // Dropping without mark_done *is* the crash.
    }

    let handle = start_daemon(|cfg| {
        cfg.journal_path = Some(journal_path.clone());
        cfg.cache_dir = Some(cache_dir.clone());
    });
    assert_eq!(
        handle.status().recovered_intents,
        1,
        "startup must replay the unfinished intent"
    );

    // The crashed client's retry (same id) gets a certified reply — either
    // piggybacking on the in-flight replay or replaying its stored result.
    let mut req = request(10_000);
    req.request_id = REQUEST_ID;
    let reply = client::solve(&client_cfg(&handle), req).expect("retry after crash");
    assert!(reply.optimal, "figure1 solves to optimality");
    assert_certified(FIGURE1, &reply);

    handle.shutdown().expect("clean shutdown");
    let fsck = optimod_daemon::Journal::fsck(&journal_path).expect("journal fsck");
    assert_eq!(fsck.pending, 0, "the replayed intent must be marked done");
    let _ = std::fs::remove_dir_all(&cache_dir);
    let _ = std::fs::remove_file(&journal_path);
}

#[test]
fn zero_deadline_uses_daemon_default() {
    // `deadline_ms = 0` means "use the daemon default". With a 1 ms
    // default and a 25 ms stall injected ahead of the deadline check, the
    // only way to see this Timeout is for the default to have applied.
    let handle = start_daemon(|cfg| {
        cfg.default_deadline = Duration::from_millis(1);
        cfg.fault = FaultPlan::single(FaultSite::JobWorker, FaultAction::Stall, 1);
    });
    let cfg = ClientConfig {
        retries: 0,
        ..client_cfg(&handle)
    };
    match client::solve(&cfg, request(0)) {
        Err(ClientError::Daemon { reply: e, .. }) => {
            assert_eq!(e.code, ErrorCode::Timeout);
            assert!(
                e.message.contains("1ms"),
                "diagnostic names the default deadline: {}",
                e.message
            );
        }
        other => panic!("expected Timeout via the default deadline, got {other:?}"),
    }
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn expired_on_arrival_is_journaled_done_without_solving() {
    // An already-expired deadline yields a typed Timeout *and* retires its
    // journal intent: the typed reply is the done-mark, so a restart
    // replays nothing.
    let journal_path = fresh_path("xjrnl", "omj");
    let handle = start_daemon(|cfg| {
        cfg.journal_path = Some(journal_path.clone());
        cfg.fault = FaultPlan::single(FaultSite::JobWorker, FaultAction::Stall, 1);
    });
    let cfg = ClientConfig {
        retries: 0,
        ..client_cfg(&handle)
    };
    match client::solve(&cfg, request(1)) {
        Err(ClientError::Daemon { reply: e, .. }) => {
            assert_eq!(e.code, ErrorCode::Timeout);
            assert!(!e.retryable, "a spent deadline does not retry");
            assert!(
                e.message.contains("admission queue"),
                "expiry happened before any solve: {}",
                e.message
            );
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
    handle.shutdown().expect("clean shutdown");
    let fsck = optimod_daemon::Journal::fsck(&journal_path).expect("journal fsck");
    assert_eq!(fsck.intents, 1, "admission journaled the intent");
    assert_eq!(fsck.pending, 0, "the typed Timeout is its done-mark");
    let _ = std::fs::remove_file(&journal_path);
}

#[test]
fn ping_and_stats_report_a_healthy_daemon() {
    let handle = start_daemon(|_| {});
    let brownout = client::ping(handle.socket_path()).expect("ping");
    assert!(!brownout, "healthy daemon reports no brownout");
    let status = client::stats(handle.socket_path()).expect("stats");
    assert!(!status.brownout);
    assert_eq!(status.sheds, 0);
    assert_eq!(status.recovered_intents, 0);
    assert!(status.cache.is_none(), "no cache configured");
    handle.shutdown().expect("clean shutdown");
}
