//! Property tests for the `optimodd` wire protocol (ISSUE satellite 3).
//!
//! Invariants under test:
//! * every well-formed `Request`/`Reply` round-trips exactly through
//!   encode → frame → read → decode;
//! * every mangling of a valid frame — truncation at any byte, any
//!   single-bit flip, random garbage prefixes — yields a **typed**
//!   [`WireError`], never a panic and never a silently-wrong value.

use proptest::prelude::*;

use optimod::DepStyle;
use optimod_daemon::cache::CacheStats;
use optimod_daemon::wire::{
    encode_frame, objective_from_tag, read_frame, DaemonStatus, ErrorCode, FrameKind, Reply,
    Request, Scheduled, WireError,
};

fn arb_request() -> impl Strategy<Value = Request> {
    (
        (
            0u64..=u64::MAX,
            0u64..1 << 40,
            proptest::bool::ANY,
            proptest::bool::ANY,
        ),
        0u8..5,
        prop_oneof![Just(DepStyle::Traditional), Just(DepStyle::Structured)],
        prop_oneof![Just(None), (0u32..10_000).prop_map(Some)],
        1u32..64,
        proptest::collection::vec(32u8..127, 0..200),
    )
        .prop_map(
            |(
                (request_id, deadline_ms, use_fallback, use_cache),
                obj,
                dep_style,
                register_limit,
                threads,
                text,
            )| {
                Request {
                    request_id,
                    deadline_ms,
                    use_fallback,
                    use_cache,
                    objective: objective_from_tag(obj).expect("tag in range"),
                    dep_style,
                    register_limit,
                    threads,
                    loop_text: String::from_utf8(text).expect("printable ascii"),
                }
            },
        )
}

fn arb_reply() -> impl Strategy<Value = Reply> {
    let scheduled = (
        (
            0u64..=u64::MAX,
            proptest::bool::ANY,
            proptest::bool::ANY,
            0u8..3,
            1u32..1000,
        ),
        prop_oneof![Just(None), (-1_000_000i64..1_000_000).prop_map(Some)],
        proptest::collection::vec(-100_000i64..100_000, 0..64),
        (0u64..1 << 48, 0u64..1 << 48, 0u64..1 << 48),
    )
        .prop_map(
            |(
                (request_id, cache_hit, optimal, prov, ii),
                objective,
                times,
                (bb, simplex, wall),
            )| {
                Reply::Scheduled(Scheduled {
                    request_id,
                    cache_hit,
                    optimal,
                    provenance: match prov {
                        0 => optimod::Provenance::Exact,
                        1 => optimod::Provenance::StageIlp,
                        _ => optimod::Provenance::Ims,
                    },
                    ii,
                    objective,
                    times,
                    bb_nodes: bb,
                    simplex_iterations: simplex,
                    wall_us: wall,
                })
            },
        );
    let error = (
        0u64..=u64::MAX,
        0u8..9,
        proptest::bool::ANY,
        proptest::collection::vec(32u8..127, 0..120),
    )
        .prop_map(|(request_id, code, retryable, msg)| {
            let code = [
                ErrorCode::Parse,
                ErrorCode::InvalidLoop,
                ErrorCode::Timeout,
                ErrorCode::Infeasible,
                ErrorCode::Failed,
                ErrorCode::Overloaded,
                ErrorCode::ShuttingDown,
                ErrorCode::Internal,
                ErrorCode::Certification,
            ][code as usize];
            Reply::Error(optimod_daemon::ErrorReply {
                request_id,
                code,
                retryable,
                message: String::from_utf8(msg).expect("printable ascii"),
            })
        });
    prop_oneof![scheduled, error]
}

fn arb_status() -> impl Strategy<Value = DaemonStatus> {
    let cache = prop_oneof![
        Just(None),
        proptest::collection::vec(0u64..=u64::MAX, 9).prop_map(|v| {
            Some(CacheStats {
                hits: v[0],
                misses: v[1],
                stores: v[2],
                quarantined: v[3],
                evicted: v[4],
                swept_tmp: v[5],
                quarantine_rotated: v[6],
                bytes: v[7],
                entries: v[8],
            })
        }),
    ];
    (
        proptest::bool::ANY,
        proptest::collection::vec(0u64..=u64::MAX, 6),
        cache,
    )
        .prop_map(|(brownout, v, cache)| DaemonStatus {
            brownout,
            queue_len: v[0],
            in_flight: v[1],
            sheds: v[2],
            brownout_served: v[3],
            recovered_intents: v[4],
            journal_pending: v[5],
            cache,
        })
}

/// Splitmix-style mixer for deterministic per-case byte choices.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn request_round_trips(req in arb_request()) {
        let bytes = req.encode();
        let back = Request::decode(&bytes).expect("valid encoding decodes");
        prop_assert_eq!(&back, &req);
        // Re-encoding is byte-stable (canonical encoding).
        prop_assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn reply_round_trips(reply in arb_reply()) {
        let bytes = reply.encode();
        let back = Reply::decode(&bytes).expect("valid encoding decodes");
        prop_assert_eq!(&back, &reply);
        prop_assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn framed_round_trip(req in arb_request()) {
        let frame = encode_frame(FrameKind::Request, &req.encode());
        let mut r: &[u8] = &frame;
        let (kind, payload) = read_frame(&mut r)
            .expect("valid frame reads")
            .expect("not EOF");
        prop_assert_eq!(kind, FrameKind::Request);
        prop_assert_eq!(Request::decode(&payload).expect("decodes"), req);
        // The stream is fully consumed: next read is a clean EOF.
        prop_assert!(read_frame(&mut r).expect("clean EOF").is_none());
    }

    #[test]
    fn truncation_is_typed_never_panics(req in arb_request(), frac in 0u32..1000) {
        let frame = encode_frame(FrameKind::Request, &req.encode());
        // Cut somewhere strictly inside the frame.
        let cut = 1 + (frac as usize * (frame.len().saturating_sub(2))) / 1000;
        let mut r: &[u8] = &frame[..cut];
        match read_frame(&mut r) {
            Err(_) => {}
            Ok(v) => prop_assert!(false, "truncated frame accepted: {v:?}"),
        }
    }

    #[test]
    fn bit_flips_are_rejected(reply in arb_reply(), pos_seed in 0u64..=u64::MAX, bit in 0u8..8) {
        let mut frame = encode_frame(FrameKind::Reply, &reply.encode());
        let pos = (mix(pos_seed) % frame.len() as u64) as usize;
        frame[pos] ^= 1 << bit;
        let mut r: &[u8] = &frame;
        match read_frame(&mut r) {
            // Typed rejection at the frame layer (bad magic / kind /
            // length / checksum) — the common case.
            Err(_) => {}
            // A flip inside the length field can make the frame claim to
            // be longer than the bytes we supplied; that also surfaces as
            // an error above. A flip that survives the checksum would be
            // a collision; fnv1a64 over these sizes never collides on a
            // single-bit flip because every input bit diffuses into the
            // hash. If a payload somehow decoded, it must decode to the
            // original (i.e. the flip hit a dont-care bit — impossible in
            // this canonical encoding, so fail loudly).
            Ok(Some((FrameKind::Reply, payload))) => {
                if let Ok(back) = Reply::decode(&payload) {
                    prop_assert_eq!(
                        back,
                        reply.clone(),
                        "corrupted frame decoded to a different value"
                    );
                }
            }
            Ok(v) => prop_assert!(false, "corrupted frame accepted: {v:?}"),
        }
    }

    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..512)) {
        let mut r: &[u8] = &bytes;
        // Any outcome is fine except a panic; empty input is clean EOF.
        let out = read_frame(&mut r);
        if bytes.is_empty() {
            prop_assert!(matches!(out, Ok(None)));
        }
    }

    #[test]
    fn garbage_payload_decode_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
        let _ = Request::decode(&bytes);
        let _ = Reply::decode(&bytes);
        let _ = DaemonStatus::decode(&bytes);
    }

    #[test]
    fn status_round_trips(status in arb_status()) {
        let bytes = status.encode();
        let back = DaemonStatus::decode(&bytes).expect("valid encoding decodes");
        prop_assert_eq!(back, status);
        prop_assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn status_truncation_is_typed_never_panics(status in arb_status(), frac in 0u32..1000) {
        let bytes = status.encode();
        let cut = (frac as usize * bytes.len().saturating_sub(1)) / 1000;
        match DaemonStatus::decode(&bytes[..cut]) {
            Err(_) => {}
            Ok(v) => prop_assert!(false, "truncated status accepted: {v:?}"),
        }
    }

    #[test]
    fn status_bit_flips_never_yield_a_wrong_value(
        status in arb_status(),
        pos_seed in 0u64..=u64::MAX,
        bit in 0u8..8,
    ) {
        let mut bytes = status.encode();
        let pos = (mix(pos_seed) % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        // The payload has no checksum of its own (the frame layer carries
        // one); a flip may decode. What it must never do is panic, and a
        // flip in a *tag* byte (the brownout / cache flags) must be a
        // typed rejection, which decode() checks for. Either way: typed
        // error or a structurally valid status, never a crash.
        let _ = DaemonStatus::decode(&bytes);
    }
}

#[test]
fn oversized_frame_is_rejected_before_allocation() {
    // Header declaring a payload far beyond MAX_FRAME must be refused
    // without attempting the allocation.
    let mut frame = Vec::new();
    frame.extend_from_slice(&optimod_daemon::wire::MAGIC);
    frame.push(1); // Request
    frame.extend_from_slice(&u32::MAX.to_le_bytes());
    let mut r: &[u8] = &frame;
    match read_frame(&mut r) {
        Err(WireError::Oversized(n)) => assert_eq!(n, u32::MAX as u64),
        other => panic!("expected Oversized, got {other:?}"),
    }
}
